//! The heap snapshot/restore replay must be invisible in every output:
//! restoring a sealed base image yields exactly the heap and frame a
//! fresh materialization would build, across arbitrary mutate/restore
//! interleavings, and whole campaign sweeps produce row-identical
//! reports with snapshots on and off. Only the metrics (seal/restore
//! counters, dirty-word totals) may — and must — differ.

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, Instruction, Isa};
use igjit_concolic::{materialize_base, probe_models, Explorer, InstrUnderTest};
use igjit_difftest::{concrete_frame, run_oracle_on};
use igjit_heap::Oop;
use igjit_interp::NativeMethodId;
use proptest::prelude::*;

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

/// Restoring after a real oracle run reproduces a fresh
/// materialization bit for bit — for every curated path and probe
/// model of the guiding examples (the add bytecode and
/// `primitiveAsFloat`, whose probe models put floats, arrays and
/// external addresses in the input frame).
#[test]
fn restore_after_oracle_run_equals_fresh_materialization() {
    for instr in [
        InstrUnderTest::Bytecode(Instruction::Add),
        InstrUnderTest::Native(NativeMethodId(40)),
    ] {
        let r = Explorer::new().explore(instr);
        for path in r.curated_paths() {
            for model in probe_models(&r.state, path, 8) {
                let mut image = materialize_base(&r.state, &model);
                let fresh = materialize_base(&r.state, &model);
                assert_eq!(image.mem, fresh.mem, "materialization is deterministic");
                assert_eq!(image.frame, fresh.frame);
                assert_eq!(image.var_oops, fresh.var_oops);

                // Mutate the sealed base with a real interpreter run,
                // then roll it back.
                let mut frame = concrete_frame(&image.frame);
                let _ = run_oracle_on(&mut image.mem, &mut frame, path.instruction);
                image.mem.restore(&image.snapshot).expect("restore");
                assert_eq!(image.mem, fresh.mem, "{instr:?}: restore == fresh build");
            }
        }
    }
}

proptest! {
    /// Arbitrary interleavings of heap mutations (stores into
    /// materialized objects, post-seal allocations, external-memory
    /// writes, oracle runs) and restores: after every restore the base
    /// image equals a fresh materialization of the same model.
    #[test]
    fn prop_restore_equals_fresh_across_interleavings(
        ops in proptest::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 1..32),
        restore_every in 1usize..6,
    ) {
        let instr = InstrUnderTest::Bytecode(Instruction::Add);
        let r = Explorer::new().explore(instr);
        let path = &r.curated_paths()[0];
        // The last probe model reaches past plain SmallInts (kind
        // probes put heap objects in the frame when satisfiable).
        let models = probe_models(&r.state, path, 8);
        let model = models.last().unwrap();
        let mut image = materialize_base(&r.state, model);
        let fresh = materialize_base(&r.state, model);
        let heap_oops: Vec<Oop> =
            image.var_oops.values().copied().filter(|o| !o.is_small_int()).collect();
        for (i, &(op, x, y)) in ops.iter().enumerate() {
            match op {
                0 if !heap_oops.is_empty() => {
                    let target = heap_oops[usize::from(x) % heap_oops.len()];
                    let _ = image.mem.store_pointer(
                        target, u32::from(x) % 4, Oop::from_small_int(i64::from(y)));
                }
                1 => { let _ = image.mem.external_mut().write_uint(
                    u32::from(x) % 64, 4, u32::from(y)); }
                2 => { let _ = image.mem.instantiate_array(
                    &[Oop::from_small_int(i64::from(x))]); }
                3 => { let _ = image.mem.instantiate_float(
                    f64::from(x) + f64::from(y) / 7.0); }
                _ => {
                    let mut frame = concrete_frame(&image.frame);
                    let _ = run_oracle_on(&mut image.mem, &mut frame, instr);
                }
            }
            if i % restore_every == 0 {
                image.mem.restore(&image.snapshot).unwrap();
                prop_assert_eq!(&image.mem, &fresh.mem);
            }
        }
        image.mem.restore(&image.snapshot).unwrap();
        prop_assert_eq!(&image.mem, &fresh.mem);
        prop_assert_eq!(&image.frame, &fresh.frame);
    }
}

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

#[test]
fn native_row_is_identical_with_heap_snapshot_on_and_off() {
    // The Table 2 native-method row (and its Table 3 cause sets) must
    // not depend on whether the base image is replayed or rebuilt.
    let run = |heap_snapshot: bool| {
        Campaign::new(CampaignConfig {
            isas: BOTH.to_vec(),
            probes: true,
            threads: 1,
            code_cache: true,
            heap_snapshot,
            predecode: true,
            ..CampaignConfig::default()
        })
        .run_native_methods()
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    // The metrics are the only allowed difference — and the snapshot
    // layer must actually bite: one seal per (path, model), at least
    // one restore per extra ISA.
    assert_eq!(off.metrics.snapshot.seals, 0);
    assert_eq!(off.metrics.snapshot.restores, 0);
    assert!(on.metrics.snapshot.seals > 0);
    assert!(on.metrics.snapshot.restores > 0);
}

#[test]
fn bytecode_row_is_identical_with_heap_snapshot_on_and_off() {
    let run = |heap_snapshot: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            code_cache: true,
            heap_snapshot,
            predecode: true,
            ..CampaignConfig::default()
        })
        .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    assert!(on.metrics.snapshot.seals > 0);
    // A single-ISA sweep never restores between ISAs, only between
    // testable models sharing a base — the oracle runs on a clone, so
    // restores stay at zero while seals count every materialization.
    assert_eq!(off.metrics.snapshot.seals, 0);
}
