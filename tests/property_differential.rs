//! Property-based differential testing: for *arbitrary* SmallInteger
//! operands (not just solver-chosen ones), the interpreter and the
//! inlining compiler tiers must agree on every arithmetic bytecode —
//! same exit condition, same pushed value, on both ISAs.
//!
//! This complements the concolic campaign: the campaign proves every
//! *path* is covered; these properties hammer each path with hundreds
//! of random concrete inputs.

use igjit_bytecode::Instruction;
use igjit_difftest::EngineExit;
use igjit_heap::{Oop, SMALL_INT_MAX, SMALL_INT_MIN};
use igjit_jit::CompilerKind;
use igjit_machine::Isa;
use igjit_repro::harness::{assert_agreement, interp_exit};
use proptest::prelude::*;

const INT_BINOPS: [Instruction; 15] = [
    Instruction::Add,
    Instruction::Subtract,
    Instruction::Multiply,
    Instruction::Divide,
    Instruction::Modulo,
    Instruction::IntegerDivide,
    Instruction::LessThan,
    Instruction::GreaterThan,
    Instruction::LessOrEqual,
    Instruction::GreaterOrEqual,
    Instruction::Equal,
    Instruction::NotEqual,
    Instruction::BitAnd,
    Instruction::BitOr,
    Instruction::BitShift,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_int_binops_agree_on_stack_to_register(
        a in SMALL_INT_MIN..=SMALL_INT_MAX,
        b in SMALL_INT_MIN..=SMALL_INT_MAX,
        op in 0usize..15,
        isa_pick in 0u8..2,
    ) {
        let isa = if isa_pick == 0 { Isa::X86ish } else { Isa::Arm32ish };
        assert_agreement(INT_BINOPS[op], &[a, b], CompilerKind::StackToRegister, isa);
    }

    #[test]
    fn prop_int_binops_agree_on_register_allocator(
        a in -1000i64..1000,
        b in -1000i64..1000,
        op in 0usize..15,
    ) {
        assert_agreement(INT_BINOPS[op], &[a, b], CompilerKind::RegisterAllocating, Isa::X86ish);
    }

    #[test]
    fn prop_small_operand_corner_cases(
        a in prop_oneof![
            Just(SMALL_INT_MIN), Just(SMALL_INT_MAX), Just(0i64), Just(-1), Just(1),
            Just(SMALL_INT_MIN + 1), Just(SMALL_INT_MAX - 1)
        ],
        b in prop_oneof![
            Just(SMALL_INT_MIN), Just(SMALL_INT_MAX), Just(0i64), Just(-1), Just(1), Just(2)
        ],
        op in 0usize..15,
    ) {
        assert_agreement(INT_BINOPS[op], &[a, b], CompilerKind::StackToRegister, Isa::Arm32ish);
    }

    #[test]
    fn prop_deep_stacks_leave_lower_values_untouched(
        bottom in SMALL_INT_MIN..=SMALL_INT_MAX,
        a in -100i64..100,
        b in -100i64..100,
    ) {
        // A binary op on a 3-deep stack must preserve the bottom value.
        let stack = [bottom, a, b];
        let (iexit, _) = interp_exit(Instruction::Add, &stack.map(Oop::from_small_int));
        if let EngineExit::Success { stack: s, .. } = &iexit {
            prop_assert_eq!(s[0], Oop::from_small_int(bottom));
        }
        assert_agreement(Instruction::Add, &stack, CompilerKind::StackToRegister, Isa::X86ish);
    }
}

#[test]
fn deterministic_corner_sweep() {
    // An exhaustive small-grid sweep of every int binop on the
    // inlining tiers — a few thousand deterministic cases.
    let corners = [
        SMALL_INT_MIN,
        SMALL_INT_MIN + 1,
        -7,
        -2,
        -1,
        0,
        1,
        2,
        3,
        7,
        SMALL_INT_MAX - 1,
        SMALL_INT_MAX,
    ];
    for instr in INT_BINOPS {
        for &a in &corners {
            for &b in &corners {
                assert_agreement(instr, &[a, b], CompilerKind::StackToRegister, Isa::X86ish);
            }
        }
    }
}
