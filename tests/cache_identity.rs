//! The compiled-code cache must be invisible in every output: cached
//! artifacts are byte-identical to fresh compiles, and whole campaign
//! sweeps produce row-identical reports with the cache on and off.
//! Only the metrics (hit/miss counters, compile invocations) may —
//! and must — differ.

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, Isa};
use igjit_heap::ObjectMemory;
use igjit_jit::native::igjit_bytecode_native_id::NativeMethodIdLike;
use igjit_jit::{
    compile_bytecode_sequence_test, compile_native_test, BytecodeTestInput, CodeCache, CompileKey,
    NativeTestInput,
};

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

#[test]
fn cached_native_artifacts_are_byte_identical_to_fresh_compiles() {
    let mem = ObjectMemory::new();
    let input = NativeTestInput {
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    let cache = CodeCache::new();
    for id in [1u32, 14, 40, 41] {
        for isa in BOTH {
            let key = CompileKey::Native {
                id,
                isa,
                nil: mem.nil().0,
                true_obj: mem.true_object().0,
                false_obj: mem.false_object().0,
            };
            let fresh = compile_native_test(NativeMethodIdLike(id as u16), input, isa)
                .expect("compiles");
            // Warm the cache, then look the same key up again: the
            // second lookup must hit and return the identical bytes.
            let first = cache.get_or_compile(key.clone(), || {
                compile_native_test(NativeMethodIdLike(id as u16), input, isa)
            });
            let hits_before = cache.hits();
            let second = cache.get_or_compile(key, || panic!("must hit"));
            assert_eq!(cache.hits(), hits_before + 1);
            for artifact in [&first, &second] {
                let cached = artifact.artifact().as_ref().expect("compiles");
                assert_eq!(cached.code, fresh.code, "native {id} on {isa:?}");
                assert_eq!(cached.ntemps, fresh.ntemps);
                assert_eq!(cached.isa, fresh.isa);
            }
        }
    }
}

#[test]
fn cached_bytecode_artifacts_are_byte_identical_to_fresh_compiles() {
    use igjit_bytecode::Instruction;
    let mem = ObjectMemory::new();
    let stack = [igjit_heap::Oop::from_small_int(20), igjit_heap::Oop::from_small_int(22)];
    let input = BytecodeTestInput {
        instruction: Instruction::Add,
        operand_stack: &stack,
        temps: &[],
        literals: &[],
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    let cache = CodeCache::new();
    for kind in CompilerKind::ALL {
        for isa in BOTH {
            let key = CompileKey::Bytecode {
                kind,
                isa,
                instrs: vec![Instruction::Add],
                stack: stack.iter().map(|o| o.0).collect(),
                temps: vec![],
                literals: vec![],
                nil: mem.nil().0,
                true_obj: mem.true_object().0,
                false_obj: mem.false_object().0,
            };
            let fresh = compile_bytecode_sequence_test(kind, &[Instruction::Add], &input, isa)
                .expect("compiles");
            let cached = cache.get_or_compile(key, || {
                compile_bytecode_sequence_test(kind, &[Instruction::Add], &input, isa)
            });
            let cached = cached.artifact().as_ref().expect("compiles");
            assert_eq!(cached.code, fresh.code, "{kind:?} on {isa:?}");
        }
    }
}

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

#[test]
fn native_row_is_identical_with_code_cache_on_and_off() {
    // Mirrors `parallel_report_is_bit_identical_to_sequential`: the
    // Table 2 native-method row (and its Table 3 cause sets) must not
    // depend on whether compiled artifacts are reused.
    let run = |code_cache: bool| {
        Campaign::new(CampaignConfig {
            isas: BOTH.to_vec(),
            probes: true,
            threads: 1,
            code_cache,
            heap_snapshot: true,
            predecode: true,
            ..CampaignConfig::default()
        })
        .run_native_methods()
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    // The metrics are the only allowed difference — and the cache must
    // actually bite: at least half the compile invocations disappear.
    assert_eq!(off.metrics.compile_hits, 0);
    assert!(on.metrics.compile_hits > 0);
    assert_eq!(
        on.metrics.compile_hits + on.metrics.compile_misses,
        off.metrics.compile_misses,
        "same number of lookups either way"
    );
    assert!(
        on.metrics.compile_misses * 2 <= off.metrics.compile_misses,
        "compile invocations must drop at least 2x: {} vs {}",
        on.metrics.compile_misses,
        off.metrics.compile_misses
    );
}

#[test]
fn bytecode_row_is_identical_with_code_cache_on_and_off() {
    let run = |code_cache: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            code_cache,
            heap_snapshot: true,
            predecode: true,
            ..CampaignConfig::default()
        })
        .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    assert!(on.metrics.compile_misses < off.metrics.compile_misses);
}
