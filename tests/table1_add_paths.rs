//! Integration test reproducing Table 1 of the paper: the concolic
//! execution paths of the add bytecode, with the expected mix of
//! concrete inputs and constraint shapes.

use igjit::{Explorer, InstrUnderTest, Instruction, PathOutcome};
use igjit_bytecode::SpecialSelector;
use igjit_heap::{Oop, SMALL_INT_MAX, SMALL_INT_MIN};

#[test]
fn add_paths_cover_table_1() {
    let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));

    // Row "0 (integer), 0 (integer)": both ints, sum in range →
    // success with the sum pushed.
    let int_success = r.paths.iter().find(|p| {
        matches!(p.outcome, PathOutcome::Success)
            && p.output_stack.len() == 1
            && p.output_stack[0].is_small_int()
    });
    assert!(int_success.is_some(), "int+int success path");

    // Row "0xFFFFFFFF (integer), 1 (integer)": both ints, sum
    // overflows → slow-path send with integer operands.
    let overflow = r.paths.iter().find(|p| {
        matches!(&p.outcome, PathOutcome::MessageSend(s)
            if s.special == Some(SpecialSelector::Plus)
            && s.receiver.is_small_int()
            && s.args.len() == 1
            && s.args[0].is_small_int()
            && {
                let sum = s.receiver.small_int_value() + s.args[0].small_int_value();
                !(SMALL_INT_MIN..=SMALL_INT_MAX).contains(&sum)
            })
    });
    assert!(overflow.is_some(), "overflow path with concrete out-of-range sum");

    // Rows "integer, object" / "object, integer" / "object, object":
    // type-mismatch sends (at least one operand not an integer).
    let mismatch_sends = r
        .paths
        .iter()
        .filter(|p| {
            matches!(&p.outcome, PathOutcome::MessageSend(s)
                if s.special == Some(SpecialSelector::Plus)
                && (s.receiver.is_pointer() || s.args[0].is_pointer()))
        })
        .count();
    assert!(mismatch_sends >= 2, "type-mismatch send paths, got {mismatch_sends}");

    // The float fast path (the interpreter's extra static type
    // prediction): both floats → success pushing a boxed float.
    let float_success = r.paths.iter().any(|p| {
        matches!(p.outcome, PathOutcome::Success)
            && p.output_stack.len() == 1
            && p.output_stack[0].is_pointer()
    });
    assert!(float_success, "float+float inlined success path");

    // Fig. 2's first column: the invalid-frame exit on an empty stack.
    assert!(
        r.paths.iter().any(|p| matches!(p.outcome, PathOutcome::InvalidFrame)),
        "invalid frame path"
    );
}

#[test]
fn add_models_reconstruct_concrete_values() {
    // Every success path's model must materialize concrete SmallInts
    // whose sum matches the recorded output.
    let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
    for p in &r.paths {
        if let PathOutcome::Success = p.outcome {
            if p.output_stack.len() == 1 && p.output_stack[0].is_small_int() {
                let size = p.model.int_value(r.state.stack_size);
                assert!(size >= 2, "int success needs two operands");
                let arg = p.model.int_value(r.state.stack_vars[0]);
                let rcvr = p.model.int_value(r.state.stack_vars[1]);
                assert_eq!(
                    p.output_stack[0],
                    Oop::from_small_int(rcvr + arg),
                    "output is the sum of the materialized operands"
                );
            }
        }
    }
}
