//! Engine v10 invariants: the trail-based solver must be invisible in
//! every campaign output. Table 2 rows, Table 3 cause sets and
//! per-path verdicts are byte-identical with `solver_trail` on and off
//! — on both rows, stacked under the other performance knobs, and
//! under an armed mutant (replacing store clones with an undo log must
//! not mask a planted defect by perturbing which models the probes
//! hand the oracle).

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, FaultInjector, Instruction,
            Isa};

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

fn bytecode_config(solver_trail: bool) -> CampaignConfig {
    CampaignConfig {
        isas: vec![Isa::X86ish],
        probes: false,
        threads: 1,
        solver_trail,
        ..CampaignConfig::default()
    }
}

#[test]
fn bytecode_row_is_identical_with_solver_trail_on_and_off() {
    // The whole-catalog bytecode row: exploration's negation walk is
    // where sibling scopes are pushed and unwound thousands of times,
    // so a mis-unwound trail entry would leak one scope's narrowing
    // into the next sibling's model and change a verdict here.
    let _off = FaultInjector::pinned_off();
    let run = |solver_trail: bool| {
        Campaign::new(bytecode_config(solver_trail))
            .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn native_row_is_identical_with_solver_trail_on_and_off() {
    // Native methods with the probe pass on: `solve_under_prepared` is
    // the probe sweep's entry point and the trail's main customer —
    // every probe hypothesis runs mark/propagate/search/unwind against
    // the live store instead of a clone.
    let _off = FaultInjector::pinned_off();
    let run = |solver_trail: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: true,
            threads: 1,
            solver_trail,
            ..CampaignConfig::default()
        })
        .run_native_methods()
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn bytecode_row_is_identical_with_trail_stacked_on_other_knobs() {
    // The knob must compose: flipping solver_trail under the full
    // performance stack (code cache, heap snapshots, machine-side and
    // interpreter predecode, hash-consing, family sharing) changes
    // nothing either. Family sharing matters here because replayed
    // family members reuse a sibling's exploration — the trail must
    // produce the same models for the family representative too.
    let _off = FaultInjector::pinned_off();
    let run = |solver_trail: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            code_cache: true,
            heap_snapshot: true,
            predecode: true,
            family_share: true,
            interp_predecode: true,
            hash_cons: true,
            solver_trail,
            ..CampaignConfig::default()
        })
        .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn armed_mutant_verdicts_do_not_depend_on_solver_trail() {
    // A killable mutant must look exactly as dead with the trail as
    // with per-scope clones: same difference counts, same verdicts.
    // The trail only changes how scope state is restored, but a bug in
    // the undo log would change which witness inputs get generated —
    // and a lucky witness set could mask (or fabricate) a kill.
    let run = |solver_trail: bool| {
        let _armed = FaultInjector::arm(igjit::mutate::ops::FLIP_COMPARE_COND).unwrap();
        Campaign::new(bytecode_config(solver_trail))
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_eq!(on.paths_found, off.paths_found);
    assert_eq!(on.curated, off.curated);
    assert_eq!(on.difference_count(), off.difference_count());
    assert_eq!(on.causes(), off.causes());
    // And the mutant still visibly diverges from a disarmed run, so
    // the comparison above is not vacuous.
    let baseline = {
        let _off = FaultInjector::pinned_off();
        Campaign::new(bytecode_config(true))
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    assert_ne!(baseline.difference_count(), on.difference_count(),
               "flipped comparisons must diverge from the interpreter");
}
