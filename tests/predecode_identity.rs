//! The predecoded execution mode (engine v5) must be invisible in
//! every campaign output: Table 2 rows, Table 3 cause sets and
//! per-path verdicts are identical with `predecode` on and off — the
//! predecoded artifact changes how instructions are *fetched*, never
//! what they *do*. And because the predecoded view is derived from the
//! compiled artifact **after** fault injection, an armed mutant's
//! planted bug must surface identically in both modes: predecoding
//! must not mask (or invent) kills, or the mutation score would
//! silently depend on a performance knob.

use igjit::mutate::ops;
use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, FaultInjector, Isa};

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

fn config(predecode: bool) -> CampaignConfig {
    CampaignConfig {
        isas: BOTH.to_vec(),
        probes: true,
        threads: 1,
        code_cache: true,
        heap_snapshot: true,
        predecode,
        ..CampaignConfig::default()
    }
}

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

#[test]
fn native_row_is_identical_with_predecode_on_and_off() {
    let _off = FaultInjector::pinned_off();
    let on = Campaign::new(config(true)).run_native_methods();
    let off = Campaign::new(config(false)).run_native_methods();
    assert_row_identical(&on, &off);
}

#[test]
fn bytecode_rows_are_identical_with_predecode_on_and_off() {
    let _off = FaultInjector::pinned_off();
    for kind in CompilerKind::ALL {
        let on = Campaign::new(config(true)).run_bytecodes(kind);
        let off = Campaign::new(config(false)).run_bytecodes(kind);
        assert_row_identical(&on, &off);
    }
}

/// An armed compiler mutant's planted bug reaches the verdicts through
/// the predecoded fetch exactly as through the byte decoder: same
/// rows, same cause sets — and visibly different from the disarmed
/// baseline, so the kill is real in both modes.
#[test]
fn armed_mutant_is_not_masked_by_predecoding() {
    let baseline = {
        let _off = FaultInjector::pinned_off();
        Campaign::new(config(true)).run_bytecodes(CompilerKind::StackToRegister)
    };
    let (mutant_on, mutant_off) = {
        let _armed =
            FaultInjector::arm(ops::FLIP_COMPARE_COND).expect("catalog mutant arms");
        (
            Campaign::new(config(true)).run_bytecodes(CompilerKind::StackToRegister),
            Campaign::new(config(false)).run_bytecodes(CompilerKind::StackToRegister),
        )
    };
    // The fault surfaces identically whether or not fetch is predecoded…
    assert_row_identical(&mutant_on, &mutant_off);
    // …and it does surface: the mutant run deviates from the baseline
    // in both modes (the kill signal the mutation foundry counts).
    assert_ne!(
        baseline.row, mutant_on.row,
        "flip-compare-cond must change the StackToRegister row"
    );
}
