//! Engine v6 invariants: hash-consed constraint interning and
//! family-shared exploration must be invisible in every campaign
//! output. Table 2 rows, Table 3 cause sets and per-path verdicts are
//! byte-identical with each knob on and off — only the metrics
//! (family replay counters) may, and must, differ.

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, Isa};

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

fn run_bytecode_row(config: CampaignConfig) -> CampaignReport {
    Campaign::new(config).run_bytecodes(CompilerKind::StackToRegister)
}

#[test]
fn bytecode_row_is_identical_with_family_sharing_on_and_off() {
    // The whole-catalog production-tier row: every opcode family
    // (const pushes, short/long jumps, constant returns) must replay
    // to exactly the outcome a from-scratch exploration produces.
    let run = |family_share: bool| {
        run_bytecode_row(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            family_share,
            ..CampaignConfig::default()
        })
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    // The metrics are the only allowed difference — and sharing must
    // actually bite: no fallbacks, and every non-representative family
    // member served by replay (6 const pushes, 2 constant returns and
    // 21 short jumps in the current catalog).
    assert_eq!(off.metrics.family_hits, 0);
    assert_eq!(off.metrics.family_fallbacks, 0);
    assert_eq!(on.metrics.family_fallbacks, 0, "every member must replay cleanly");
    assert!(
        on.metrics.family_hits >= 25,
        "family sharing must cover the big opcode groups: {} hits",
        on.metrics.family_hits
    );
}

#[test]
fn bytecode_row_is_identical_with_hash_consing_on_and_off() {
    let run = |hash_cons: bool| {
        run_bytecode_row(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            hash_cons,
            ..CampaignConfig::default()
        })
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn native_row_is_identical_with_family_sharing_on_and_off() {
    // Native methods have no bytecode families; the knob must be a
    // pure no-op there, counters included.
    let run = |family_share: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: true,
            threads: 1,
            family_share,
            ..CampaignConfig::default()
        })
        .run_native_methods()
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
    assert_eq!(on.metrics.family_hits, 0);
    assert_eq!(on.metrics.family_fallbacks, 0);
}

#[test]
fn bytecode_row_is_identical_with_parallel_negation() {
    let run = |negate_threads: usize| {
        run_bytecode_row(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            negate_threads,
            ..CampaignConfig::default()
        })
    };
    let (par, seq) = (run(4), run(1));
    assert_row_identical(&par, &seq);
}
