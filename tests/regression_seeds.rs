//! Pinned regression tests for the proptest counterexample seeds in
//! `tests/property_differential.proptest-regressions`.
//!
//! Root cause of the original red suite: the two recorded seeds both
//! hit `op = 14` (`Instruction::BitShift`) with a negative or
//! out-of-guard shift count — `a = 0, b = -32` and
//! `a = -2^30, b = -2^30`. The interpreter's `bitwise()` fast path
//! only inlines shifts with `-31 <= b <= 31` and falls back to a
//! `bitShift:` message send otherwise; the compiled tiers must take
//! the *same* slow-path exit (`gen_bitshift` guards with
//! `CmpImm 31 / CmpImm -31`), and for in-guard negative shifts both
//! engines must agree on the arithmetic-shift result
//! (`a >> min(-b, 62)`). These tests pin the exact seed values plus
//! the surrounding guard boundary (`|b|` in 30..=33) on every
//! inlining tier and both ISAs, so the SmallInteger range/overflow
//! edge can never silently regress again.

use igjit_bytecode::Instruction;
use igjit_heap::{SMALL_INT_MAX, SMALL_INT_MIN};
use igjit_jit::CompilerKind;
use igjit_machine::Isa;
use igjit_repro::harness::assert_agreement;

const TIERS: [CompilerKind; 2] =
    [CompilerKind::StackToRegister, CompilerKind::RegisterAllocating];
const ISAS: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

fn agree_everywhere(a: i64, b: i64) {
    for kind in TIERS {
        for isa in ISAS {
            assert_agreement(Instruction::BitShift, &[a, b], kind, isa);
        }
    }
}

/// Seed 1: `a = 0, b = -32, op = 14`. A right shift one past the
/// inline guard — both engines must exit to the `bitShift:` send.
#[test]
fn seed_bitshift_zero_by_minus_32() {
    agree_everywhere(0, -32);
}

/// Seed 2: `a = -2^30, b = -2^30, op = 14`. The most negative
/// SmallInteger shifted by itself — far outside the guard, and the
/// shift count itself is out of SmallInteger-shift range.
#[test]
fn seed_bitshift_min_by_min() {
    agree_everywhere(SMALL_INT_MIN, SMALL_INT_MIN);
}

/// The guard boundary around the seeds: `|b|` in 30..=33 straddles the
/// inline fast path (`-31..=31`) and the slow-path send on both sides,
/// for representative receivers including both range extremes.
#[test]
fn seed_neighborhood_guard_boundary() {
    for a in [0, 1, -1, SMALL_INT_MIN, SMALL_INT_MAX] {
        for mag in [30i64, 31, 32, 33] {
            agree_everywhere(a, mag);
            agree_everywhere(a, -mag);
        }
    }
}

/// Left-shift overflow at the range edge: shifting a value whose
/// result leaves the 31-bit tagged range must not diverge (the JIT's
/// overflow check and the interpreter's `is_integer_value` check must
/// agree on when to bail to the send).
#[test]
fn seed_left_shift_overflow_edge() {
    for a in [SMALL_INT_MAX, SMALL_INT_MAX / 2, SMALL_INT_MIN, -2, 2] {
        for b in [1i64, 2, 29, 30, 31] {
            agree_everywhere(a, b);
        }
    }
}
