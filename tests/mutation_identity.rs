//! The fault injector must be invisible when disarmed: with the
//! injector pinned off, every Table 2/Table 3/testgen output is
//! byte-identical to a run of a build with no injection sites at all,
//! and compiled artifacts carry no residue after a mutant guard drops.
//! Conversely, an armed killable mutant must visibly change a
//! differential verdict — otherwise the foundry would be measuring a
//! disconnected knob.

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, FaultInjector, Instruction,
            InstrUnderTest, Isa, Target};
use igjit::GeneratedSuite;
use igjit_heap::Oop;
use igjit_jit::{compile_bytecode_test, BytecodeTestInput};
use proptest::prelude::*;

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

fn full_config() -> CampaignConfig {
    CampaignConfig {
        isas: BOTH.to_vec(),
        probes: true,
        threads: 1,
        code_cache: true,
        heap_snapshot: true,
        predecode: true,
        ..CampaignConfig::default()
    }
}

/// The §5.1 native-method row with the injector pinned off, twice:
/// identical verdict-for-verdict, and exactly the seed baseline the
/// rest of the repo pins (the disarmed injector is a no-op, not merely
/// "close to one").
#[test]
fn native_row_is_identical_with_injector_pinned_off() {
    let _off = FaultInjector::pinned_off();
    let a = Campaign::new(full_config()).run_native_methods();
    let b = Campaign::new(full_config()).run_native_methods();
    assert_row_identical(&a, &b);
    assert_eq!(
        (a.row.tested_instructions, a.row.interpreter_paths, a.row.curated_paths,
         a.row.differences),
        (112, 753, 753, 437),
        "disarmed sweep drifted from the pinned Table 2 native row"
    );
}

/// A killable mutant visibly changes the differential verdicts — the
/// injector is wired to the code the campaign actually measures.
#[test]
fn flip_compare_cond_changes_the_lessthan_verdicts() {
    let baseline = {
        let _off = FaultInjector::pinned_off();
        Campaign::quick()
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    let mutated = {
        let _armed = FaultInjector::arm(igjit::mutate::ops::FLIP_COMPARE_COND).unwrap();
        Campaign::quick()
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    assert_eq!(baseline.paths_found, mutated.paths_found, "exploration is JIT-independent");
    assert_ne!(
        baseline.difference_count(),
        mutated.difference_count(),
        "flipped comparisons must diverge from the interpreter"
    );
}

/// The generated unit-test suite is stable under the pinned-off
/// injector and still finds the planted defect (the quickstart's
/// Add/StackToRegister float-path divergence on one ISA).
#[test]
fn generated_suite_is_stable_and_still_finds_planted_defects() {
    let _off = FaultInjector::pinned_off();
    let gen = || {
        GeneratedSuite::generate_for(
            InstrUnderTest::Bytecode(Instruction::Add),
            Target::Bytecode(CompilerKind::StackToRegister),
            &[Isa::X86ish],
        )
    };
    let (first, second) = (gen(), gen());
    assert_eq!(first.manifest(), second.manifest());
    let (ra, rb) = (first.run(), second.run());
    assert_eq!((ra.passed, ra.failed, ra.skipped), (rb.passed, rb.failed, rb.skipped));
    assert_eq!(ra.failed, 1, "the planted Add defect must stay detected with mutants disabled");
}

fn compile_probe() -> Vec<Option<Vec<u8>>> {
    let stack = [Oop::from_small_int(7), Oop::from_small_int(3)];
    let temps = [Oop::from_small_int(11)];
    let literals = [Oop::from_small_int(5)];
    let mut out = Vec::new();
    for instruction in [
        Instruction::Add,
        Instruction::LessThan,
        Instruction::Divide,
        Instruction::BitAnd,
        Instruction::SpecialSendAt,
        Instruction::PushTemp(0),
    ] {
        let input = BytecodeTestInput {
            instruction,
            operand_stack: &stack,
            temps: &temps,
            literals: &literals,
            nil: Oop(0x100),
            true_obj: Oop(0x108),
            false_obj: Oop(0x110),
        };
        for kind in [
            CompilerKind::SimpleStackBased,
            CompilerKind::StackToRegister,
            CompilerKind::RegisterAllocating,
        ] {
            for isa in BOTH {
                out.push(compile_bytecode_test(kind, &input, isa).ok().map(|c| c.code));
            }
        }
    }
    out
}

proptest! {
    /// Arm any catalog mutant, compile, disarm: recompilation is
    /// byte-identical to the pre-arming baseline. No mutant leaves
    /// residue in the compilers once its guard drops.
    #[test]
    fn prop_no_compile_residue_after_any_mutant(idx in 0usize..igjit::mutate::CATALOG.len()) {
        let op = &igjit::mutate::CATALOG[idx];
        let baseline = {
            let _off = FaultInjector::pinned_off();
            compile_probe()
        };
        {
            let _armed = FaultInjector::arm(op.id).unwrap();
            let _ = compile_probe();
        }
        let _off = FaultInjector::pinned_off();
        prop_assert_eq!(compile_probe(), baseline, "{} left residue", op.name);
    }
}
