//! Consistency between the two result-producing APIs: the generated
//! test suite and the campaign must agree on which paths diverge.

use igjit::{
    test_instruction, CompilerKind, GeneratedSuite, InstrUnderTest, Instruction, Isa,
    NativeMethodId, Target, TestResult,
};

#[test]
fn suite_failures_match_campaign_differences() {
    for (instr, target) in [
        (
            InstrUnderTest::Bytecode(Instruction::Add),
            Target::Bytecode(CompilerKind::StackToRegister),
        ),
        (
            InstrUnderTest::Bytecode(Instruction::BitAnd),
            Target::Bytecode(CompilerKind::SimpleStackBased),
        ),
        (InstrUnderTest::Native(NativeMethodId(1)), Target::NativeMethods),
        (InstrUnderTest::Native(NativeMethodId(14)), Target::NativeMethods),
        (InstrUnderTest::Native(NativeMethodId(120)), Target::NativeMethods),
    ] {
        let isas = [Isa::X86ish];
        // Campaign without probing (the suite replays base models only).
        let campaign = test_instruction(instr, target, &isas, false);
        let suite = GeneratedSuite::generate_for(instr, target, &isas);
        let report = suite.run();
        assert_eq!(
            report.failed,
            campaign.difference_count(),
            "{instr:?} vs {target:?}: suite {report:?}, campaign {} diffs",
            campaign.difference_count()
        );
    }
}

#[test]
fn suite_tests_are_individually_deterministic() {
    let suite = GeneratedSuite::generate_for(
        InstrUnderTest::Native(NativeMethodId(14)),
        Target::NativeMethods,
        &[Isa::Arm32ish],
    );
    for t in &suite.tests {
        let first = t.run();
        let second = t.run();
        match (&first, &second) {
            (TestResult::Pass, TestResult::Pass)
            | (TestResult::Skipped, TestResult::Skipped) => {}
            (TestResult::Fail(a), TestResult::Fail(b)) => assert_eq!(a, b),
            other => panic!("{}: nondeterministic replay {other:?}", t.name),
        }
    }
}
