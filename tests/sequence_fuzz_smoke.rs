//! A deterministic miniature of the sequence-fuzzing campaign
//! (`igjit-bench --bin sequence_fuzz`): random straight-line sequences
//! must never diverge outside the planted optimisation gap.

use igjit::{CompilerKind, DefectCategory, Instruction, Isa, Verdict};
use igjit_difftest::test_sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POOL: [Instruction; 16] = [
    Instruction::PushZero,
    Instruction::PushOne,
    Instruction::PushTwo,
    Instruction::PushMinusOne,
    Instruction::PushInteger(13),
    Instruction::PushTrue,
    Instruction::PushFalse,
    Instruction::Dup,
    Instruction::Pop,
    Instruction::Add,
    Instruction::Subtract,
    Instruction::Multiply,
    Instruction::LessThan,
    Instruction::Equal,
    Instruction::BitAnd,
    Instruction::IdentityEqual,
];

#[test]
fn random_sequences_never_diverge_unexpectedly() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..40 {
        let len = rng.gen_range(2..=4);
        let seq: Vec<Instruction> =
            (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
        let o = test_sequence(&seq, CompilerKind::StackToRegister, &[Isa::X86ish]);
        for v in &o.verdicts {
            if let Verdict::Difference(_) = v.verdict {
                assert_eq!(
                    v.cause.as_ref().map(|c| c.category),
                    Some(DefectCategory::OptimisationDifference),
                    "{seq:?}: {v:?}"
                );
            }
        }
    }
}
