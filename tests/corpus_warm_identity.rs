//! The persistent corpus must be invisible in every output (engine
//! v7): a warm re-run replays row-identical reports with every
//! instruction served from the corpus, and a corrupted corpus file
//! silently degrades to a cold run — same rows, no panic. Only the
//! metrics (corpus hit/miss counters) may, and must, differ.

use std::path::PathBuf;

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, Isa};

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

/// A scratch corpus path that cleans up after itself.
struct ScratchCorpus(PathBuf);

impl ScratchCorpus {
    fn new(tag: &str) -> ScratchCorpus {
        let path = std::env::temp_dir()
            .join(format!("igjit-test-{tag}-{}.corpus", std::process::id()));
        let _ = std::fs::remove_file(&path);
        ScratchCorpus(path)
    }
}

impl Drop for ScratchCorpus {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn config(corpus: Option<PathBuf>) -> CampaignConfig {
    CampaignConfig {
        isas: vec![Isa::X86ish],
        probes: false,
        threads: 1,
        corpus,
        ..CampaignConfig::default()
    }
}

#[test]
fn warm_rerun_is_row_identical_and_fully_corpus_served() {
    let scratch = ScratchCorpus::new("warm");

    // Reference run without any corpus involvement.
    let reference = Campaign::new(config(None)).run_bytecodes(CompilerKind::SimpleStackBased);

    // Cold run: empty corpus, every instruction is a miss, then save.
    let cold_campaign = Campaign::new(config(Some(scratch.0.clone())));
    assert!(cold_campaign.corpus_load_stats().expect("corpus attached").cold);
    let cold = cold_campaign.run_bytecodes(CompilerKind::SimpleStackBased);
    assert_row_identical(&reference, &cold);
    assert_eq!(cold.metrics.corpus_hits, 0);
    assert_eq!(cold.metrics.corpus_misses, cold.row.tested_instructions);
    let outcome = cold_campaign.save_corpus().expect("corpus attached").expect("save succeeds");
    assert!(matches!(outcome, igjit_corpus::SaveOutcome::Written { .. }));

    // Warm run: a fresh campaign over the saved file replays the row
    // without recomputing a single instruction.
    let warm_campaign = Campaign::new(config(Some(scratch.0.clone())));
    let stats = warm_campaign.corpus_load_stats().expect("corpus attached");
    assert!(!stats.cold, "saved corpus must load warm: {:?}", stats.warnings);
    assert_eq!(stats.outcomes, cold.row.tested_instructions);
    let warm = warm_campaign.run_bytecodes(CompilerKind::SimpleStackBased);
    assert_row_identical(&reference, &warm);
    assert_eq!(warm.metrics.corpus_hits, warm.row.tested_instructions);
    assert_eq!(warm.metrics.corpus_misses, 0);

    // Re-saving an unchanged corpus must not rewrite the file.
    let outcome = warm_campaign.save_corpus().expect("corpus attached").expect("save succeeds");
    assert!(matches!(outcome, igjit_corpus::SaveOutcome::Unchanged));
}

#[test]
fn corrupted_corpus_degrades_to_a_cold_run_with_identical_rows() {
    let scratch = ScratchCorpus::new("corrupt");

    let reference = Campaign::new(config(None)).run_bytecodes(CompilerKind::SimpleStackBased);

    let cold_campaign = Campaign::new(config(Some(scratch.0.clone())));
    cold_campaign.run_bytecodes(CompilerKind::SimpleStackBased);
    cold_campaign.save_corpus().expect("corpus attached").expect("save succeeds");

    // Flip a byte in the middle of the file: the damaged section's
    // checksum fails and the run recomputes it — same rows, no panic.
    let mut bytes = std::fs::read(&scratch.0).expect("corpus written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&scratch.0, &bytes).expect("rewrite");

    let damaged_campaign = Campaign::new(config(Some(scratch.0.clone())));
    let damaged = damaged_campaign.run_bytecodes(CompilerKind::SimpleStackBased);
    assert_row_identical(&reference, &damaged);
    assert_eq!(damaged.metrics.corpus_hits + damaged.metrics.corpus_misses,
               damaged.row.tested_instructions);

    // Truncation likewise: keep the header plus half a section.
    std::fs::write(&scratch.0, &bytes[..bytes.len() / 3]).expect("truncate");
    let truncated_campaign = Campaign::new(config(Some(scratch.0.clone())));
    let truncated = truncated_campaign.run_bytecodes(CompilerKind::SimpleStackBased);
    assert_row_identical(&reference, &truncated);
}
