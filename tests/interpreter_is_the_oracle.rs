//! Cross-crate tests of the "one interpreter, two execution modes"
//! property: the concolic run and the concrete run of the same
//! instruction on the same materialized frame must take the same path
//! and produce the same outputs — the concolic engine really is the
//! plain interpreter plus recording, not a second semantics.

use igjit::{Explorer, InstrUnderTest, Instruction, NativeMethodId, PathOutcome};
use igjit_bytecode::instruction_catalog;
use igjit_concolic::materialize_frame;
use igjit_difftest::{run_oracle, EngineExit};
use igjit_heap::ObjectMemory;

fn exits_match(path: &PathOutcome, oracle: &EngineExit) -> bool {
    matches!(
        (path, oracle),
        (PathOutcome::Success, EngineExit::Success { .. })
            | (PathOutcome::Jump { .. }, EngineExit::JumpTaken)
            | (PathOutcome::Failure, EngineExit::Failure)
            | (PathOutcome::MessageSend(_), EngineExit::Send { .. })
            | (PathOutcome::MethodReturn { .. }, EngineExit::Return { .. })
            | (PathOutcome::InvalidFrame, EngineExit::InvalidFrame)
            | (PathOutcome::InvalidMemoryAccess, EngineExit::InvalidMemory)
    )
}

#[test]
fn concolic_and_concrete_agree_for_every_bytecode() {
    let explorer = Explorer::new();
    for spec in instruction_catalog() {
        let r = explorer.explore(InstrUnderTest::Bytecode(spec.instruction));
        for p in r.curated_paths() {
            let exit = run_oracle(&r.state, &p.model, p.instruction).exit;
            assert!(
                exits_match(&p.outcome, &exit),
                "{:?}: concolic said {:?}, concrete said {:?}",
                spec.instruction,
                p.outcome,
                exit
            );
        }
    }
}

#[test]
fn concolic_and_concrete_agree_for_sampled_natives() {
    let explorer = Explorer::new();
    for id in [1u16, 7, 10, 14, 17, 40, 41, 47, 51, 60, 61, 62, 66, 70, 71, 76, 80, 100, 136, 143]
    {
        let r = explorer.explore(InstrUnderTest::Native(NativeMethodId(id)));
        for p in r.curated_paths() {
            let exit = run_oracle(&r.state, &p.model, p.instruction).exit;
            assert!(
                exits_match(&p.outcome, &exit),
                "primitive {id}: concolic said {:?}, concrete said {:?}",
                p.outcome,
                exit
            );
        }
    }
}

#[test]
fn materialization_is_reproducible_across_heaps() {
    // Frame materialization is the foundation of the differential
    // comparison: identical models must produce bit-identical frames
    // in fresh heaps.
    let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::SpecialSendAtPut));
    for p in r.curated_paths() {
        let mut s1 = r.state.clone();
        let mut m1 = ObjectMemory::new();
        let f1 = materialize_frame(&mut s1, &p.model, &mut m1);
        let mut s2 = r.state.clone();
        let mut m2 = ObjectMemory::new();
        let f2 = materialize_frame(&mut s2, &p.model, &mut m2);
        let c1: Vec<_> = f1.frame.stack.iter().map(|v| v.concrete).collect();
        let c2: Vec<_> = f2.frame.stack.iter().map(|v| v.concrete).collect();
        assert_eq!(c1, c2);
        assert_eq!(f1.frame.receiver.concrete, f2.frame.receiver.concrete);
    }
}

#[test]
fn path_counts_match_the_figure_5_shape() {
    // Native methods have notably more paths per instruction than
    // bytecodes (Fig. 5 of the paper).
    let explorer = Explorer::new();
    let mut bc_total = 0usize;
    let mut bc_n = 0usize;
    for spec in instruction_catalog().into_iter().take(60) {
        bc_total += explorer.explore(InstrUnderTest::Bytecode(spec.instruction)).paths.len();
        bc_n += 1;
    }
    let mut nm_total = 0usize;
    let mut nm_n = 0usize;
    for id in [1u16, 3, 10, 14, 41, 47, 60, 61, 64, 67, 71, 73, 100, 107, 120, 136, 141, 154] {
        nm_total += explorer.explore(InstrUnderTest::Native(NativeMethodId(id))).paths.len();
        nm_n += 1;
    }
    let bc_avg = bc_total as f64 / bc_n as f64;
    let nm_avg = nm_total as f64 / nm_n as f64;
    assert!(
        nm_avg > bc_avg * 1.5,
        "natives should have clearly more paths: bytecode {bc_avg:.1} vs native {nm_avg:.1}"
    );
}
