//! End-to-end pipeline tests spanning every crate: concolic
//! exploration → materialization → oracle → compilation → machine
//! execution → comparison → classification.

use igjit::{
    test_instruction, CompilerKind, DefectCategory, InstrUnderTest, Instruction, Isa,
    NativeMethodId, Target, Verdict,
};

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

#[test]
fn the_production_tier_agrees_on_every_stack_bytecode() {
    // Pure stack manipulation has no planted defects anywhere: the
    // whole pipeline must report agreement on every curated path, on
    // both ISAs.
    for instr in [
        Instruction::PushReceiver,
        Instruction::PushTrue,
        Instruction::PushFalse,
        Instruction::PushNil,
        Instruction::PushZero,
        Instruction::PushOne,
        Instruction::PushMinusOne,
        Instruction::PushTwo,
        Instruction::PushInteger(-5),
        Instruction::Dup,
        Instruction::Pop,
        Instruction::Nop,
        Instruction::PushTemp(0),
        Instruction::PushTemp(3),
        Instruction::StoreTemp(1),
        Instruction::PopIntoTemp(0),
        Instruction::PushLiteralConstant(0),
        Instruction::IdentityEqual,
        Instruction::ReturnReceiver,
        Instruction::ReturnTrue,
        Instruction::ReturnTop,
        Instruction::ShortJumpForward(4),
        Instruction::ShortJumpTrue(2),
        Instruction::LongJumpFalse(9),
    ] {
        let o = test_instruction(
            InstrUnderTest::Bytecode(instr),
            Target::Bytecode(CompilerKind::StackToRegister),
            &BOTH,
            true,
        );
        assert_eq!(
            o.difference_count(),
            0,
            "{instr:?} must agree everywhere: {:#?}",
            o.verdicts
                .iter()
                .filter(|v| v.verdict.is_difference())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn receiver_variable_bytecodes_agree_including_side_effects() {
    for instr in [
        Instruction::PushReceiverVariable(0),
        Instruction::PushReceiverVariable(2),
        Instruction::PopIntoReceiverVariable(1),
        Instruction::StoreReceiverVariableLong(0),
    ] {
        for kind in CompilerKind::ALL {
            let o = test_instruction(
                InstrUnderTest::Bytecode(instr),
                Target::Bytecode(kind),
                &BOTH,
                false,
            );
            assert_eq!(o.difference_count(), 0, "{instr:?} {kind:?}");
        }
    }
}

#[test]
fn int_arithmetic_agrees_on_register_tiers() {
    // With static type prediction on, integer fast paths agree; only
    // the interpreter-inlined float paths may differ.
    for instr in [
        Instruction::Add,
        Instruction::Subtract,
        Instruction::Multiply,
        Instruction::Modulo,
        Instruction::IntegerDivide,
        Instruction::BitAnd,
        Instruction::BitOr,
        Instruction::BitShift,
    ] {
        for kind in [CompilerKind::StackToRegister, CompilerKind::RegisterAllocating] {
            let o = test_instruction(
                InstrUnderTest::Bytecode(instr),
                Target::Bytecode(kind),
                &BOTH,
                true,
            );
            for v in &o.verdicts {
                if let Verdict::Difference(_) = v.verdict {
                    let cat = v.cause.as_ref().unwrap().category;
                    assert_eq!(
                        cat,
                        DefectCategory::OptimisationDifference,
                        "{instr:?} {kind:?}: only the optimisation gap may differ: {:?}",
                        v
                    );
                }
            }
        }
    }
}

#[test]
fn correct_native_methods_agree_on_both_isas() {
    // Primitives with no planted defect must agree on every curated
    // path, even under aggressive probing.
    for id in [
        1u16, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, // SmallInteger arith except quo
        60, 61, 62, 63, 64, 65, 66, 67, 70, 71, 72, 73, 76, 77, 78, 79, 80,
    ] {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(id)),
            Target::NativeMethods,
            &BOTH,
            true,
        );
        assert_eq!(
            o.difference_count(),
            0,
            "primitive {id} must agree: {:#?}",
            o.verdicts
                .iter()
                .filter(|v| v.verdict.is_difference())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_planted_defect_family_is_found() {
    use std::collections::BTreeSet;
    let mut found: BTreeSet<DefectCategory> = BTreeSet::new();
    // One representative per family.
    for id in [40u16, 41, 14, 13, 120, 52] {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(id)),
            Target::NativeMethods,
            &BOTH,
            true,
        );
        for c in o.causes() {
            found.insert(c.category);
        }
    }
    let o = test_instruction(
        InstrUnderTest::Bytecode(Instruction::Add),
        Target::Bytecode(CompilerKind::SimpleStackBased),
        &BOTH,
        false,
    );
    for c in o.causes() {
        found.insert(c.category);
    }
    for cat in DefectCategory::ALL {
        assert!(found.contains(&cat), "{cat:?} not rediscovered; found {found:?}");
    }
}

#[test]
fn simple_tier_differs_strictly_more_than_register_tiers() {
    // The Table 2 ordering: SimpleStack (no type prediction) diverges
    // on int fast paths too.
    let mut counts = Vec::new();
    for kind in CompilerKind::ALL {
        let mut n = 0;
        for instr in [Instruction::Add, Instruction::LessThan, Instruction::Multiply] {
            let o = test_instruction(
                InstrUnderTest::Bytecode(instr),
                Target::Bytecode(kind),
                &BOTH,
                false,
            );
            n += o.difference_count();
        }
        counts.push((kind, n));
    }
    let simple = counts[0].1;
    let s2r = counts[1].1;
    let alloc = counts[2].1;
    assert!(simple > s2r, "{counts:?}");
    assert_eq!(s2r, alloc, "{counts:?}");
}
