//! Engine v8 invariants: the predecoded interpreter pipeline must be
//! invisible in every campaign output. Table 2 rows, Table 3 cause
//! sets and per-path verdicts are byte-identical with
//! `interp_predecode` on and off — on both rows, combined with the
//! other performance knobs, and under an armed mutant (predecoding
//! must not mask a planted defect by changing how the oracle sees it).

use igjit::{Campaign, CampaignConfig, CampaignReport, CompilerKind, FaultInjector, Instruction,
            Isa};

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

fn bytecode_config(interp_predecode: bool) -> CampaignConfig {
    CampaignConfig {
        isas: vec![Isa::X86ish],
        probes: false,
        threads: 1,
        interp_predecode,
        ..CampaignConfig::default()
    }
}

#[test]
fn bytecode_row_is_identical_with_interp_predecode_on_and_off() {
    // The whole-catalog bytecode row: the predecoded single-step
    // oracle consumes the instruction from the cached encoded-and-
    // redecoded program view, so any encode/decode drift would show
    // up here as a verdict change.
    let _off = FaultInjector::pinned_off();
    let run = |interp_predecode: bool| {
        Campaign::new(bytecode_config(interp_predecode))
            .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn native_row_is_identical_with_interp_predecode_on_and_off() {
    // Native methods run through `run_method_with`, where predecoding
    // actually changes the fetch loop (dense step array + fused
    // pairs). The probe pass is on so the kind-probe re-solve paths
    // are covered too.
    let _off = FaultInjector::pinned_off();
    let run = |interp_predecode: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: true,
            threads: 1,
            interp_predecode,
            ..CampaignConfig::default()
        })
        .run_native_methods()
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn bytecode_row_is_identical_with_predecode_stacked_on_other_knobs() {
    // The knob must compose: flipping interp_predecode under the full
    // performance stack (code cache, heap snapshots, machine-side
    // predecode, family sharing) changes nothing either.
    let _off = FaultInjector::pinned_off();
    let run = |interp_predecode: bool| {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            code_cache: true,
            heap_snapshot: true,
            predecode: true,
            family_share: true,
            interp_predecode,
            ..CampaignConfig::default()
        })
        .run_bytecodes(CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_row_identical(&on, &off);
}

#[test]
fn armed_mutant_verdicts_do_not_depend_on_interp_predecode() {
    // A killable mutant must look exactly as dead with the predecoded
    // oracle as with the historical fetch loop: same difference
    // counts, same verdicts. Otherwise predecoding could mask (or
    // fabricate) kills and corrupt the mutation-campaign scores.
    let run = |interp_predecode: bool| {
        let _armed = FaultInjector::arm(igjit::mutate::ops::FLIP_COMPARE_COND).unwrap();
        Campaign::new(bytecode_config(interp_predecode))
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    let (on, off) = (run(true), run(false));
    assert_eq!(on.paths_found, off.paths_found);
    assert_eq!(on.curated, off.curated);
    assert_eq!(on.difference_count(), off.difference_count());
    assert_eq!(on.causes(), off.causes());
    // And the mutant still visibly diverges from a disarmed run, so
    // the comparison above is not vacuous.
    let baseline = {
        let _off = FaultInjector::pinned_off();
        Campaign::new(bytecode_config(true))
            .test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister)
    };
    assert_ne!(baseline.difference_count(), on.difference_count(),
               "flipped comparisons must diverge from the interpreter");
}
