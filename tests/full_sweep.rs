//! Full-catalog sweeps: every bytecode and every native method goes
//! through the complete differential pipeline, and the observed
//! defect surface must be exactly the planted one — nothing missing,
//! nothing extra.

use igjit::{
    instruction_catalog, native_catalog, test_instruction, CompilerKind, DefectCategory,
    InstrUnderTest, Isa, NativeGroup, Target,
};

#[test]
fn every_bytecode_diverges_only_by_optimisation() {
    for spec in instruction_catalog() {
        let o = test_instruction(
            InstrUnderTest::Bytecode(spec.instruction),
            Target::Bytecode(CompilerKind::StackToRegister),
            &[Isa::X86ish],
            false,
        );
        for c in o.causes() {
            assert_eq!(
                c.category,
                DefectCategory::OptimisationDifference,
                "{:?} exposed an unplanted defect: {c:?}",
                spec.instruction
            );
        }
    }
}

#[test]
fn every_native_method_matches_its_planted_defects() {
    for spec in native_catalog() {
        let o = test_instruction(
            InstrUnderTest::Native(spec.id),
            Target::NativeMethods,
            &[Isa::X86ish],
            true,
        );
        let cats: Vec<DefectCategory> =
            o.causes().iter().map(|c| c.category).collect();
        match spec.id.0 {
            // Bitwise + quo: behavioural differences only.
            13..=17 => {
                assert!(
                    cats.iter().all(|c| *c == DefectCategory::BehaviouralDifference),
                    "{}: {cats:?}",
                    spec.name
                );
                assert!(!cats.is_empty(), "{} should diverge", spec.name);
            }
            // asFloat: the interpreter-side missing check.
            40 => {
                assert_eq!(
                    cats,
                    vec![DefectCategory::MissingInterpreterTypeCheck],
                    "{}",
                    spec.name
                );
            }
            // Float primitives: compiled-side missing checks; 52/53
            // may also (or instead) trip the simulation error.
            41..=51 => {
                assert!(
                    cats.contains(&DefectCategory::MissingCompiledTypeCheck),
                    "{}: {cats:?}",
                    spec.name
                );
            }
            52 | 53 => {
                assert!(
                    cats.contains(&DefectCategory::SimulationError)
                        || cats.contains(&DefectCategory::MissingCompiledTypeCheck),
                    "{}: {cats:?}",
                    spec.name
                );
            }
            // FFI: missing functionality, and nothing else.
            100..=159 => {
                assert_eq!(spec.group, NativeGroup::Ffi);
                assert!(
                    cats.iter().all(|c| *c == DefectCategory::MissingFunctionality),
                    "{}: {cats:?}",
                    spec.name
                );
                assert!(!cats.is_empty(), "{} must be refused", spec.name);
            }
            // Everything else is defect-free and must agree everywhere.
            _ => {
                assert!(
                    cats.is_empty(),
                    "{} (id {}) exposed an unplanted defect: {cats:?}",
                    spec.name,
                    spec.id.0
                );
            }
        }
    }
}
