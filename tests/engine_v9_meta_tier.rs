//! Engine v9 invariants: the meta-compiled tier (#5) is purely
//! additive. Switching `meta_tier` on appends one Table 2 row and
//! changes nothing else — the native row and the three hand-written
//! bytecode tiers are byte-identical with the knob on and off, at any
//! thread count. The meta row itself must actually exercise the
//! partial evaluator: most of the catalog meta-compiles, the rest
//! trampolines (the tier is total either way).

use igjit::{instruction_catalog, Campaign, CampaignConfig, CampaignReport, FaultInjector, Isa};

fn assert_row_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.row, b.row);
    assert_eq!(a.causes(), b.causes());
    assert_eq!(a.causes_by_category(), b.causes_by_category());
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.causes(), y.causes());
        assert_eq!(x.paths_found, y.paths_found);
        assert_eq!(x.curated, y.curated);
        assert_eq!(x.witness_errors, y.witness_errors);
        assert_eq!(x.oracle_panics, y.oracle_panics);
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (va, vb) in x.verdicts.iter().zip(&y.verdicts) {
            assert_eq!(va.interp_exit, vb.interp_exit);
            assert_eq!(va.verdict.is_difference(), vb.verdict.is_difference());
            assert_eq!(va.cause, vb.cause);
            assert_eq!(va.found_by_probe, vb.found_by_probe);
            assert_eq!(va.isa, vb.isa);
        }
    }
}

fn config(meta_tier: bool, threads: usize) -> CampaignConfig {
    CampaignConfig {
        isas: vec![Isa::X86ish],
        probes: false,
        threads,
        meta_tier,
        ..CampaignConfig::default()
    }
}

#[test]
fn tiers_one_to_four_are_identical_with_meta_tier_on_and_off() {
    let _off = FaultInjector::pinned_off();
    let on = Campaign::new(config(true, 1)).run_all();
    let off = Campaign::new(config(false, 1)).run_all();
    assert_eq!(on.len(), 5, "meta tier on appends a fifth row");
    assert_eq!(off.len(), 4, "meta tier off is the engine-v8 table");
    for (a, b) in on.iter().zip(&off) {
        assert_row_identical(a, b);
        // The hand-written tiers never touch the evaluator.
        assert_eq!(a.row.meta_compiled_runs, 0, "{}", a.row.label);
        assert_eq!(a.row.meta_trampolines, 0, "{}", a.row.label);
    }

    // The appended row is the meta tier, it covers the whole catalog,
    // and the partial evaluator — not the trampoline — carries it.
    let meta = &on[4];
    assert_eq!(meta.row.label, "Meta-Compiled (tier 5)");
    assert_eq!(meta.row.tested_instructions, instruction_catalog().len());
    assert!(meta.row.meta_compiled_runs > 0);
    assert!(
        meta.row.meta_coverage() >= 0.6,
        "meta tier must fully compile >= 60% of the catalog, got {:.1}% \
         ({} of {} instructions; {} compiled runs, {} trampolined)",
        100.0 * meta.row.meta_coverage(),
        meta.row.meta_full_instructions,
        meta.row.tested_instructions,
        meta.row.meta_compiled_runs,
        meta.row.meta_trampolines,
    );
}

#[test]
fn meta_tier_table_is_identical_at_any_thread_count() {
    let _off = FaultInjector::pinned_off();
    let seq = Campaign::new(config(true, 1)).run_all();
    let par = Campaign::new(config(true, 4)).run_all();
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_row_identical(a, b);
    }
}
