//! Umbrella package for the reproduction's runnable examples and
//! cross-crate integration tests. The library surface lives in the
//! [`igjit`] crate; see the README and DESIGN.md for the map.

pub use igjit;

pub mod harness {
    //! Shared differential harness for the integration-test suites:
    //! run one instruction on the interpreter and on a compiler tier
    //! with the same concrete operand stack, and assert behavioural
    //! agreement. Used by `tests/property_differential.rs` (random
    //! operands) and `tests/regression_seeds.rs` (pinned proptest
    //! counterexample seeds).

    use igjit_bytecode::Instruction;
    use igjit_difftest::{run_compiled_bytecode, CompiledRun, EngineExit, SelectorId};
    use igjit_heap::{ObjectMemory, Oop};
    use igjit_interp::{step, ConcreteContext, Frame, MethodInfo, Selector, StepOutcome};
    use igjit_jit::CompilerKind;
    use igjit_machine::Isa;

    /// Runs one interpreter step of `instr` over `stack` and maps the
    /// outcome onto the difftest exit vocabulary.
    pub fn interp_exit(instr: Instruction, stack: &[Oop]) -> (EngineExit, ObjectMemory) {
        let mut mem = ObjectMemory::new();
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        frame.stack = stack.to_vec();
        let mut ctx = ConcreteContext::new(&mut mem);
        let exit = match step(&mut ctx, &mut frame, instr) {
            StepOutcome::Continue => EngineExit::Success {
                stack: frame.stack.clone(),
                temps: frame.temps.clone(),
                result: None,
            },
            StepOutcome::Jump { .. } => EngineExit::JumpTaken,
            StepOutcome::MethodReturn { value } => EngineExit::Return { value },
            StepOutcome::MessageSend { selector, receiver, args } => EngineExit::Send {
                selector: match selector {
                    Selector::Special(s) => SelectorId::Special(s),
                    Selector::MustBeBoolean => SelectorId::MustBeBoolean,
                    Selector::Literal(v) => SelectorId::Literal(v),
                },
                receiver,
                args,
            },
            StepOutcome::InvalidFrame => EngineExit::InvalidFrame,
            StepOutcome::InvalidMemoryAccess => EngineExit::InvalidMemory,
            StepOutcome::Unsupported { reason } => EngineExit::EngineError(reason.into()),
        };
        (exit, mem)
    }

    /// Runs `instr` on both engines with the given operand stack and
    /// asserts behavioural agreement.
    pub fn assert_agreement(instr: Instruction, operands: &[i64], kind: CompilerKind, isa: Isa) {
        let stack: Vec<Oop> = operands.iter().map(|&v| Oop::from_small_int(v)).collect();
        let (iexit, _imem) = interp_exit(instr, &stack);

        let mem = ObjectMemory::new();
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        frame.stack = stack.clone();
        let arity = (instr.stack_arity() as usize).saturating_sub(1);
        let (compiled, _cmem) = run_compiled_bytecode(kind, isa, instr, &frame, mem, arity);
        let cexit = match compiled {
            CompiledRun::Ran(e) => e,
            CompiledRun::Refused(e) => panic!("{instr:?} refused: {e}"),
        };

        match (&iexit, &cexit) {
            (
                EngineExit::Success { stack: s1, .. },
                EngineExit::Success { stack: s2, .. },
            ) => {
                assert_eq!(s1, s2, "{instr:?} {operands:?} on {kind:?}/{isa:?}");
            }
            (
                EngineExit::Send { selector: a, receiver: r1, args: g1, .. },
                EngineExit::Send { selector: b, receiver: r2, args: g2, .. },
            ) => {
                assert_eq!(a, b, "{instr:?} {operands:?}: selectors");
                assert_eq!(r1, r2, "{instr:?} {operands:?}: send receivers");
                let n = g1.len().min(g2.len());
                assert_eq!(&g1[..n], &g2[..n], "{instr:?} {operands:?}: send args");
            }
            (i, c) => panic!("{instr:?} {operands:?} on {kind:?}/{isa:?}: {i:?} vs {c:?}"),
        }
    }
}
