//! Umbrella package for the reproduction's runnable examples and
//! cross-crate integration tests. The library surface lives in the
//! [`igjit`] crate; see the README and DESIGN.md for the map.

pub use igjit;
