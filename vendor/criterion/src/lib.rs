//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Provides just enough API for this workspace's `harness = false`
//! benches to build and run: groups, `sample_size`, `bench_function`
//! and `Bencher::iter`. Timing is a plain mean over `sample_size`
//! samples — adequate for eyeballing relative cost, without real
//! criterion's outlier analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(t0.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!("{label:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
