//! Minimal, deterministic, offline stand-in for the `rand` crate
//! (0.8-era API). Implements only what the workspace's fuzzers use:
//! `StdRng::seed_from_u64` and `gen_range` over integer ranges.
//!
//! The generator is splitmix64 — statistically fine for drawing fuzz
//! inputs, not for anything security-relevant. Sequences differ from
//! real rand's `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on determinism-per-seed, not on the exact
//! stream.

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Seeding entry point (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges `gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn draw_in<R: RngCore + ?Sized>(rng: &mut R, lo: i128, hi_inclusive: i128) -> i128 {
    debug_assert!(lo <= hi_inclusive, "gen_range called with an empty range");
    let span = (hi_inclusive - lo) as u128 + 1;
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    lo + (wide % span) as i128
}

macro_rules! sample_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                draw_in(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                draw_in(rng, *self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

sample_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(2..=5);
            assert_eq!(x, b.gen_range(2..=5));
            assert!((2..=5).contains(&x));
            let y = a.gen_range(0usize..7);
            assert_eq!(y, b.gen_range(0usize..7));
            assert!(y < 7);
        }
    }
}
