//! Minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a small slice of proptest's API;
//! this shim implements exactly that slice so the suite builds and runs
//! without network access. Differences from real proptest:
//!
//! - **No shrinking.** A failing case reports its case number; the RNG
//!   is seeded from the test's module path + name, so every run of a
//!   given test replays the same case sequence.
//! - **No persistence.** `*.proptest-regressions` files are ignored
//!   (their historically-failing inputs are pinned as named unit tests
//!   in `tests/regression_seeds.rs` instead).
//! - `prop_assert*` panic immediately rather than returning `Err`.

use std::marker::PhantomData;
use std::rc::Rc;

/// Deterministic 64-bit RNG (splitmix64) backing every strategy.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, full-period, plenty for test-case generation.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let r = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + r as i128
    }
}

/// FNV-1a over the test's full path: a stable seed per test function.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply-clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` support: uniform choice between boxed alternatives.
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` support.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// `proptest::collection::vec`: a vector whose length is drawn
    /// from `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed =
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::TestRng::new(__seed);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {} (seed {:#x}); \
                         cases replay deterministically",
                        stringify!($name), __case, __seed,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, OneOf, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (0u8..3).generate(&mut rng);
            assert!(w < 3);
            let x = (i64::MIN..=i64::MAX).generate(&mut rng);
            let _ = x;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(a in 0i64..10, b in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b == 1 || b == 2);
        }
    }
}
