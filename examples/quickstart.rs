//! Quickstart: differentially test one bytecode instruction and one
//! native method, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use igjit::{Campaign, CampaignConfig, CompilerKind, Instruction, Isa, NativeMethodId, Verdict};

fn main() {
    // The paper's setup: both ISAs, kind probing on.
    let campaign = Campaign::new(CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: 1,
        code_cache: true,
        heap_snapshot: true,
        predecode: true,
        ..CampaignConfig::default()
    });

    // 1. The guiding example: the add bytecode (Listing 1 / Fig. 2).
    //    Concolic exploration of the *interpreter* discovers its paths;
    //    each is compiled with the production StackToRegister tier and
    //    compared.
    println!("== add bytecode vs StackToRegisterCogit ==");
    let outcome =
        campaign.test_bytecode_instruction(Instruction::Add, CompilerKind::StackToRegister);
    println!(
        "paths: {} found, {} curated, {} differing",
        outcome.paths_found,
        outcome.curated,
        outcome.difference_count()
    );
    for v in &outcome.verdicts {
        match &v.verdict {
            Verdict::Agree => {}
            Verdict::Difference(d) => {
                println!(
                    "  DIFFERENCE on a {} path: {} [{}]",
                    v.interp_exit,
                    d.detail,
                    v.cause.as_ref().map(|c| c.category.name()).unwrap_or("?")
                );
            }
        }
    }

    // 2. A native method with a planted compiled-side defect: the
    //    float addition primitive forgets its receiver type check.
    println!("\n== primitiveFloatAdd vs the template compiler ==");
    let outcome = campaign.test_native_method(NativeMethodId(41));
    println!(
        "paths: {} found, {} curated, {} differing",
        outcome.paths_found,
        outcome.curated,
        outcome.difference_count()
    );
    for v in &outcome.verdicts {
        if let Verdict::Difference(d) = &v.verdict {
            println!(
                "  DIFFERENCE on a {} path{}: {}",
                v.interp_exit,
                if v.found_by_probe { " (found by kind probing)" } else { "" },
                d.detail
            );
        }
    }

    // 3. The famous Listing 5 defect: primitiveAsFloat misses its
    //    receiver check in the *interpreter*.
    println!("\n== primitiveAsFloat (Listing 5) ==");
    let outcome = campaign.test_native_method(NativeMethodId(40));
    for v in &outcome.verdicts {
        if let Verdict::Difference(d) = &v.verdict {
            println!(
                "  the interpreter happily coerces a pointer: {} [{}]",
                d.detail,
                v.cause.as_ref().map(|c| c.category.name()).unwrap_or("?")
            );
        }
    }
}
