//! Cross-ISA demonstration: compile the same instruction test for the
//! two synthetic ISAs, disassemble-ish both code streams, run both on
//! the simulator, and check they behave identically — the §5.1
//! evaluation matrix in miniature.
//!
//! ```sh
//! cargo run --example cross_isa
//! ```

use igjit::{CompilerKind, Instruction, Isa};
use igjit_heap::{ObjectMemory, Oop};
use igjit_jit::{compile_bytecode_test, BytecodeTestInput, Convention};
use igjit_machine::{decode_instr, Machine, MachineConfig};

fn main() {
    let mem = ObjectMemory::new();
    let stack = [Oop::from_small_int(20), Oop::from_small_int(22)];
    let input = BytecodeTestInput {
        instruction: Instruction::Add,
        operand_stack: &stack,
        temps: &[],
        literals: &[],
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };

    for isa in [Isa::X86ish, Isa::Arm32ish] {
        println!("== {} back-end ==", isa.name());
        let compiled =
            compile_bytecode_test(CompilerKind::StackToRegister, &input, isa).unwrap();
        println!(
            "{} bytes of machine code ({}-address ALU, {} registers)",
            compiled.code.len(),
            if isa.two_address() { "two" } else { "three" },
            isa.reg_count()
        );

        // A primitive disassembler: decode and print each instruction.
        let mut pc = 0;
        let mut count = 0;
        while pc < compiled.code.len() && count < 14 {
            match decode_instr(&compiled.code, pc, isa) {
                Some((instr, len)) => {
                    println!("  {pc:>4}: {instr:?}");
                    pc += len;
                    count += 1;
                }
                None => break,
            }
        }
        if pc < compiled.code.len() {
            println!("  … ({} more bytes)", compiled.code.len() - pc);
        }

        // Execute.
        let mut mem = ObjectMemory::new();
        let conv = Convention::for_isa(isa);
        let mut m = Machine::new(&mut mem, isa, &compiled.code);
        m.set_reg(conv.receiver, Oop::from_small_int(0).0);
        let outcome = m.run(MachineConfig::default());
        let sp = m.reg(conv.sp);
        let top = m.read_stack(sp).map(Oop).ok();
        println!("  outcome: {outcome:?}");
        println!(
            "  operand stack top: {:?} (expected SmallInt(42))\n",
            top.unwrap()
        );
        assert_eq!(top.unwrap(), Oop::from_small_int(42));
    }
    println!("both ISAs computed 20 + 22 = 42 through genuinely different encodings");
}
