//! The interpreter as a working VM: install methods in an image and
//! send messages — recursive Fibonacci through real dispatched sends,
//! with the optimised arithmetic bytecodes' slow paths landing in
//! image-level methods.
//!
//! ```sh
//! cargo run --example mini_image
//! ```

use igjit::{ClassIndex, Instruction, Oop};
use igjit_interp::Image;

fn si(v: i64) -> Oop {
    Oop::from_small_int(v)
}

fn main() {
    let mut image = Image::new();

    // SmallInteger >> #fib
    //   self < 2 ifTrue: [^self].
    //   ^(self - 1) fib + (self - 2) fib
    let fib = image.intern("fib");
    image.install_method(ClassIndex::SMALL_INTEGER, "fib", 0, 0, |b, _| {
        let lit = b.add_literal(fib);
        b.emit(Instruction::PushReceiver);
        b.emit(Instruction::PushTwo);
        b.emit(Instruction::LessThan);
        b.emit(Instruction::ShortJumpFalse(1));
        b.emit(Instruction::ReturnReceiver);
        b.emit(Instruction::PushReceiver);
        b.emit(Instruction::PushOne);
        b.emit(Instruction::Subtract);
        b.emit(Instruction::Send { lit, nargs: 0 });
        b.emit(Instruction::PushReceiver);
        b.emit(Instruction::PushTwo);
        b.emit(Instruction::Subtract);
        b.emit(Instruction::Send { lit, nargs: 0 });
        b.emit(Instruction::Add);
        b.emit(Instruction::ReturnTop);
    });

    println!("SmallInteger >> #fib installed; sending…");
    for n in [1i64, 5, 10, 15, 20] {
        let r = image.send(si(n), "fib", &[]).unwrap();
        println!("  {n} fib = {}", r.small_int_value());
    }

    // Array >> #sum — loops, temps, the at: quick path.
    image.install_method(ClassIndex::ARRAY, "sum", 0, 2, |b, _| {
        b.emit(Instruction::PushZero);
        b.emit(Instruction::PopIntoTemp(0));
        b.emit(Instruction::PushOne);
        b.emit(Instruction::PopIntoTemp(1));
        // loop (pc 4)
        b.emit(Instruction::PushTemp(1));
        b.emit(Instruction::PushReceiver);
        b.emit(Instruction::SpecialSendSize);
        b.emit(Instruction::GreaterThan);
        b.emit(Instruction::ShortJumpFalse(2));
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::ReturnTop);
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::PushReceiver);
        b.emit(Instruction::PushTemp(1));
        b.emit(Instruction::SpecialSendAt);
        b.emit(Instruction::Add);
        b.emit(Instruction::PopIntoTemp(0));
        b.emit(Instruction::PushTemp(1));
        b.emit(Instruction::PushOne);
        b.emit(Instruction::Add);
        b.emit(Instruction::PopIntoTemp(1));
        b.emit(Instruction::LongJumpForward(-19)); // back to the loop head at pc 4
    });

    let arr = image
        .mem
        .instantiate_array(&[si(10), si(20), si(12)])
        .unwrap();
    let total = image.send(arr, "sum", &[]).unwrap();
    println!("#(10 20 12) sum = {}", total.small_int_value());
    assert_eq!(total, si(42));
}
