//! Defect hunt: run the full native-method campaign (the biggest row
//! of Table 2) and print every defect cause it uncovers, organized by
//! the six Table 3 families.
//!
//! ```sh
//! cargo run --release --example hunt_defects
//! ```

use std::collections::BTreeMap;

use igjit::{Campaign, CampaignConfig, DefectCategory, Isa, Verdict};

fn main() {
    let campaign = Campaign::new(CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: 4,
        code_cache: true,
        heap_snapshot: true,
        predecode: true,
        ..CampaignConfig::default()
    });

    eprintln!("differentially testing all 112 native methods on 2 ISAs…");
    let report = campaign.run_native_methods();

    println!(
        "\n{} instructions, {} interpreter paths, {} curated, {} differing ({:.2}%)\n",
        report.row.tested_instructions,
        report.row.interpreter_paths,
        report.row.curated_paths,
        report.row.differences,
        report.row.difference_percent()
    );

    // Group causes by family.
    let mut by_family: BTreeMap<DefectCategory, Vec<String>> = BTreeMap::new();
    for cause in report.causes() {
        by_family.entry(cause.category).or_default().push(cause.instruction.into_owned());
    }
    for (family, mut members) in by_family {
        members.sort();
        members.dedup();
        println!("{} ({} causes):", family.name(), members.len());
        for m in members {
            println!("    {m}");
        }
        println!();
    }

    // Show a couple of concrete failing scenarios.
    println!("sample failing scenarios:");
    let mut shown = 0;
    for outcome in &report.outcomes {
        for v in &outcome.verdicts {
            if let Verdict::Difference(d) = &v.verdict {
                println!(
                    "  {:?} [{} path]: {}",
                    outcome.instruction, v.interp_exit, d.detail
                );
                shown += 1;
                break;
            }
        }
        if shown >= 8 {
            break;
        }
    }
}
