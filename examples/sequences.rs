//! The future-work extension in action: concolic exploration and
//! differential testing of bytecode *sequences*, plus derivation of
//! minimal standalone test sequences from explored paths.
//!
//! ```sh
//! cargo run --example sequences
//! ```

use igjit::{CompilerKind, Explorer, InstrUnderTest, Instruction, Isa, Verdict};
use igjit_difftest::{minimal_sequence_for_path, test_sequence};

fn main() {
    // 1. Explore a chained computation: (s1 + s2) * s3 compared to 100.
    let seq = [
        Instruction::Add,
        Instruction::Multiply,
        Instruction::PushInteger(100),
        Instruction::LessThan,
    ];
    println!("== concolic exploration of {seq:?} ==");
    let r = Explorer::new().explore_sequence(&seq).expect("non-empty sequence");
    println!(
        "{} paths ({} curated) across the chained branch structure",
        r.paths.len(),
        r.curated_paths().len()
    );
    for (i, p) in r.paths.iter().enumerate().take(6) {
        println!("  path {i}: {:?}", p.outcome);
    }

    // 2. Differentially test the sequence on the production tier.
    println!("\n== differential test vs StackToRegister (both ISAs) ==");
    let o = test_sequence(&seq, CompilerKind::StackToRegister, &[Isa::X86ish, Isa::Arm32ish]);
    println!(
        "{} paths, {} differ",
        o.paths_found,
        o.difference_count()
    );
    for v in &o.verdicts {
        if let Verdict::Difference(d) = &v.verdict {
            println!(
                "  difference [{}]: {}",
                v.cause.as_ref().map(|c| c.category.name()).unwrap_or("?"),
                d.detail
            );
        }
    }

    // 3. Derive minimal standalone sequences from single-instruction
    //    paths: materialized operands become real push bytecodes.
    println!("\n== minimal sequences derived from the Add exploration ==");
    let add = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
    for p in add.curated_paths() {
        if let Some(seq) = minimal_sequence_for_path(&add.state, &p.model, Instruction::Add)
        {
            println!("  {:?}  // expected: {:?}", seq, p.outcome);
        }
    }
}
