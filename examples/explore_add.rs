//! Reproduces Table 1 and Figure 2 of the paper: the concolic
//! exploration of the add bytecode, printing for each path execution
//! the abstract input frame, the recorded constraint path, and the
//! exit condition.
//!
//! ```sh
//! cargo run --example explore_add
//! ```

use igjit::{Explorer, InstrUnderTest, Instruction, PathOutcome};
use igjit_solver::Constraint;

fn describe_constraint(c: &Constraint) -> String {
    match c {
        Constraint::Kind { var, allowed } => {
            if allowed.len() == 1 {
                format!("kindOf(v{}) = {:?}", var.0, allowed.first().unwrap())
            } else if allowed.complement().len() == 1 {
                format!(
                    "kindOf(v{}) != {:?}",
                    var.0,
                    allowed.complement().first().unwrap()
                )
            } else {
                format!("kindOf(v{}) in {allowed:?}", var.0)
            }
        }
        Constraint::Int(op, l, r) => format!("{l:?} {op:?} {r:?}"),
        Constraint::And(cs) => {
            let parts: Vec<_> = cs.iter().map(describe_constraint).collect();
            format!("({})", parts.join(" AND "))
        }
        Constraint::Or(cs) => {
            let parts: Vec<_> = cs.iter().map(describe_constraint).collect();
            format!("({})", parts.join(" OR "))
        }
        other => format!("{other:?}"),
    }
}

fn main() {
    println!("Concolic exploration of the add bytecode (Listing 1 / Table 1 / Fig. 2)\n");
    let result = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));

    for (i, path) in result.paths.iter().enumerate() {
        println!("-- concolic execution #{} --------------------------", i + 1);
        // Abstract input frame (Fig. 2's top row).
        let size = path.model.int_value(result.state.stack_size).clamp(0, 8);
        println!("  abstract input frame:");
        println!("    receiver = ?   method = ?");
        if size == 0 {
            println!("    operand stack: (empty)");
        } else {
            for d in 0..size as usize {
                if let Some(&v) = result.state.stack_vars.get(d) {
                    let a = path.model.assignment(v);
                    let shown = match a.kind {
                        igjit_solver::Kind::SmallInt => format!("small int {}", a.int),
                        igjit_solver::Kind::Float => format!("float {}", a.float),
                        k => format!("{k:?}"),
                    };
                    println!("    s{} = {shown}", d + 1);
                }
            }
        }
        // Recorded constraint path.
        println!("  recorded constraint path:");
        for c in &path.constraints {
            println!("    {}", describe_constraint(c));
        }
        // Exit condition (Fig. 2's bottom row).
        let exit = match &path.outcome {
            PathOutcome::Success => "success".to_string(),
            PathOutcome::MessageSend(s) => format!(
                "failure -> message send {}",
                s.special.map(|s| s.name()).unwrap_or("?")
            ),
            PathOutcome::InvalidFrame => "invalid frame".to_string(),
            other => format!("{other:?}"),
        };
        println!("  exit: {exit}\n");
    }
    println!(
        "{} paths total, {} curated, in {} solver/execute iterations",
        result.paths.len(),
        result.curated_paths().len(),
        result.iterations
    );
}
