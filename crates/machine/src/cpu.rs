//! The CPU simulator.

use igjit_heap::{ClassIndex, ObjectFormat, ObjectMemory};

use crate::encoding::decode_instr;
use crate::instr::{AluOp, Cond, FAluOp, FReg, Isa, MInstr, Reg, TrampolineKind};
use crate::predecode::PredecodedCode;

/// Base address of the machine stack region.
pub const STACK_BASE: u32 = 0x8000_0000;
/// Size of the machine stack region in bytes.
pub const STACK_BYTES: u32 = 1 << 16;
/// Base address where compiled code is mapped.
pub const CODE_BASE: u32 = 0x4000_0000;
/// The return address planted by the test setup; `Ret`-ing to it ends
/// the run ("returned to caller").
pub const RETURN_SENTINEL: u32 = 0x7fff_fff0;

/// Execution limits.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Maximum instructions executed before giving up.
    pub max_steps: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { max_steps: 100_000 }
    }
}

/// How a machine run ended.
#[derive(Clone, PartialEq, Debug)]
pub enum MachineOutcome {
    /// Compiled code returned to its caller (native-method success,
    /// or a compiled method return).
    ReturnedToCaller,
    /// A breakpoint/Stop was hit; `code` says which one.
    Breakpoint {
        /// Breakpoint id.
        code: u8,
    },
    /// Compiled code called the send trampoline.
    Send {
        /// Selector id (special-selector index, literal oop bits, or
        /// the mustBeBoolean marker).
        selector_id: u32,
    },
    /// An invalid memory access — the simulated segmentation fault.
    MemoryFault {
        /// Faulting address.
        addr: u32,
    },
    /// The invalid-access recovery needed a register setter that is
    /// missing from the reflection table (the paper's *simulation
    /// error* defect family).
    SimulationError {
        /// The register whose setter is missing.
        register: String,
    },
    /// Step budget exhausted.
    StepLimit,
    /// Undecodable instruction.
    DecodeFault {
        /// Faulting pc.
        pc: u32,
    },
}

#[derive(Clone, Copy, Default, Debug)]
struct Flags {
    zero: bool,
    neg: bool,
    ov: bool,
}

/// The register file and machine stack of a simulator run, reusable
/// across runs (engine v5's batched replay).
///
/// Allocating and zeroing the 64 KiB stack dominated per-run setup
/// when every model replay built a fresh [`Machine`]. A session is
/// allocated once and handed to [`Machine::with_session`] for each
/// run; resets zero only the *dirtied* stack extent (tracked as a
/// low-water mark of written words — the stack grows downward, so a
/// run's footprint is `[dirty_lo, top)`) plus the fixed-size register
/// files, making reset cost proportional to what the previous run
/// actually touched.
#[derive(Clone, Debug)]
pub struct MachineSession {
    /// Sized for the largest register file (Arm32ish's 16); the
    /// decoder guarantees operands stay inside the active ISA's file.
    regs: [u32; 16],
    fregs: [f64; 4],
    stack: Vec<u32>,
    /// Lowest stack word index written since the last reset;
    /// `stack.len()` when the stack is clean.
    dirty_lo: usize,
}

impl Default for MachineSession {
    fn default() -> Self {
        MachineSession::new()
    }
}

impl MachineSession {
    /// A fresh session with a zeroed stack.
    pub fn new() -> MachineSession {
        let words = (STACK_BYTES / 4) as usize;
        MachineSession {
            regs: [0; 16],
            fregs: [0.0; 4],
            stack: vec![0; words],
            dirty_lo: words,
        }
    }

    /// Restores the pristine post-construction state: registers to
    /// zero, every stack word the previous run dirtied back to zero.
    /// Words below the low-water mark were never written and are
    /// already zero, so the reset is O(previous run's footprint).
    fn reset(&mut self) {
        self.regs = [0; 16];
        self.fregs = [0.0; 4];
        for w in &mut self.stack[self.dirty_lo..] {
            *w = 0;
        }
        self.dirty_lo = self.stack.len();
    }
}

/// The session storage a machine runs on: its own (the classic
/// one-shot constructor) or a caller-provided one being recycled.
enum SessionRef<'m> {
    Owned(MachineSession),
    Borrowed(&'m mut MachineSession),
}

impl SessionRef<'_> {
    #[inline]
    fn get(&self) -> &MachineSession {
        match self {
            SessionRef::Owned(s) => s,
            SessionRef::Borrowed(s) => s,
        }
    }

    #[inline]
    fn get_mut(&mut self) -> &mut MachineSession {
        match self {
            SessionRef::Owned(s) => s,
            SessionRef::Borrowed(s) => s,
        }
    }
}

/// The simulated CPU, executing one compiled method against a shared
/// object memory.
pub struct Machine<'m> {
    mem: &'m mut ObjectMemory,
    isa: Isa,
    session: SessionRef<'m>,
    flags: Flags,
    pc: u32,
    code: &'m [u8],
    predecoded: Option<&'m PredecodedCode>,
    initial_sp: u32,
}

impl<'m> Machine<'m> {
    /// Maps `code` at [`CODE_BASE`] and prepares a fresh stack and
    /// register file. One-shot: each call allocates its own session.
    pub fn new(mem: &'m mut ObjectMemory, isa: Isa, code: &'m [u8]) -> Machine<'m> {
        Machine::build(mem, isa, code, None, SessionRef::Owned(MachineSession::new()))
    }

    /// Like [`Machine::new`], but recycling `session`'s register file
    /// and stack (reset to pristine first) instead of allocating.
    pub fn with_session(
        mem: &'m mut ObjectMemory,
        isa: Isa,
        code: &'m [u8],
        session: &'m mut MachineSession,
    ) -> Machine<'m> {
        session.reset();
        Machine::build(mem, isa, code, None, SessionRef::Borrowed(session))
    }

    /// Runs a [`PredecodedCode`] artifact on a recycled session: the
    /// fetch stage becomes an indexed lookup, falling back to the byte
    /// decoder for any pc off the predecoded boundaries, so execution
    /// is step-for-step identical to [`Machine::with_session`] on the
    /// artifact's bytes.
    pub fn with_predecoded(
        mem: &'m mut ObjectMemory,
        predecoded: &'m PredecodedCode,
        session: &'m mut MachineSession,
    ) -> Machine<'m> {
        session.reset();
        Machine::build(
            mem,
            predecoded.isa(),
            predecoded.code(),
            Some(predecoded),
            SessionRef::Borrowed(session),
        )
    }

    fn build(
        mem: &'m mut ObjectMemory,
        isa: Isa,
        code: &'m [u8],
        predecoded: Option<&'m PredecodedCode>,
        session: SessionRef<'m>,
    ) -> Machine<'m> {
        let mut m = Machine {
            mem,
            isa,
            session,
            flags: Flags::default(),
            pc: CODE_BASE,
            code,
            predecoded,
            initial_sp: 0,
        };
        let top = STACK_BASE + STACK_BYTES;
        m.set_reg(isa.sp(), top);
        // Plant the sentinel return address.
        m.push(RETURN_SENTINEL).expect("fresh stack");
        m.initial_sp = m.reg(isa.sp());
        m
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.session.get().regs[usize::from(r.0)]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.session.get_mut().regs[usize::from(r.0)] = v;
    }

    /// Reads a float register.
    pub fn freg(&self, f: FReg) -> f64 {
        self.session.get().fregs[usize::from(f.0)]
    }

    /// Writes a float register.
    pub fn set_freg(&mut self, f: FReg, v: f64) {
        self.session.get_mut().fregs[usize::from(f.0)] = v;
    }

    /// The stack pointer value right after setup (operand-stack reads
    /// are relative to this).
    pub fn initial_sp(&self) -> u32 {
        self.initial_sp
    }

    /// The object memory the machine mutates.
    pub fn memory(&mut self) -> &mut ObjectMemory {
        self.mem
    }

    /// Words currently on the machine stack between the live SP and
    /// `initial_sp` (the compiled operand stack), top first.
    pub fn operand_stack_words(&self) -> Vec<u32> {
        let sp = self.reg(self.isa.sp());
        let mut out = Vec::new();
        let mut a = sp;
        while a < self.initial_sp {
            if let Ok(w) = self.read_stack(a) {
                out.push(w);
            }
            a += 4;
        }
        out
    }

    /// Reads a stack-region word (for frame-slot inspection).
    pub fn read_stack(&self, addr: u32) -> Result<u32, u32> {
        if !addr.is_multiple_of(4) || !(STACK_BASE..STACK_BASE + STACK_BYTES).contains(&addr) {
            return Err(addr);
        }
        Ok(self.session.get().stack[((addr - STACK_BASE) / 4) as usize])
    }

    fn write_stack(&mut self, addr: u32, v: u32) -> Result<(), u32> {
        if !addr.is_multiple_of(4) || !(STACK_BASE..STACK_BASE + STACK_BYTES).contains(&addr) {
            return Err(addr);
        }
        let idx = ((addr - STACK_BASE) / 4) as usize;
        let s = self.session.get_mut();
        s.stack[idx] = v;
        if idx < s.dirty_lo {
            s.dirty_lo = idx;
        }
        Ok(())
    }

    fn read_mem(&mut self, addr: u32) -> Result<u32, u32> {
        if (STACK_BASE..STACK_BASE + STACK_BYTES).contains(&addr) {
            return self.read_stack(addr);
        }
        self.mem.read_word_raw(addr).map_err(|_| addr)
    }

    fn write_mem(&mut self, addr: u32, v: u32) -> Result<(), u32> {
        if (STACK_BASE..STACK_BASE + STACK_BYTES).contains(&addr) {
            return self.write_stack(addr, v);
        }
        self.mem.write_word_raw(addr, v).map_err(|_| addr)
    }

    fn push(&mut self, v: u32) -> Result<(), u32> {
        let sp = self.reg(self.isa.sp()).wrapping_sub(4);
        self.write_stack(sp, v)?;
        self.set_reg(self.isa.sp(), sp);
        Ok(())
    }

    fn pop(&mut self) -> Result<u32, u32> {
        let sp = self.reg(self.isa.sp());
        let v = self.read_stack(sp)?;
        self.set_reg(self.isa.sp(), sp.wrapping_add(4));
        Ok(v)
    }

    /// The register-setter reflection table used by the invalid-access
    /// recovery. Mirrors the Pharo simulation's reflective
    /// `registerSetter:` lookup — and, like it (§5.3 *simulation
    /// error*), two float-register setters were never implemented.
    fn reflective_poison_int(&mut self, r: Reg) -> Result<(), String> {
        // All integer-register setters are present.
        self.set_reg(r, 0xbad0_bad0);
        Ok(())
    }

    fn reflective_poison_float(&mut self, f: FReg) -> Result<(), String> {
        match f.0 {
            0 => {
                self.session.get_mut().fregs[0] = f64::NAN;
                Ok(())
            }
            1 => {
                self.session.get_mut().fregs[1] = f64::NAN;
                Ok(())
            }
            // setters for F2 and F3 were never implemented in the
            // simulation runtime.
            n => Err(format!("F{n}")),
        }
    }

    fn set_int_flags(&mut self, result: u32, ov: bool) {
        self.flags.zero = result == 0;
        self.flags.neg = (result as i32) < 0;
        self.flags.ov = ov;
    }

    fn cond_holds(&self, cc: Cond) -> bool {
        match cc {
            Cond::Eq => self.flags.zero,
            Cond::Ne => !self.flags.zero,
            Cond::Lt => self.flags.neg,
            Cond::Le => self.flags.neg || self.flags.zero,
            Cond::Gt => !self.flags.neg && !self.flags.zero,
            Cond::Ge => !self.flags.neg,
            Cond::Ov => self.flags.ov,
            Cond::NoOv => !self.flags.ov,
        }
    }

    fn alu(&mut self, op: AluOp, a: u32, b: u32) -> (u32, bool) {
        match op {
            AluOp::Add => {
                let (r, ov) = (a as i32).overflowing_add(b as i32);
                (r as u32, ov)
            }
            AluOp::Sub => {
                let (r, ov) = (a as i32).overflowing_sub(b as i32);
                (r as u32, ov)
            }
            AluOp::Mul => {
                let wide = i64::from(a as i32) * i64::from(b as i32);
                let r = wide as i32;
                (r as u32, i64::from(r) != wide)
            }
            AluOp::And => (a & b, false),
            AluOp::Or => (a | b, false),
            AluOp::Xor => (a ^ b, false),
            AluOp::Shl => {
                let sh = b & 31;
                let r = a.wrapping_shl(sh);
                // Overflow when shifting back does not recover `a`
                // (the tagging overflow check).
                let ov = ((r as i32) >> sh) != a as i32;
                (r, ov)
            }
            AluOp::Sar => (((a as i32) >> (b & 31)) as u32, false),
            AluOp::Shr => (a.wrapping_shr(b & 31), false),
            AluOp::Div => {
                if b as i32 == 0 {
                    (0, false)
                } else {
                    let (r, ov) = (a as i32).overflowing_div(b as i32);
                    (r as u32, ov)
                }
            }
            AluOp::Rem => {
                if b as i32 == 0 {
                    (0, false)
                } else {
                    ((a as i32).wrapping_rem(b as i32) as u32, false)
                }
            }
        }
    }

    /// Runs until a halt condition.
    pub fn run(&mut self, cfg: MachineConfig) -> MachineOutcome {
        for _ in 0..cfg.max_steps {
            let off = match self.pc.checked_sub(CODE_BASE) {
                Some(o) => o as usize,
                None => return MachineOutcome::DecodeFault { pc: self.pc },
            };
            // Fetch: indexed when the artifact is predecoded and the
            // pc sits on a decoded boundary; the byte decoder
            // otherwise (one-shot runs, mid-instruction jumps, code
            // past a decode failure) — both answer identically.
            let fetched = match self.predecoded {
                Some(pd) => pd
                    .lookup(off)
                    .or_else(|| decode_instr(self.code, off, self.isa)),
                None => decode_instr(self.code, off, self.isa),
            };
            let Some((instr, len)) = fetched else {
                return MachineOutcome::DecodeFault { pc: self.pc };
            };
            let next = self.pc + len as u32;
            self.pc = next;
            match instr {
                MInstr::MovImm { dst, imm } => self.set_reg(dst, imm),
                MInstr::MovReg { dst, src } => {
                    let v = self.reg(src);
                    self.set_reg(dst, v);
                }
                MInstr::Load { dst, base, off } => {
                    let addr = self.reg(base).wrapping_add(off as i32 as u32);
                    match self.read_mem(addr) {
                        Ok(v) => self.set_reg(dst, v),
                        Err(addr) => {
                            // Recovery: reflectively poison the
                            // destination, then report the fault.
                            return match self.reflective_poison_int(dst) {
                                Ok(()) => MachineOutcome::MemoryFault { addr },
                                Err(register) => {
                                    MachineOutcome::SimulationError { register }
                                }
                            };
                        }
                    }
                }
                MInstr::Store { src, base, off } => {
                    let addr = self.reg(base).wrapping_add(off as i32 as u32);
                    let v = self.reg(src);
                    if let Err(addr) = self.write_mem(addr, v) {
                        return MachineOutcome::MemoryFault { addr };
                    }
                }
                MInstr::Push { src } => {
                    let v = self.reg(src);
                    if let Err(addr) = self.push(v) {
                        return MachineOutcome::MemoryFault { addr };
                    }
                }
                MInstr::PopR { dst } => match self.pop() {
                    Ok(v) => self.set_reg(dst, v),
                    Err(addr) => return MachineOutcome::MemoryFault { addr },
                },
                MInstr::AluReg { op, dst, a, b } => {
                    let (va, vb) = (self.reg(a), self.reg(b));
                    let (r, ov) = self.alu(op, va, vb);
                    self.set_reg(dst, r);
                    self.set_int_flags(r, ov);
                }
                MInstr::AluImm { op, dst, a, imm } => {
                    let va = self.reg(a);
                    let (r, ov) = self.alu(op, va, imm);
                    self.set_reg(dst, r);
                    self.set_int_flags(r, ov);
                }
                MInstr::Cmp { a, b } => {
                    let (va, vb) = (self.reg(a) as i32, self.reg(b) as i32);
                    self.flags.zero = va == vb;
                    self.flags.neg = va < vb;
                    self.flags.ov = false;
                }
                MInstr::CmpImm { a, imm } => {
                    let va = self.reg(a) as i32;
                    self.flags.zero = va == imm as i32;
                    self.flags.neg = va < imm as i32;
                    self.flags.ov = false;
                }
                MInstr::Jmp { off } => {
                    self.pc = next.wrapping_add(off as u32);
                }
                MInstr::JmpCc { cc, off } => {
                    if self.cond_holds(cc) {
                        self.pc = next.wrapping_add(off as u32);
                    }
                }
                MInstr::CallTramp { kind, payload } => match kind {
                    TrampolineKind::Send => {
                        return MachineOutcome::Send { selector_id: payload };
                    }
                    TrampolineKind::AllocFloat => {
                        let r = Reg(payload as u8);
                        if r.0 >= self.isa.reg_count() {
                            // The trampoline's reflective register
                            // setter does not exist — a simulation
                            // error, not a crash.
                            return MachineOutcome::SimulationError {
                                register: format!("r{}", r.0),
                            };
                        }
                        let v = self.freg(FReg(0));
                        match self.mem.instantiate_float(v) {
                            Ok(oop) => self.set_reg(r, oop.0),
                            Err(_) => return MachineOutcome::MemoryFault { addr: 0 },
                        }
                    }
                    TrampolineKind::AllocObject => {
                        let r = Reg((payload & 0xff) as u8);
                        if r.0 >= self.isa.reg_count() {
                            return MachineOutcome::SimulationError {
                                register: format!("r{}", r.0),
                            };
                        }
                        let class = ClassIndex((payload >> 8) & 0xfff);
                        let format = ObjectFormat::from_bits((payload >> 20) & 0xf)
                            .unwrap_or(ObjectFormat::Indexable);
                        let n = self.reg(r);
                        if n > 1 << 20 {
                            return MachineOutcome::MemoryFault { addr: 0 };
                        }
                        match self.mem.allocate(class, format, n) {
                            Ok(oop) => self.set_reg(r, oop.0),
                            Err(_) => return MachineOutcome::MemoryFault { addr: 0 },
                        }
                    }
                },
                MInstr::Ret => match self.pop() {
                    Ok(addr) if addr == RETURN_SENTINEL => {
                        return MachineOutcome::ReturnedToCaller;
                    }
                    Ok(addr) => self.pc = addr,
                    Err(addr) => return MachineOutcome::MemoryFault { addr },
                },
                MInstr::Brk { code } => return MachineOutcome::Breakpoint { code },
                MInstr::FLoad { fd, base, off } => {
                    let addr = self.reg(base).wrapping_add(off as i32 as u32);
                    let lo = self.read_mem(addr);
                    let hi = self.read_mem(addr.wrapping_add(4));
                    match (lo, hi) {
                        (Ok(lo), Ok(hi)) => {
                            let bits = u64::from(lo) | (u64::from(hi) << 32);
                            self.set_freg(fd, f64::from_bits(bits));
                        }
                        _ => {
                            return match self.reflective_poison_float(fd) {
                                Ok(()) => MachineOutcome::MemoryFault { addr },
                                Err(register) => {
                                    MachineOutcome::SimulationError { register }
                                }
                            };
                        }
                    }
                }
                MInstr::FAlu { op, fd, fa, fb } => {
                    let (a, b) = (self.freg(fa), self.freg(fb));
                    let r = match op {
                        FAluOp::Add => a + b,
                        FAluOp::Sub => a - b,
                        FAluOp::Mul => a * b,
                        FAluOp::Div => a / b,
                        FAluOp::Fract => a.fract(),
                    };
                    self.set_freg(fd, r);
                }
                MInstr::FCmp { fa, fb } => {
                    let (a, b) = (self.freg(fa), self.freg(fb));
                    self.flags.zero = a == b;
                    self.flags.neg = a < b;
                    self.flags.ov = false;
                }
                MInstr::FToIntChecked { dst, fs } => {
                    let f = self.freg(fs);
                    let fits = f.is_finite()
                        && f.trunc() >= igjit_heap::SMALL_INT_MIN as f64
                        && f.trunc() <= igjit_heap::SMALL_INT_MAX as f64;
                    let v = if fits { f.trunc() as i32 as u32 } else { 0 };
                    self.set_reg(dst, v);
                    self.flags.ov = !fits;
                    self.flags.zero = v == 0;
                    self.flags.neg = (v as i32) < 0;
                }
                MInstr::FExponent { dst, fs } => {
                    let f = self.freg(fs);
                    let e = if f == 0.0 || !f.is_finite() {
                        0
                    } else {
                        f.abs().log2().floor() as i32
                    };
                    self.set_reg(dst, e as u32);
                    self.flags.ov = false;
                }
                MInstr::IntToF { fd, src } => {
                    let v = self.reg(src) as i32;
                    self.set_freg(fd, f64::from(v));
                }
                MInstr::Nop => {}
            }
        }
        MachineOutcome::StepLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_instr;

    fn assemble(instrs: &[MInstr], isa: Isa) -> Vec<u8> {
        let mut out = Vec::new();
        for &i in instrs {
            encode_instr(i, isa, &mut out).unwrap();
        }
        out
    }

    fn run_instrs(instrs: &[MInstr], isa: Isa) -> (MachineOutcome, Vec<u32>) {
        let mut mem = ObjectMemory::new();
        let code = assemble(instrs, isa);
        let mut m = Machine::new(&mut mem, isa, &code);
        let out = m.run(MachineConfig::default());
        let regs = (0..isa.reg_count()).map(|i| m.reg(Reg(i))).collect();
        (out, regs)
    }

    #[test]
    fn mov_and_ret_both_isas() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let (out, regs) = run_instrs(
                &[MInstr::MovImm { dst: Reg(0), imm: 42 }, MInstr::Ret],
                isa,
            );
            assert_eq!(out, MachineOutcome::ReturnedToCaller, "{isa:?}");
            assert_eq!(regs[0], 42);
        }
    }

    #[test]
    fn tagged_add_with_overflow_flag() {
        // Cog-style tagged add: tagged(a) + (tagged(b) - 1); the
        // overflow check must read the flags of the *add*.
        let isa = Isa::Arm32ish;
        let a = igjit_heap::Oop::from_small_int(igjit_heap::SMALL_INT_MAX).0;
        let b = igjit_heap::Oop::from_small_int(1).0;
        let (out, _) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: a },
                MInstr::MovImm { dst: Reg(1), imm: b },
                MInstr::AluImm { op: AluOp::Sub, dst: Reg(1), a: Reg(1), imm: 1 },
                MInstr::AluReg { op: AluOp::Add, dst: Reg(0), a: Reg(0), b: Reg(1) },
                MInstr::JmpCc { cc: Cond::Ov, off: 8 },
                MInstr::Brk { code: 0 }, // no overflow
                MInstr::Brk { code: 1 }, // overflow
            ],
            isa,
        );
        assert_eq!(out, MachineOutcome::Breakpoint { code: 1 }, "max+1 overflows");
    }

    #[test]
    fn tagged_add_in_range_does_not_overflow() {
        let isa = Isa::Arm32ish;
        let a = igjit_heap::Oop::from_small_int(20).0;
        let b = igjit_heap::Oop::from_small_int(22).0;
        let (out, regs) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: a },
                MInstr::MovImm { dst: Reg(1), imm: b },
                MInstr::AluImm { op: AluOp::Sub, dst: Reg(1), a: Reg(1), imm: 1 },
                MInstr::AluReg { op: AluOp::Add, dst: Reg(0), a: Reg(0), b: Reg(1) },
                MInstr::JmpCc { cc: Cond::Ov, off: 8 },
                MInstr::Brk { code: 0 },
                MInstr::Brk { code: 1 },
            ],
            isa,
        );
        assert_eq!(out, MachineOutcome::Breakpoint { code: 0 });
        assert_eq!(regs[0], igjit_heap::Oop::from_small_int(42).0);
    }

    #[test]
    fn shl_overflow_detects_untaggable_values() {
        let isa = Isa::X86ish;
        // 2^30 << 1 loses the sign bit: tagging overflow.
        // (x86ish Brk encodes in 2 bytes, hence the offset.)
        let (out, _) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: 1 << 30 },
                MInstr::AluImm { op: AluOp::Shl, dst: Reg(0), a: Reg(0), imm: 1 },
                MInstr::JmpCc { cc: Cond::Ov, off: 2 },
                MInstr::Brk { code: 0 },
                MInstr::Brk { code: 1 },
            ],
            isa,
        );
        assert_eq!(out, MachineOutcome::Breakpoint { code: 1 });
    }

    #[test]
    fn division_ops() {
        let isa = Isa::Arm32ish;
        let (out, regs) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: (-7i32) as u32 },
                MInstr::MovImm { dst: Reg(1), imm: 2 },
                MInstr::AluReg { op: AluOp::Div, dst: Reg(2), a: Reg(0), b: Reg(1) },
                MInstr::AluReg { op: AluOp::Rem, dst: Reg(3), a: Reg(0), b: Reg(1) },
                MInstr::Ret,
            ],
            isa,
        );
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(regs[2] as i32, -3, "truncated division");
        assert_eq!(regs[3] as i32, -1, "truncated remainder");
    }

    #[test]
    fn division_by_zero_yields_zero_not_a_trap() {
        let (out, regs) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(2), imm: 5 },
                MInstr::MovImm { dst: Reg(1), imm: 0 },
                MInstr::AluReg { op: AluOp::Div, dst: Reg(2), a: Reg(2), b: Reg(1) },
                MInstr::Ret,
            ],
            Isa::X86ish,
        );
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(regs[2], 0);
    }

    #[test]
    fn push_pop_roundtrip() {
        let (out, regs) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: 7 },
                MInstr::Push { src: Reg(0) },
                MInstr::MovImm { dst: Reg(0), imm: 0 },
                MInstr::PopR { dst: Reg(1) },
                MInstr::Ret,
            ],
            Isa::X86ish,
        );
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(regs[1], 7);
    }

    #[test]
    fn operand_stack_words_reads_pushed_values() {
        let mut mem = ObjectMemory::new();
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(0), imm: 11 },
                MInstr::Push { src: Reg(0) },
                MInstr::MovImm { dst: Reg(0), imm: 22 },
                MInstr::Push { src: Reg(0) },
                MInstr::Brk { code: 0 },
            ],
            Isa::Arm32ish,
        );
        let mut m = Machine::new(&mut mem, Isa::Arm32ish, &code);
        assert_eq!(m.run(MachineConfig::default()), MachineOutcome::Breakpoint { code: 0 });
        assert_eq!(m.operand_stack_words(), vec![22, 11], "top first");
    }

    #[test]
    fn heap_loads_and_stores() {
        let mut mem = ObjectMemory::new();
        let arr = mem
            .instantiate_array(&[igjit_heap::Oop::from_small_int(5)])
            .unwrap();
        let body = arr.address() + 4 * igjit_heap::HEADER_WORDS;
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(1), imm: body },
                MInstr::Load { dst: Reg(0), base: Reg(1), off: 0 },
                MInstr::MovImm { dst: Reg(2), imm: igjit_heap::Oop::from_small_int(9).0 },
                MInstr::Store { src: Reg(2), base: Reg(1), off: 0 },
                MInstr::Ret,
            ],
            Isa::X86ish,
        );
        let mut m = Machine::new(&mut mem, Isa::X86ish, &code);
        assert_eq!(m.run(MachineConfig::default()), MachineOutcome::ReturnedToCaller);
        assert_eq!(m.reg(Reg(0)), igjit_heap::Oop::from_small_int(5).0);
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap().small_int_value(), 9);
    }

    #[test]
    fn invalid_loads_fault_with_poisoned_register() {
        let mut mem = ObjectMemory::new();
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(1), imm: 0x1234_5679 }, // misaligned garbage
                MInstr::Load { dst: Reg(0), base: Reg(1), off: 0 },
                MInstr::Ret,
            ],
            Isa::X86ish,
        );
        let mut m = Machine::new(&mut mem, Isa::X86ish, &code);
        match m.run(MachineConfig::default()) {
            MachineOutcome::MemoryFault { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.reg(Reg(0)), 0xbad0_bad0, "int setter exists, poison applied");
    }

    #[test]
    fn float_load_fault_on_low_fregs_is_a_memory_fault() {
        let mut mem = ObjectMemory::new();
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(1), imm: 3 },
                MInstr::FLoad { fd: FReg(0), base: Reg(1), off: 0 },
            ],
            Isa::Arm32ish,
        );
        let mut m = Machine::new(&mut mem, Isa::Arm32ish, &code);
        assert!(matches!(m.run(MachineConfig::default()), MachineOutcome::MemoryFault { .. }));
    }

    #[test]
    fn float_load_fault_on_high_fregs_is_a_simulation_error() {
        // The planted defect: F2/F3 setters are missing from the
        // reflection table.
        let mut mem = ObjectMemory::new();
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(1), imm: 3 },
                MInstr::FLoad { fd: FReg(2), base: Reg(1), off: 0 },
            ],
            Isa::Arm32ish,
        );
        let mut m = Machine::new(&mut mem, Isa::Arm32ish, &code);
        assert_eq!(
            m.run(MachineConfig::default()),
            MachineOutcome::SimulationError { register: "F2".into() }
        );
    }

    #[test]
    fn send_trampoline_halts_with_selector() {
        let (out, _) = run_instrs(
            &[MInstr::CallTramp { kind: TrampolineKind::Send, payload: 5 }],
            Isa::X86ish,
        );
        assert_eq!(out, MachineOutcome::Send { selector_id: 5 });
    }

    #[test]
    fn alloc_float_trampoline_continues() {
        let mut mem = ObjectMemory::new();
        let code = assemble(
            &[
                MInstr::MovImm { dst: Reg(1), imm: 4 },
                MInstr::IntToF { fd: FReg(0), src: Reg(1) },
                MInstr::CallTramp { kind: TrampolineKind::AllocFloat, payload: 0 },
                MInstr::Ret,
            ],
            Isa::X86ish,
        );
        let mut m = Machine::new(&mut mem, Isa::X86ish, &code);
        assert_eq!(m.run(MachineConfig::default()), MachineOutcome::ReturnedToCaller);
        let oop = igjit_heap::Oop(m.reg(Reg(0)));
        assert_eq!(mem.float_value_of(oop).unwrap(), 4.0);
    }

    #[test]
    fn conditional_jumps_and_cmp() {
        let (out, _) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: 3 },
                MInstr::CmpImm { a: Reg(0), imm: 5 },
                MInstr::JmpCc { cc: Cond::Lt, off: 2 }, // skip Brk 0 (2 bytes on x86)
                MInstr::Brk { code: 0 },
                MInstr::Brk { code: 1 },
            ],
            Isa::X86ish,
        );
        assert_eq!(out, MachineOutcome::Breakpoint { code: 1 });
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let (out, _) = run_instrs(&[MInstr::Jmp { off: -5 }], Isa::X86ish);
        assert_eq!(out, MachineOutcome::StepLimit);
    }

    #[test]
    fn undecodable_code_faults() {
        let mut mem = ObjectMemory::new();
        let mut m = Machine::new(&mut mem, Isa::X86ish, &[0xFF]);
        assert!(matches!(m.run(MachineConfig::default()), MachineOutcome::DecodeFault { .. }));
    }

    #[test]
    fn signed_negative_compare() {
        let (out, _) = run_instrs(
            &[
                MInstr::MovImm { dst: Reg(0), imm: (-5i32) as u32 },
                MInstr::CmpImm { a: Reg(0), imm: 0 },
                MInstr::JmpCc { cc: Cond::Lt, off: 2 },
                MInstr::Brk { code: 0 },
                MInstr::Brk { code: 1 },
            ],
            Isa::X86ish,
        );
        assert_eq!(out, MachineOutcome::Breakpoint { code: 1 }, "-5 < 0 signed");
    }
}
