//! A small disassembler for the simulated ISAs — the reproduction's
//! stand-in for the LLVM disassembler of the Pharo testing
//! infrastructure (Fig. 4 of the paper), used in reports and failing
//! test diagnostics.

use crate::encoding::decode_instr;
use crate::instr::{Isa, MInstr};

/// One disassembled line.
#[derive(Clone, Debug, PartialEq)]
pub struct DisasmLine {
    /// Byte offset of the instruction.
    pub offset: usize,
    /// The decoded instruction.
    pub instr: MInstr,
    /// Encoded length in bytes.
    pub len: usize,
}

/// Decodes a whole code stream; stops at the first undecodable byte.
pub fn disassemble(code: &[u8], isa: Isa) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pc = 0;
    while pc < code.len() {
        match decode_instr(code, pc, isa) {
            Some((instr, len)) => {
                out.push(DisasmLine { offset: pc, instr, len });
                pc += len;
            }
            None => break,
        }
    }
    out
}

/// Renders a code stream as one mnemonic per line, with jump targets
/// resolved to absolute offsets.
pub fn disassemble_to_string(code: &[u8], isa: Isa) -> String {
    let lines = disassemble(code, isa);
    let mut out = String::new();
    for l in &lines {
        let target = match l.instr {
            MInstr::Jmp { off } => Some(l.offset as i64 + l.len as i64 + i64::from(off)),
            MInstr::JmpCc { off, .. } => Some(l.offset as i64 + l.len as i64 + i64::from(off)),
            _ => None,
        };
        match target {
            Some(t) => out.push_str(&format!(
                "{:>5}: {:?}  ; -> {t}\n",
                l.offset, l.instr
            )),
            None => out.push_str(&format!("{:>5}: {:?}\n", l.offset, l.instr)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_instr;
    use crate::instr::{AluOp, Cond, Reg};

    #[test]
    fn disassembles_a_stream_fully() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let instrs = vec![
                MInstr::MovImm { dst: Reg(0), imm: 42 },
                MInstr::AluImm { op: AluOp::Add, dst: Reg(0), a: Reg(0), imm: 1 },
                MInstr::JmpCc { cc: Cond::Ov, off: 0 },
                MInstr::Ret,
            ];
            let mut code = Vec::new();
            for &i in &instrs {
                encode_instr(i, isa, &mut code).unwrap();
            }
            let lines = disassemble(&code, isa);
            assert_eq!(lines.len(), instrs.len());
            assert_eq!(lines.iter().map(|l| l.instr).collect::<Vec<_>>(), instrs);
            // Offsets are cumulative.
            let mut expect = 0;
            for l in &lines {
                assert_eq!(l.offset, expect);
                expect += l.len;
            }
        }
    }

    #[test]
    fn jump_targets_are_resolved() {
        let mut code = Vec::new();
        encode_instr(MInstr::Jmp { off: 10 }, Isa::X86ish, &mut code).unwrap();
        let s = disassemble_to_string(&code, Isa::X86ish);
        assert!(s.contains("-> 15"), "{s}"); // 5-byte jmp + 10
    }

    #[test]
    fn stops_at_garbage() {
        let mut code = Vec::new();
        encode_instr(MInstr::Ret, Isa::X86ish, &mut code).unwrap();
        code.push(0xFF);
        let lines = disassemble(&code, Isa::X86ish);
        assert_eq!(lines.len(), 1);
    }
}
