//! Predecoded compiled-code artifacts (engine v5).
//!
//! [`Machine::run`](crate::Machine::run) historically decoded every
//! instruction byte-by-byte on every step of every replay. Compiled
//! artifacts are immutable, though, so the decode work is a pure
//! function of the code bytes — [`PredecodedCode`] performs it once:
//! a sequential decode from offset 0 yields a dense vector of decoded
//! steps plus a byte-offset→step jump table, and execution becomes an
//! indexed fetch instead of a per-step [`decode_instr`] call.
//!
//! The artifact is *derived*, never authoritative: it is built from
//! exactly the bytes the machine would otherwise decode (including any
//! bytes perturbed by an armed `igjit-mutate` operator, since the
//! predecode happens after compilation), and any program counter that
//! does not land on a sequentially-decoded boundary — a misdirected
//! jump into the middle of an instruction, code past a decode failure,
//! or an offset beyond the artifact — falls back to the byte-level
//! decoder for that step. Execution under a [`PredecodedCode`] is
//! therefore step-for-step identical to byte-level decoding, including
//! every `DecodeFault`; the `predecode_equivalence` proptest suite
//! enforces this over random instruction sequences and raw byte blobs.

use crate::encoding::decode_instr;
use crate::instr::{Isa, MInstr};

/// Marker in the jump table for byte offsets that are not a
/// sequentially-decoded instruction boundary.
const NOT_A_BOUNDARY: u32 = u32::MAX;

/// A compiled artifact decoded once, replayed many times.
#[derive(Clone, Debug)]
pub struct PredecodedCode {
    /// The artifact bytes (the fallback path and bounds checks still
    /// need them, and keeping them here guarantees the predecoded view
    /// and the byte view can never drift apart).
    code: Vec<u8>,
    /// Target ISA the bytes were decoded for.
    isa: Isa,
    /// Sequentially decoded instructions with their encoded lengths.
    steps: Vec<(MInstr, u8)>,
    /// Byte offset → index into `steps`; [`NOT_A_BOUNDARY`] elsewhere.
    index: Vec<u32>,
}

impl PredecodedCode {
    /// Decodes `code` sequentially from offset 0. Decoding stops at
    /// the first undecodable position (offsets from there on simply
    /// fall back to the byte decoder at run time, which reports the
    /// same `DecodeFault` the byte path would).
    pub fn new(code: &[u8], isa: Isa) -> PredecodedCode {
        let mut steps = Vec::new();
        let mut index = vec![NOT_A_BOUNDARY; code.len()];
        let mut off = 0usize;
        while off < code.len() {
            let Some((instr, len)) = decode_instr(code, off, isa) else {
                break;
            };
            index[off] = steps.len() as u32;
            steps.push((instr, len as u8));
            off += len;
        }
        PredecodedCode { code: code.to_vec(), isa, steps, index }
    }

    /// The artifact bytes the steps were decoded from.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The ISA the artifact was decoded for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of sequentially decoded instructions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing decoded (empty or immediately invalid code).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The predecoded instruction starting exactly at byte offset
    /// `off`, or `None` when `off` is not a sequentially-decoded
    /// boundary (the caller falls back to [`decode_instr`]).
    #[inline]
    pub fn lookup(&self, off: usize) -> Option<(MInstr, usize)> {
        let idx = *self.index.get(off)?;
        if idx == NOT_A_BOUNDARY {
            return None;
        }
        let (instr, len) = self.steps[idx as usize];
        Some((instr, usize::from(len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_instr;
    use crate::instr::{AluOp, Cond, Reg};

    fn assemble(instrs: &[MInstr], isa: Isa) -> Vec<u8> {
        let mut out = Vec::new();
        for &i in instrs {
            encode_instr(i, isa, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn every_boundary_matches_the_byte_decoder() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let code = assemble(
                &[
                    MInstr::MovImm { dst: Reg(0), imm: 7 },
                    MInstr::AluImm { op: AluOp::Add, dst: Reg(0), a: Reg(0), imm: 1 },
                    MInstr::JmpCc { cc: Cond::Ne, off: -4 },
                    MInstr::Ret,
                ],
                isa,
            );
            let pd = PredecodedCode::new(&code, isa);
            assert_eq!(pd.len(), 4, "{isa:?}");
            // Whatever the table answers must be exactly what the byte
            // decoder would have said at that offset.
            let mut boundaries = 0;
            for off in 0..=code.len() + 4 {
                if let Some(step) = pd.lookup(off) {
                    assert_eq!(Some(step), decode_instr(&code, off, isa), "{isa:?} {off}");
                    boundaries += 1;
                }
            }
            assert_eq!(boundaries, 4, "{isa:?}: one boundary per instruction");
        }
    }

    #[test]
    fn mid_instruction_offsets_are_not_boundaries() {
        let code = assemble(&[MInstr::MovImm { dst: Reg(0), imm: 0x0101_0101 }], Isa::X86ish);
        let pd = PredecodedCode::new(&code, Isa::X86ish);
        assert!(pd.lookup(0).is_some());
        for off in 1..code.len() {
            assert_eq!(pd.lookup(off), None, "offset {off} is mid-instruction");
        }
        assert_eq!(pd.lookup(code.len()), None, "end of code");
    }

    #[test]
    fn decoding_stops_at_the_first_bad_opcode() {
        let mut code = assemble(&[MInstr::Nop], Isa::X86ish);
        code.push(0xFF); // undecodable
        let mut tail = assemble(&[MInstr::Ret], Isa::X86ish);
        code.append(&mut tail);
        let pd = PredecodedCode::new(&code, Isa::X86ish);
        assert_eq!(pd.len(), 1, "only the Nop predecodes");
        // The Ret after the bad byte is reachable by a jump; lookup
        // declines and the byte decoder handles it.
        assert_eq!(pd.lookup(2), None);
        assert!(decode_instr(&code, 2, Isa::X86ish).is_some());
    }

    #[test]
    fn empty_and_garbage_code() {
        let pd = PredecodedCode::new(&[], Isa::Arm32ish);
        assert!(pd.is_empty());
        assert_eq!(pd.lookup(0), None);
        let pd = PredecodedCode::new(&[0xFF; 8], Isa::Arm32ish);
        assert!(pd.is_empty());
    }
}
