//! Per-ISA machine-code encodings.
//!
//! `X86ish` uses a compact variable-length encoding and rejects
//! three-address ALU forms (`dst` must equal `a`). `Arm32ish` uses
//! fixed 8-byte records `[opcode, ra, rb, rc, imm32]` and allows
//! three-address forms. The back-ends in `igjit-jit` must lower IR
//! differently for each — exactly the kind of per-ISA divergence the
//! paper's cross-ISA test matrix exercises.

use crate::instr::{AluOp, Cond, FAluOp, FReg, Isa, MInstr, Reg, TrampolineKind};

/// Encoding failures (assembler bugs, not runtime conditions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// Register number out of range for the ISA.
    BadRegister {
        /// The offending register.
        reg: u8,
    },
    /// `dst != a` on a two-address ISA.
    TwoAddressViolation,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadRegister { reg } => write!(f, "register r{reg} out of range"),
            EncodeError::TwoAddressViolation => {
                write!(f, "x86-style ALU needs dst == a")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn check_reg(r: Reg, isa: Isa) -> Result<u8, EncodeError> {
    if r.0 < isa.reg_count() {
        Ok(r.0)
    } else {
        Err(EncodeError::BadRegister { reg: r.0 })
    }
}

fn check_freg(f: FReg) -> Result<u8, EncodeError> {
    if f.0 < 4 {
        Ok(f.0)
    } else {
        Err(EncodeError::BadRegister { reg: f.0 })
    }
}

const OPC_MOV_IMM: u8 = 0x01;
const OPC_MOV_REG: u8 = 0x02;
const OPC_LOAD: u8 = 0x03;
const OPC_STORE: u8 = 0x04;
const OPC_PUSH: u8 = 0x05;
const OPC_POP: u8 = 0x06;
const OPC_ALU_REG: u8 = 0x07;
const OPC_ALU_IMM: u8 = 0x08;
const OPC_CMP: u8 = 0x09;
const OPC_CMP_IMM: u8 = 0x0A;
const OPC_JMP: u8 = 0x0B;
const OPC_JMP_CC: u8 = 0x0C;
const OPC_TRAMP: u8 = 0x0D;
const OPC_RET: u8 = 0x0E;
const OPC_BRK: u8 = 0x0F;
const OPC_FLOAD: u8 = 0x10;
const OPC_FALU: u8 = 0x11;
const OPC_FCMP: u8 = 0x12;
const OPC_FTOI: u8 = 0x13;
const OPC_FEXP: u8 = 0x14;
const OPC_ITOF: u8 = 0x15;
const OPC_NOP: u8 = 0x16;

/// Encodes one instruction, appending bytes to `out`.
pub fn encode_instr(instr: MInstr, isa: Isa, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match isa {
        Isa::X86ish => encode_x86(instr, out),
        Isa::Arm32ish => encode_arm(instr, out),
    }
}

fn encode_x86(instr: MInstr, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let isa = Isa::X86ish;
    match instr {
        MInstr::MovImm { dst, imm } => {
            out.push(OPC_MOV_IMM);
            out.push(check_reg(dst, isa)?);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        MInstr::MovReg { dst, src } => {
            out.extend_from_slice(&[OPC_MOV_REG, check_reg(dst, isa)?, check_reg(src, isa)?]);
        }
        MInstr::Load { dst, base, off } => {
            out.extend_from_slice(&[OPC_LOAD, check_reg(dst, isa)?, check_reg(base, isa)?]);
            out.extend_from_slice(&off.to_le_bytes());
        }
        MInstr::Store { src, base, off } => {
            out.extend_from_slice(&[OPC_STORE, check_reg(src, isa)?, check_reg(base, isa)?]);
            out.extend_from_slice(&off.to_le_bytes());
        }
        MInstr::Push { src } => out.extend_from_slice(&[OPC_PUSH, check_reg(src, isa)?]),
        MInstr::PopR { dst } => out.extend_from_slice(&[OPC_POP, check_reg(dst, isa)?]),
        MInstr::AluReg { op, dst, a, b } => {
            if dst != a {
                return Err(EncodeError::TwoAddressViolation);
            }
            out.extend_from_slice(&[
                OPC_ALU_REG,
                op.to_bits(),
                check_reg(dst, isa)?,
                check_reg(b, isa)?,
            ]);
        }
        MInstr::AluImm { op, dst, a, imm } => {
            if dst != a {
                return Err(EncodeError::TwoAddressViolation);
            }
            out.extend_from_slice(&[OPC_ALU_IMM, op.to_bits(), check_reg(dst, isa)?]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        MInstr::Cmp { a, b } => {
            out.extend_from_slice(&[OPC_CMP, check_reg(a, isa)?, check_reg(b, isa)?]);
        }
        MInstr::CmpImm { a, imm } => {
            out.extend_from_slice(&[OPC_CMP_IMM, check_reg(a, isa)?]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        MInstr::Jmp { off } => {
            out.push(OPC_JMP);
            out.extend_from_slice(&off.to_le_bytes());
        }
        MInstr::JmpCc { cc, off } => {
            out.extend_from_slice(&[OPC_JMP_CC, cc.to_bits()]);
            out.extend_from_slice(&off.to_le_bytes());
        }
        MInstr::CallTramp { kind, payload } => {
            out.extend_from_slice(&[OPC_TRAMP, kind.to_bits()]);
            out.extend_from_slice(&payload.to_le_bytes());
        }
        MInstr::Ret => out.push(OPC_RET),
        MInstr::Brk { code } => out.extend_from_slice(&[OPC_BRK, code]),
        MInstr::FLoad { fd, base, off } => {
            out.extend_from_slice(&[OPC_FLOAD, check_freg(fd)?, check_reg(base, isa)?]);
            out.extend_from_slice(&off.to_le_bytes());
        }
        MInstr::FAlu { op, fd, fa, fb } => {
            out.extend_from_slice(&[
                OPC_FALU,
                op.to_bits(),
                check_freg(fd)?,
                check_freg(fa)?,
                check_freg(fb)?,
            ]);
        }
        MInstr::FCmp { fa, fb } => {
            out.extend_from_slice(&[OPC_FCMP, check_freg(fa)?, check_freg(fb)?]);
        }
        MInstr::FToIntChecked { dst, fs } => {
            out.extend_from_slice(&[OPC_FTOI, check_reg(dst, isa)?, check_freg(fs)?]);
        }
        MInstr::FExponent { dst, fs } => {
            out.extend_from_slice(&[OPC_FEXP, check_reg(dst, isa)?, check_freg(fs)?]);
        }
        MInstr::IntToF { fd, src } => {
            out.extend_from_slice(&[OPC_ITOF, check_freg(fd)?, check_reg(src, isa)?]);
        }
        MInstr::Nop => out.push(OPC_NOP),
    }
    Ok(())
}

fn encode_arm(instr: MInstr, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let isa = Isa::Arm32ish;
    let mut rec = |opc: u8, a: u8, b: u8, c: u8, imm: u32| {
        out.push(opc);
        out.push(a);
        out.push(b);
        out.push(c);
        out.extend_from_slice(&imm.to_le_bytes());
    };
    match instr {
        MInstr::MovImm { dst, imm } => rec(OPC_MOV_IMM, check_reg(dst, isa)?, 0, 0, imm),
        MInstr::MovReg { dst, src } => {
            rec(OPC_MOV_REG, check_reg(dst, isa)?, check_reg(src, isa)?, 0, 0)
        }
        MInstr::Load { dst, base, off } => rec(
            OPC_LOAD,
            check_reg(dst, isa)?,
            check_reg(base, isa)?,
            0,
            off as i32 as u32,
        ),
        MInstr::Store { src, base, off } => rec(
            OPC_STORE,
            check_reg(src, isa)?,
            check_reg(base, isa)?,
            0,
            off as i32 as u32,
        ),
        MInstr::Push { src } => rec(OPC_PUSH, check_reg(src, isa)?, 0, 0, 0),
        MInstr::PopR { dst } => rec(OPC_POP, check_reg(dst, isa)?, 0, 0, 0),
        MInstr::AluReg { op, dst, a, b } => rec(
            OPC_ALU_REG,
            check_reg(dst, isa)?,
            check_reg(a, isa)?,
            check_reg(b, isa)?,
            u32::from(op.to_bits()),
        ),
        MInstr::AluImm { op, dst, a, imm } => {
            // Three-address with immediate: op in byte c.
            rec(OPC_ALU_IMM, check_reg(dst, isa)?, check_reg(a, isa)?, op.to_bits(), imm)
        }
        MInstr::Cmp { a, b } => rec(OPC_CMP, check_reg(a, isa)?, check_reg(b, isa)?, 0, 0),
        MInstr::CmpImm { a, imm } => rec(OPC_CMP_IMM, check_reg(a, isa)?, 0, 0, imm),
        MInstr::Jmp { off } => rec(OPC_JMP, 0, 0, 0, off as u32),
        MInstr::JmpCc { cc, off } => rec(OPC_JMP_CC, cc.to_bits(), 0, 0, off as u32),
        MInstr::CallTramp { kind, payload } => rec(OPC_TRAMP, kind.to_bits(), 0, 0, payload),
        MInstr::Ret => rec(OPC_RET, 0, 0, 0, 0),
        MInstr::Brk { code } => rec(OPC_BRK, code, 0, 0, 0),
        MInstr::FLoad { fd, base, off } => rec(
            OPC_FLOAD,
            check_freg(fd)?,
            check_reg(base, isa)?,
            0,
            off as i32 as u32,
        ),
        MInstr::FAlu { op, fd, fa, fb } => rec(
            OPC_FALU,
            check_freg(fd)?,
            check_freg(fa)?,
            check_freg(fb)?,
            u32::from(op.to_bits()),
        ),
        MInstr::FCmp { fa, fb } => rec(OPC_FCMP, check_freg(fa)?, check_freg(fb)?, 0, 0),
        MInstr::FToIntChecked { dst, fs } => {
            rec(OPC_FTOI, check_reg(dst, isa)?, check_freg(fs)?, 0, 0)
        }
        MInstr::FExponent { dst, fs } => {
            rec(OPC_FEXP, check_reg(dst, isa)?, check_freg(fs)?, 0, 0)
        }
        MInstr::IntToF { fd, src } => rec(OPC_ITOF, check_freg(fd)?, check_reg(src, isa)?, 0, 0),
        MInstr::Nop => rec(OPC_NOP, 0, 0, 0, 0),
    }
    Ok(())
}

/// Decodes the instruction at `pc`; `None` on bad opcodes or
/// truncation.
pub fn decode_instr(code: &[u8], pc: usize, isa: Isa) -> Option<(MInstr, usize)> {
    let decoded = match isa {
        Isa::X86ish => decode_x86(code, pc),
        Isa::Arm32ish => decode_arm(code, pc),
    }?;
    // A register byte beyond the ISA's file means the byte stream is
    // not a valid instruction (e.g. a misdirected jump landing
    // mid-instruction); report it as undecodable rather than letting
    // the executor index a register that does not exist.
    if instr_regs_valid(&decoded.0, isa) {
        Some(decoded)
    } else {
        None
    }
}

/// Whether every register operand of `instr` exists on `isa`
/// (general-purpose registers against the ISA's file, float registers
/// against the fixed four).
fn instr_regs_valid(instr: &MInstr, isa: Isa) -> bool {
    let r = |reg: Reg| reg.0 < isa.reg_count();
    let f = |freg: FReg| freg.0 < 4;
    match *instr {
        MInstr::MovImm { dst, .. } => r(dst),
        MInstr::MovReg { dst, src } => r(dst) && r(src),
        MInstr::Load { dst, base, .. } => r(dst) && r(base),
        MInstr::Store { src, base, .. } => r(src) && r(base),
        MInstr::Push { src } => r(src),
        MInstr::PopR { dst } => r(dst),
        MInstr::AluReg { dst, a, b, .. } => r(dst) && r(a) && r(b),
        MInstr::AluImm { dst, a, .. } => r(dst) && r(a),
        MInstr::Cmp { a, b } => r(a) && r(b),
        MInstr::CmpImm { a, .. } => r(a),
        MInstr::FLoad { fd, base, .. } => f(fd) && r(base),
        MInstr::FAlu { fd, fa, fb, .. } => f(fd) && f(fa) && f(fb),
        MInstr::FCmp { fa, fb } => f(fa) && f(fb),
        MInstr::FToIntChecked { dst, fs } => r(dst) && f(fs),
        MInstr::FExponent { dst, fs } => r(dst) && f(fs),
        MInstr::IntToF { fd, src } => f(fd) && r(src),
        MInstr::Jmp { .. }
        | MInstr::JmpCc { .. }
        | MInstr::CallTramp { .. }
        | MInstr::Ret
        | MInstr::Brk { .. }
        | MInstr::Nop => true,
    }
}

fn rd_u32(code: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(code.get(at..at + 4)?.try_into().ok()?))
}

fn rd_i16(code: &[u8], at: usize) -> Option<i16> {
    Some(i16::from_le_bytes(code.get(at..at + 2)?.try_into().ok()?))
}

fn decode_x86(code: &[u8], pc: usize) -> Option<(MInstr, usize)> {
    let b = |i: usize| code.get(pc + i).copied();
    let opc = b(0)?;
    Some(match opc {
        OPC_MOV_IMM => (MInstr::MovImm { dst: Reg(b(1)?), imm: rd_u32(code, pc + 2)? }, 6),
        OPC_MOV_REG => (MInstr::MovReg { dst: Reg(b(1)?), src: Reg(b(2)?) }, 3),
        OPC_LOAD => (
            MInstr::Load { dst: Reg(b(1)?), base: Reg(b(2)?), off: rd_i16(code, pc + 3)? },
            5,
        ),
        OPC_STORE => (
            MInstr::Store { src: Reg(b(1)?), base: Reg(b(2)?), off: rd_i16(code, pc + 3)? },
            5,
        ),
        OPC_PUSH => (MInstr::Push { src: Reg(b(1)?) }, 2),
        OPC_POP => (MInstr::PopR { dst: Reg(b(1)?) }, 2),
        OPC_ALU_REG => {
            let op = AluOp::from_bits(b(1)?)?;
            let dst = Reg(b(2)?);
            (MInstr::AluReg { op, dst, a: dst, b: Reg(b(3)?) }, 4)
        }
        OPC_ALU_IMM => {
            let op = AluOp::from_bits(b(1)?)?;
            let dst = Reg(b(2)?);
            (MInstr::AluImm { op, dst, a: dst, imm: rd_u32(code, pc + 3)? }, 7)
        }
        OPC_CMP => (MInstr::Cmp { a: Reg(b(1)?), b: Reg(b(2)?) }, 3),
        OPC_CMP_IMM => (MInstr::CmpImm { a: Reg(b(1)?), imm: rd_u32(code, pc + 2)? }, 6),
        OPC_JMP => (MInstr::Jmp { off: rd_u32(code, pc + 1)? as i32 }, 5),
        OPC_JMP_CC => (
            MInstr::JmpCc { cc: Cond::from_bits(b(1)?)?, off: rd_u32(code, pc + 2)? as i32 },
            6,
        ),
        OPC_TRAMP => (
            MInstr::CallTramp {
                kind: TrampolineKind::from_bits(b(1)?)?,
                payload: rd_u32(code, pc + 2)?,
            },
            6,
        ),
        OPC_RET => (MInstr::Ret, 1),
        OPC_BRK => (MInstr::Brk { code: b(1)? }, 2),
        OPC_FLOAD => (
            MInstr::FLoad { fd: FReg(b(1)?), base: Reg(b(2)?), off: rd_i16(code, pc + 3)? },
            5,
        ),
        OPC_FALU => (
            MInstr::FAlu {
                op: FAluOp::from_bits(b(1)?)?,
                fd: FReg(b(2)?),
                fa: FReg(b(3)?),
                fb: FReg(b(4)?),
            },
            5,
        ),
        OPC_FCMP => (MInstr::FCmp { fa: FReg(b(1)?), fb: FReg(b(2)?) }, 3),
        OPC_FTOI => (MInstr::FToIntChecked { dst: Reg(b(1)?), fs: FReg(b(2)?) }, 3),
        OPC_FEXP => (MInstr::FExponent { dst: Reg(b(1)?), fs: FReg(b(2)?) }, 3),
        OPC_ITOF => (MInstr::IntToF { fd: FReg(b(1)?), src: Reg(b(2)?) }, 3),
        OPC_NOP => (MInstr::Nop, 1),
        _ => return None,
    })
}

fn decode_arm(code: &[u8], pc: usize) -> Option<(MInstr, usize)> {
    let rec = code.get(pc..pc + 8)?;
    let (opc, a, b, c) = (rec[0], rec[1], rec[2], rec[3]);
    let imm = u32::from_le_bytes(rec[4..8].try_into().ok()?);
    let instr = match opc {
        OPC_MOV_IMM => MInstr::MovImm { dst: Reg(a), imm },
        OPC_MOV_REG => MInstr::MovReg { dst: Reg(a), src: Reg(b) },
        OPC_LOAD => MInstr::Load { dst: Reg(a), base: Reg(b), off: imm as i32 as i16 },
        OPC_STORE => MInstr::Store { src: Reg(a), base: Reg(b), off: imm as i32 as i16 },
        OPC_PUSH => MInstr::Push { src: Reg(a) },
        OPC_POP => MInstr::PopR { dst: Reg(a) },
        OPC_ALU_REG => MInstr::AluReg {
            op: AluOp::from_bits(imm as u8)?,
            dst: Reg(a),
            a: Reg(b),
            b: Reg(c),
        },
        OPC_ALU_IMM => MInstr::AluImm { op: AluOp::from_bits(c)?, dst: Reg(a), a: Reg(b), imm },
        OPC_CMP => MInstr::Cmp { a: Reg(a), b: Reg(b) },
        OPC_CMP_IMM => MInstr::CmpImm { a: Reg(a), imm },
        OPC_JMP => MInstr::Jmp { off: imm as i32 },
        OPC_JMP_CC => MInstr::JmpCc { cc: Cond::from_bits(a)?, off: imm as i32 },
        OPC_TRAMP => MInstr::CallTramp { kind: TrampolineKind::from_bits(a)?, payload: imm },
        OPC_RET => MInstr::Ret,
        OPC_BRK => MInstr::Brk { code: a },
        OPC_FLOAD => MInstr::FLoad { fd: FReg(a), base: Reg(b), off: imm as i32 as i16 },
        OPC_FALU => MInstr::FAlu {
            op: FAluOp::from_bits(imm as u8)?,
            fd: FReg(a),
            fa: FReg(b),
            fb: FReg(c),
        },
        OPC_FCMP => MInstr::FCmp { fa: FReg(a), fb: FReg(b) },
        OPC_FTOI => MInstr::FToIntChecked { dst: Reg(a), fs: FReg(b) },
        OPC_FEXP => MInstr::FExponent { dst: Reg(a), fs: FReg(b) },
        OPC_ITOF => MInstr::IntToF { fd: FReg(a), src: Reg(b) },
        OPC_NOP => MInstr::Nop,
        _ => return None,
    };
    Some((instr, 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs(isa: Isa) -> Vec<MInstr> {
        let dst = Reg(1);
        let a = if isa.two_address() { dst } else { Reg(2) };
        vec![
            MInstr::MovImm { dst, imm: 0xdead_beef },
            MInstr::MovReg { dst, src: Reg(0) },
            MInstr::Load { dst, base: Reg(3), off: -8 },
            MInstr::Store { src: Reg(2), base: Reg(3), off: 12 },
            MInstr::Push { src: Reg(0) },
            MInstr::PopR { dst },
            MInstr::AluReg { op: AluOp::Add, dst, a, b: Reg(3) },
            MInstr::AluImm { op: AluOp::Sar, dst, a, imm: 1 },
            MInstr::Cmp { a: Reg(0), b: Reg(1) },
            MInstr::CmpImm { a: Reg(0), imm: 42 },
            MInstr::Jmp { off: -20 },
            MInstr::JmpCc { cc: Cond::Ov, off: 16 },
            MInstr::CallTramp { kind: TrampolineKind::Send, payload: 7 },
            MInstr::Ret,
            MInstr::Brk { code: 1 },
            MInstr::FLoad { fd: FReg(2), base: Reg(0), off: 12 },
            MInstr::FAlu { op: FAluOp::Mul, fd: FReg(0), fa: FReg(1), fb: FReg(2) },
            MInstr::FCmp { fa: FReg(0), fb: FReg(1) },
            MInstr::FToIntChecked { dst, fs: FReg(0) },
            MInstr::FExponent { dst, fs: FReg(1) },
            MInstr::IntToF { fd: FReg(0), src: Reg(2) },
            MInstr::Nop,
        ]
    }

    #[test]
    fn roundtrip_both_isas() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            for instr in sample_instrs(isa) {
                let mut bytes = Vec::new();
                encode_instr(instr, isa, &mut bytes).unwrap();
                let (decoded, len) = decode_instr(&bytes, 0, isa).unwrap();
                assert_eq!(decoded, instr, "{isa:?}");
                assert_eq!(len, bytes.len(), "{isa:?} {instr:?}");
            }
        }
    }

    #[test]
    fn arm_records_are_fixed_length() {
        for instr in sample_instrs(Isa::Arm32ish) {
            let mut bytes = Vec::new();
            encode_instr(instr, Isa::Arm32ish, &mut bytes).unwrap();
            assert_eq!(bytes.len(), 8);
        }
    }

    #[test]
    fn x86_rejects_three_address_alu() {
        let mut out = Vec::new();
        let r = encode_instr(
            MInstr::AluReg { op: AluOp::Add, dst: Reg(0), a: Reg(1), b: Reg(2) },
            Isa::X86ish,
            &mut out,
        );
        assert_eq!(r, Err(EncodeError::TwoAddressViolation));
    }

    #[test]
    fn register_ranges_are_isa_specific() {
        let mut out = Vec::new();
        // r12 valid on ARM32ish, invalid on X86ish.
        assert!(encode_instr(
            MInstr::Push { src: Reg(12) },
            Isa::Arm32ish,
            &mut out
        )
        .is_ok());
        assert_eq!(
            encode_instr(MInstr::Push { src: Reg(12) }, Isa::X86ish, &mut out),
            Err(EncodeError::BadRegister { reg: 12 })
        );
    }

    #[test]
    fn bad_opcode_decodes_to_none() {
        assert!(decode_instr(&[0xFF, 0, 0, 0, 0, 0, 0, 0], 0, Isa::X86ish).is_none());
        assert!(decode_instr(&[0xFF, 0, 0, 0, 0, 0, 0, 0], 0, Isa::Arm32ish).is_none());
        assert!(decode_instr(&[OPC_MOV_IMM, 0], 0, Isa::X86ish).is_none(), "truncated");
    }

    #[test]
    fn out_of_range_register_bytes_fail_to_decode() {
        // A misdirected jump (e.g. an off-by-one displacement) can land
        // the pc on arbitrary bytes whose register fields exceed the
        // ISA's file. The decoder must refuse them — a DecodeFault is a
        // classifiable verdict, a panic in `Machine::reg` is not.
        assert!(decode_instr(&[OPC_PUSH, 8], 0, Isa::X86ish).is_none(), "r8 on 8-reg isa");
        assert!(decode_instr(&[OPC_MOV_REG, 0, 9], 0, Isa::X86ish).is_none(), "bad src");
        assert!(
            decode_instr(&[OPC_PUSH, 16, 0, 0, 0, 0, 0, 0], 0, Isa::Arm32ish).is_none(),
            "r16 on 16-reg isa"
        );
        assert!(
            decode_instr(&[OPC_FLOAD, 4, 0, 0, 0, 0, 0, 0], 0, Isa::Arm32ish).is_none(),
            "f4 exceeds the 4-entry float file"
        );
        // The same bytes with in-range registers stay decodable.
        assert!(decode_instr(&[OPC_PUSH, 7], 0, Isa::X86ish).is_some());
        assert!(decode_instr(&[OPC_PUSH, 15, 0, 0, 0, 0, 0, 0], 0, Isa::Arm32ish).is_some());
    }
}
