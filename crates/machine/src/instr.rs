//! The machine instruction set and ISA descriptions.

/// A general-purpose register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reg(pub u8);

/// A float register (the simulator has four, F0–F3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FReg(pub u8);

/// The two synthetic target ISAs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Isa {
    /// 8 registers, two-address ALU, variable-length encoding.
    X86ish,
    /// 16 registers, three-address ALU, fixed 8-byte encoding.
    Arm32ish,
}

impl Isa {
    /// Number of general-purpose registers.
    pub fn reg_count(self) -> u8 {
        match self {
            Isa::X86ish => 8,
            Isa::Arm32ish => 16,
        }
    }

    /// The stack-pointer register of this ISA's convention.
    pub fn sp(self) -> Reg {
        match self {
            Isa::X86ish => Reg(7),
            Isa::Arm32ish => Reg(13),
        }
    }

    /// The frame-pointer register of this ISA's convention.
    pub fn fp(self) -> Reg {
        match self {
            Isa::X86ish => Reg(6),
            Isa::Arm32ish => Reg(11),
        }
    }

    /// Whether ALU register ops must have `dst == a` (two-address).
    pub fn two_address(self) -> bool {
        matches!(self, Isa::X86ish)
    }

    /// Human-readable name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Isa::X86ish => "x86",
            Isa::Arm32ish => "ARM32",
        }
    }
}

/// Integer ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic shift right.
    Sar,
    /// Logical shift right.
    Shr,
    /// Truncated signed division (`b == 0` yields 0, no trap —
    /// compiled code checks divisors first, like Cog does).
    Div,
    /// Truncated signed remainder (`b == 0` yields 0).
    Rem,
}

impl AluOp {
    pub(crate) fn from_bits(b: u8) -> Option<AluOp> {
        Some(match b {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::And,
            4 => AluOp::Or,
            5 => AluOp::Xor,
            6 => AluOp::Shl,
            7 => AluOp::Sar,
            8 => AluOp::Shr,
            9 => AluOp::Div,
            10 => AluOp::Rem,
            _ => return None,
        })
    }
    pub(crate) fn to_bits(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::And => 3,
            AluOp::Or => 4,
            AluOp::Xor => 5,
            AluOp::Shl => 6,
            AluOp::Sar => 7,
            AluOp::Shr => 8,
            AluOp::Div => 9,
            AluOp::Rem => 10,
        }
    }
}

/// Float ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FAluOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Unary: fractional part of `a` (operand `b` ignored).
    Fract,
}

impl FAluOp {
    pub(crate) fn from_bits(b: u8) -> Option<FAluOp> {
        Some(match b {
            0 => FAluOp::Add,
            1 => FAluOp::Sub,
            2 => FAluOp::Mul,
            3 => FAluOp::Div,
            4 => FAluOp::Fract,
            _ => return None,
        })
    }
    pub(crate) fn to_bits(self) -> u8 {
        match self {
            FAluOp::Add => 0,
            FAluOp::Sub => 1,
            FAluOp::Mul => 2,
            FAluOp::Div => 3,
            FAluOp::Fract => 4,
        }
    }
}

/// Branch conditions over the flags (signed comparisons).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Signed overflow set by the last ALU op.
    Ov,
    /// Signed overflow clear.
    NoOv,
}

impl Cond {
    pub(crate) fn from_bits(b: u8) -> Option<Cond> {
        Some(match b {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            6 => Cond::Ov,
            7 => Cond::NoOv,
            _ => return None,
        })
    }
    pub(crate) fn to_bits(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
            Cond::Ov => 6,
            Cond::NoOv => 7,
        }
    }
}

/// Runtime-call kinds compiled code may perform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrampolineKind {
    /// A message send: halts the machine; selector id in the payload,
    /// receiver/arguments per calling convention.
    Send,
    /// Allocate a boxed float from float register F0; execution
    /// continues with the fresh oop in the payload register.
    AllocFloat,
    /// Allocate an object. The payload packs `size_reg (bits 0..8) |
    /// class_index (bits 8..20) | format (bits 20..24)`; the size is
    /// read untagged from `size_reg`, which receives the fresh oop.
    AllocObject,
}

impl TrampolineKind {
    pub(crate) fn from_bits(b: u8) -> Option<TrampolineKind> {
        Some(match b {
            0 => TrampolineKind::Send,
            1 => TrampolineKind::AllocFloat,
            2 => TrampolineKind::AllocObject,
            _ => return None,
        })
    }
    pub(crate) fn to_bits(self) -> u8 {
        match self {
            TrampolineKind::Send => 0,
            TrampolineKind::AllocFloat => 1,
            TrampolineKind::AllocObject => 2,
        }
    }
}

/// One machine instruction (ISA-independent semantics; the encodings
/// differ per ISA).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MInstr {
    /// `dst ← imm`.
    MovImm {
        /// Destination.
        dst: Reg,
        /// 32-bit immediate.
        imm: u32,
    },
    /// `dst ← src`.
    MovReg {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst ← mem[base + off]` (32-bit).
    Load {
        /// Destination.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i16,
    },
    /// `mem[base + off] ← src`.
    Store {
        /// Source.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Push `src` on the machine stack.
    Push {
        /// Source.
        src: Reg,
    },
    /// Pop the machine stack into `dst`.
    PopR {
        /// Destination.
        dst: Reg,
    },
    /// Three-address ALU (`dst ← a op b`). On two-address ISAs the
    /// encoder requires `dst == a`.
    AluReg {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// ALU with immediate (`dst ← a op imm`).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Immediate.
        imm: u32,
    },
    /// Compare two registers (signed), setting flags.
    Cmp {
        /// Left.
        a: Reg,
        /// Right.
        b: Reg,
    },
    /// Compare a register against an immediate.
    CmpImm {
        /// Left.
        a: Reg,
        /// Immediate.
        imm: u32,
    },
    /// Unconditional pc-relative jump (from the end of this
    /// instruction).
    Jmp {
        /// Displacement in bytes.
        off: i32,
    },
    /// Conditional pc-relative jump.
    JmpCc {
        /// Condition.
        cc: Cond,
        /// Displacement in bytes.
        off: i32,
    },
    /// Runtime call; `Send` halts the machine, the allocation
    /// trampolines run internally and continue. `payload` names a
    /// register for allocations and carries the selector id for sends.
    CallTramp {
        /// Kind of runtime call.
        kind: TrampolineKind,
        /// Selector id (Send) or register number (allocations).
        payload: u32,
    },
    /// Return: pop the return address; the setup sentinel ends the
    /// run.
    Ret,
    /// Breakpoint / Stop (§4.2's fall-through detector); `code`
    /// distinguishes multiple stops in one method.
    Brk {
        /// Which breakpoint.
        code: u8,
    },
    /// Load 8 bytes at `base + off` into a float register.
    FLoad {
        /// Destination float register.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Float ALU.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination.
        fd: FReg,
        /// Left operand.
        fa: FReg,
        /// Right operand (ignored for unary ops).
        fb: FReg,
    },
    /// Compare two float registers, setting flags.
    FCmp {
        /// Left.
        fa: FReg,
        /// Right.
        fb: FReg,
    },
    /// Truncate a float register to a signed integer in `dst`; sets
    /// the overflow flag when the result does not fit the tagged
    /// SmallInteger range.
    FToIntChecked {
        /// Destination.
        dst: Reg,
        /// Source float register.
        fs: FReg,
    },
    /// IEEE exponent of a float register as a signed integer.
    FExponent {
        /// Destination.
        dst: Reg,
        /// Source float register.
        fs: FReg,
    },
    /// Convert a signed integer register to float.
    IntToF {
        /// Destination float register.
        fd: FReg,
        /// Source register.
        src: Reg,
    },
    /// No operation.
    Nop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_conventions() {
        assert_eq!(Isa::X86ish.reg_count(), 8);
        assert_eq!(Isa::Arm32ish.reg_count(), 16);
        assert!(Isa::X86ish.two_address());
        assert!(!Isa::Arm32ish.two_address());
        assert_ne!(Isa::X86ish.sp(), Isa::X86ish.fp());
    }

    #[test]
    fn op_bit_roundtrips() {
        for b in 0..11 {
            assert_eq!(AluOp::from_bits(b).unwrap().to_bits(), b);
        }
        for b in 0..8 {
            assert_eq!(Cond::from_bits(b).unwrap().to_bits(), b);
        }
        for b in 0..5 {
            assert_eq!(FAluOp::from_bits(b).unwrap().to_bits(), b);
        }
        for b in 0..3 {
            assert_eq!(TrampolineKind::from_bits(b).unwrap().to_bits(), b);
        }
        assert!(AluOp::from_bits(11).is_none());
        assert!(Cond::from_bits(8).is_none());
    }
}
