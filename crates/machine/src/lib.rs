//! # igjit-machine — the machine-code simulator
//!
//! The Pharo VM's testing infrastructure runs JIT-compiled code inside
//! a Unicorn-based simulation (Fig. 4 of the paper). This crate is the
//! reproduction's equivalent: a deterministic CPU simulator that
//! executes the back-ends' machine code against the *same*
//! [`igjit_heap::ObjectMemory`] the interpreter uses, which is what
//! makes differential observation of side effects possible.
//!
//! Two synthetic ISAs are provided — [`Isa::X86ish`] (8 registers,
//! two-address ALU, variable-length encoding) and [`Isa::Arm32ish`]
//! (16 registers, three-address ALU, fixed-length encoding) — matching
//! the paper's x86 / ARM32(v5-v7) back-end matrix.
//!
//! Execution halts on:
//! * returning to the caller (sentinel return address),
//! * a breakpoint/Stop instruction (the §4.2 fall-through detector),
//! * a trampoline call (message sends leave compiled code),
//! * an invalid memory access (the simulated segmentation fault).
//!
//! The invalid-access recovery path reproduces the paper's two
//! *simulation error* defects: like the Pharo simulator, it
//! "disassembles the failing instruction and performs a read/write
//! operation using reflection to call the corresponding register
//! setter/getters" — and two float-register setters are missing from
//! the reflection table.
//!
//! ## Example
//!
//! ```
//! use igjit_heap::ObjectMemory;
//! use igjit_machine::*;
//!
//! // Assemble `r0 ← 40; r0 ← r0 + 2; ret` for the x86-ish ISA.
//! let mut code = Vec::new();
//! for i in [
//!     MInstr::MovImm { dst: Reg(0), imm: 40 },
//!     MInstr::AluImm { op: AluOp::Add, dst: Reg(0), a: Reg(0), imm: 2 },
//!     MInstr::Ret,
//! ] {
//!     encode_instr(i, Isa::X86ish, &mut code).unwrap();
//! }
//! let mut mem = ObjectMemory::new();
//! let mut machine = Machine::new(&mut mem, Isa::X86ish, &code);
//! assert_eq!(machine.run(MachineConfig::default()), MachineOutcome::ReturnedToCaller);
//! assert_eq!(machine.reg(Reg(0)), 42);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cpu;
mod disasm;
mod encoding;
mod instr;
mod predecode;

pub use cpu::{Machine, MachineConfig, MachineOutcome, MachineSession, CODE_BASE,
              RETURN_SENTINEL, STACK_BASE, STACK_BYTES};
pub use disasm::{disassemble, disassemble_to_string, DisasmLine};
pub use encoding::{decode_instr, encode_instr, EncodeError};
pub use instr::{AluOp, Cond, FAluOp, Isa, MInstr, Reg, TrampolineKind, FReg};
pub use predecode::PredecodedCode;

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
