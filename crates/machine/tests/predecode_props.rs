//! Property tests of the predecoded execution mode: running a
//! [`PredecodedCode`] artifact is step-for-step identical to running
//! the raw bytes through the per-step decoder — same outcome, same
//! final register file — for arbitrary valid instruction streams
//! (including wild jumps that land mid-instruction, where the
//! predecoded fetch must fall back to the byte decoder) and for
//! arbitrary byte blobs (where both modes must raise the same
//! `DecodeFault`).

use igjit_heap::ObjectMemory;
use igjit_machine::{
    encode_instr, AluOp, Cond, FAluOp, FReg, Isa, MInstr, Machine, MachineConfig,
    MachineSession, PredecodedCode, Reg,
};
use proptest::prelude::*;

fn arb_reg(isa: Isa) -> BoxedStrategy<Reg> {
    (0..isa.reg_count()).prop_map(Reg).boxed()
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..4).prop_map(FReg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Sar),
        Just(AluOp::Shr),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::Ov),
        Just(Cond::NoOv),
    ]
}

/// Executable instructions, including relative jumps with arbitrary
/// displacements — on a variable-length ISA those land mid-instruction
/// more often than not, exercising the predecoded fetch's fallback.
fn arb_instr(isa: Isa) -> impl Strategy<Value = MInstr> {
    let r = arb_reg(isa);
    prop_oneof![
        (r.clone(), any::<u32>()).prop_map(|(dst, imm)| MInstr::MovImm { dst, imm }),
        (r.clone(), r.clone()).prop_map(|(dst, src)| MInstr::MovReg { dst, src }),
        (r.clone(), r.clone(), any::<i16>())
            .prop_map(|(dst, base, off)| MInstr::Load { dst, base, off }),
        (r.clone(), r.clone(), any::<i16>())
            .prop_map(|(src, base, off)| MInstr::Store { src, base, off }),
        r.clone().prop_map(|src| MInstr::Push { src }),
        r.clone().prop_map(|dst| MInstr::PopR { dst }),
        (arb_alu(), r.clone(), r.clone())
            .prop_map(|(op, dst, b)| MInstr::AluReg { op, dst, a: dst, b }),
        (arb_alu(), r.clone(), any::<u32>())
            .prop_map(|(op, dst, imm)| MInstr::AluImm { op, dst, a: dst, imm }),
        (r.clone(), r.clone()).prop_map(|(a, b)| MInstr::Cmp { a, b }),
        (r.clone(), any::<u32>()).prop_map(|(a, imm)| MInstr::CmpImm { a, imm }),
        (-64i32..64).prop_map(|off| MInstr::Jmp { off }),
        (arb_cond(), -64i32..64).prop_map(|(cc, off)| MInstr::JmpCc { cc, off }),
        Just(MInstr::Ret),
        any::<u8>().prop_map(|code| MInstr::Brk { code }),
        (arb_freg(), r.clone(), any::<i16>())
            .prop_map(|(fd, base, off)| MInstr::FLoad { fd, base, off }),
        (arb_freg(), arb_freg(), arb_freg())
            .prop_map(|(fd, fa, fb)| MInstr::FAlu { op: FAluOp::Add, fd, fa, fb }),
        (arb_freg(), arb_freg()).prop_map(|(fa, fb)| MInstr::FCmp { fa, fb }),
        (r.clone(), arb_freg()).prop_map(|(dst, fs)| MInstr::FToIntChecked { dst, fs }),
        (arb_freg(), r).prop_map(|(fd, src)| MInstr::IntToF { fd, src }),
        Just(MInstr::Nop),
    ]
}

/// Runs `code` in both fetch modes from identical pristine state and
/// asserts outcome + final register files match exactly.
fn assert_step_identical(code: &[u8], isa: Isa) {
    let cfg = MachineConfig::default();

    let mut mem_bytes = ObjectMemory::new();
    let mut session_bytes = MachineSession::new();
    let mut byte_machine = Machine::with_session(&mut mem_bytes, isa, code, &mut session_bytes);
    let byte_outcome = byte_machine.run(cfg);
    let byte_regs: Vec<u32> = (0..isa.reg_count()).map(|i| byte_machine.reg(Reg(i))).collect();
    let byte_fregs: Vec<u64> =
        (0..4).map(|i| byte_machine.freg(FReg(i)).to_bits()).collect();
    drop(byte_machine);

    let predecoded = PredecodedCode::new(code, isa);
    let mut mem_pre = ObjectMemory::new();
    let mut session_pre = MachineSession::new();
    let mut pre_machine = Machine::with_predecoded(&mut mem_pre, &predecoded, &mut session_pre);
    let pre_outcome = pre_machine.run(cfg);
    let pre_regs: Vec<u32> = (0..isa.reg_count()).map(|i| pre_machine.reg(Reg(i))).collect();
    let pre_fregs: Vec<u64> = (0..4).map(|i| pre_machine.freg(FReg(i)).to_bits()).collect();

    prop_assert_eq!(byte_outcome, pre_outcome);
    prop_assert_eq!(byte_regs, pre_regs);
    prop_assert_eq!(byte_fregs, pre_fregs);
}

fn encode_stream(instrs: &[MInstr], isa: Isa) -> Vec<u8> {
    let mut code = Vec::new();
    for &i in instrs {
        encode_instr(i, isa, &mut code).expect("generated instructions encode");
    }
    code
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_predecoded_identity_x86(
        instrs in proptest::collection::vec(arb_instr(Isa::X86ish), 1..24)
    ) {
        assert_step_identical(&encode_stream(&instrs, Isa::X86ish), Isa::X86ish);
    }

    #[test]
    fn prop_predecoded_identity_arm(
        instrs in proptest::collection::vec(arb_instr(Isa::Arm32ish), 1..24)
    ) {
        assert_step_identical(&encode_stream(&instrs, Isa::Arm32ish), Isa::Arm32ish);
    }

    #[test]
    fn prop_predecoded_identity_raw_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        // Arbitrary blobs: predecoding stops at the first undecodable
        // offset, so most of the stream executes through the fallback
        // path; both modes must agree, DecodeFault included.
        assert_step_identical(&bytes, Isa::X86ish);
        assert_step_identical(&bytes, Isa::Arm32ish);
    }

    #[test]
    fn prop_predecoded_identity_wild_entry_jump(
        off in 1i32..48,
        instrs in proptest::collection::vec(arb_instr(Isa::X86ish), 1..16)
    ) {
        // A leading jump with a random displacement lands anywhere in
        // the stream — instruction boundary or not. Off-boundary entry
        // must run through the byte decoder in both modes.
        let mut code = Vec::new();
        encode_instr(MInstr::Jmp { off }, Isa::X86ish, &mut code)
            .expect("jump encodes");
        code.extend(encode_stream(&instrs, Isa::X86ish));
        assert_step_identical(&code, Isa::X86ish);
    }
}
