//! Property tests of the machine-code encodings: every well-formed
//! instruction round-trips through encode/decode on both ISAs, and the
//! decoder never panics on arbitrary bytes.

use igjit_machine::{
    decode_instr, disassemble, encode_instr, AluOp, Cond, FAluOp, FReg, Isa, MInstr, Reg,
    TrampolineKind,
};
use proptest::prelude::*;

fn arb_reg(isa: Isa) -> BoxedStrategy<Reg> {
    (0..isa.reg_count()).prop_map(Reg).boxed()
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..4).prop_map(FReg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Sar),
        Just(AluOp::Shr),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::Ov),
        Just(Cond::NoOv),
    ]
}

fn arb_instr(isa: Isa) -> impl Strategy<Value = MInstr> {
    let r = arb_reg(isa);
    prop_oneof![
        (r.clone(), any::<u32>()).prop_map(|(dst, imm)| MInstr::MovImm { dst, imm }),
        (r.clone(), r.clone()).prop_map(|(dst, src)| MInstr::MovReg { dst, src }),
        (r.clone(), r.clone(), any::<i16>())
            .prop_map(|(dst, base, off)| MInstr::Load { dst, base, off }),
        (r.clone(), r.clone(), any::<i16>())
            .prop_map(|(src, base, off)| MInstr::Store { src, base, off }),
        r.clone().prop_map(|src| MInstr::Push { src }),
        r.clone().prop_map(|dst| MInstr::PopR { dst }),
        (arb_alu(), r.clone(), r.clone()).prop_map(move |(op, dst, b)| {
            // Two-address compatible: dst == a always round-trips.
            MInstr::AluReg { op, dst, a: dst, b }
        }),
        (arb_alu(), r.clone(), any::<u32>())
            .prop_map(|(op, dst, imm)| MInstr::AluImm { op, dst, a: dst, imm }),
        (r.clone(), r.clone()).prop_map(|(a, b)| MInstr::Cmp { a, b }),
        (r.clone(), any::<u32>()).prop_map(|(a, imm)| MInstr::CmpImm { a, imm }),
        any::<i32>().prop_map(|off| MInstr::Jmp { off }),
        (arb_cond(), any::<i32>()).prop_map(|(cc, off)| MInstr::JmpCc { cc, off }),
        any::<u32>().prop_map(|p| MInstr::CallTramp { kind: TrampolineKind::Send, payload: p }),
        Just(MInstr::Ret),
        any::<u8>().prop_map(|code| MInstr::Brk { code }),
        (arb_freg(), r.clone(), any::<i16>())
            .prop_map(|(fd, base, off)| MInstr::FLoad { fd, base, off }),
        (arb_freg(), arb_freg(), arb_freg()).prop_map(|(fd, fa, fb)| MInstr::FAlu {
            op: FAluOp::Mul,
            fd,
            fa,
            fb
        }),
        (arb_freg(), arb_freg()).prop_map(|(fa, fb)| MInstr::FCmp { fa, fb }),
        (r.clone(), arb_freg()).prop_map(|(dst, fs)| MInstr::FToIntChecked { dst, fs }),
        (arb_freg(), r).prop_map(|(fd, src)| MInstr::IntToF { fd, src }),
        Just(MInstr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn prop_roundtrip_x86(instr in arb_instr(Isa::X86ish)) {
        let mut bytes = Vec::new();
        encode_instr(instr, Isa::X86ish, &mut bytes).unwrap();
        let (decoded, len) = decode_instr(&bytes, 0, Isa::X86ish).unwrap();
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn prop_roundtrip_arm(instr in arb_instr(Isa::Arm32ish)) {
        let mut bytes = Vec::new();
        encode_instr(instr, Isa::Arm32ish, &mut bytes).unwrap();
        let (decoded, len) = decode_instr(&bytes, 0, Isa::Arm32ish).unwrap();
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(len, 8, "Arm32ish is fixed-width");
    }

    #[test]
    fn prop_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                                 pc in 0usize..70) {
        let _ = decode_instr(&bytes, pc, Isa::X86ish);
        let _ = decode_instr(&bytes, pc, Isa::Arm32ish);
    }

    #[test]
    fn prop_streams_roundtrip(instrs in proptest::collection::vec(arb_instr(Isa::Arm32ish), 0..20)) {
        let mut code = Vec::new();
        for &i in &instrs {
            encode_instr(i, Isa::Arm32ish, &mut code).unwrap();
        }
        let lines = disassemble(&code, Isa::Arm32ish);
        prop_assert_eq!(lines.len(), instrs.len());
        for (line, instr) in lines.iter().zip(&instrs) {
            prop_assert_eq!(&line.instr, instr);
        }
    }
}
