//! The special-selector table.
//!
//! Optimised send bytecodes do not carry a literal selector; they index
//! a VM-global table. Both the interpreter (when a fast path bails out
//! to `normalSend`) and the JIT (when emitting the slow-path call)
//! resolve the same table, which is what lets the differential tester
//! compare *which* message was sent.

/// Selectors reachable from optimised send bytecodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum SpecialSelector {
    Plus,
    Minus,
    LessThan,
    GreaterThan,
    LessOrEqual,
    GreaterOrEqual,
    Equal,
    NotEqual,
    Times,
    Divide,
    Modulo,
    IntegerDivide,
    IdentityEqual,
    BitAnd,
    BitOr,
    BitShift,
    At,
    AtPut,
    Size,
    Value,
    New,
    Class,
}

impl SpecialSelector {
    /// All table entries in index order.
    pub const ALL: [SpecialSelector; 22] = [
        SpecialSelector::Plus,
        SpecialSelector::Minus,
        SpecialSelector::LessThan,
        SpecialSelector::GreaterThan,
        SpecialSelector::LessOrEqual,
        SpecialSelector::GreaterOrEqual,
        SpecialSelector::Equal,
        SpecialSelector::NotEqual,
        SpecialSelector::Times,
        SpecialSelector::Divide,
        SpecialSelector::Modulo,
        SpecialSelector::IntegerDivide,
        SpecialSelector::IdentityEqual,
        SpecialSelector::BitAnd,
        SpecialSelector::BitOr,
        SpecialSelector::BitShift,
        SpecialSelector::At,
        SpecialSelector::AtPut,
        SpecialSelector::Size,
        SpecialSelector::Value,
        SpecialSelector::New,
        SpecialSelector::Class,
    ];

    /// Index in the VM-global special-selector table.
    pub fn index(self) -> u32 {
        Self::ALL.iter().position(|&s| s == self).expect("in ALL") as u32
    }

    /// Recovers a selector from its table index.
    pub fn from_index(index: u32) -> Option<SpecialSelector> {
        Self::ALL.get(index as usize).copied()
    }

    /// The Smalltalk-level selector name.
    pub fn name(self) -> &'static str {
        match self {
            SpecialSelector::Plus => "+",
            SpecialSelector::Minus => "-",
            SpecialSelector::LessThan => "<",
            SpecialSelector::GreaterThan => ">",
            SpecialSelector::LessOrEqual => "<=",
            SpecialSelector::GreaterOrEqual => ">=",
            SpecialSelector::Equal => "=",
            SpecialSelector::NotEqual => "~=",
            SpecialSelector::Times => "*",
            SpecialSelector::Divide => "/",
            SpecialSelector::Modulo => "\\\\",
            SpecialSelector::IntegerDivide => "//",
            SpecialSelector::IdentityEqual => "==",
            SpecialSelector::BitAnd => "bitAnd:",
            SpecialSelector::BitOr => "bitOr:",
            SpecialSelector::BitShift => "bitShift:",
            SpecialSelector::At => "at:",
            SpecialSelector::AtPut => "at:put:",
            SpecialSelector::Size => "size",
            SpecialSelector::Value => "value",
            SpecialSelector::New => "new",
            SpecialSelector::Class => "class",
        }
    }

    /// Number of arguments the selector takes.
    pub fn arg_count(self) -> u32 {
        match self {
            SpecialSelector::Size
            | SpecialSelector::Value
            | SpecialSelector::New
            | SpecialSelector::Class => 0,
            SpecialSelector::AtPut => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, &s) in SpecialSelector::ALL.iter().enumerate() {
            assert_eq!(s.index(), i as u32);
            assert_eq!(SpecialSelector::from_index(i as u32), Some(s));
        }
        assert_eq!(SpecialSelector::from_index(999), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SpecialSelector::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpecialSelector::ALL.len());
    }

    #[test]
    fn arg_counts() {
        assert_eq!(SpecialSelector::Plus.arg_count(), 1);
        assert_eq!(SpecialSelector::AtPut.arg_count(), 2);
        assert_eq!(SpecialSelector::Size.arg_count(), 0);
    }
}
