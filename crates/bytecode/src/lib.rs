//! # igjit-bytecode — the VM's intermediate language
//!
//! A Sista-inspired stack bytecode set: push/store/pop families,
//! inlined special-selector arithmetic with static type prediction,
//! jumps, sends and returns — organised in *families* exactly the way
//! the paper counts Pharo's 255 bytecodes in 77 families.
//!
//! The crate also defines:
//!
//! * [`CompiledMethod`] — the heap layout of methods (header, literal
//!   slots, trailing bytecode bytes) plus a [`MethodBuilder`] assembler,
//! * the [`catalog`](catalog::instruction_catalog) of every *testable*
//!   instruction, which is the instruction universe both the concolic
//!   explorer and Table 2 iterate over,
//! * the [`SpecialSelector`] table backing the optimised send
//!   bytecodes.
//!
//! ## Example
//!
//! ```
//! use igjit_bytecode::{Instruction, MethodBuilder, Family};
//! use igjit_heap::ObjectMemory;
//!
//! let mut mem = ObjectMemory::new();
//! let mut b = MethodBuilder::new(0, 0);
//! b.push_small_int(1);
//! b.push_small_int(2);
//! b.emit(Instruction::Add);
//! b.emit(Instruction::ReturnTop);
//! let method = b.install(&mut mem).unwrap();
//! assert_eq!(Instruction::Add.family(), Family::ArithmeticAdd);
//! assert!(mem.is_live_object(method));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
mod decode;
pub use igjit_heap::fxhash;
mod instr;
mod method;
mod selectors;

pub use catalog::{instruction_catalog, InstructionSpec};
pub use decode::{decode, encode, DecodeError};
pub use instr::{Family, Instruction};
pub use method::{CompiledMethod, MethodBuilder, MethodHeader};
pub use selectors::SpecialSelector;

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
