//! Bytecode encoding and decoding.
//!
//! The encoding is fixed and dense: hot families occupy ranges of
//! single opcode bytes with the index embedded; colder forms take a
//! second operand byte. [`encode`] and [`decode`] are exact inverses
//! for every instruction the set can express (property-tested below).

use crate::instr::Instruction;

/// Errors raised while decoding a bytecode stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The program counter is past the end of the bytecode.
    PcOutOfRange {
        /// Requested pc.
        pc: usize,
        /// Method bytecode length.
        len: usize,
    },
    /// The opcode byte is not assigned.
    UnknownOpcode {
        /// The unassigned byte.
        byte: u8,
        /// Location of the byte.
        pc: usize,
    },
    /// A multi-byte instruction was truncated.
    TruncatedOperand {
        /// Opcode byte of the truncated instruction.
        byte: u8,
        /// Location of the opcode.
        pc: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} out of range (method has {len} bytes)")
            }
            DecodeError::UnknownOpcode { byte, pc } => {
                write!(f, "unknown opcode 0x{byte:02x} at pc {pc}")
            }
            DecodeError::TruncatedOperand { byte, pc } => {
                write!(f, "truncated operand for opcode 0x{byte:02x} at pc {pc}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes the instruction at `pc`, returning it and its byte length.
pub fn decode(bytes: &[u8], pc: usize) -> Result<(Instruction, usize), DecodeError> {
    use Instruction as I;
    let &b = bytes.get(pc).ok_or(DecodeError::PcOutOfRange { pc, len: bytes.len() })?;
    let operand = |off: usize| -> Result<u8, DecodeError> {
        bytes
            .get(pc + off)
            .copied()
            .ok_or(DecodeError::TruncatedOperand { byte: b, pc })
    };
    let one = |i: Instruction| Ok((i, 1));
    match b {
        0x00..=0x0B => one(I::PushReceiverVariable(b)),
        0x0C..=0x17 => one(I::PushTemp(b - 0x0C)),
        0x18..=0x27 => one(I::PushLiteralConstant(b - 0x18)),
        0x28..=0x2F => one(I::PushLiteralVariable(b - 0x28)),
        0x30 => one(I::PushReceiver),
        0x31 => one(I::PushTrue),
        0x32 => one(I::PushFalse),
        0x33 => one(I::PushNil),
        0x34 => one(I::PushZero),
        0x35 => one(I::PushOne),
        0x36 => one(I::PushMinusOne),
        0x37 => one(I::PushTwo),
        0x38 => one(I::Dup),
        0x39 => one(I::Pop),
        0x3A => one(I::PushThisContext),
        0x3B => one(I::Nop),
        0x40 => one(I::Add),
        0x41 => one(I::Subtract),
        0x42 => one(I::LessThan),
        0x43 => one(I::GreaterThan),
        0x44 => one(I::LessOrEqual),
        0x45 => one(I::GreaterOrEqual),
        0x46 => one(I::Equal),
        0x47 => one(I::NotEqual),
        0x48 => one(I::Multiply),
        0x49 => one(I::Divide),
        0x4A => one(I::Modulo),
        0x4B => one(I::IntegerDivide),
        0x4C => one(I::IdentityEqual),
        0x4D => one(I::BitAnd),
        0x4E => one(I::BitOr),
        0x4F => one(I::BitShift),
        0x50 => one(I::SpecialSendAt),
        0x51 => one(I::SpecialSendAtPut),
        0x52 => one(I::SpecialSendSize),
        0x53 => one(I::SpecialSendValue),
        0x54 => one(I::SpecialSendNew),
        0x55 => one(I::SpecialSendClass),
        0x58..=0x5F => one(I::PopIntoTemp(b - 0x58)),
        0x60..=0x67 => one(I::PopIntoReceiverVariable(b - 0x60)),
        0x68..=0x6F => one(I::StoreTemp(b - 0x68)),
        0x70 => one(I::ReturnReceiver),
        0x71 => one(I::ReturnTrue),
        0x72 => one(I::ReturnFalse),
        0x73 => one(I::ReturnNil),
        0x74 => one(I::ReturnTop),
        0x78..=0x7F => one(I::ShortJumpForward(b - 0x78 + 1)),
        0x80..=0x87 => one(I::ShortJumpTrue(b - 0x80 + 1)),
        0x88..=0x8F => one(I::ShortJumpFalse(b - 0x88 + 1)),
        0x90 => Ok((I::LongJumpForward(operand(1)? as i8), 2)),
        0x91 => Ok((I::LongJumpTrue(operand(1)?), 2)),
        0x92 => Ok((I::LongJumpFalse(operand(1)?), 2)),
        0x93 => Ok((I::PushTempLong(operand(1)?), 2)),
        0x94 => Ok((I::StoreTempLong(operand(1)?), 2)),
        0x95 => Ok((I::PushLiteralLong(operand(1)?), 2)),
        0x96 => Ok((I::PushReceiverVariableLong(operand(1)?), 2)),
        0x97 => Ok((I::StoreReceiverVariableLong(operand(1)?), 2)),
        0x98 => Ok((I::PushInteger(operand(1)? as i8), 2)),
        0xA0..=0xA3 => Ok((I::Send { lit: operand(1)?, nargs: b - 0xA0 }, 2)),
        _ => Err(DecodeError::UnknownOpcode { byte: b, pc }),
    }
}

/// Encodes one instruction, appending its bytes to `out`.
///
/// Panics if an embedded index exceeds its short-form range (callers
/// should use the `*Long` variant instead) — this is an assembler
/// usage error, not a runtime condition.
pub fn encode(instr: Instruction, out: &mut Vec<u8>) {
    use Instruction as I;
    let short = |out: &mut Vec<u8>, base: u8, n: u8, max: u8, what: &str| {
        assert!(n <= max, "{what} index {n} exceeds short-form range {max}");
        out.push(base + n);
    };
    match instr {
        I::PushReceiverVariable(n) => short(out, 0x00, n, 11, "receiver variable"),
        I::PushTemp(n) => short(out, 0x0C, n, 11, "temporary"),
        I::PushLiteralConstant(n) => short(out, 0x18, n, 15, "literal"),
        I::PushLiteralVariable(n) => short(out, 0x28, n, 7, "literal variable"),
        I::PushReceiver => out.push(0x30),
        I::PushTrue => out.push(0x31),
        I::PushFalse => out.push(0x32),
        I::PushNil => out.push(0x33),
        I::PushZero => out.push(0x34),
        I::PushOne => out.push(0x35),
        I::PushMinusOne => out.push(0x36),
        I::PushTwo => out.push(0x37),
        I::Dup => out.push(0x38),
        I::Pop => out.push(0x39),
        I::PushThisContext => out.push(0x3A),
        I::Nop => out.push(0x3B),
        I::Add => out.push(0x40),
        I::Subtract => out.push(0x41),
        I::LessThan => out.push(0x42),
        I::GreaterThan => out.push(0x43),
        I::LessOrEqual => out.push(0x44),
        I::GreaterOrEqual => out.push(0x45),
        I::Equal => out.push(0x46),
        I::NotEqual => out.push(0x47),
        I::Multiply => out.push(0x48),
        I::Divide => out.push(0x49),
        I::Modulo => out.push(0x4A),
        I::IntegerDivide => out.push(0x4B),
        I::IdentityEqual => out.push(0x4C),
        I::BitAnd => out.push(0x4D),
        I::BitOr => out.push(0x4E),
        I::BitShift => out.push(0x4F),
        I::SpecialSendAt => out.push(0x50),
        I::SpecialSendAtPut => out.push(0x51),
        I::SpecialSendSize => out.push(0x52),
        I::SpecialSendValue => out.push(0x53),
        I::SpecialSendNew => out.push(0x54),
        I::SpecialSendClass => out.push(0x55),
        I::PopIntoTemp(n) => short(out, 0x58, n, 7, "temporary"),
        I::PopIntoReceiverVariable(n) => short(out, 0x60, n, 7, "receiver variable"),
        I::StoreTemp(n) => short(out, 0x68, n, 7, "temporary"),
        I::ReturnReceiver => out.push(0x70),
        I::ReturnTrue => out.push(0x71),
        I::ReturnFalse => out.push(0x72),
        I::ReturnNil => out.push(0x73),
        I::ReturnTop => out.push(0x74),
        I::ShortJumpForward(n) => short(out, 0x78 - 1, n, 8, "short jump"),
        I::ShortJumpTrue(n) => short(out, 0x80 - 1, n, 8, "short jump"),
        I::ShortJumpFalse(n) => short(out, 0x88 - 1, n, 8, "short jump"),
        I::LongJumpForward(d) => out.extend_from_slice(&[0x90, d as u8]),
        I::LongJumpTrue(d) => out.extend_from_slice(&[0x91, d]),
        I::LongJumpFalse(d) => out.extend_from_slice(&[0x92, d]),
        I::PushTempLong(n) => out.extend_from_slice(&[0x93, n]),
        I::StoreTempLong(n) => out.extend_from_slice(&[0x94, n]),
        I::PushLiteralLong(n) => out.extend_from_slice(&[0x95, n]),
        I::PushReceiverVariableLong(n) => out.extend_from_slice(&[0x96, n]),
        I::StoreReceiverVariableLong(n) => out.extend_from_slice(&[0x97, n]),
        I::PushInteger(v) => out.extend_from_slice(&[0x98, v as u8]),
        I::Send { lit, nargs } => {
            assert!(nargs <= 3, "send arg count {nargs} exceeds encodable range");
            out.extend_from_slice(&[0xA0 + nargs, lit]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::instruction_catalog;
    use proptest::prelude::*;

    #[test]
    fn catalog_instructions_roundtrip() {
        for spec in instruction_catalog() {
            let mut bytes = Vec::new();
            encode(spec.instruction, &mut bytes);
            let (decoded, len) = decode(&bytes, 0).unwrap();
            assert_eq!(decoded, spec.instruction, "bytes {bytes:?}");
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn unknown_and_truncated_opcodes_error() {
        assert!(matches!(
            decode(&[0xFF], 0),
            Err(DecodeError::UnknownOpcode { byte: 0xFF, pc: 0 })
        ));
        assert!(matches!(
            decode(&[0x90], 0),
            Err(DecodeError::TruncatedOperand { byte: 0x90, pc: 0 })
        ));
        assert!(matches!(
            decode(&[], 0),
            Err(DecodeError::PcOutOfRange { pc: 0, len: 0 })
        ));
    }

    #[test]
    fn short_jump_displacements_start_at_one() {
        let (i, _) = decode(&[0x78], 0).unwrap();
        assert_eq!(i, Instruction::ShortJumpForward(1));
        let (i, _) = decode(&[0x7F], 0).unwrap();
        assert_eq!(i, Instruction::ShortJumpForward(8));
    }

    #[test]
    #[should_panic(expected = "exceeds short-form range")]
    fn encoding_out_of_range_short_form_panics() {
        let mut out = Vec::new();
        encode(Instruction::PushTemp(12), &mut out);
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16),
                                    pc in 0usize..20) {
            let _ = decode(&bytes, pc);
        }

        #[test]
        fn prop_two_byte_forms_roundtrip(n in any::<u8>()) {
            for instr in [
                Instruction::PushTempLong(n),
                Instruction::StoreTempLong(n),
                Instruction::PushLiteralLong(n),
                Instruction::PushReceiverVariableLong(n),
                Instruction::StoreReceiverVariableLong(n),
                Instruction::LongJumpTrue(n),
                Instruction::LongJumpFalse(n),
                Instruction::PushInteger(n as i8),
                Instruction::LongJumpForward(n as i8),
            ] {
                let mut bytes = Vec::new();
                encode(instr, &mut bytes);
                let (decoded, len) = decode(&bytes, 0).unwrap();
                prop_assert_eq!(decoded, instr);
                prop_assert_eq!(len, 2);
            }
        }
    }
}
