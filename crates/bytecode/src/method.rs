//! Compiled-method objects.
//!
//! A method lives in the heap as a `CompiledMethod`-format object:
//!
//! ```text
//! slot 0            header (tagged SmallInteger: args/temps/literals/primitive)
//! slot 1            bytecode byte count (tagged SmallInteger)
//! slot 2..2+L       literal oops
//! remaining words   bytecode bytes, packed 4 per word little-endian
//! ```
//!
//! This mirrors Pharo's layout where literal pointers and trailing raw
//! bytecodes share one object, which is why the interpreter can reach
//! everything from the single method oop stored in a stack frame.

use igjit_heap::{ClassIndex, HeapError, HeapResult, ObjectFormat, ObjectMemory, Oop};

use crate::decode::encode;
use crate::instr::Instruction;

/// Decoded method header fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MethodHeader {
    /// Number of declared arguments.
    pub num_args: u8,
    /// Number of non-argument temporaries.
    pub num_temps: u8,
    /// Number of literal slots.
    pub num_literals: u8,
    /// Native-method (primitive) id; 0 means none.
    pub primitive: u16,
}

impl MethodHeader {
    /// Packs the header into its tagged-SmallInteger encoding.
    pub fn pack(self) -> i64 {
        i64::from(self.num_args & 0x0f)
            | (i64::from(self.num_temps & 0x3f) << 4)
            | (i64::from(self.num_literals) << 10)
            | (i64::from(self.primitive & 0x0fff) << 18)
    }

    /// Unpacks a header from its tagged-SmallInteger encoding.
    pub fn unpack(value: i64) -> MethodHeader {
        MethodHeader {
            num_args: (value & 0x0f) as u8,
            num_temps: ((value >> 4) & 0x3f) as u8,
            num_literals: ((value >> 10) & 0xff) as u8,
            primitive: ((value >> 18) & 0x0fff) as u16,
        }
    }
}

/// A read-only view over a compiled method stored in the heap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompiledMethod {
    oop: Oop,
}

const FIXED_SLOTS: u32 = 2; // header + bytecode length

impl CompiledMethod {
    /// Wraps a method oop. The oop is trusted; accessors re-validate.
    pub fn new(oop: Oop) -> CompiledMethod {
        CompiledMethod { oop }
    }

    /// The underlying heap oop.
    pub fn oop(self) -> Oop {
        self.oop
    }

    /// Reads and unpacks the header.
    pub fn header(self, mem: &ObjectMemory) -> HeapResult<MethodHeader> {
        let h = mem.fetch_pointer(self.oop, 0)?;
        if !h.is_small_int() {
            return Err(HeapError::WrongFormat { oop: self.oop });
        }
        Ok(MethodHeader::unpack(h.small_int_value()))
    }

    /// Number of bytecode bytes.
    pub fn bytecode_len(self, mem: &ObjectMemory) -> HeapResult<u32> {
        let n = mem.fetch_pointer(self.oop, 1)?;
        if !n.is_small_int() {
            return Err(HeapError::WrongFormat { oop: self.oop });
        }
        Ok(n.small_int_value() as u32)
    }

    /// Reads literal `index` (0-based).
    pub fn literal(self, mem: &ObjectMemory, index: u32) -> HeapResult<Oop> {
        let header = self.header(mem)?;
        if index >= u32::from(header.num_literals) {
            let size = u32::from(header.num_literals);
            return Err(HeapError::OutOfBoundsSlot { oop: self.oop, index, size });
        }
        mem.fetch_pointer(self.oop, FIXED_SLOTS + index)
    }

    /// Reads the bytecode byte at `pc`.
    pub fn bytecode_at(self, mem: &ObjectMemory, pc: u32) -> HeapResult<u8> {
        let len = self.bytecode_len(mem)?;
        if pc >= len {
            return Err(HeapError::OutOfBoundsSlot { oop: self.oop, index: pc, size: len });
        }
        let header = self.header(mem)?;
        let first_word = FIXED_SLOTS + u32::from(header.num_literals) + pc / 4;
        let word = mem.fetch_pointer(self.oop, first_word)?.0;
        Ok((word >> (8 * (pc % 4))) as u8)
    }

    /// Copies out the full bytecode vector.
    pub fn bytecodes(self, mem: &ObjectMemory) -> HeapResult<Vec<u8>> {
        let len = self.bytecode_len(mem)?;
        (0..len).map(|pc| self.bytecode_at(mem, pc)).collect()
    }
}

/// Assembles a compiled method and installs it into a heap.
#[derive(Clone, Debug, Default)]
pub struct MethodBuilder {
    num_args: u8,
    num_temps: u8,
    primitive: u16,
    literals: Vec<Oop>,
    bytes: Vec<u8>,
}

impl MethodBuilder {
    /// Starts a method with `num_args` arguments and `num_temps`
    /// additional temporaries.
    pub fn new(num_args: u8, num_temps: u8) -> MethodBuilder {
        MethodBuilder { num_args, num_temps, ..MethodBuilder::default() }
    }

    /// Declares a native-method (primitive) id for this method.
    pub fn primitive(&mut self, id: u16) -> &mut Self {
        self.primitive = id;
        self
    }

    /// Adds a literal, returning its index (deduplicates exact oops).
    pub fn add_literal(&mut self, oop: Oop) -> u8 {
        if let Some(i) = self.literals.iter().position(|&l| l == oop) {
            return i as u8;
        }
        let i = self.literals.len();
        assert!(i < 256, "too many literals");
        self.literals.push(oop);
        i as u8
    }

    /// Appends one instruction.
    pub fn emit(&mut self, instr: Instruction) -> &mut Self {
        encode(instr, &mut self.bytes);
        self
    }

    /// Appends raw bytes (used by tests exercising the decoder).
    pub fn emit_raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Emits the shortest push of a SmallInteger constant, spilling to
    /// a literal when the value fits neither a special push nor an i8.
    pub fn push_small_int(&mut self, value: i64) -> &mut Self {
        match value {
            0 => self.emit(Instruction::PushZero),
            1 => self.emit(Instruction::PushOne),
            -1 => self.emit(Instruction::PushMinusOne),
            2 => self.emit(Instruction::PushTwo),
            v if (-128..=127).contains(&v) => self.emit(Instruction::PushInteger(v as i8)),
            v => {
                let lit = self.add_literal(Oop::from_small_int(v));
                if lit < 16 {
                    self.emit(Instruction::PushLiteralConstant(lit))
                } else {
                    self.emit(Instruction::PushLiteralLong(lit))
                }
            }
        }
    }

    /// Emits a push of an arbitrary literal oop.
    pub fn push_literal(&mut self, oop: Oop) -> &mut Self {
        let lit = self.add_literal(oop);
        if lit < 16 {
            self.emit(Instruction::PushLiteralConstant(lit))
        } else {
            self.emit(Instruction::PushLiteralLong(lit))
        }
    }

    /// Current bytecode length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no bytecode was emitted yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Allocates the method object in `mem`.
    pub fn install(&self, mem: &mut ObjectMemory) -> HeapResult<Oop> {
        let header = MethodHeader {
            num_args: self.num_args,
            num_temps: self.num_temps,
            num_literals: self.literals.len() as u8,
            primitive: self.primitive,
        };
        let byte_words = (self.bytes.len() as u32).div_ceil(4);
        let slots = FIXED_SLOTS + self.literals.len() as u32 + byte_words;
        let oop = mem.allocate(ClassIndex::COMPILED_METHOD, ObjectFormat::CompiledMethod, slots)?;
        mem.store_pointer(oop, 0, Oop::from_small_int(header.pack()))?;
        mem.store_pointer(oop, 1, Oop::from_small_int(self.bytes.len() as i64))?;
        for (i, &lit) in self.literals.iter().enumerate() {
            mem.store_pointer(oop, FIXED_SLOTS + i as u32, lit)?;
        }
        for (i, chunk) in self.bytes.chunks(4).enumerate() {
            let mut word: u32 = 0;
            for (j, &b) in chunk.iter().enumerate() {
                word |= u32::from(b) << (8 * j);
            }
            mem.store_pointer(
                oop,
                FIXED_SLOTS + self.literals.len() as u32 + i as u32,
                Oop(word),
            )?;
        }
        Ok(oop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_pack_unpack_roundtrip() {
        let h = MethodHeader { num_args: 3, num_temps: 17, num_literals: 200, primitive: 4095 };
        assert_eq!(MethodHeader::unpack(h.pack()), h);
        let zero = MethodHeader { num_args: 0, num_temps: 0, num_literals: 0, primitive: 0 };
        assert_eq!(MethodHeader::unpack(0), zero);
    }

    #[test]
    fn build_and_read_back_method() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(2, 1);
        let lit = b.add_literal(Oop::from_small_int(777));
        b.emit(Instruction::PushLiteralConstant(lit));
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::Add);
        b.emit(Instruction::ReturnTop);
        let m = CompiledMethod::new(b.install(&mut mem).unwrap());

        let h = m.header(&mem).unwrap();
        assert_eq!(h.num_args, 2);
        assert_eq!(h.num_temps, 1);
        assert_eq!(h.num_literals, 1);
        assert_eq!(m.literal(&mem, 0).unwrap().small_int_value(), 777);
        assert_eq!(m.bytecodes(&mem).unwrap(), vec![0x18, 0x0C, 0x40, 0x74]);
    }

    #[test]
    fn literal_bounds_are_checked() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.emit(Instruction::ReturnNil);
        let m = CompiledMethod::new(b.install(&mut mem).unwrap());
        assert!(m.literal(&mem, 0).is_err());
        assert!(m.bytecode_at(&mem, 1).is_err());
        assert_eq!(m.bytecode_at(&mem, 0).unwrap(), 0x73);
    }

    #[test]
    fn literals_are_deduplicated() {
        let mut b = MethodBuilder::new(0, 0);
        let a = b.add_literal(Oop::from_small_int(5));
        let c = b.add_literal(Oop::from_small_int(5));
        let d = b.add_literal(Oop::from_small_int(6));
        assert_eq!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn push_small_int_picks_shortest_form() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.push_small_int(0);
        b.push_small_int(100);
        b.push_small_int(100_000);
        let m = CompiledMethod::new(b.install(&mut mem).unwrap());
        let bytes = m.bytecodes(&mem).unwrap();
        assert_eq!(bytes[0], 0x34); // PushZero
        assert_eq!(bytes[1], 0x98); // PushInteger
        assert_eq!(bytes[3], 0x18); // PushLiteralConstant(0)
        assert_eq!(m.literal(&mem, 0).unwrap().small_int_value(), 100_000);
    }

    proptest! {
        #[test]
        fn prop_bytecode_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64),
                                         nlits in 0u8..8) {
            let mut mem = ObjectMemory::new();
            let mut b = MethodBuilder::new(1, 2);
            for i in 0..nlits {
                b.add_literal(Oop::from_small_int(i64::from(i) + 1000));
            }
            b.emit_raw(&data);
            let m = CompiledMethod::new(b.install(&mut mem).unwrap());
            prop_assert_eq!(m.bytecodes(&mem).unwrap(), data);
            prop_assert_eq!(m.header(&mem).unwrap().num_literals, nlits);
        }
    }
}
