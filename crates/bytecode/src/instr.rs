//! The instruction set and its family structure.

use crate::selectors::SpecialSelector;

/// A decoded bytecode instruction.
///
/// Index-carrying variants correspond to *ranges* of opcode bytes
/// (e.g. `PushTemp(0)`..`PushTemp(11)` are twelve distinct opcodes of
/// one family), mirroring how the Sista set encodes its hot cases in
/// single bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    // --- pushes ---------------------------------------------------------
    /// Push the receiver's instance variable `n` (0..=11 short forms).
    PushReceiverVariable(u8),
    /// Push temporary/argument `n` (0..=11 short forms).
    PushTemp(u8),
    /// Push method literal `n` (0..=15 short forms).
    PushLiteralConstant(u8),
    /// Push the value slot of the association stored as literal `n`
    /// (0..=7 short forms).
    PushLiteralVariable(u8),
    /// Push the receiver.
    PushReceiver,
    /// Push `true`.
    PushTrue,
    /// Push `false`.
    PushFalse,
    /// Push `nil`.
    PushNil,
    /// Push the SmallInteger 0.
    PushZero,
    /// Push the SmallInteger 1.
    PushOne,
    /// Push the SmallInteger -1.
    PushMinusOne,
    /// Push the SmallInteger 2.
    PushTwo,
    /// Push a signed 8-bit immediate SmallInteger (two-byte form).
    PushInteger(i8),
    /// Push the reified stack frame (unsupported by the prototype; the
    /// curation step of §5.2 excludes its paths).
    PushThisContext,

    // --- stack shuffling --------------------------------------------------
    /// Duplicate the top of the operand stack.
    Dup,
    /// Discard the top of the operand stack.
    Pop,

    // --- stores -----------------------------------------------------------
    /// Pop the stack top into temporary `n` (0..=7 short forms).
    PopIntoTemp(u8),
    /// Pop the stack top into receiver instance variable `n` (0..=7).
    PopIntoReceiverVariable(u8),
    /// Store (without popping) into temporary `n` (0..=7).
    StoreTemp(u8),
    /// Two-byte push of temporary `n`.
    PushTempLong(u8),
    /// Two-byte store into temporary `n`.
    StoreTempLong(u8),
    /// Two-byte push of literal `n`.
    PushLiteralLong(u8),
    /// Two-byte push of receiver instance variable `n`.
    PushReceiverVariableLong(u8),
    /// Two-byte store into receiver instance variable `n`.
    StoreReceiverVariableLong(u8),

    // --- inlined special-selector sends ------------------------------------
    /// `+` with static type prediction (SmallInteger and Float paths
    /// inlined in the interpreter — Listing 1 of the paper).
    Add,
    /// `-` with static type prediction.
    Subtract,
    /// `<` with static type prediction.
    LessThan,
    /// `>` with static type prediction.
    GreaterThan,
    /// `<=` with static type prediction.
    LessOrEqual,
    /// `>=` with static type prediction.
    GreaterOrEqual,
    /// `=` with static type prediction.
    Equal,
    /// `~=` with static type prediction.
    NotEqual,
    /// `*` with static type prediction.
    Multiply,
    /// `/` with static type prediction (fails on inexact division).
    Divide,
    /// `\\` (modulo) with SmallInteger fast path.
    Modulo,
    /// `//` (floor division) with SmallInteger fast path.
    IntegerDivide,
    /// `==` — identity comparison, always inlined, cannot fail.
    IdentityEqual,
    /// `bitAnd:` with SmallInteger fast path.
    BitAnd,
    /// `bitOr:` with SmallInteger fast path.
    BitOr,
    /// `bitShift:` with SmallInteger fast path.
    BitShift,

    // --- special sends with quick paths -------------------------------------
    /// `at:` — quick path for Arrays with in-range SmallInteger index.
    SpecialSendAt,
    /// `at:put:` — quick path for Arrays with in-range index.
    SpecialSendAtPut,
    /// `size` — quick path for Arrays and ByteArrays.
    SpecialSendSize,
    /// `value` — plain message send (block evaluation).
    SpecialSendValue,
    /// `new` — plain message send.
    SpecialSendNew,
    /// `class` — plain message send (class objects are not reified in
    /// this reproduction).
    SpecialSendClass,

    // --- generic sends -------------------------------------------------------
    /// Send the selector stored as literal `lit` to a receiver with
    /// `nargs` arguments (0..=3 encoded in the opcode byte).
    Send {
        /// Literal index holding the selector symbol.
        lit: u8,
        /// Argument count.
        nargs: u8,
    },

    // --- returns ---------------------------------------------------------------
    /// Return the receiver.
    ReturnReceiver,
    /// Return `true`.
    ReturnTrue,
    /// Return `false`.
    ReturnFalse,
    /// Return `nil`.
    ReturnNil,
    /// Return the top of the operand stack.
    ReturnTop,

    // --- jumps --------------------------------------------------------------------
    /// Short unconditional forward jump of `n` bytes (1..=8).
    ShortJumpForward(u8),
    /// Short jump of `n` bytes if the stack top is `true` (1..=8).
    ShortJumpTrue(u8),
    /// Short jump of `n` bytes if the stack top is `false` (1..=8).
    ShortJumpFalse(u8),
    /// Two-byte unconditional jump, signed displacement.
    LongJumpForward(i8),
    /// Two-byte conditional jump on `true`.
    LongJumpTrue(u8),
    /// Two-byte conditional jump on `false`.
    LongJumpFalse(u8),

    /// No operation.
    Nop,
}

/// The family an instruction belongs to.
///
/// Families group opcode bytes sharing one semantic implementation —
/// the unit the paper's defect-cause analysis (§5.3) deduplicates on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum Family {
    PushReceiverVariable,
    PushTemporary,
    PushLiteralConstant,
    PushLiteralVariable,
    PushReceiver,
    PushConstant,
    PushImmediate,
    PushThisContext,
    Dup,
    Pop,
    PopIntoTemp,
    PopIntoReceiverVariable,
    StoreTemp,
    StoreReceiverVariable,
    ArithmeticAdd,
    ArithmeticSubtract,
    ArithmeticMultiply,
    ArithmeticDivide,
    ArithmeticModulo,
    ArithmeticIntegerDivide,
    CompareLess,
    CompareGreater,
    CompareLessOrEqual,
    CompareGreaterOrEqual,
    CompareEqual,
    CompareNotEqual,
    IdentityEqual,
    BitwiseAnd,
    BitwiseOr,
    BitwiseShift,
    SpecialSendAt,
    SpecialSendAtPut,
    SpecialSendSize,
    SpecialSendOther,
    Send,
    Return,
    JumpUnconditional,
    JumpConditional,
    Nop,
}

impl Instruction {
    /// The family this instruction belongs to.
    pub fn family(self) -> Family {
        use Instruction as I;
        match self {
            I::PushReceiverVariable(_) | I::PushReceiverVariableLong(_) => {
                Family::PushReceiverVariable
            }
            I::PushTemp(_) | I::PushTempLong(_) => Family::PushTemporary,
            I::PushLiteralConstant(_) | I::PushLiteralLong(_) => Family::PushLiteralConstant,
            I::PushLiteralVariable(_) => Family::PushLiteralVariable,
            I::PushReceiver => Family::PushReceiver,
            I::PushTrue | I::PushFalse | I::PushNil | I::PushZero | I::PushOne
            | I::PushMinusOne | I::PushTwo => Family::PushConstant,
            I::PushInteger(_) => Family::PushImmediate,
            I::PushThisContext => Family::PushThisContext,
            I::Dup => Family::Dup,
            I::Pop => Family::Pop,
            I::PopIntoTemp(_) => Family::PopIntoTemp,
            I::PopIntoReceiverVariable(_) => Family::PopIntoReceiverVariable,
            I::StoreTemp(_) | I::StoreTempLong(_) => Family::StoreTemp,
            I::StoreReceiverVariableLong(_) => Family::StoreReceiverVariable,
            I::Add => Family::ArithmeticAdd,
            I::Subtract => Family::ArithmeticSubtract,
            I::Multiply => Family::ArithmeticMultiply,
            I::Divide => Family::ArithmeticDivide,
            I::Modulo => Family::ArithmeticModulo,
            I::IntegerDivide => Family::ArithmeticIntegerDivide,
            I::LessThan => Family::CompareLess,
            I::GreaterThan => Family::CompareGreater,
            I::LessOrEqual => Family::CompareLessOrEqual,
            I::GreaterOrEqual => Family::CompareGreaterOrEqual,
            I::Equal => Family::CompareEqual,
            I::NotEqual => Family::CompareNotEqual,
            I::IdentityEqual => Family::IdentityEqual,
            I::BitAnd => Family::BitwiseAnd,
            I::BitOr => Family::BitwiseOr,
            I::BitShift => Family::BitwiseShift,
            I::SpecialSendAt => Family::SpecialSendAt,
            I::SpecialSendAtPut => Family::SpecialSendAtPut,
            I::SpecialSendSize => Family::SpecialSendSize,
            I::SpecialSendValue | I::SpecialSendNew | I::SpecialSendClass => {
                Family::SpecialSendOther
            }
            I::Send { .. } => Family::Send,
            I::ReturnReceiver | I::ReturnTrue | I::ReturnFalse | I::ReturnNil | I::ReturnTop => {
                Family::Return
            }
            I::ShortJumpForward(_) | I::LongJumpForward(_) => Family::JumpUnconditional,
            I::ShortJumpTrue(_) | I::ShortJumpFalse(_) | I::LongJumpTrue(_)
            | I::LongJumpFalse(_) => Family::JumpConditional,
            I::Nop => Family::Nop,
        }
    }

    /// The special selector an inlined send instruction stands for, if
    /// this instruction is an optimised send.
    pub fn special_selector(self) -> Option<SpecialSelector> {
        use Instruction as I;
        Some(match self {
            I::Add => SpecialSelector::Plus,
            I::Subtract => SpecialSelector::Minus,
            I::LessThan => SpecialSelector::LessThan,
            I::GreaterThan => SpecialSelector::GreaterThan,
            I::LessOrEqual => SpecialSelector::LessOrEqual,
            I::GreaterOrEqual => SpecialSelector::GreaterOrEqual,
            I::Equal => SpecialSelector::Equal,
            I::NotEqual => SpecialSelector::NotEqual,
            I::Multiply => SpecialSelector::Times,
            I::Divide => SpecialSelector::Divide,
            I::Modulo => SpecialSelector::Modulo,
            I::IntegerDivide => SpecialSelector::IntegerDivide,
            I::IdentityEqual => SpecialSelector::IdentityEqual,
            I::BitAnd => SpecialSelector::BitAnd,
            I::BitOr => SpecialSelector::BitOr,
            I::BitShift => SpecialSelector::BitShift,
            I::SpecialSendAt => SpecialSelector::At,
            I::SpecialSendAtPut => SpecialSelector::AtPut,
            I::SpecialSendSize => SpecialSelector::Size,
            I::SpecialSendValue => SpecialSelector::Value,
            I::SpecialSendNew => SpecialSelector::New,
            I::SpecialSendClass => SpecialSelector::Class,
            _ => return None,
        })
    }

    /// Number of operand-stack values this instruction consumes before
    /// doing anything else. Used by the test compiler (§4.2) to decide
    /// how many literals to pre-push.
    pub fn stack_arity(self) -> u32 {
        use Instruction as I;
        match self {
            I::Add | I::Subtract | I::Multiply | I::Divide | I::Modulo | I::IntegerDivide
            | I::LessThan | I::GreaterThan | I::LessOrEqual | I::GreaterOrEqual | I::Equal
            | I::NotEqual | I::IdentityEqual | I::BitAnd | I::BitOr | I::BitShift
            | I::SpecialSendAt => 2,
            I::SpecialSendAtPut => 3,
            I::Pop | I::Dup | I::ReturnTop | I::PopIntoTemp(_) | I::PopIntoReceiverVariable(_)
            | I::StoreTemp(_) | I::StoreTempLong(_) | I::StoreReceiverVariableLong(_)
            | I::ShortJumpTrue(_) | I::ShortJumpFalse(_) | I::LongJumpTrue(_)
            | I::LongJumpFalse(_) | I::SpecialSendSize | I::SpecialSendValue
            | I::SpecialSendNew | I::SpecialSendClass => 1,
            I::Send { nargs, .. } => u32::from(nargs) + 1,
            _ => 0,
        }
    }

    /// The *exploration representative* of this instruction: the
    /// family member whose concolic path tree is structurally
    /// identical up to the immediate operand, so one exploration per
    /// representative can be replayed for every member.
    ///
    /// Only immediates that provably never enter a path condition are
    /// abstracted: jump displacements (the displacement is an exit
    /// payload, never a constraint), pushed constants, and the
    /// constant-return group. Index-carrying forms (`PushTemp(n)`,
    /// slot stores, …) keep their operand — the index appears in
    /// recorded bounds constraints, so their trees genuinely differ.
    ///
    /// Sharing stays sound even if a mapping here were too eager: the
    /// family replay verifies the member's recorded constraints and
    /// exit shapes against the representative's and falls back to a
    /// full exploration on any mismatch.
    pub fn family_rep(self) -> Instruction {
        use Instruction as I;
        match self {
            I::PushTrue | I::PushFalse | I::PushNil | I::PushZero | I::PushOne
            | I::PushMinusOne | I::PushTwo => I::PushTrue,
            I::PushInteger(_) => I::PushInteger(2),
            I::ReturnTrue | I::ReturnFalse | I::ReturnNil => I::ReturnTrue,
            I::ShortJumpForward(_) => I::ShortJumpForward(1),
            I::ShortJumpTrue(_) => I::ShortJumpTrue(1),
            I::ShortJumpFalse(_) => I::ShortJumpFalse(1),
            I::LongJumpForward(_) => I::LongJumpForward(2),
            I::LongJumpTrue(_) => I::LongJumpTrue(2),
            I::LongJumpFalse(_) => I::LongJumpFalse(2),
            other => other,
        }
    }

    /// Whether this instruction is a conditional or unconditional jump.
    pub fn is_jump(self) -> bool {
        matches!(
            self.family(),
            Family::JumpConditional | Family::JumpUnconditional
        )
    }

    /// A stable human-readable mnemonic.
    pub fn mnemonic(self) -> String {
        format!("{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_group_short_and_long_forms() {
        assert_eq!(
            Instruction::PushTemp(3).family(),
            Instruction::PushTempLong(40).family()
        );
        assert_eq!(
            Instruction::PushReceiverVariable(0).family(),
            Instruction::PushReceiverVariableLong(99).family()
        );
    }

    #[test]
    fn arithmetic_instructions_have_selectors() {
        assert_eq!(
            Instruction::Add.special_selector(),
            Some(SpecialSelector::Plus)
        );
        assert_eq!(Instruction::PushReceiver.special_selector(), None);
    }

    #[test]
    fn stack_arity_matches_semantics() {
        assert_eq!(Instruction::Add.stack_arity(), 2);
        assert_eq!(Instruction::SpecialSendAtPut.stack_arity(), 3);
        assert_eq!(Instruction::Send { lit: 0, nargs: 2 }.stack_arity(), 3);
        assert_eq!(Instruction::PushReceiver.stack_arity(), 0);
        assert_eq!(Instruction::Pop.stack_arity(), 1);
    }

    #[test]
    fn jump_classification() {
        assert!(Instruction::ShortJumpForward(3).is_jump());
        assert!(Instruction::LongJumpFalse(10).is_jump());
        assert!(!Instruction::Add.is_jump());
    }

    #[test]
    fn family_reps_abstract_only_constraint_free_immediates() {
        // Constant pushes collapse onto one representative.
        assert_eq!(Instruction::PushNil.family_rep(), Instruction::PushTrue);
        assert_eq!(Instruction::PushZero.family_rep(), Instruction::PushTrue);
        assert_eq!(
            Instruction::PushInteger(-7).family_rep(),
            Instruction::PushInteger(2)
        );
        // Jump displacements never enter a path condition.
        assert_eq!(
            Instruction::ShortJumpTrue(8).family_rep(),
            Instruction::ShortJumpTrue(1)
        );
        assert_eq!(
            Instruction::LongJumpForward(-3).family_rep(),
            Instruction::LongJumpForward(2)
        );
        // Indexed accesses keep their operand: the index appears in
        // bounds constraints, so the trees genuinely differ.
        assert_eq!(
            Instruction::PushTemp(3).family_rep(),
            Instruction::PushTemp(3)
        );
        assert_eq!(
            Instruction::PushReceiverVariable(1).family_rep(),
            Instruction::PushReceiverVariable(1)
        );
        // A representative is its own representative (idempotence),
        // and never leaves the member's family.
        for spec in crate::instruction_catalog() {
            let rep = spec.instruction.family_rep();
            assert_eq!(rep.family_rep(), rep);
            assert_eq!(rep.family(), spec.instruction.family());
        }
    }
}
