//! The testable-instruction catalog.
//!
//! The paper's Table 2 counts *instructions* (opcode bytes), not
//! families: `PushTemp(0)` and `PushTemp(1)` are two tested
//! instructions of one family. This module enumerates every opcode the
//! set defines, with canonical operand bytes for the multi-byte forms,
//! producing the instruction universe that the concolic explorer, the
//! differential campaign and the Table 2 harness all iterate over.

use crate::decode::decode;
use crate::instr::{Family, Instruction};

/// One testable instruction: the opcode byte, a canonical decoded form
/// and its family.
#[derive(Clone, Debug)]
pub struct InstructionSpec {
    /// The opcode byte.
    pub opcode: u8,
    /// Canonical decoded instruction (representative operands for
    /// multi-byte forms).
    pub instruction: Instruction,
    /// The semantic family.
    pub family: Family,
}

/// Canonical operand byte used when enumerating two-byte instructions.
const CANONICAL_OPERAND: u8 = 2;

/// Enumerates every instruction in the set, in opcode order.
pub fn instruction_catalog() -> Vec<InstructionSpec> {
    let mut specs = Vec::new();
    for opcode in 0u8..=0xA3 {
        let bytes = [opcode, CANONICAL_OPERAND];
        if let Ok((instruction, _)) = decode(&bytes, 0) {
            specs.push(InstructionSpec { opcode, instruction, family: instruction.family() });
        }
    }
    specs
}

/// Number of distinct families in the catalog.
pub fn family_count() -> usize {
    let mut families: Vec<Family> = instruction_catalog().iter().map(|s| s.family).collect();
    families.sort_unstable();
    families.dedup();
    families.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_dense_enough() {
        let catalog = instruction_catalog();
        // The Sista set the paper tests has 255 bytecodes in 77 families;
        // our reproduction set defines >120 opcodes in >30 families.
        assert!(catalog.len() >= 120, "only {} opcodes", catalog.len());
        assert!(family_count() >= 30, "only {} families", family_count());
    }

    #[test]
    fn catalog_opcodes_are_unique_and_sorted() {
        let catalog = instruction_catalog();
        for w in catalog.windows(2) {
            assert!(w[0].opcode < w[1].opcode);
        }
    }

    #[test]
    fn every_family_has_a_member() {
        let catalog = instruction_catalog();
        for fam in [
            Family::PushTemporary,
            Family::ArithmeticAdd,
            Family::JumpConditional,
            Family::Send,
            Family::Return,
        ] {
            assert!(catalog.iter().any(|s| s.family == fam), "{fam:?} missing");
        }
    }
}
