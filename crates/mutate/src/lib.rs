//! Fault injection for the JIT under test.
//!
//! The differential harness claims to *find* compiler defects; this
//! crate measures what it would *miss*. A catalog of mutation
//! operators — each a small, systematic fault a compiler writer could
//! plausibly introduce — is threaded through `igjit-jit`'s layers
//! (bytecode front-ends, register allocator, calling convention,
//! back-ends, compiled-code cache). The `mutation_campaign` driver
//! arms one mutant at a time, reruns the differential sweep and
//! reports a kill/survive verdict per mutant: the kill rate is the
//! harness's mutation score, and the survivor list is its blind-spot
//! inventory.
//!
//! ## Injection mechanism
//!
//! The injector is a single process-global word. Compile-time sites
//! ask [`armed`]`(id)` — one relaxed atomic load and a compare —
//! so the disabled injector is a branch-never-taken no-op and the
//! compiled artifacts are byte-identical to a build without any
//! injection sites taken (`tests/mutation_identity.rs` enforces this).
//! At most one mutant is armed at a time: mutants model *one* fault
//! slipping into a compiler, and single-arming keeps every kill
//! attributable.
//!
//! Arming is guarded by a process-wide lock ([`MutantGuard`]): tests
//! that arm a mutant serialize against each other, and disarming is
//! tied to guard drop so a panicking test cannot leak an armed mutant
//! into its neighbours. Campaign worker threads may freely *read* the
//! armed word while a sweep runs — the mutant is constant for the
//! guard's lifetime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Stable identifier of a mutation operator.
///
/// Ids are grouped by the JIT layer they afflict — `1xx` bytecode
/// front-ends, `2xx` register allocator, `3xx` calling convention,
/// `4xx` back-end lowering, `5xx` compiled-code cache — and never
/// reused: benchmark history (`BENCH_mutation.json`) and the CI
/// expectation file key on them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MutantId(pub u32);

/// The JIT layer a mutation operator afflicts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Layer {
    /// The bytecode front-ends (`bytecode_compiler.rs`): type/overflow
    /// guards, condition codes, frame/field offsets, fast-path bodies.
    BytecodeCompiler,
    /// The linear-scan register allocator (`regalloc.rs`): spill slot
    /// addressing, reload/store elision, interval bookkeeping.
    RegisterAllocator,
    /// The fixed-role register convention (`convention.rs`): aliased
    /// argument/scratch/frame registers.
    Convention,
    /// The per-ISA lowering (`backend.rs`): jump displacements,
    /// condition codes, two-address move fixups.
    Backend,
    /// The compiled-code cache (`cache.rs`): key bits dropped so
    /// distinct compilations collide.
    CodeCache,
}

impl Layer {
    /// Human-readable layer name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::BytecodeCompiler => "bytecode compiler",
            Layer::RegisterAllocator => "register allocator",
            Layer::Convention => "calling convention",
            Layer::Backend => "backend",
            Layer::CodeCache => "code cache",
        }
    }

    /// All layers, in id order.
    pub const ALL: [Layer; 5] = [
        Layer::BytecodeCompiler,
        Layer::RegisterAllocator,
        Layer::Convention,
        Layer::Backend,
        Layer::CodeCache,
    ];
}

/// One mutation operator: a stable id, a kebab-case name, the layer it
/// lives in, what it breaks, and the Table 3 defect family a kill is
/// expected to be attributed to (`"none"` for designed equivalent
/// mutants, which are *expected* survivors).
#[derive(Clone, Copy, Debug)]
pub struct MutationOp {
    /// Stable identifier (see [`MutantId`] for the numbering scheme).
    pub id: MutantId,
    /// Kebab-case operator name, accepted wherever an id is.
    pub name: &'static str,
    /// The JIT layer the injection site lives in.
    pub layer: Layer,
    /// What the armed mutant does to the compiled code.
    pub description: &'static str,
    /// Expected Table 3 category of the kill (matches
    /// `DefectCategory::name()`), or `"none"` when the mutant is
    /// semantically equivalent by design and should survive.
    pub expected_category: &'static str,
}

/// Mutant id constants, one per catalog entry.
pub mod ops {
    use super::MutantId;

    // --- 1xx: bytecode front-ends -------------------------------------
    /// Drop the overflow guard after the inlined SmallInteger `+`.
    pub const DROP_ADD_OVERFLOW_CHECK: MutantId = MutantId(101);
    /// Drop the overflow guard after the inlined SmallInteger `-`.
    pub const DROP_SUB_OVERFLOW_CHECK: MutantId = MutantId(102);
    /// Drop the overflow guard after the inlined SmallInteger `*`.
    pub const DROP_MUL_OVERFLOW_CHECK: MutantId = MutantId(103);
    /// Drop the receiver tag check of inlined arithmetic.
    pub const DROP_RECEIVER_SMALLINT_CHECK: MutantId = MutantId(104);
    /// Drop the argument tag check of inlined arithmetic.
    pub const DROP_ARG_SMALLINT_CHECK: MutantId = MutantId(105);
    /// Negate the condition code of inlined comparisons.
    pub const FLIP_COMPARE_COND: MutantId = MutantId(106);
    /// Swap the operands of the inlined comparison's `cmp`.
    pub const SWAP_COMPARE_OPERANDS: MutantId = MutantId(107);
    /// Drop both tag checks of inlined comparisons.
    pub const DROP_COMPARE_SMALLINT_CHECKS: MutantId = MutantId(108);
    /// Drop the divisor-zero guard of inlined `/`.
    pub const DROP_DIV_ZERO_CHECK: MutantId = MutantId(109);
    /// Drop the exact-division guard of inlined `/`.
    pub const DROP_DIV_EXACT_CHECK: MutantId = MutantId(110);
    /// Drop the floored-modulo sign adjustment of inlined `\\`.
    pub const DROP_MOD_SIGN_ADJUST: MutantId = MutantId(111);
    /// Drop the floored-division quotient adjustment of inlined `//`.
    pub const DROP_INTDIV_FLOOR_ADJUST: MutantId = MutantId(112);
    /// Drop the ±31 shift-count range guard of inlined `bitShift:`.
    pub const DROP_SHIFT_RANGE_CHECK: MutantId = MutantId(113);
    /// Retag without setting the SmallInteger tag bit.
    pub const DROP_RETAG_TAG_BIT: MutantId = MutantId(114);
    /// Untag with an arithmetic shift by 2 instead of 1.
    pub const UNTAG_SHIFT_OFF_BY_ONE: MutantId = MutantId(115);
    /// Drop the lower-bound check of the inlined `at:` quick path.
    pub const DROP_AT_LOWER_BOUND_CHECK: MutantId = MutantId(116);
    /// Skip the 1-based→0-based index conversion of inlined `at:`.
    pub const AT_INDEX_OFF_BY_ONE: MutantId = MutantId(117);
    /// Drop the receiver class check of the inlined `at:put:`.
    pub const DROP_ATPUT_CLASS_CHECK: MutantId = MutantId(118);
    /// Address temps at `FP - 4n` instead of `FP - 4(n+1)`.
    pub const TEMP_OFFSET_OFF_BY_ONE: MutantId = MutantId(119);
    /// Address receiver variables without skipping the object header.
    pub const RECEIVER_VAR_OFFSET_SKIPS_HEADER: MutantId = MutantId(120);
    /// Swap the taken/fall-through targets of conditional jumps.
    pub const COND_JUMP_SWAP_TARGETS: MutantId = MutantId(121);
    /// Drop the `mustBeBoolean` send of conditional jumps.
    pub const DROP_MUST_BE_BOOLEAN: MutantId = MutantId(122);
    /// Compile the inlined `bitAnd:` fast path as `bitOr:`.
    pub const BITAND_BECOMES_BITOR: MutantId = MutantId(123);
    /// Drop the SP restore of the frame teardown before `ret`.
    pub const DROP_TEARDOWN_SP_RESTORE: MutantId = MutantId(124);
    /// Drop the byte-array class check of the inlined `size`.
    pub const DROP_SIZE_BYTEARRAY_CHECK: MutantId = MutantId(125);

    // --- 2xx: register allocator --------------------------------------
    /// Address spill slot `i` at `FP - 4(ntemps+i)` (one word high).
    pub const SPILL_SLOT_OFF_BY_ONE: MutantId = MutantId(201);
    /// Stride spill slots by 8 bytes instead of 4 (widened slots).
    pub const SPILL_STRIDE_WIDENED: MutantId = MutantId(202);
    /// Drop the reload of spilled operands (use stale temp contents).
    pub const DROP_SPILL_RELOAD: MutantId = MutantId(203);
    /// Drop the store of spilled definitions.
    pub const DROP_SPILL_DEF_STORE: MutantId = MutantId(204);
    /// Expire live intervals one position early (`end <= start`).
    pub const EXPIRE_ACTIVE_EARLY: MutantId = MutantId(205);
    /// Use `arg0` instead of `arg2` as the second spill temp.
    pub const SPILL_TEMP_ALIASES_ARG0: MutantId = MutantId(206);
    /// Steal a register even from intervals that end sooner.
    pub const DROP_VICTIM_END_FILTER: MutantId = MutantId(207);

    // --- 3xx: calling convention --------------------------------------
    /// Alias the second argument register onto the first.
    pub const ARG1_ALIASES_ARG0: MutantId = MutantId(301);
    /// Alias the scratch register onto the receiver/result register.
    pub const SCRATCH_ALIASES_RECEIVER: MutantId = MutantId(302);
    /// Hand the receiver register to the linear-scan allocator.
    pub const ALLOCATABLE_INCLUDES_RECEIVER: MutantId = MutantId(303);
    /// Alias the frame pointer onto a parse-stack pool register.
    pub const FP_ALIASES_POOL_REG: MutantId = MutantId(304);

    // --- 4xx: backend lowering ----------------------------------------
    /// Patch every jump displacement one byte long.
    pub const JUMP_DISP_OFF_BY_ONE: MutantId = MutantId(401);
    /// Invert the condition of every conditional jump.
    pub const INVERT_JCC: MutantId = MutantId(402);
    /// Emit self-moves instead of eliding them.
    pub const DROP_MOV_ELISION: MutantId = MutantId(403);
    /// Drop the `mov dst, a` fixup of two-address ALU lowering.
    pub const DROP_TWO_ADDRESS_MOV_FIXUP: MutantId = MutantId(404);
    /// Drop the `mov dst, a` fixup of two-address ALU-immediate
    /// lowering.
    pub const DROP_ALUIMM_MOV_FIXUP: MutantId = MutantId(405);

    // --- 5xx: compiled-code cache -------------------------------------
    /// Drop the embedded operand stack from bytecode cache keys.
    pub const CACHE_KEY_IGNORES_STACK: MutantId = MutantId(501);
    /// Drop the compiler tier from bytecode cache keys.
    pub const CACHE_KEY_IGNORES_KIND: MutantId = MutantId(502);
    /// Drop the special oops (nil/true/false) from cache keys.
    pub const CACHE_KEY_IGNORES_SPECIAL_OOPS: MutantId = MutantId(503);
}

macro_rules! op {
    ($id:expr, $name:literal, $layer:ident, $desc:literal, $cat:literal) => {
        MutationOp {
            id: $id,
            name: $name,
            layer: Layer::$layer,
            description: $desc,
            expected_category: $cat,
        }
    };
}

/// The full operator catalog, in id order.
pub const CATALOG: &[MutationOp] = &[
    // 1xx — bytecode front-ends. Guard drops make the compiled fast
    // path accept inputs the interpreter routes elsewhere, so kills
    // surface as the compiled code missing a check ("Missing compiled
    // type check") or as result divergence on shared fast paths
    // ("Behavioral difference"); on the arithmetic/comparison family
    // the classifier keys the cause off the instruction family, which
    // Table 3 files under "Optimisation difference".
    op!(ops::DROP_ADD_OVERFLOW_CHECK, "drop-add-overflow-check", BytecodeCompiler,
        "inlined SmallInteger + keeps the overflowed sum instead of bailing to the send",
        "Optimisation difference"),
    op!(ops::DROP_SUB_OVERFLOW_CHECK, "drop-sub-overflow-check", BytecodeCompiler,
        "inlined SmallInteger - keeps the overflowed difference",
        "Optimisation difference"),
    op!(ops::DROP_MUL_OVERFLOW_CHECK, "drop-mul-overflow-check", BytecodeCompiler,
        "inlined SmallInteger * keeps the overflowed product",
        "Optimisation difference"),
    op!(ops::DROP_RECEIVER_SMALLINT_CHECK, "drop-receiver-smallint-check", BytecodeCompiler,
        "inlined arithmetic runs its integer fast path on pointer receivers",
        "Optimisation difference"),
    op!(ops::DROP_ARG_SMALLINT_CHECK, "drop-arg-smallint-check", BytecodeCompiler,
        "inlined arithmetic runs its integer fast path on pointer arguments",
        "Optimisation difference"),
    op!(ops::FLIP_COMPARE_COND, "flip-compare-cond", BytecodeCompiler,
        "inlined comparisons push the negated boolean",
        "Optimisation difference"),
    op!(ops::SWAP_COMPARE_OPERANDS, "swap-compare-operands", BytecodeCompiler,
        "inlined comparisons compare arg to receiver instead of receiver to arg",
        "Optimisation difference"),
    op!(ops::DROP_COMPARE_SMALLINT_CHECKS, "drop-compare-smallint-checks", BytecodeCompiler,
        "inlined comparisons order raw pointers instead of bailing to the send",
        "Optimisation difference"),
    op!(ops::DROP_DIV_ZERO_CHECK, "drop-div-zero-check", BytecodeCompiler,
        "inlined / divides by an untagged zero instead of bailing to the send",
        "Optimisation difference"),
    op!(ops::DROP_DIV_EXACT_CHECK, "drop-div-exact-check", BytecodeCompiler,
        "inlined / truncates inexact quotients instead of bailing to the send",
        "Optimisation difference"),
    op!(ops::DROP_MOD_SIGN_ADJUST, "drop-mod-sign-adjust", BytecodeCompiler,
        "inlined \\\\ returns the truncated remainder instead of the floored one",
        "Optimisation difference"),
    op!(ops::DROP_INTDIV_FLOOR_ADJUST, "drop-intdiv-floor-adjust", BytecodeCompiler,
        "inlined // returns the truncated quotient instead of the floored one",
        "Optimisation difference"),
    op!(ops::DROP_SHIFT_RANGE_CHECK, "drop-shift-range-check", BytecodeCompiler,
        "inlined bitShift: lets the hardware mask out-of-range shift counts",
        "Optimisation difference"),
    op!(ops::DROP_RETAG_TAG_BIT, "drop-retag-tag-bit", BytecodeCompiler,
        "retagged results keep their low bit clear, forging pointers from integers",
        "Optimisation difference"),
    op!(ops::UNTAG_SHIFT_OFF_BY_ONE, "untag-shift-off-by-one", BytecodeCompiler,
        "untagging shifts by 2, halving every operand",
        "Optimisation difference"),
    op!(ops::DROP_AT_LOWER_BOUND_CHECK, "drop-at-lower-bound-check", BytecodeCompiler,
        "inlined at: accepts indices below 1 and reads before the array body",
        "Optimisation difference"),
    op!(ops::AT_INDEX_OFF_BY_ONE, "at-index-off-by-one", BytecodeCompiler,
        "inlined at: skips the 1-based index conversion and reads one slot high",
        "Optimisation difference"),
    op!(ops::DROP_ATPUT_CLASS_CHECK, "drop-atput-class-check", BytecodeCompiler,
        "inlined at:put: stores into receivers of any class",
        "Optimisation difference"),
    op!(ops::TEMP_OFFSET_OFF_BY_ONE, "temp-offset-off-by-one", BytecodeCompiler,
        "temps are addressed one frame word high, aliasing the caller's word",
        "Behavioral difference"),
    op!(ops::RECEIVER_VAR_OFFSET_SKIPS_HEADER, "receiver-var-offset-skips-header",
        BytecodeCompiler,
        "receiver variables are addressed without skipping the object header",
        "Behavioral difference"),
    op!(ops::COND_JUMP_SWAP_TARGETS, "cond-jump-swap-targets", BytecodeCompiler,
        "conditional jumps branch on true when they should on false and vice versa",
        "Behavioral difference"),
    op!(ops::DROP_MUST_BE_BOOLEAN, "drop-must-be-boolean", BytecodeCompiler,
        "conditional jumps fall through on non-booleans instead of sending mustBeBoolean",
        "Behavioral difference"),
    op!(ops::BITAND_BECOMES_BITOR, "bitand-becomes-bitor", BytecodeCompiler,
        "the inlined bitAnd: fast path computes bitOr:",
        "Optimisation difference"),
    op!(ops::DROP_TEARDOWN_SP_RESTORE, "drop-teardown-sp-restore", BytecodeCompiler,
        "returns skip the SP restore and pop a garbage return address",
        "Simulation Error"),
    op!(ops::DROP_SIZE_BYTEARRAY_CHECK, "drop-size-bytearray-check", BytecodeCompiler,
        "inlined size reads the size field of receivers of any class",
        "Optimisation difference"),
    // 2xx — register allocator. Addressing faults corrupt frame words
    // shared with temps or the return address; elision faults leave
    // stale values in the spill temps.
    op!(ops::SPILL_SLOT_OFF_BY_ONE, "spill-slot-off-by-one", RegisterAllocator,
        "spill slots are addressed one frame word high, clobbering a temp or the return word",
        "Behavioral difference"),
    op!(ops::SPILL_STRIDE_WIDENED, "spill-stride-widened", RegisterAllocator,
        "spill slots are strided 8 bytes apart, overlapping the reserve's far end",
        "Behavioral difference"),
    op!(ops::DROP_SPILL_RELOAD, "drop-spill-reload", RegisterAllocator,
        "spilled operands are not reloaded; ops read stale spill-temp contents",
        "Behavioral difference"),
    op!(ops::DROP_SPILL_DEF_STORE, "drop-spill-def-store", RegisterAllocator,
        "spilled definitions are never stored back to their slot",
        "Behavioral difference"),
    op!(ops::EXPIRE_ACTIVE_EARLY, "expire-active-early", RegisterAllocator,
        "live intervals expire one position early; an interval ending where the next \
         starts shares its register — a legal assignment, so this should survive",
        "none"),
    op!(ops::SPILL_TEMP_ALIASES_ARG0, "spill-temp-aliases-arg0", RegisterAllocator,
        "the second spill temp aliases arg0; no reload currently sits between argument \
         marshalling and the send, so this should survive",
        "none"),
    op!(ops::DROP_VICTIM_END_FILTER, "drop-victim-end-filter", RegisterAllocator,
        "spill-victim selection steals registers unconditionally — a worse but still \
         correct allocation policy, so this should survive",
        "none"),
    // 3xx — calling convention. Aliased fixed-role registers corrupt
    // the values the differential runner seeds and reads.
    op!(ops::ARG1_ALIASES_ARG0, "arg1-aliases-arg0", Convention,
        "two-argument sends marshal both arguments into the same register",
        "Behavioral difference"),
    op!(ops::SCRATCH_ALIASES_RECEIVER, "scratch-aliases-receiver", Convention,
        "compiler transients clobber the receiver/result register",
        "Behavioral difference"),
    op!(ops::ALLOCATABLE_INCLUDES_RECEIVER, "allocatable-includes-receiver", Convention,
        "the linear-scan pool hands out the receiver register",
        "Behavioral difference"),
    op!(ops::FP_ALIASES_POOL_REG, "fp-aliases-pool-reg", Convention,
        "the frame pointer aliases a parse-stack pool register",
        "Simulation Error"),
    // 4xx — backend lowering. Encoding-level faults: wrong jump
    // targets and stale two-address operands.
    op!(ops::JUMP_DISP_OFF_BY_ONE, "jump-disp-off-by-one", Backend,
        "every patched jump displacement lands one byte past its label",
        "Simulation Error"),
    op!(ops::INVERT_JCC, "invert-jcc", Backend,
        "every conditional jump tests the negated condition",
        "Optimisation difference"),
    op!(ops::DROP_MOV_ELISION, "drop-mov-elision", Backend,
        "register self-moves are emitted instead of elided — semantically equivalent \
         code, so this should survive",
        "none"),
    op!(ops::DROP_TWO_ADDRESS_MOV_FIXUP, "drop-two-address-mov-fixup", Backend,
        "two-address ALU lowering computes on the stale destination instead of copying \
         the first operand in",
        "Optimisation difference"),
    op!(ops::DROP_ALUIMM_MOV_FIXUP, "drop-aluimm-mov-fixup", Backend,
        "two-address ALU-immediate lowering computes on the stale destination",
        "Optimisation difference"),
    // 5xx — compiled-code cache. Key corruption makes distinct
    // compilations collide, replaying code with the wrong embedded
    // constants (or the wrong tier).
    op!(ops::CACHE_KEY_IGNORES_STACK, "cache-key-ignores-stack", CodeCache,
        "bytecode cache keys drop the embedded operand stack; every model of a path \
         replays the first model's constants",
        "Optimisation difference"),
    op!(ops::CACHE_KEY_IGNORES_KIND, "cache-key-ignores-kind", CodeCache,
        "bytecode cache keys drop the tier; later tiers replay the first tier's code",
        "Optimisation difference"),
    op!(ops::CACHE_KEY_IGNORES_SPECIAL_OOPS, "cache-key-ignores-special-oops", CodeCache,
        "cache keys drop nil/true/false; the special oops are process-constant, so \
         this should survive",
        "none"),
];

/// Looks an operator up by id.
pub fn find(id: MutantId) -> Option<&'static MutationOp> {
    CATALOG.iter().find(|op| op.id == id)
}

/// Looks an operator up by its kebab-case name.
pub fn by_name(name: &str) -> Option<&'static MutationOp> {
    CATALOG.iter().find(|op| op.name == name)
}

/// Parses a mutant spec — a numeric id or an operator name — and
/// validates it against the catalog.
pub fn parse(spec: &str) -> Result<MutantId, String> {
    let found = match spec.parse::<u32>() {
        Ok(n) => find(MutantId(n)),
        Err(_) => by_name(spec),
    };
    found.map(|op| op.id).ok_or_else(|| {
        format!(
            "unknown mutant {spec:?}; valid mutants are the catalog ids \
             ({}..{}) or operator names (e.g. {:?})",
            CATALOG.first().map(|op| op.id.0).unwrap_or(0),
            CATALOG.last().map(|op| op.id.0).unwrap_or(0),
            CATALOG.first().map(|op| op.name).unwrap_or(""),
        )
    })
}

/// The armed mutant id; 0 means disarmed (no catalog id is 0).
static ARMED: AtomicU32 = AtomicU32::new(0);

/// The arming lock: holders of a [`MutantGuard`] serialize, so two
/// tests cannot arm (or demand a disarmed injector) concurrently.
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// Whether mutant `id` is armed. This is the hot check the JIT layers
/// consult at every injection site: one relaxed atomic load and a
/// compare, false for every site when the injector is disarmed.
#[inline(always)]
pub fn armed(id: MutantId) -> bool {
    ARMED.load(Ordering::Relaxed) == id.0
}

/// The currently armed mutant, if any.
pub fn current() -> Option<MutantId> {
    match ARMED.load(Ordering::Relaxed) {
        0 => None,
        n => Some(MutantId(n)),
    }
}

/// The fault injector's front door: arms mutants and pins the
/// disarmed state, both returning RAII [`MutantGuard`]s.
pub struct FaultInjector;

impl FaultInjector {
    /// Arms `id` for the guard's lifetime. Fails on ids not in the
    /// catalog (arming a site-less id would silently test nothing).
    /// Blocks until any other guard in the process is dropped.
    pub fn arm(id: MutantId) -> Result<MutantGuard, String> {
        let op = find(id).ok_or_else(|| format!("mutant {} is not in the catalog", id.0))?;
        let lock = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ARMED.store(op.id.0, Ordering::Relaxed);
        Ok(MutantGuard { _lock: lock })
    }

    /// Holds the arming lock *without* arming anything: code that must
    /// observe the pristine compiler (baselines, identity tests) takes
    /// this to exclude concurrent arming tests in the same process.
    pub fn pinned_off() -> MutantGuard {
        let lock = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ARMED.store(0, Ordering::Relaxed);
        MutantGuard { _lock: lock }
    }
}

/// RAII handle for an armed (or pinned-disarmed) injector. Dropping it
/// disarms the injector and releases the arming lock — a panicking
/// holder cannot leak an armed mutant.
pub struct MutantGuard {
    _lock: MutexGuard<'static, ()>,
}

impl MutantGuard {
    /// The mutant this guard holds armed (None for a pinned-off
    /// guard).
    pub fn id(&self) -> Option<MutantId> {
        current()
    }
}

impl Drop for MutantGuard {
    fn drop(&mut self) {
        ARMED.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_well_formed() {
        assert!(CATALOG.len() >= 25, "issue floor: ≥25 operators");
        let ids: HashSet<u32> = CATALOG.iter().map(|op| op.id.0).collect();
        assert_eq!(ids.len(), CATALOG.len(), "ids are unique");
        assert!(!ids.contains(&0), "0 is the disarmed sentinel");
        let names: HashSet<&str> = CATALOG.iter().map(|op| op.name).collect();
        assert_eq!(names.len(), CATALOG.len(), "names are unique");
        let layers: HashSet<_> = CATALOG.iter().map(|op| op.layer).collect();
        assert!(layers.len() >= 3, "operators span ≥3 JIT layers: {layers:?}");
        for op in CATALOG {
            let century = match op.layer {
                Layer::BytecodeCompiler => 1,
                Layer::RegisterAllocator => 2,
                Layer::Convention => 3,
                Layer::Backend => 4,
                Layer::CodeCache => 5,
            };
            assert_eq!(op.id.0 / 100, century, "{} is numbered by layer", op.name);
            assert!(!op.description.is_empty());
            assert!(!op.expected_category.is_empty());
        }
    }

    #[test]
    fn catalog_is_sorted_by_id() {
        for w in CATALOG.windows(2) {
            assert!(w[0].id < w[1].id, "{} before {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn parse_accepts_ids_and_names() {
        assert_eq!(parse("106"), Ok(ops::FLIP_COMPARE_COND));
        assert_eq!(parse("flip-compare-cond"), Ok(ops::FLIP_COMPARE_COND));
        assert!(parse("999").is_err());
        assert!(parse("not-a-mutant").is_err());
        assert!(parse("0").is_err(), "the disarmed sentinel is not armable");
    }

    #[test]
    fn guard_arms_and_disarms() {
        assert_eq!(current(), None);
        {
            let g = FaultInjector::arm(ops::FLIP_COMPARE_COND).unwrap();
            assert_eq!(g.id(), Some(ops::FLIP_COMPARE_COND));
            assert!(armed(ops::FLIP_COMPARE_COND));
            assert!(!armed(ops::INVERT_JCC), "only one mutant at a time");
        }
        assert_eq!(current(), None, "drop disarms");
        assert!(!armed(ops::FLIP_COMPARE_COND));
    }

    #[test]
    fn arming_unknown_ids_is_refused() {
        assert!(FaultInjector::arm(MutantId(0)).is_err());
        assert!(FaultInjector::arm(MutantId(9999)).is_err());
    }

    #[test]
    fn pinned_off_holds_the_lock_disarmed() {
        let g = FaultInjector::pinned_off();
        assert_eq!(g.id(), None);
        assert_eq!(current(), None);
    }
}

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
