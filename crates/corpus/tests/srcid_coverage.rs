//! Guards the compile-time source fingerprints against going stale.
//!
//! Each semantic crate's `srcid::SRC_FILES` is a hand-maintained,
//! sorted list of every `.rs` file under its `src/`, baked into
//! `SOURCE_FINGERPRINT` via `include_bytes!`. If a future change adds
//! a source file without listing it, the fingerprint stops covering
//! that file and the corpus would happily replay results computed by
//! different code. This test walks each crate's `src/` on disk and
//! fails on any divergence.

use std::path::Path;

/// Collects every `.rs` path under `dir`, relative to it, `/`-separated
/// and sorted — the exact format `SRC_FILES` promises.
fn rs_files_on_disk(dir: &Path) -> Vec<String> {
    fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().into_string().unwrap();
            let rel = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
            let path = entry.path();
            if path.is_dir() {
                walk(&path, &rel, out);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, "", &mut out);
    out.sort();
    out
}

fn check(crate_dir: &str, listed: &[&str]) {
    // Tests run with the crate root as cwd; the sibling crates live
    // one level up.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .join(crate_dir)
        .join("src");
    let on_disk = rs_files_on_disk(&dir);
    let listed: Vec<String> = listed.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        on_disk, listed,
        "crates/{crate_dir}/src/srcid.rs SRC_FILES is stale: the left side is \
         what exists on disk, the right side is what SOURCE_FINGERPRINT covers. \
         Update SRC_FILES and the matching include_bytes! list."
    );
    let mut sorted = listed.clone();
    sorted.sort();
    assert_eq!(listed, sorted, "crates/{crate_dir}/src/srcid.rs SRC_FILES must stay sorted");
}

#[test]
fn srcid_listings_cover_every_source_file() {
    check("bytecode", igjit_bytecode::srcid::SRC_FILES);
    check("heap", igjit_heap::srcid::SRC_FILES);
    check("solver", igjit_solver::srcid::SRC_FILES);
    check("interp", igjit_interp::srcid::SRC_FILES);
    check("concolic", igjit_concolic::srcid::SRC_FILES);
    check("jit", igjit_jit::srcid::SRC_FILES);
    check("machine", igjit_machine::srcid::SRC_FILES);
    check("mutate", igjit_mutate::srcid::SRC_FILES);
    check("difftest", igjit_difftest::srcid::SRC_FILES);
}

#[test]
fn fingerprints_are_distinct_per_section() {
    use igjit_machine::Isa;
    let both = igjit_corpus::fingerprints(true, &[Isa::X86ish, Isa::Arm32ish]);
    assert_ne!(both.exploration, both.code);
    assert_ne!(both.code, both.outcomes);
    assert_ne!(both.exploration, both.outcomes);

    // The probe flag keys only the sections it can influence.
    let no_probes = igjit_corpus::fingerprints(false, &[Isa::X86ish, Isa::Arm32ish]);
    assert_ne!(both.exploration, no_probes.exploration);
    assert_eq!(both.code, no_probes.code);
    assert_ne!(both.outcomes, no_probes.outcomes);

    // The ISA list keys only the outcome section.
    let one_isa = igjit_corpus::fingerprints(true, &[Isa::X86ish]);
    assert_eq!(both.exploration, one_isa.exploration);
    assert_eq!(both.code, one_isa.code);
    assert_ne!(both.outcomes, one_isa.outcomes);
}
