//! Property tests of the corpus wire format: randomized domain values
//! must survive an encode/decode round trip bit-for-bit, and random
//! corruption of a whole corpus file must degrade (cold sections,
//! warnings) without ever panicking or inventing entries.

use igjit_corpus::{from_bytes, to_bytes, Fingerprints};
use igjit_solver::{Assignment, CmpOp, Constraint, Kind, LinExpr, Model, VarId};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = Kind> {
    (0usize..Kind::ALL.len()).prop_map(|i| Kind::ALL[i])
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_lin() -> impl Strategy<Value = LinExpr> {
    (
        -1000i64..1000,
        proptest::collection::vec((-4i64..5, (0u32..8).prop_map(VarId)), 0..3),
    )
        .prop_map(|(constant, terms)| LinExpr { constant, terms })
}

/// Leaf constraints plus one level of `Or`/`And` nesting — deeper
/// nesting exercises the same recursive codec path.
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let var = (0u32..8).prop_map(VarId);
    let leaf = prop_oneof![
        (var.clone(), arb_kind()).prop_map(|(v, k)| Constraint::kind_is(v, k)),
        (var.clone(), arb_kind()).prop_map(|(v, k)| Constraint::kind_is_not(v, k)),
        (arb_cmp(), arb_lin(), arb_lin()).prop_map(|(op, l, r)| Constraint::Int(op, l, r)),
        (var.clone(), var.clone()).prop_map(|(a, b)| Constraint::ObjEq(a, b)),
        (var.clone(), var).prop_map(|(a, b)| Constraint::ObjNe(a, b)),
    ];
    (
        proptest::collection::vec(leaf, 1..4),
        0u8..3,
    )
        .prop_map(|(leaves, wrap)| match wrap {
            0 => leaves.into_iter().next().unwrap(),
            1 => Constraint::Or(leaves),
            _ => Constraint::And(leaves),
        })
}

fn arb_model() -> impl Strategy<Value = Model> {
    proptest::collection::vec(
        (arb_kind(), any::<i64>(), any::<i32>(), any::<u32>())
            .prop_map(|(kind, int, float, alias)| Assignment {
                kind,
                int,
                // The vendored proptest has no float strategies; a
                // scaled integer covers sign, fractions and magnitude.
                float: f64::from(float) / 64.0,
                alias,
            }),
        0..6,
    )
    .prop_map(Model::from_assignments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_constraints_round_trip(c in arb_constraint()) {
        let rt: Constraint = from_bytes(&to_bytes(&c)).unwrap();
        prop_assert_eq!(rt, c);
    }

    #[test]
    fn prop_models_round_trip(m in arb_model()) {
        let rt: Model = from_bytes(&to_bytes(&m)).unwrap();
        prop_assert_eq!(rt, m);
    }

    #[test]
    fn prop_constraint_vectors_round_trip(
        cs in proptest::collection::vec(arb_constraint(), 0..8)
    ) {
        let rt: Vec<Constraint> = from_bytes(&to_bytes(&cs)).unwrap();
        prop_assert_eq!(rt, cs);
    }
}

/// A small but non-empty corpus to corrupt: one real exploration and
/// its outcomes, produced by the live pipeline so every section is
/// populated.
fn sample_corpus_bytes(fp: &Fingerprints) -> Vec<u8> {
    let exploration = igjit_concolic::Explorer::new()
        .explore(igjit_concolic::InstrUnderTest::Bytecode(igjit_bytecode::Instruction::Add));
    let corpus = igjit_corpus::Corpus {
        explorations: vec![(
            (igjit_concolic::InstrUnderTest::Bytecode(igjit_bytecode::Instruction::Add), false),
            exploration,
        )],
        ..igjit_corpus::Corpus::default()
    };
    igjit_corpus::file::encode(&corpus, fp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any single-byte flip anywhere in the file decodes without a
    /// panic, and never yields *more* entries than the pristine file.
    #[test]
    fn prop_flipped_byte_degrades_gracefully(pos in any::<u32>(), bit in 0u8..8) {
        let fp = igjit_corpus::fingerprints(false, &[igjit_machine::Isa::X86ish]);
        let mut bytes = sample_corpus_bytes(&fp);
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let (corpus, stats) = igjit_corpus::file::decode(&bytes, &fp);
        prop_assert!(corpus.explorations.len() <= 1);
        prop_assert!(corpus.code.is_empty());
        prop_assert!(corpus.outcomes.is_empty());
        // A flip that lands in a payload must be caught by the
        // checksum (warning) or the fingerprint (stale section); a
        // flip in the header may cold the whole file. All of those
        // surface in stats rather than panicking.
        let _ = (stats.cold, stats.stale_sections, stats.warnings.len());
    }

    /// Any truncation decodes without a panic and without inventing
    /// entries.
    #[test]
    fn prop_truncation_degrades_gracefully(cut in any::<u32>()) {
        let fp = igjit_corpus::fingerprints(false, &[igjit_machine::Isa::X86ish]);
        let bytes = sample_corpus_bytes(&fp);
        let cut = cut as usize % bytes.len();
        let (corpus, _stats) = igjit_corpus::file::decode(&bytes[..cut], &fp);
        prop_assert!(corpus.explorations.len() <= 1);
        prop_assert!(corpus.outcomes.is_empty());
    }
}
