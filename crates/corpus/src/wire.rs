//! The byte-level wire layer: a little-endian, length-prefixed binary
//! encoding with a **panic-free** decoder.
//!
//! Every decode operation is bounds-checked and returns
//! [`WireError`] on any anomaly — short input, bad enum tag, invalid
//! UTF-8, an implausible collection length. The corpus loader turns
//! any such error into a cold section, never a crash, which is the
//! file format's one hard rule (a corrupt corpus must only cost time,
//! not correctness).

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Why a decode failed. The variants exist for diagnostics only; every
/// one of them means "treat this section as cold".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated,
    /// An enum tag, index or flag byte had no meaning.
    BadTag(&'static str),
    /// A collection length larger than the remaining input could
    /// possibly encode (corruption guard: prevents pre-allocating
    /// gigabytes off a flipped length byte).
    BadLength,
    /// A string payload was not UTF-8.
    BadUtf8,
    /// A trailing-byte check failed: the payload decoded but did not
    /// consume the section exactly.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadTag(what) => write!(f, "invalid tag for {what}"),
            WireError::BadLength => write!(f, "implausible collection length"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::TrailingBytes => write!(f, "payload has trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i32.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an f64 as its IEEE bit pattern (bit-exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a usize as u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked cursor over encoded bytes.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the input was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian i32.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; anything but 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadTag("bool")),
        }
    }

    /// Reads a usize written by [`Encoder::usize`].
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::BadLength)
    }

    /// Reads a collection length and sanity-checks it against the
    /// remaining input (each element costs ≥ 1 byte in this format).
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(WireError::BadLength);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.seq_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a string and interns it to `&'static str` (see
    /// [`intern`]).
    pub fn static_str(&mut self) -> Result<&'static str, WireError> {
        Ok(intern(self.string()?))
    }
}

/// Interns a string, leaking at most one copy per distinct content.
///
/// Several serialized types carry `&'static str` fields (curation
/// reasons, compile-error messages) that in a live process point at
/// string literals. A deserialized corpus has no literal to point at,
/// so the decoder leaks one copy per distinct string into a global
/// pool. The pool is tiny in practice — the universe of such strings
/// is the finite set of literals in the codebase — and bounded per
/// process regardless of how many corpus files are loaded.
pub fn intern(s: String) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut g = pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&found) = g.get(s.as_str()) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    g.insert(leaked);
    leaked
}

/// FNV-1a over a byte slice — the integrity checksum of corpus
/// sections (same function the `srcid` source fingerprints use).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mixes a u64 into a running FNV-1a hash (for fingerprint
/// composition).
pub fn fnv_mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i32(-5);
        e.i64(i64::MIN);
        e.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        e.bool(true);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i32().unwrap(), -5);
        assert_eq!(d.i64().unwrap(), i64::MIN);
        assert_eq!(d.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(d.bool().unwrap());
        assert_eq!(d.string().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.u64(42);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert_eq!(d.u64(), Err(WireError::Truncated));
        }
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut e = Encoder::new();
        e.usize(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.seq_len(), Err(WireError::BadLength));
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("igjit-corpus-test-string".to_string());
        let b = intern("igjit-corpus-test-string".to_string());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn bad_bool_and_utf8_are_errors() {
        let mut d = Decoder::new(&[2]);
        assert_eq!(d.bool(), Err(WireError::BadTag("bool")));
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        assert_eq!(Decoder::new(&bytes).string(), Err(WireError::BadUtf8));
    }
}
