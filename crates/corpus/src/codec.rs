//! [`Wire`] codecs for every domain type the corpus persists.
//!
//! The encoding is positional and tag-based: enums write a one-byte
//! discriminant, structs write their fields in declaration order,
//! collections are length-prefixed. There is no schema in the file —
//! the format version plus the section fingerprints (which mix in the
//! source hash of every crate that defines these types) guarantee the
//! reader and writer agree on the layout, and any disagreement is
//! caught by the checksum/decode layer and degrades to a cold run.
//!
//! Two representational notes:
//!
//! - `&'static str` fields decode through the leak-interning pool
//!   ([`crate::wire::intern`]); `Cow<'static, str>` fields decode as
//!   `Cow::Owned` (equality with the borrowed form still holds).
//! - [`Instruction`] round-trips through the bytecode set's own
//!   encoder/decoder, so the corpus inherits the exact operand
//!   canonicalization the live catalog uses.

use crate::wire::{Decoder, Encoder, WireError};
use igjit_bytecode::{Instruction, SpecialSelector};
use igjit_concolic::{
    AbstractState, CurationReason, ExplorationResult, ExploredPath, InstrUnderTest, ObjShape,
    ObjectDump, PathOutcome, ReplayStep, SendRecord, VarRole,
};
use igjit_difftest::{
    CauseKey, DefectCategory, Difference, DifferenceKind, InstructionOutcome, PathVerdict,
    SnapshotStats, Target, Verdict,
};
use igjit_heap::Oop;
use igjit_interp::NativeMethodId;
use igjit_jit::{CompileError, CompileKey, CompiledCode, CompilerKind};
use igjit_machine::Isa;
use igjit_solver::{
    Assignment, CmpOp, Constraint, FloatTerm, Kind, KindSet, LinExpr, Model, SessionStats,
    SolveError, VarId, VarSpec,
};
use std::borrow::Cow;

/// A type that can be written to and read back from the corpus wire
/// format.
pub trait Wire: Sized {
    /// Appends the encoding of `self`.
    fn enc(&self, e: &mut Encoder);
    /// Decodes one value.
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError>;
}

/// Encodes one value standalone.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    v.enc(&mut e);
    e.into_bytes()
}

/// Decodes one value standalone, requiring full consumption.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut d = Decoder::new(bytes);
    let v = T::dec(&mut d)?;
    d.finish()?;
    Ok(v)
}

macro_rules! prim_wire {
    ($($t:ty => $enc:ident / $dec:ident),* $(,)?) => {$(
        impl Wire for $t {
            fn enc(&self, e: &mut Encoder) {
                e.$enc(*self);
            }
            fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
                d.$dec()
            }
        }
    )*};
}

prim_wire! {
    u8 => u8 / u8,
    u16 => u16 / u16,
    u32 => u32 / u32,
    u64 => u64 / u64,
    i32 => i32 / i32,
    i64 => i64 / i64,
    f64 => f64 / f64,
    bool => bool / bool,
    usize => usize / usize,
}

impl Wire for String {
    fn enc(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.string()
    }
}

impl Wire for &'static str {
    fn enc(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.static_str()
    }
}

impl Wire for Cow<'static, str> {
    fn enc(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Cow::Owned(d.string()?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn enc(&self, e: &mut Encoder) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(d)?)),
            _ => Err(WireError::BadTag("Option")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn enc(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = d.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::dec(d)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn enc(&self, e: &mut Encoder) {
        self.0.enc(e);
        self.1.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

// ---------------------------------------------------------------- solver

impl Wire for VarId {
    fn enc(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(VarId(d.u32()?))
    }
}

impl Wire for Kind {
    fn enc(&self, e: &mut Encoder) {
        e.u8(*self as u8);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let i = d.u8()? as usize;
        Kind::ALL.get(i).copied().ok_or(WireError::BadTag("Kind"))
    }
}

impl Wire for KindSet {
    fn enc(&self, e: &mut Encoder) {
        let mut mask = 0u16;
        for k in self.iter() {
            mask |= 1 << (k as u8);
        }
        e.u16(mask);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let mask = d.u16()?;
        if mask >> Kind::ALL.len() != 0 {
            return Err(WireError::BadTag("KindSet"));
        }
        let kinds: Vec<Kind> = Kind::ALL
            .iter()
            .copied()
            .filter(|&k| mask & (1 << (k as u8)) != 0)
            .collect();
        Ok(KindSet::of(&kinds))
    }
}

impl Wire for VarSpec {
    fn enc(&self, e: &mut Encoder) {
        self.kinds.enc(e);
        e.i64(self.int_bounds.0);
        e.i64(self.int_bounds.1);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(VarSpec { kinds: KindSet::dec(d)?, int_bounds: (d.i64()?, d.i64()?) })
    }
}

impl Wire for CmpOp {
    fn enc(&self, e: &mut Encoder) {
        e.u8(match self {
            CmpOp::Lt => 0,
            CmpOp::Le => 1,
            CmpOp::Gt => 2,
            CmpOp::Ge => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
        });
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            3 => CmpOp::Ge,
            4 => CmpOp::Eq,
            5 => CmpOp::Ne,
            _ => return Err(WireError::BadTag("CmpOp")),
        })
    }
}

impl Wire for FloatTerm {
    fn enc(&self, e: &mut Encoder) {
        match self {
            FloatTerm::Var(v) => {
                e.u8(0);
                v.enc(e);
            }
            FloatTerm::Const(c) => {
                e.u8(1);
                e.f64(*c);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => FloatTerm::Var(VarId::dec(d)?),
            1 => FloatTerm::Const(d.f64()?),
            _ => return Err(WireError::BadTag("FloatTerm")),
        })
    }
}

impl Wire for LinExpr {
    fn enc(&self, e: &mut Encoder) {
        e.i64(self.constant);
        self.terms.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(LinExpr { constant: d.i64()?, terms: Vec::dec(d)? })
    }
}

impl Wire for Constraint {
    fn enc(&self, e: &mut Encoder) {
        match self {
            Constraint::Kind { var, allowed } => {
                e.u8(0);
                var.enc(e);
                allowed.enc(e);
            }
            Constraint::Int(op, lhs, rhs) => {
                e.u8(1);
                op.enc(e);
                lhs.enc(e);
                rhs.enc(e);
            }
            Constraint::Float(op, lhs, rhs) => {
                e.u8(2);
                op.enc(e);
                lhs.enc(e);
                rhs.enc(e);
            }
            Constraint::ObjEq(a, b) => {
                e.u8(3);
                a.enc(e);
                b.enc(e);
            }
            Constraint::ObjNe(a, b) => {
                e.u8(4);
                a.enc(e);
                b.enc(e);
            }
            Constraint::Or(cs) => {
                e.u8(5);
                cs.enc(e);
            }
            Constraint::And(cs) => {
                e.u8(6);
                cs.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => Constraint::Kind { var: VarId::dec(d)?, allowed: KindSet::dec(d)? },
            1 => Constraint::Int(CmpOp::dec(d)?, LinExpr::dec(d)?, LinExpr::dec(d)?),
            2 => Constraint::Float(CmpOp::dec(d)?, FloatTerm::dec(d)?, FloatTerm::dec(d)?),
            3 => Constraint::ObjEq(VarId::dec(d)?, VarId::dec(d)?),
            4 => Constraint::ObjNe(VarId::dec(d)?, VarId::dec(d)?),
            5 => Constraint::Or(Vec::dec(d)?),
            6 => Constraint::And(Vec::dec(d)?),
            _ => return Err(WireError::BadTag("Constraint")),
        })
    }
}

impl Wire for Assignment {
    fn enc(&self, e: &mut Encoder) {
        self.kind.enc(e);
        e.i64(self.int);
        e.f64(self.float);
        e.u32(self.alias);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Assignment { kind: Kind::dec(d)?, int: d.i64()?, float: d.f64()?, alias: d.u32()? })
    }
}

impl Wire for Model {
    fn enc(&self, e: &mut Encoder) {
        e.usize(self.len());
        for i in 0..self.len() {
            self.assignment(VarId(i as u32)).enc(e);
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Model::from_assignments(Vec::dec(d)?))
    }
}

impl Wire for SolveError {
    fn enc(&self, e: &mut Encoder) {
        match self {
            SolveError::Unsat => e.u8(0),
            SolveError::PrecisionExceeded => e.u8(1),
            SolveError::ResourceLimit => e.u8(2),
            SolveError::Unsupported(s) => {
                e.u8(3);
                e.str(s);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => SolveError::Unsat,
            1 => SolveError::PrecisionExceeded,
            2 => SolveError::ResourceLimit,
            3 => SolveError::Unsupported(d.static_str()?),
            _ => return Err(WireError::BadTag("SolveError")),
        })
    }
}

impl Wire for SessionStats {
    fn enc(&self, e: &mut Encoder) {
        for v in [
            self.solves,
            self.sat,
            self.unsat,
            self.nodes_visited,
            self.propagation_reuse,
            self.rebuilds,
            self.model_reuse,
            self.pushes,
            self.max_depth,
        ] {
            e.usize(v);
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SessionStats {
            solves: d.usize()?,
            sat: d.usize()?,
            unsat: d.usize()?,
            nodes_visited: d.usize()?,
            propagation_reuse: d.usize()?,
            rebuilds: d.usize()?,
            model_reuse: d.usize()?,
            pushes: d.usize()?,
            max_depth: d.usize()?,
        })
    }
}

// ------------------------------------------------------- heap / machine

impl Wire for Oop {
    fn enc(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Oop(d.u32()?))
    }
}

impl Wire for Isa {
    fn enc(&self, e: &mut Encoder) {
        e.u8(match self {
            Isa::X86ish => 0,
            Isa::Arm32ish => 1,
        });
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => Isa::X86ish,
            1 => Isa::Arm32ish,
            _ => return Err(WireError::BadTag("Isa")),
        })
    }
}

// ------------------------------------------------------------- bytecode

impl Wire for Instruction {
    fn enc(&self, e: &mut Encoder) {
        let mut bytes = Vec::with_capacity(2);
        igjit_bytecode::encode(*self, &mut bytes);
        e.bytes(&bytes);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let bytes = d.bytes()?;
        match igjit_bytecode::decode(bytes, 0) {
            Ok((instr, len)) if len == bytes.len() => Ok(instr),
            _ => Err(WireError::BadTag("Instruction")),
        }
    }
}

impl Wire for SpecialSelector {
    fn enc(&self, e: &mut Encoder) {
        e.u32(self.index());
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        SpecialSelector::from_index(d.u32()?).ok_or(WireError::BadTag("SpecialSelector"))
    }
}

// ------------------------------------------------------------- concolic

impl Wire for NativeMethodId {
    fn enc(&self, e: &mut Encoder) {
        e.u16(self.0);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(NativeMethodId(d.u16()?))
    }
}

impl Wire for InstrUnderTest {
    fn enc(&self, e: &mut Encoder) {
        match self {
            InstrUnderTest::Bytecode(i) => {
                e.u8(0);
                i.enc(e);
            }
            InstrUnderTest::Native(id) => {
                e.u8(1);
                id.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => InstrUnderTest::Bytecode(Instruction::dec(d)?),
            1 => InstrUnderTest::Native(NativeMethodId::dec(d)?),
            _ => return Err(WireError::BadTag("InstrUnderTest")),
        })
    }
}

impl Wire for SendRecord {
    fn enc(&self, e: &mut Encoder) {
        self.special.enc(e);
        e.bool(self.must_be_boolean);
        self.literal_selector.enc(e);
        self.receiver.enc(e);
        self.args.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SendRecord {
            special: Option::dec(d)?,
            must_be_boolean: d.bool()?,
            literal_selector: Option::dec(d)?,
            receiver: Oop::dec(d)?,
            args: Vec::dec(d)?,
        })
    }
}

impl Wire for PathOutcome {
    fn enc(&self, e: &mut Encoder) {
        match self {
            PathOutcome::Success => e.u8(0),
            PathOutcome::Jump { displacement } => {
                e.u8(1);
                e.i32(*displacement);
            }
            PathOutcome::Failure => e.u8(2),
            PathOutcome::MessageSend(s) => {
                e.u8(3);
                s.enc(e);
            }
            PathOutcome::MethodReturn { value } => {
                e.u8(4);
                value.enc(e);
            }
            PathOutcome::InvalidFrame => e.u8(5),
            PathOutcome::InvalidMemoryAccess => e.u8(6),
            PathOutcome::Unsupported { reason } => {
                e.u8(7);
                e.str(reason);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => PathOutcome::Success,
            1 => PathOutcome::Jump { displacement: d.i32()? },
            2 => PathOutcome::Failure,
            3 => PathOutcome::MessageSend(SendRecord::dec(d)?),
            4 => PathOutcome::MethodReturn { value: Oop::dec(d)? },
            5 => PathOutcome::InvalidFrame,
            6 => PathOutcome::InvalidMemoryAccess,
            7 => PathOutcome::Unsupported { reason: d.static_str()? },
            _ => return Err(WireError::BadTag("PathOutcome")),
        })
    }
}

impl Wire for ObjectDump {
    fn enc(&self, e: &mut Encoder) {
        self.var.enc(e);
        self.oop.enc(e);
        self.slots.enc(e);
        self.bytes.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ObjectDump {
            var: VarId::dec(d)?,
            oop: Oop::dec(d)?,
            slots: Vec::dec(d)?,
            bytes: Vec::dec(d)?,
        })
    }
}

impl Wire for ExploredPath {
    fn enc(&self, e: &mut Encoder) {
        self.instruction.enc(e);
        self.constraints.enc(e);
        self.model.enc(e);
        self.outcome.enc(e);
        self.output_stack.enc(e);
        self.output_temps.enc(e);
        self.object_dumps.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ExploredPath {
            instruction: InstrUnderTest::dec(d)?,
            constraints: Vec::dec(d)?,
            model: Model::dec(d)?,
            outcome: PathOutcome::dec(d)?,
            output_stack: Vec::dec(d)?,
            output_temps: Vec::dec(d)?,
            object_dumps: Vec::dec(d)?,
        })
    }
}

impl Wire for CurationReason {
    fn enc(&self, e: &mut Encoder) {
        match self {
            CurationReason::SolverError(err) => {
                e.u8(0);
                err.enc(e);
            }
            CurationReason::Unsupported(s) => {
                e.u8(1);
                e.str(s);
            }
            CurationReason::Budget => e.u8(2),
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => CurationReason::SolverError(SolveError::dec(d)?),
            1 => CurationReason::Unsupported(d.static_str()?),
            2 => CurationReason::Budget,
            _ => return Err(WireError::BadTag("CurationReason")),
        })
    }
}

impl Wire for ReplayStep {
    fn enc(&self, e: &mut Encoder) {
        self.model.enc(e);
        self.constraints.enc(e);
        e.u8(self.disc);
        self.unsupported.enc(e);
        e.bool(self.stored);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ReplayStep {
            model: Model::dec(d)?,
            constraints: Vec::dec(d)?,
            disc: d.u8()?,
            unsupported: Option::dec(d)?,
            stored: d.bool()?,
        })
    }
}

impl Wire for VarRole {
    fn enc(&self, e: &mut Encoder) {
        e.u8(match self {
            VarRole::Value => 0,
            VarRole::Counter => 1,
        });
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => VarRole::Value,
            1 => VarRole::Counter,
            _ => return Err(WireError::BadTag("VarRole")),
        })
    }
}

impl Wire for ObjShape {
    fn enc(&self, e: &mut Encoder) {
        self.size_var.enc(e);
        self.slots.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ObjShape { size_var: Option::dec(d)?, slots: Vec::dec(d)? })
    }
}

impl Wire for AbstractState {
    fn enc(&self, e: &mut Encoder) {
        self.specs().to_vec().enc(e);
        self.roles().to_vec().enc(e);
        self.shapes().to_vec().enc(e);
        self.stack_size.enc(e);
        self.temp_count.enc(e);
        self.literal_count.enc(e);
        self.receiver.enc(e);
        self.stack_vars.enc(e);
        self.temp_vars.enc(e);
        self.literal_vars.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AbstractState::from_parts(
            Vec::dec(d)?,
            Vec::dec(d)?,
            Vec::dec(d)?,
            VarId::dec(d)?,
            VarId::dec(d)?,
            VarId::dec(d)?,
            VarId::dec(d)?,
            Vec::dec(d)?,
            Vec::dec(d)?,
            Vec::dec(d)?,
        ))
    }
}

impl Wire for ExplorationResult {
    fn enc(&self, e: &mut Encoder) {
        self.paths.enc(e);
        self.curated_out.enc(e);
        self.state.enc(e);
        e.usize(self.iterations);
        self.solver.enc(e);
        self.probe_models.enc(e);
        self.replay_log.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ExplorationResult {
            paths: Vec::dec(d)?,
            curated_out: Vec::dec(d)?,
            state: AbstractState::dec(d)?,
            iterations: d.usize()?,
            solver: SessionStats::dec(d)?,
            probe_models: Vec::dec(d)?,
            replay_log: Option::dec(d)?,
            // Timings and trail counters are run diagnostics, not
            // results: a corpus hit costs no walk, probe or trail
            // work, so they are not on the wire.
            trail: igjit_solver::TrailStats::default(),
            walk_run: std::time::Duration::ZERO,
            probe_solve: std::time::Duration::ZERO,
        })
    }
}

// ------------------------------------------------------------------ jit

impl Wire for CompilerKind {
    fn enc(&self, e: &mut Encoder) {
        e.u8(match self {
            CompilerKind::SimpleStackBased => 0,
            CompilerKind::StackToRegister => 1,
            CompilerKind::RegisterAllocating => 2,
        });
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => CompilerKind::SimpleStackBased,
            1 => CompilerKind::StackToRegister,
            2 => CompilerKind::RegisterAllocating,
            _ => return Err(WireError::BadTag("CompilerKind")),
        })
    }
}

impl Wire for CompileKey {
    fn enc(&self, e: &mut Encoder) {
        match self {
            CompileKey::Bytecode {
                kind,
                isa,
                instrs,
                stack,
                temps,
                literals,
                nil,
                true_obj,
                false_obj,
            } => {
                e.u8(0);
                kind.enc(e);
                isa.enc(e);
                instrs.enc(e);
                stack.enc(e);
                temps.enc(e);
                literals.enc(e);
                e.u32(*nil);
                e.u32(*true_obj);
                e.u32(*false_obj);
            }
            CompileKey::Native { id, isa, nil, true_obj, false_obj } => {
                e.u8(1);
                e.u32(*id);
                isa.enc(e);
                e.u32(*nil);
                e.u32(*true_obj);
                e.u32(*false_obj);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => CompileKey::Bytecode {
                kind: CompilerKind::dec(d)?,
                isa: Isa::dec(d)?,
                instrs: Vec::dec(d)?,
                stack: Vec::dec(d)?,
                temps: Vec::dec(d)?,
                literals: Vec::dec(d)?,
                nil: d.u32()?,
                true_obj: d.u32()?,
                false_obj: d.u32()?,
            },
            1 => CompileKey::Native {
                id: d.u32()?,
                isa: Isa::dec(d)?,
                nil: d.u32()?,
                true_obj: d.u32()?,
                false_obj: d.u32()?,
            },
            _ => return Err(WireError::BadTag("CompileKey")),
        })
    }
}

impl Wire for CompiledCode {
    fn enc(&self, e: &mut Encoder) {
        e.bytes(&self.code);
        self.isa.enc(e);
        e.u32(self.ntemps);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CompiledCode { code: d.bytes()?.to_vec(), isa: Isa::dec(d)?, ntemps: d.u32()? })
    }
}

impl Wire for CompileError {
    fn enc(&self, e: &mut Encoder) {
        match self {
            CompileError::NotImplemented(s) => {
                e.u8(0);
                e.str(s);
            }
            CompileError::Unsupported(s) => {
                e.u8(1);
                e.str(s);
            }
            CompileError::Backend(s) => {
                e.u8(2);
                e.str(s);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => CompileError::NotImplemented(d.static_str()?),
            1 => CompileError::Unsupported(d.static_str()?),
            2 => CompileError::Backend(d.string()?),
            _ => return Err(WireError::BadTag("CompileError")),
        })
    }
}

impl Wire for Result<CompiledCode, CompileError> {
    fn enc(&self, e: &mut Encoder) {
        match self {
            Ok(code) => {
                e.u8(0);
                code.enc(e);
            }
            Err(err) => {
                e.u8(1);
                err.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => Ok(CompiledCode::dec(d)?),
            1 => Err(CompileError::dec(d)?),
            _ => return Err(WireError::BadTag("Result")),
        })
    }
}

// ------------------------------------------------------------- difftest

impl Wire for Target {
    fn enc(&self, e: &mut Encoder) {
        match self {
            Target::NativeMethods => e.u8(0),
            Target::Bytecode(k) => {
                e.u8(1);
                k.enc(e);
            }
            Target::MetaCompiled => e.u8(2),
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => Target::NativeMethods,
            1 => Target::Bytecode(CompilerKind::dec(d)?),
            2 => Target::MetaCompiled,
            _ => return Err(WireError::BadTag("Target")),
        })
    }
}

impl Wire for DefectCategory {
    fn enc(&self, e: &mut Encoder) {
        let i = DefectCategory::ALL
            .iter()
            .position(|c| c == self)
            .expect("every category is in ALL");
        e.u8(i as u8);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let i = d.u8()? as usize;
        DefectCategory::ALL.get(i).copied().ok_or(WireError::BadTag("DefectCategory"))
    }
}

impl Wire for CauseKey {
    fn enc(&self, e: &mut Encoder) {
        self.category.enc(e);
        self.instruction.enc(e);
        self.compiler.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CauseKey {
            category: DefectCategory::dec(d)?,
            instruction: Cow::dec(d)?,
            compiler: Cow::dec(d)?,
        })
    }
}

impl Wire for DifferenceKind {
    fn enc(&self, e: &mut Encoder) {
        match self {
            DifferenceKind::ExitMismatch { interp, compiled } => {
                e.u8(0);
                e.str(interp);
                e.str(compiled);
            }
            DifferenceKind::StackMismatch => e.u8(1),
            DifferenceKind::TempsMismatch => e.u8(2),
            DifferenceKind::ResultMismatch => e.u8(3),
            DifferenceKind::SendMismatch => e.u8(4),
            DifferenceKind::SideEffectMismatch => e.u8(5),
            DifferenceKind::CompileRefused => e.u8(6),
            DifferenceKind::SimulationError => e.u8(7),
            DifferenceKind::EngineError => e.u8(8),
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => DifferenceKind::ExitMismatch { interp: d.string()?, compiled: d.string()? },
            1 => DifferenceKind::StackMismatch,
            2 => DifferenceKind::TempsMismatch,
            3 => DifferenceKind::ResultMismatch,
            4 => DifferenceKind::SendMismatch,
            5 => DifferenceKind::SideEffectMismatch,
            6 => DifferenceKind::CompileRefused,
            7 => DifferenceKind::SimulationError,
            8 => DifferenceKind::EngineError,
            _ => return Err(WireError::BadTag("DifferenceKind")),
        })
    }
}

impl Wire for Difference {
    fn enc(&self, e: &mut Encoder) {
        self.kind.enc(e);
        e.str(&self.detail);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Difference { kind: DifferenceKind::dec(d)?, detail: d.string()? })
    }
}

impl Wire for Verdict {
    fn enc(&self, e: &mut Encoder) {
        match self {
            Verdict::Agree => e.u8(0),
            Verdict::Difference(diff) => {
                e.u8(1);
                diff.enc(e);
            }
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => Verdict::Agree,
            1 => Verdict::Difference(Difference::dec(d)?),
            _ => return Err(WireError::BadTag("Verdict")),
        })
    }
}

impl Wire for PathVerdict {
    fn enc(&self, e: &mut Encoder) {
        self.instruction.enc(e);
        e.str(&self.interp_exit);
        self.verdict.enc(e);
        self.cause.enc(e);
        self.all_causes.enc(e);
        e.bool(self.found_by_probe);
        self.isa.enc(e);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PathVerdict {
            instruction: InstrUnderTest::dec(d)?,
            interp_exit: d.string()?,
            verdict: Verdict::dec(d)?,
            cause: Option::dec(d)?,
            all_causes: Vec::dec(d)?,
            found_by_probe: d.bool()?,
            isa: Option::dec(d)?,
        })
    }
}

impl Wire for SnapshotStats {
    fn enc(&self, e: &mut Encoder) {
        e.u64(self.seals);
        e.u64(self.restores);
        e.u64(self.dirty_words);
        for v in self.dirty_hist {
            e.u64(v);
        }
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let seals = d.u64()?;
        let restores = d.u64()?;
        let dirty_words = d.u64()?;
        let mut dirty_hist = [0u64; 8];
        for slot in &mut dirty_hist {
            *slot = d.u64()?;
        }
        Ok(SnapshotStats { seals, restores, dirty_words, dirty_hist })
    }
}

impl Wire for InstructionOutcome {
    fn enc(&self, e: &mut Encoder) {
        self.instruction.enc(e);
        e.usize(self.paths_found);
        e.usize(self.curated);
        self.curated_out.enc(e);
        self.verdicts.enc(e);
        e.usize(self.explore_iterations);
        e.usize(self.witness_errors);
        e.usize(self.oracle_panics);
        self.snapshot.enc(e);
        e.usize(self.meta_compiled_runs);
        e.usize(self.meta_trampolines);
    }
    fn dec(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(InstructionOutcome {
            instruction: InstrUnderTest::dec(d)?,
            paths_found: d.usize()?,
            curated: d.usize()?,
            curated_out: Vec::dec(d)?,
            verdicts: Vec::dec(d)?,
            explore_iterations: d.usize()?,
            witness_errors: d.usize()?,
            oracle_panics: d.usize()?,
            snapshot: SnapshotStats::dec(d)?,
            meta_compiled_runs: d.usize()?,
            meta_trampolines: d.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_round_trips() {
        let c = Constraint::Or(vec![
            Constraint::Kind { var: VarId(3), allowed: KindSet::only(Kind::Float) },
            Constraint::And(vec![
                Constraint::Int(
                    CmpOp::Le,
                    LinExpr { constant: -7, terms: vec![(2, VarId(1))] },
                    LinExpr { constant: 0, terms: vec![] },
                ),
                Constraint::Float(CmpOp::Ne, FloatTerm::Var(VarId(0)), FloatTerm::Const(1.5)),
            ]),
            Constraint::ObjEq(VarId(4), VarId(5)),
        ]);
        let rt: Constraint = from_bytes(&to_bytes(&c)).unwrap();
        assert_eq!(rt, c);
    }

    #[test]
    fn instruction_and_selector_round_trip() {
        for spec in igjit_bytecode::instruction_catalog() {
            let rt: Instruction = from_bytes(&to_bytes(&spec.instruction)).unwrap();
            assert_eq!(rt, spec.instruction);
        }
        for sel in SpecialSelector::ALL {
            let rt: SpecialSelector = from_bytes(&to_bytes(&sel)).unwrap();
            assert_eq!(rt, sel);
        }
    }

    #[test]
    fn kindset_round_trips() {
        let sets =
            [KindSet::EMPTY, KindSet::ANY, KindSet::only(Kind::SmallInt).union(KindSet::only(Kind::Nil))];
        for s in sets {
            let rt: KindSet = from_bytes(&to_bytes(&s)).unwrap();
            assert_eq!(rt, s);
        }
    }

    #[test]
    fn model_round_trips() {
        let m = Model::from_assignments(vec![
            Assignment { kind: Kind::SmallInt, int: -3, float: 0.0, alias: 7 },
            Assignment { kind: Kind::Float, int: 0, float: -2.25, alias: 8 },
        ]);
        let rt: Model = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(rt, m);
    }

    #[test]
    fn every_enum_rejects_bad_tags() {
        assert!(from_bytes::<CmpOp>(&[99]).is_err());
        assert!(from_bytes::<Verdict>(&[9]).is_err());
        assert!(from_bytes::<Target>(&[7]).is_err());
        assert!(from_bytes::<PathOutcome>(&[200]).is_err());
        assert!(from_bytes::<Kind>(&[15]).is_err());
    }
}
