//! Persistent campaign corpus (engine v7).
//!
//! The paper's harness is meant to run continuously against an
//! evolving JIT, but exploration, probing and compilation are all
//! deterministic functions of the interpreter/compiler sources — so
//! none of that work needs to be redone when the sources haven't
//! changed. This crate persists the three cacheable layers of a sweep
//! to one binary file:
//!
//! 1. **explorations** — curated paths, probe models and recorded
//!    negation walks, keyed by the interpreter-side source
//!    fingerprint;
//! 2. **code** — compiled-code-cache artifacts (including refusals),
//!    keyed by the compiler-side fingerprint extended with the
//!    mutant-arming state;
//! 3. **outcomes** — whole-pipeline per-instruction verdicts, keyed
//!    by the combination — the section that makes a warm re-run
//!    against an unchanged compiler skip the pipeline outright.
//!
//! Invalidation is content-based ([`mod@fingerprint`]): every semantic
//! crate bakes an FNV-1a hash of its own sources in at compile time,
//! and each section mixes exactly the crates that can influence it.
//! Change the JIT and the code + outcome sections go stale while the
//! expensive exploration section stays warm; change nothing and a
//! re-sweep is almost pure cache replay.
//!
//! The file layer ([`mod@file`]) enforces the format's one hard rule:
//! a corpus can only ever make a run *faster or colder* — any
//! truncation, checksum mismatch, version skew or decode error
//! silently degrades to recomputing, never panics, never changes a
//! row.

pub mod codec;
pub mod file;
pub mod fingerprint;
pub mod wire;

pub use codec::{from_bytes, to_bytes, Wire};
pub use file::{load, save, Corpus, ExplorationKey, LoadStats, OutcomeKey, SaveOutcome};
pub use fingerprint::{fingerprints, Fingerprints};
pub use wire::{Decoder, Encoder, WireError};
