//! Content fingerprints that key corpus sections.
//!
//! The corpus must answer one question precisely: *could this cached
//! result differ from what the current binary would recompute?* Each
//! semantic crate exposes a compile-time hash of its own sources
//! (`srcid::SOURCE_FINGERPRINT`, an FNV-1a over every `.rs` file,
//! baked in via `include_bytes!`). Section fingerprints mix exactly
//! the crates whose code can influence that section's results:
//!
//! - **exploration** — the interpreter-side semantics: bytecode set,
//!   heap model, solver, interpreter, concolic engine, plus the probe
//!   flag (probes change what an exploration records).
//! - **code** — the compiler side: bytecode set, heap model, JIT, and
//!   the mutation layer (its catalog changes what an armed mutant
//!   compiles to) plus the *runtime* mutant-arming state.
//! - **outcomes** — everything: both fingerprints above, plus the
//!   machine simulator, the differential-test driver and the partial
//!   evaluator behind the meta tier (its outcomes are stored like any
//!   other target's, so a stale evaluator must invalidate them), plus
//!   the ISA list, since a stored verdict bakes all of them in.
//!
//! This is deliberately finer than "hash the whole binary": editing
//! the JIT invalidates code artifacts and outcomes but leaves the
//! (expensive) exploration section warm; editing only driver crates
//! (`igjit`, `igjit-bench` — orchestration, not semantics) invalidates
//! nothing. Crates outside the lists below must not influence
//! per-instruction results; the campaign's thread-count/knob
//! invariance tests are the guard for that.

use crate::wire::{fnv1a, fnv_mix};
use igjit_machine::Isa;

/// The three section keys of a corpus file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fingerprints {
    /// Keys the exploration-cache section.
    pub exploration: u64,
    /// Keys the compiled-code section.
    pub code: u64,
    /// Keys the per-instruction outcome section.
    pub outcomes: u64,
}

/// Computes the fingerprints for a campaign configuration.
///
/// `probes` and `isas` must match the sweep's `CampaignConfig`; the
/// current mutant-arming state (`igjit_mutate::current()`) is read
/// here, so a worker process running with an armed mutant gets corpus
/// keys disjoint from every pristine run's.
pub fn fingerprints(probes: bool, isas: &[Isa]) -> Fingerprints {
    let interp_side = [
        igjit_bytecode::srcid::SOURCE_FINGERPRINT,
        igjit_heap::srcid::SOURCE_FINGERPRINT,
        igjit_solver::srcid::SOURCE_FINGERPRINT,
        igjit_interp::srcid::SOURCE_FINGERPRINT,
        igjit_concolic::srcid::SOURCE_FINGERPRINT,
    ];
    let mut exploration = fnv1a(b"igjit-corpus/exploration");
    for fp in interp_side {
        exploration = fnv_mix(exploration, fp);
    }
    exploration = fnv_mix(exploration, probes as u64);

    let mutant_state = match igjit_mutate::current() {
        None => 0,
        // Offset so "mutant 0 armed" (if it ever existed) differs from
        // "no mutant".
        Some(id) => 1 + id.0 as u64,
    };
    let code_side = [
        igjit_bytecode::srcid::SOURCE_FINGERPRINT,
        igjit_heap::srcid::SOURCE_FINGERPRINT,
        igjit_jit::srcid::SOURCE_FINGERPRINT,
        igjit_mutate::srcid::SOURCE_FINGERPRINT,
    ];
    let mut code = fnv1a(b"igjit-corpus/code");
    for fp in code_side {
        code = fnv_mix(code, fp);
    }
    code = fnv_mix(code, mutant_state);

    let mut outcomes = fnv1a(b"igjit-corpus/outcomes");
    outcomes = fnv_mix(outcomes, exploration);
    outcomes = fnv_mix(outcomes, code);
    outcomes = fnv_mix(outcomes, igjit_machine::srcid::SOURCE_FINGERPRINT);
    outcomes = fnv_mix(outcomes, igjit_difftest::srcid::SOURCE_FINGERPRINT);
    outcomes = fnv_mix(outcomes, igjit_metajit::srcid::SOURCE_FINGERPRINT);
    outcomes = fnv_mix(outcomes, isas.len() as u64);
    for isa in isas {
        outcomes = fnv_mix(
            outcomes,
            match isa {
                Isa::X86ish => 1,
                Isa::Arm32ish => 2,
            },
        );
    }
    Fingerprints { exploration, code, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_within_a_build() {
        let a = fingerprints(true, &[Isa::X86ish, Isa::Arm32ish]);
        let b = fingerprints(true, &[Isa::X86ish, Isa::Arm32ish]);
        assert_eq!(a, b);
    }

    #[test]
    fn config_changes_move_the_right_sections() {
        let base = fingerprints(true, &[Isa::X86ish, Isa::Arm32ish]);
        let no_probes = fingerprints(false, &[Isa::X86ish, Isa::Arm32ish]);
        // Probes shape what exploration records → exploration + outcomes
        // move, code artifacts stay valid.
        assert_ne!(base.exploration, no_probes.exploration);
        assert_eq!(base.code, no_probes.code);
        assert_ne!(base.outcomes, no_probes.outcomes);

        let one_isa = fingerprints(true, &[Isa::X86ish]);
        // The ISA list only affects which verdicts a stored outcome
        // aggregates — exploration and per-key code artifacts stay valid.
        assert_eq!(base.exploration, one_isa.exploration);
        assert_eq!(base.code, one_isa.code);
        assert_ne!(base.outcomes, one_isa.outcomes);
    }

    #[test]
    fn armed_mutant_moves_code_and_outcomes() {
        let pristine = fingerprints(true, &[Isa::X86ish]);
        let _guard = igjit_mutate::FaultInjector::arm(igjit_mutate::MutantId(101));
        let armed = fingerprints(true, &[Isa::X86ish]);
        assert_eq!(pristine.exploration, armed.exploration);
        assert_ne!(pristine.code, armed.code);
        assert_ne!(pristine.outcomes, armed.outcomes);
    }
}
