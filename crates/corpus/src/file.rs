//! The on-disk corpus file: load with graceful degradation, save
//! atomically.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "IGJC"  magic                                  4 bytes
//! version u16                                    2 bytes
//! count   u8     number of sections              1 byte
//! then per section:
//!   tag        u8    1=explorations 2=code 3=outcomes
//!   fingerprint u64  content key (see fingerprint.rs)
//!   length      u64  payload bytes
//!   checksum    u64  FNV-1a of the payload
//!   payload     [u8; length]
//! ```
//!
//! **The one hard rule:** a corpus file can never make a run wrong or
//! crash it — only warm or cold. Every anomaly (bad magic, version
//! skew, truncation, checksum mismatch, decode error) drops the
//! affected section (or the whole file) and records a warning; a
//! fingerprint mismatch is ordinary staleness and drops the section
//! silently. The sweep then recomputes exactly what a cold run would.

use crate::codec::{from_bytes, to_bytes, Wire};
use crate::fingerprint::Fingerprints;
use crate::wire::fnv1a;
use igjit_concolic::{ExplorationResult, InstrUnderTest};
use igjit_difftest::{InstructionOutcome, Target};
use igjit_jit::{CompileError, CompileKey, CompiledCode};
use std::io;
use std::path::Path;

/// File magic.
pub const MAGIC: [u8; 4] = *b"IGJC";
/// Format version; any skew degrades to cold. v2: engine v9 adds the
/// meta tier (`Target::MetaCompiled` wire tag 2, meta run counters on
/// `InstructionOutcome`).
pub const VERSION: u16 = 2;

const TAG_EXPLORATIONS: u8 = 1;
const TAG_CODE: u8 = 2;
const TAG_OUTCOMES: u8 = 3;

/// Exploration-cache key: instruction plus the probes flag (mirrors
/// `igjit_concolic::ExplorationCache`).
pub type ExplorationKey = (InstrUnderTest, bool);
/// Outcome key: one per (compiler target, instruction) pair.
pub type OutcomeKey = (Target, InstrUnderTest);

/// Everything a corpus file persists, as plain sorted pairs (the
/// in-memory cache structures live in their own crates; this is the
/// interchange form).
#[derive(Default)]
pub struct Corpus {
    /// Exploration-cache entries (curated paths, probe models,
    /// recorded walks).
    pub explorations: Vec<(ExplorationKey, ExplorationResult)>,
    /// Compiled-code-cache entries, including negative entries
    /// (compile refusals are results too).
    pub code: Vec<(CompileKey, Result<CompiledCode, CompileError>)>,
    /// Whole-pipeline per-instruction outcomes — the section that
    /// lets a fully-warm sweep skip explore/materialize/compile/
    /// simulate/compare outright.
    pub outcomes: Vec<(OutcomeKey, InstructionOutcome)>,
}

/// What a load found, for metrics and operator-facing warnings.
#[derive(Clone, Debug, Default)]
pub struct LoadStats {
    /// Entries loaded per section.
    pub explorations: usize,
    /// Compiled artifacts loaded.
    pub code: usize,
    /// Instruction outcomes loaded.
    pub outcomes: usize,
    /// Sections dropped for a fingerprint mismatch (ordinary
    /// staleness after a code change).
    pub stale_sections: usize,
    /// True when no section could be used at all (absent file,
    /// corruption, version skew).
    pub cold: bool,
    /// Human-readable anomaly descriptions (empty for a clean load
    /// and for a simply-absent file).
    pub warnings: Vec<String>,
}

/// Result of [`save`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SaveOutcome {
    /// The file already held exactly these bytes; nothing written.
    Unchanged,
    /// A new file was atomically moved into place.
    Written {
        /// Size of the file written.
        bytes: usize,
    },
}

fn sorted_section<K: Wire, V: Wire>(pairs: &[(K, V)]) -> Vec<u8> {
    let mut encoded: Vec<(Vec<u8>, &(K, V))> =
        pairs.iter().map(|p| (to_bytes(&p.0), p)).collect();
    encoded.sort_by(|a, b| a.0.cmp(&b.0));
    let mut e = crate::wire::Encoder::new();
    e.usize(encoded.len());
    for (_, (k, v)) in &encoded {
        k.enc(&mut e);
        v.enc(&mut e);
    }
    e.into_bytes()
}

/// Encodes a corpus to the full file image. Sections are sorted by
/// encoded key, so equal content always produces identical bytes —
/// that is what makes [`save`]'s skip-if-unchanged check and CI's
/// byte-identity assertions meaningful.
pub fn encode(corpus: &Corpus, fp: &Fingerprints) -> Vec<u8> {
    let sections: [(u8, u64, Vec<u8>); 3] = [
        (TAG_EXPLORATIONS, fp.exploration, sorted_section(&corpus.explorations)),
        (TAG_CODE, fp.code, sorted_section(&corpus.code)),
        (TAG_OUTCOMES, fp.outcomes, sorted_section(&corpus.outcomes)),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(sections.len() as u8);
    for (tag, fingerprint, payload) in &sections {
        out.push(*tag);
        out.extend_from_slice(&fingerprint.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes a file image against the expected fingerprints. Never
/// panics; anomalies degrade per the module rules.
pub fn decode(bytes: &[u8], fp: &Fingerprints) -> (Corpus, LoadStats) {
    let mut corpus = Corpus::default();
    let mut stats = LoadStats::default();
    let cold = |stats: &mut LoadStats, why: String| {
        stats.cold = true;
        stats.warnings.push(why);
    };
    if bytes.len() < 7 {
        cold(&mut stats, "corpus file shorter than its header; ignoring it".to_string());
        return (corpus, stats);
    }
    if bytes[0..4] != MAGIC {
        cold(&mut stats, "corpus file has wrong magic; ignoring it".to_string());
        return (corpus, stats);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        cold(
            &mut stats,
            format!("corpus file is format v{version}, this build reads v{VERSION}; ignoring it"),
        );
        return (corpus, stats);
    }
    let count = bytes[6] as usize;
    let mut pos = 7usize;
    for _ in 0..count {
        // Section header: tag(1) + fingerprint(8) + length(8) + checksum(8).
        if bytes.len() - pos < 25 {
            cold(&mut stats, "corpus section table truncated; dropping the rest".to_string());
            break;
        }
        let tag = bytes[pos];
        let fingerprint =
            u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("len 8"));
        let length =
            u64::from_le_bytes(bytes[pos + 9..pos + 17].try_into().expect("len 8")) as usize;
        let checksum =
            u64::from_le_bytes(bytes[pos + 17..pos + 25].try_into().expect("len 8"));
        pos += 25;
        if bytes.len() - pos < length {
            cold(&mut stats, "corpus section payload truncated; dropping the rest".to_string());
            break;
        }
        let payload = &bytes[pos..pos + length];
        pos += length;
        let expected = match tag {
            TAG_EXPLORATIONS => fp.exploration,
            TAG_CODE => fp.code,
            TAG_OUTCOMES => fp.outcomes,
            _ => {
                // Unknown section from a newer writer: skip, stay warm
                // for the sections we do understand.
                stats.warnings.push(format!("unknown corpus section tag {tag}; skipping it"));
                continue;
            }
        };
        if fingerprint != expected {
            // Ordinary staleness: the code that produced this section
            // has changed. Silent by design.
            stats.stale_sections += 1;
            continue;
        }
        if fnv1a(payload) != checksum {
            stats
                .warnings
                .push(format!("corpus section {tag} failed its checksum; running it cold"));
            continue;
        }
        let decoded_ok = match tag {
            TAG_EXPLORATIONS => {
                match from_bytes::<Vec<((InstrUnderTest, bool), ExplorationResult)>>(payload) {
                    Ok(pairs) => {
                        stats.explorations = pairs.len();
                        corpus.explorations = pairs;
                        true
                    }
                    Err(_) => false,
                }
            }
            TAG_CODE => {
                match from_bytes::<Vec<(CompileKey, Result<CompiledCode, CompileError>)>>(payload)
                {
                    Ok(pairs) => {
                        stats.code = pairs.len();
                        corpus.code = pairs;
                        true
                    }
                    Err(_) => false,
                }
            }
            TAG_OUTCOMES => {
                match from_bytes::<Vec<((Target, InstrUnderTest), InstructionOutcome)>>(payload) {
                    Ok(pairs) => {
                        stats.outcomes = pairs.len();
                        corpus.outcomes = pairs;
                        true
                    }
                    Err(_) => false,
                }
            }
            _ => unreachable!("unknown tags continue above"),
        };
        if !decoded_ok {
            stats
                .warnings
                .push(format!("corpus section {tag} failed to decode; running it cold"));
        }
    }
    (corpus, stats)
}

/// Loads a corpus file. An absent file is a quiet cold start; any
/// other anomaly degrades per the module rules, with a warning in
/// [`LoadStats::warnings`].
pub fn load(path: &Path, fp: &Fingerprints) -> (Corpus, LoadStats) {
    match std::fs::read(path) {
        Ok(bytes) => decode(&bytes, fp),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            (Corpus::default(), LoadStats { cold: true, ..LoadStats::default() })
        }
        Err(e) => (
            Corpus::default(),
            LoadStats {
                cold: true,
                warnings: vec![format!("corpus file {} unreadable ({e}); running cold", path.display())],
                ..LoadStats::default()
            },
        ),
    }
}

/// Saves a corpus atomically: encode, compare against the existing
/// file (skip the write when nothing changed), else write a temp file
/// in the same directory and rename it into place.
pub fn save(path: &Path, corpus: &Corpus, fp: &Fingerprints) -> io::Result<SaveOutcome> {
    let bytes = encode(corpus, fp);
    if let Ok(existing) = std::fs::read(path) {
        if existing == bytes {
            return Ok(SaveOutcome::Unchanged);
        }
    }
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("corpus"),
        std::process::id()
    ));
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(SaveOutcome::Written { bytes: bytes.len() }),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprints {
        crate::fingerprint::fingerprints(true, &[igjit_machine::Isa::X86ish])
    }

    #[test]
    fn empty_corpus_round_trips() {
        let bytes = encode(&Corpus::default(), &fp());
        let (corpus, stats) = decode(&bytes, &fp());
        assert!(corpus.explorations.is_empty() && corpus.code.is_empty());
        assert!(!stats.cold);
        assert_eq!(stats.stale_sections, 0);
        assert!(stats.warnings.is_empty());
    }

    #[test]
    fn stale_fingerprints_drop_sections_silently() {
        let bytes = encode(&Corpus::default(), &fp());
        let other = Fingerprints { exploration: 1, code: 2, outcomes: 3 };
        let (_, stats) = decode(&bytes, &other);
        assert_eq!(stats.stale_sections, 3);
        assert!(stats.warnings.is_empty());
        assert!(!stats.cold);
    }

    #[test]
    fn version_skew_is_cold_with_warning() {
        let mut bytes = encode(&Corpus::default(), &fp());
        bytes[4] = bytes[4].wrapping_add(1);
        let (_, stats) = decode(&bytes, &fp());
        assert!(stats.cold);
        assert!(stats.warnings.iter().any(|w| w.contains("format v")));
    }

    #[test]
    fn every_truncation_point_degrades_gracefully() {
        let bytes = encode(&Corpus::default(), &fp());
        for cut in 0..bytes.len() {
            let (_, stats) = decode(&bytes[..cut], &fp());
            // Must not panic; header cuts are cold, payload cuts warn.
            let _ = stats;
        }
    }
}
