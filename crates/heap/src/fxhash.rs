//! A seeded FxHash-style hasher for trust-internal maps (engine v8).
//!
//! `std`'s default hasher is SipHash-1-3: keyed per process and
//! collision-resistant against adversarial keys — protection several
//! of the campaign's hottest maps do not need, because their keys
//! never cross a trust boundary (compile-cache bucket keys derive from
//! the catalog, path-dedup signatures from the explorer's own
//! constraint trees). For those maps this multiply-rotate hash is a
//! drop-in replacement at a fraction of the per-key cost.
//!
//! Two properties matter for row reproducibility and are guaranteed
//! here:
//!
//! * **Deterministic**: the seed is a compile-time constant, so hash
//!   values — and therefore any iteration order an unordered map might
//!   leak — are identical across processes and runs. (SipHash's
//!   per-process random key is exactly what the campaign's shard-merge
//!   determinism must *not* depend on; every consumer of these maps is
//!   already iteration-order independent, and the row-identity suites
//!   gate that.)
//! * **Not a fingerprint**: like any non-cryptographic hash this is
//!   for bucketing only; equality is always confirmed on the full key.
//!
//! Never use this for anything fed by untrusted input.

use std::hash::{BuildHasher, Hasher};

/// The multiplier from FxHash (a.k.a. the rustc hasher): a single odd
/// constant whose high bits diffuse well under `rotate ^ multiply`.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed seed mixed into every hasher so the digest stream is not the
/// raw FxHash of the key (cheap insurance against accidental
/// cross-map correlation; any constant works).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A seeded FxHash-style [`Hasher`].
#[derive(Clone, Debug)]
pub struct FxHasher64 {
    hash: u64,
}

impl Default for FxHasher64 {
    fn default() -> Self {
        FxHasher64 { hash: SEED }
    }
}

impl FxHasher64 {
    /// A hasher starting from the fixed compile-time seed.
    pub fn new() -> FxHasher64 {
        FxHasher64::default()
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add(u64::from_le_bytes(head.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (head, rest) = bytes.split_at(4);
            self.add(u64::from(u32::from_le_bytes(head.try_into().expect("4-byte chunk"))));
            bytes = rest;
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`BuildHasher`] producing seeded [`FxHasher64`]s, for
/// `HashMap`/`HashSet` type parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;

    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::new()
    }
}

/// A `HashMap` keyed by the seeded fast hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the seeded fast hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = FxHasher64::new();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&"some key"), hash_of(&"some key"));
        assert_eq!(hash_of(&(1u64, 2u8, "x")), hash_of(&(1u64, 2u8, "x")));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Chunked `write` must not collide a split differently.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 12][..]));
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..100 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
