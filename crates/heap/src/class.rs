//! The class table.
//!
//! Objects do not point to their class directly; their header stores a
//! *class index* into the VM-global class table, exactly as in Spur.
//! The concolic constraint model (`AbstractClass` in Fig. 3 of the
//! paper) mirrors this: class identity constraints are expressed over
//! class indices.

use std::borrow::Cow;
use std::sync::OnceLock;

use crate::format::ObjectFormat;

/// An index into the class table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassIndex(pub u32);

impl ClassIndex {
    /// Reserved invalid index; never appears in a live header.
    pub const INVALID: ClassIndex = ClassIndex(0);
    /// The (virtual) class of tagged SmallIntegers.
    pub const SMALL_INTEGER: ClassIndex = ClassIndex(1);
    /// `UndefinedObject`, the class of `nil`.
    pub const UNDEFINED_OBJECT: ClassIndex = ClassIndex(2);
    /// The class of `false`.
    pub const FALSE: ClassIndex = ClassIndex(3);
    /// The class of `true`.
    pub const TRUE: ClassIndex = ClassIndex(4);
    /// Boxed 64-bit floats.
    pub const FLOAT: ClassIndex = ClassIndex(5);
    /// Pointer-indexable arrays.
    pub const ARRAY: ClassIndex = ClassIndex(6);
    /// Byte-indexable arrays.
    pub const BYTE_ARRAY: ClassIndex = ClassIndex(7);
    /// Byte strings.
    pub const STRING: ClassIndex = ClassIndex(8);
    /// Interned symbols (selectors).
    pub const SYMBOL: ClassIndex = ClassIndex(9);
    /// Compiled methods.
    pub const COMPILED_METHOD: ClassIndex = ClassIndex(10);
    /// Plain fixed-slot objects.
    pub const OBJECT: ClassIndex = ClassIndex(11);
    /// Handles into the simulated external (FFI) memory.
    pub const EXTERNAL_ADDRESS: ClassIndex = ClassIndex(12);
    /// Word-indexable arrays.
    pub const WORD_ARRAY: ClassIndex = ClassIndex(13);
    /// Reified stack-frame contexts (unsupported by the prototype,
    /// kept so the curation step has something real to exclude).
    pub const CONTEXT: ClassIndex = ClassIndex(14);
    /// Association objects used by literal-variable bytecodes.
    pub const ASSOCIATION: ClassIndex = ClassIndex(15);
    /// First index available for user-defined classes.
    pub const FIRST_USER: ClassIndex = ClassIndex(16);

    /// Raw numeric value of this index.
    pub fn value(self) -> u32 {
        self.0
    }
}

/// Metadata the VM keeps per class: its instance format and the fixed
/// slot count instances carry before any indexable part.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDescription {
    /// Human-readable name, used in reports and disassembly. Borrowed
    /// for the well-known classes so building a table allocates no
    /// strings; user classes may own theirs.
    pub name: Cow<'static, str>,
    /// Body layout of instances.
    pub instance_format: ObjectFormat,
    /// Number of fixed (named) pointer slots of instances.
    pub fixed_slots: u32,
}

/// The VM-global class table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassTable {
    entries: Vec<Option<ClassDescription>>,
}

impl ClassTable {
    /// Builds the table pre-populated with the well-known classes.
    ///
    /// A fresh table is built for every [`crate::ObjectMemory`], which
    /// the differential campaign creates once per materialized model —
    /// so this clones a process-wide template (one `Vec` copy of
    /// borrowed-name descriptions) instead of re-deriving the entries
    /// each time.
    pub fn with_well_known_classes() -> ClassTable {
        static TEMPLATE: OnceLock<ClassTable> = OnceLock::new();
        TEMPLATE.get_or_init(Self::build_well_known).clone()
    }

    fn build_well_known() -> ClassTable {
        let mut table = ClassTable { entries: vec![None] };
        let mut put = |idx: ClassIndex, name: &'static str, fmt: ObjectFormat, fixed: u32| {
            let i = idx.0 as usize;
            // `entries` grows monotonically; well-known indices are dense.
            assert_eq!(i, table_len(&table.entries));
            table.entries.push(Some(ClassDescription {
                name: Cow::Borrowed(name),
                instance_format: fmt,
                fixed_slots: fixed,
            }));
        };
        put(ClassIndex::SMALL_INTEGER, "SmallInteger", ObjectFormat::ZeroSized, 0);
        put(ClassIndex::UNDEFINED_OBJECT, "UndefinedObject", ObjectFormat::ZeroSized, 0);
        put(ClassIndex::FALSE, "False", ObjectFormat::ZeroSized, 0);
        put(ClassIndex::TRUE, "True", ObjectFormat::ZeroSized, 0);
        put(ClassIndex::FLOAT, "Float", ObjectFormat::BoxedFloat64, 0);
        put(ClassIndex::ARRAY, "Array", ObjectFormat::Indexable, 0);
        put(ClassIndex::BYTE_ARRAY, "ByteArray", ObjectFormat::Bytes, 0);
        put(ClassIndex::STRING, "String", ObjectFormat::Bytes, 0);
        put(ClassIndex::SYMBOL, "Symbol", ObjectFormat::Bytes, 0);
        put(ClassIndex::COMPILED_METHOD, "CompiledMethod", ObjectFormat::CompiledMethod, 0);
        put(ClassIndex::OBJECT, "Object", ObjectFormat::Fixed, 0);
        put(ClassIndex::EXTERNAL_ADDRESS, "ExternalAddress", ObjectFormat::ExternalAddress, 0);
        put(ClassIndex::WORD_ARRAY, "WordArray", ObjectFormat::Words, 0);
        put(ClassIndex::CONTEXT, "Context", ObjectFormat::Fixed, 4);
        put(ClassIndex::ASSOCIATION, "Association", ObjectFormat::Fixed, 2);
        table
    }

    /// Registers a user class and returns its fresh index.
    pub fn add_class(&mut self, desc: ClassDescription) -> ClassIndex {
        let idx = ClassIndex(self.entries.len() as u32);
        self.entries.push(Some(desc));
        idx
    }

    /// Drops entries back to the first `len` — used by heap snapshot
    /// restore to forget classes registered after a seal. `len` must
    /// not exceed the current length (the table otherwise only grows).
    pub fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.entries.len());
        self.entries.truncate(len);
    }

    /// Looks up a class description; `None` for unknown indices.
    pub fn get(&self, idx: ClassIndex) -> Option<&ClassDescription> {
        self.entries.get(idx.0 as usize).and_then(|e| e.as_ref())
    }

    /// Number of live entries (including the reserved slot 0).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: the table is never empty (slot 0 is reserved).
    pub fn is_empty(&self) -> bool {
        false
    }
}

fn table_len(entries: &[Option<ClassDescription>]) -> usize {
    entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_classes_are_resolvable() {
        let t = ClassTable::with_well_known_classes();
        assert_eq!(t.get(ClassIndex::FLOAT).unwrap().name, "Float");
        assert_eq!(
            t.get(ClassIndex::ARRAY).unwrap().instance_format,
            ObjectFormat::Indexable
        );
        assert_eq!(
            t.get(ClassIndex::BYTE_ARRAY).unwrap().instance_format,
            ObjectFormat::Bytes
        );
        assert!(t.get(ClassIndex::INVALID).is_none());
    }

    #[test]
    fn user_classes_get_fresh_indices() {
        let mut t = ClassTable::with_well_known_classes();
        let a = t.add_class(ClassDescription {
            name: "Point".into(),
            instance_format: ObjectFormat::Fixed,
            fixed_slots: 2,
        });
        let b = t.add_class(ClassDescription {
            name: "Rect".into(),
            instance_format: ObjectFormat::Fixed,
            fixed_slots: 2,
        });
        assert!(a.value() >= ClassIndex::FIRST_USER.value());
        assert_ne!(a, b);
        assert_eq!(t.get(a).unwrap().name, "Point");
    }

    #[test]
    fn unknown_index_is_none() {
        let t = ClassTable::with_well_known_classes();
        assert!(t.get(ClassIndex(9999)).is_none());
    }
}
