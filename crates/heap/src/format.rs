//! Object memory formats.
//!
//! Every heap object's header records a *format*, which governs how its
//! body is interpreted and which access primitives are legal on it. The
//! set mirrors the Spur formats the Pharo instructions dispatch on.

/// The body layout of a heap object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ObjectFormat {
    /// No body at all (e.g. `nil`, `true`, `false`).
    ZeroSized = 0,
    /// A fixed number of pointer slots (ordinary objects).
    Fixed = 1,
    /// A variable number of pointer slots (`Array`).
    Indexable = 2,
    /// A variable number of raw bytes (`ByteArray`, `String`).
    Bytes = 3,
    /// A variable number of raw 32-bit words (`WordArray`, bitmaps).
    Words = 4,
    /// A boxed IEEE-754 double occupying two 32-bit body words.
    BoxedFloat64 = 5,
    /// A compiled method: literal pointer slots followed by bytecodes.
    CompiledMethod = 6,
    /// An external-memory handle: one word holding an address into the
    /// simulated external (non-heap) memory region used by FFI
    /// primitives.
    ExternalAddress = 7,
}

impl ObjectFormat {
    /// Decodes a format from its header encoding.
    pub fn from_bits(bits: u32) -> Option<ObjectFormat> {
        Some(match bits {
            0 => ObjectFormat::ZeroSized,
            1 => ObjectFormat::Fixed,
            2 => ObjectFormat::Indexable,
            3 => ObjectFormat::Bytes,
            4 => ObjectFormat::Words,
            5 => ObjectFormat::BoxedFloat64,
            6 => ObjectFormat::CompiledMethod,
            7 => ObjectFormat::ExternalAddress,
            _ => return None,
        })
    }

    /// Encodes this format for an object header.
    pub fn to_bits(self) -> u32 {
        self as u32
    }

    /// Whether the body holds object pointers that `fetch_pointer` /
    /// `store_pointer` may touch.
    pub fn has_pointer_slots(self) -> bool {
        matches!(
            self,
            ObjectFormat::Fixed | ObjectFormat::Indexable | ObjectFormat::CompiledMethod
        )
    }

    /// Whether `at:`-style indexable access is legal on this format.
    pub fn is_indexable(self) -> bool {
        matches!(
            self,
            ObjectFormat::Indexable | ObjectFormat::Bytes | ObjectFormat::Words
        )
    }

    /// Whether the body is raw bytes.
    pub fn is_bytes(self) -> bool {
        self == ObjectFormat::Bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_for_all_formats() {
        for bits in 0..8 {
            let f = ObjectFormat::from_bits(bits).unwrap();
            assert_eq!(f.to_bits(), bits);
        }
        assert!(ObjectFormat::from_bits(8).is_none());
        assert!(ObjectFormat::from_bits(u32::MAX).is_none());
    }

    #[test]
    fn pointer_slot_classification() {
        assert!(ObjectFormat::Fixed.has_pointer_slots());
        assert!(ObjectFormat::Indexable.has_pointer_slots());
        assert!(ObjectFormat::CompiledMethod.has_pointer_slots());
        assert!(!ObjectFormat::Bytes.has_pointer_slots());
        assert!(!ObjectFormat::BoxedFloat64.has_pointer_slots());
    }

    #[test]
    fn indexable_classification() {
        assert!(ObjectFormat::Indexable.is_indexable());
        assert!(ObjectFormat::Bytes.is_indexable());
        assert!(ObjectFormat::Words.is_indexable());
        assert!(!ObjectFormat::Fixed.is_indexable());
        assert!(!ObjectFormat::ZeroSized.is_indexable());
    }
}
