//! Tagged object pointers (oops).
//!
//! The reproduction follows the Pharo 32-bit tagging scheme the paper's
//! instructions check against: the low bit of a word distinguishes a
//! *SmallInteger* (bit set, 31-bit signed payload in the upper bits)
//! from a heap pointer (bit clear, word-aligned byte address).

/// Largest value representable as a tagged SmallInteger (2^30 - 1).
pub const SMALL_INT_MAX: i64 = (1 << 30) - 1;

/// Smallest value representable as a tagged SmallInteger (-2^30).
pub const SMALL_INT_MIN: i64 = -(1 << 30);

/// An object pointer: either a tagged SmallInteger or a heap address.
///
/// `Oop` is a transparent wrapper over the 32-bit machine word the
/// simulated VM manipulates. All tag checks the interpreter performs
/// (`is_small_int`, untagging, overflow-checked retagging) live here so
/// that the interpreter code reads like the Pharo original.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Oop(pub u32);

impl Oop {
    /// The all-zero oop. Never a valid object; used as a poison value.
    pub const ZERO: Oop = Oop(0);

    /// Returns `true` if this oop is a tagged SmallInteger.
    #[inline]
    pub fn is_small_int(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this oop is a heap pointer (not tagged).
    #[inline]
    pub fn is_pointer(self) -> bool {
        !self.is_small_int()
    }

    /// Untags a SmallInteger oop into its signed payload.
    ///
    /// The caller must have established `is_small_int`; untagging a
    /// pointer yields a meaningless number — exactly the hazard the
    /// paper's *missing type check* defects exploit.
    #[inline]
    pub fn small_int_value(self) -> i64 {
        ((self.0 as i32) >> 1) as i64
    }

    /// Tags `value` as a SmallInteger. Panics if out of the 31-bit range;
    /// use [`Oop::try_from_small_int`] when the range is not guaranteed.
    #[inline]
    pub fn from_small_int(value: i64) -> Oop {
        Oop::try_from_small_int(value)
            .unwrap_or_else(|| panic!("{value} out of SmallInteger range"))
    }

    /// Tags `value` as a SmallInteger if it fits the 31-bit range.
    #[inline]
    pub fn try_from_small_int(value: i64) -> Option<Oop> {
        if is_small_int_value(value) {
            Some(Oop((((value as i32) << 1) | 1) as u32))
        } else {
            None
        }
    }

    /// Interprets this oop as a heap byte address.
    #[inline]
    pub fn address(self) -> u32 {
        self.0
    }

    /// Builds an oop from a heap byte address (must be word aligned).
    #[inline]
    pub fn from_address(addr: u32) -> Oop {
        debug_assert_eq!(addr & 3, 0, "heap addresses are word aligned");
        Oop(addr)
    }
}

/// Returns `true` when `value` fits the tagged SmallInteger range.
///
/// This is the overflow check (`isIntegerValue:` in the Pharo source of
/// Listing 1) every inlined arithmetic path performs.
#[inline]
pub fn is_small_int_value(value: i64) -> bool {
    (SMALL_INT_MIN..=SMALL_INT_MAX).contains(&value)
}

impl std::fmt::Debug for Oop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_small_int() {
            write!(f, "SmallInt({})", self.small_int_value())
        } else {
            write!(f, "Oop(0x{:08x})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tagging_roundtrip_extremes() {
        for v in [0, 1, -1, 42, -42, SMALL_INT_MAX, SMALL_INT_MIN] {
            let oop = Oop::from_small_int(v);
            assert!(oop.is_small_int());
            assert_eq!(oop.small_int_value(), v);
        }
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        assert!(Oop::try_from_small_int(SMALL_INT_MAX + 1).is_none());
        assert!(Oop::try_from_small_int(SMALL_INT_MIN - 1).is_none());
        assert!(Oop::try_from_small_int(i64::MAX).is_none());
        assert!(Oop::try_from_small_int(i64::MIN).is_none());
    }

    #[test]
    fn pointers_are_not_small_ints() {
        let p = Oop::from_address(0x1000);
        assert!(p.is_pointer());
        assert!(!p.is_small_int());
        assert_eq!(p.address(), 0x1000);
    }

    #[test]
    fn small_int_range_predicate_matches_constants() {
        assert!(is_small_int_value(SMALL_INT_MAX));
        assert!(is_small_int_value(SMALL_INT_MIN));
        assert!(!is_small_int_value(SMALL_INT_MAX + 1));
        assert!(!is_small_int_value(SMALL_INT_MIN - 1));
    }

    #[test]
    fn untagging_a_pointer_gives_garbage_not_panic() {
        // The unsafety the paper's missing-type-check defects rely on:
        // untagging never traps, it just produces a wrong number.
        let p = Oop::from_address(0x2000);
        let _ = p.small_int_value();
    }

    proptest! {
        #[test]
        fn prop_tag_roundtrip(v in SMALL_INT_MIN..=SMALL_INT_MAX) {
            let oop = Oop::from_small_int(v);
            prop_assert!(oop.is_small_int());
            prop_assert_eq!(oop.small_int_value(), v);
        }

        #[test]
        fn prop_addresses_keep_pointer_tag(a in 0u32..0x0fff_ffff) {
            let addr = a << 2;
            prop_assert!(Oop::from_address(addr).is_pointer());
        }

        #[test]
        fn prop_tag_is_injective(a in SMALL_INT_MIN..=SMALL_INT_MAX,
                                 b in SMALL_INT_MIN..=SMALL_INT_MAX) {
            if a != b {
                prop_assert_ne!(Oop::from_small_int(a), Oop::from_small_int(b));
            }
        }
    }
}
