//! # igjit-heap — a 32-bit tagged object memory
//!
//! This crate implements the *object memory* substrate of the
//! reproduction: a 32-bit, Spur-inspired heap with
//!
//! * 1-bit **tagged SmallIntegers** (31-bit signed payload),
//! * heap objects with a three-word header (class index + format,
//!   element count, identity hash),
//! * a **class table** mapping class indices to class descriptions,
//! * boxed 64-bit floats, pointer-indexable arrays, byte-indexable
//!   arrays and a simulated *external memory* region used by the
//!   FFI-flavoured native methods.
//!
//! The interpreter (`igjit-interp`) and the machine simulator
//! (`igjit-machine`) both operate on this memory, which is what makes
//! differential runs observable: both engines mutate the same kind of
//! frame laid out over the same kind of heap.
//!
//! ## Example
//!
//! ```
//! use igjit_heap::{ObjectMemory, Oop, ClassIndex};
//!
//! let mut mem = ObjectMemory::new();
//! let five = Oop::from_small_int(5);
//! let arr = mem.instantiate_array(&[five, mem.nil()]).unwrap();
//! assert_eq!(mem.slot_count(arr).unwrap(), 2);
//! assert_eq!(mem.fetch_pointer(arr, 0).unwrap(), five);
//! assert_eq!(mem.class_index_of(arr), ClassIndex::ARRAY);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod class;
mod error;
mod external;
mod format;
pub mod fxhash;
mod memory;
mod snapshot;
mod tagged;

pub use class::{ClassDescription, ClassIndex, ClassTable};
pub use error::{HeapError, HeapResult};
pub use external::ExternalMemory;
pub use format::ObjectFormat;
pub use memory::{ObjectMemory, HEADER_WORDS};
pub use snapshot::Snapshot;
pub use tagged::{Oop, SMALL_INT_MAX, SMALL_INT_MIN};

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
