//! Simulated external (non-heap) memory.
//!
//! The paper's *missing functionality* defect family concerns FFI
//! native methods that read and write raw external memory. We have no
//! real FFI, so the substrate provides a bounded, deterministic byte
//! region standing in for "memory outside the object heap". The
//! interpreter's FFI primitives operate on it; the 32-bit template
//! compiler never learned to (that is the planted defect).

use crate::error::{HeapError, HeapResult};

/// A bounded external memory region addressed from 0.
#[derive(Clone, Debug)]
pub struct ExternalMemory {
    bytes: Vec<u8>,
}

impl ExternalMemory {
    /// Creates a zero-filled region of `size` bytes.
    pub fn new(size: usize) -> ExternalMemory {
        ExternalMemory { bytes: vec![0; size] }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `width` (1, 2 or 4) bytes little-endian at `addr`.
    pub fn read_uint(&self, addr: u32, width: u32) -> HeapResult<u32> {
        let end = addr
            .checked_add(width)
            .ok_or(HeapError::ExternalOutOfBounds { addr, width })?;
        if end as usize > self.bytes.len() || !matches!(width, 1 | 2 | 4) {
            return Err(HeapError::ExternalOutOfBounds { addr, width });
        }
        let mut v: u32 = 0;
        for i in (0..width).rev() {
            v = (v << 8) | u32::from(self.bytes[(addr + i) as usize]);
        }
        Ok(v)
    }

    /// Writes `width` (1, 2 or 4) bytes little-endian at `addr`.
    pub fn write_uint(&mut self, addr: u32, width: u32, value: u32) -> HeapResult<()> {
        let end = addr
            .checked_add(width)
            .ok_or(HeapError::ExternalOutOfBounds { addr, width })?;
        if end as usize > self.bytes.len() || !matches!(width, 1 | 2 | 4) {
            return Err(HeapError::ExternalOutOfBounds { addr, width });
        }
        for i in 0..width {
            self.bytes[(addr + i) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Sign-extends a `width`-byte read to i32.
    pub fn read_int(&self, addr: u32, width: u32) -> HeapResult<i32> {
        let raw = self.read_uint(addr, width)?;
        Ok(match width {
            1 => raw as u8 as i8 as i32,
            2 => raw as u16 as i16 as i32,
            _ => raw as i32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = ExternalMemory::new(64);
        m.write_uint(0, 1, 0xab).unwrap();
        m.write_uint(8, 2, 0xbeef).unwrap();
        m.write_uint(16, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_uint(0, 1).unwrap(), 0xab);
        assert_eq!(m.read_uint(8, 2).unwrap(), 0xbeef);
        assert_eq!(m.read_uint(16, 4).unwrap(), 0xdead_beef);
    }

    #[test]
    fn sign_extension() {
        let mut m = ExternalMemory::new(16);
        m.write_uint(0, 1, 0xff).unwrap();
        m.write_uint(4, 2, 0x8000).unwrap();
        assert_eq!(m.read_int(0, 1).unwrap(), -1);
        assert_eq!(m.read_int(4, 2).unwrap(), -32768);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut m = ExternalMemory::new(4);
        assert!(m.read_uint(4, 1).is_err());
        assert!(m.read_uint(2, 4).is_err());
        assert!(m.write_uint(u32::MAX, 4, 0).is_err());
        assert!(m.read_uint(0, 3).is_err(), "width 3 is not a valid access");
    }
}
