//! Simulated external (non-heap) memory.
//!
//! The paper's *missing functionality* defect family concerns FFI
//! native methods that read and write raw external memory. We have no
//! real FFI, so the substrate provides a bounded, deterministic byte
//! region standing in for "memory outside the object heap". The
//! interpreter's FFI primitives operate on it; the 32-bit template
//! compiler never learned to (that is the planted defect).

use crate::error::{HeapError, HeapResult};

/// A bounded external memory region addressed from 0.
#[derive(Clone, Debug)]
pub struct ExternalMemory {
    bytes: Vec<u8>,
    seal: Option<Box<ExtSeal>>,
    outer: Option<Box<ExtSeal>>,
}

/// Byte-granular dirty tracking for a sealed region. The region never
/// resizes, so a first-write-wins undo log of `(addr, old byte)` pairs
/// (deduped through a bitmap) is all restore needs.
#[derive(Clone, Debug)]
struct ExtSeal {
    dirty: Vec<u64>,
    undo: Vec<(u32, u8)>,
}

impl ExtSeal {
    /// Applies the undo log to `bytes` and resets the dirty tracking,
    /// returning how many bytes were rolled back.
    fn rollback(&mut self, bytes: &mut [u8]) -> usize {
        let n = self.undo.len();
        for &(addr, old) in self.undo.iter().rev() {
            bytes[addr as usize] = old;
        }
        for &(addr, _) in &self.undo {
            self.dirty[addr as usize >> 6] &= !(1u64 << (addr as usize & 63));
        }
        self.undo.clear();
        n
    }

    /// Folds a superseded inner seal's undo log into this (outer) one;
    /// first-write wins, so entries this log already has keep their
    /// older value.
    fn absorb(&mut self, inner: &ExtSeal) {
        for &(addr, old) in &inner.undo {
            let word = addr as usize >> 6;
            let bit = 1u64 << (addr as usize & 63);
            if self.dirty[word] & bit == 0 {
                self.dirty[word] |= bit;
                self.undo.push((addr, old));
            }
        }
    }
}

/// Two regions are equal when their contents are — seal bookkeeping is
/// not observable state.
impl PartialEq for ExternalMemory {
    fn eq(&self, other: &ExternalMemory) -> bool {
        self.bytes == other.bytes
    }
}

impl ExternalMemory {
    /// Creates a zero-filled region of `size` bytes.
    pub fn new(size: usize) -> ExternalMemory {
        ExternalMemory { bytes: vec![0; size], seal: None, outer: None }
    }

    fn fresh_seal(&self) -> Box<ExtSeal> {
        Box::new(ExtSeal {
            dirty: vec![0; (self.bytes.len() >> 6) + 1],
            undo: Vec::new(),
        })
    }

    /// Starts (or restarts) dirty tracking against the current
    /// contents, superseding any nested pair of seals.
    pub(crate) fn seal_in_place(&mut self) {
        self.outer = None;
        self.seal = Some(self.fresh_seal());
    }

    /// Starts a nested (inner) tracking level above the current seal,
    /// which moves to the outer slot. The inner log of an already
    /// nested pair is folded into the outer one first — it holds the
    /// only record of writes made while it was active.
    pub(crate) fn push_seal_in_place(&mut self) {
        match self.seal.take() {
            None => {}
            Some(prev) => match &mut self.outer {
                None => self.outer = Some(prev),
                Some(outer) => outer.absorb(&prev),
            },
        }
        self.seal = Some(self.fresh_seal());
    }

    /// Rolls the region back to its (inner) sealed contents; returns
    /// how many bytes were undone. No-op (0) when unsealed.
    pub(crate) fn restore_seal(&mut self) -> usize {
        let Some(seal) = self.seal.as_mut() else { return 0 };
        seal.rollback(&mut self.bytes)
    }

    /// Rolls the region back to the *outer* sealed contents — the
    /// inner level must already have been rolled back via
    /// [`ExternalMemory::restore_seal`]. The inner seal is consumed;
    /// the outer becomes the active one. No-op (0) when not nested.
    pub(crate) fn restore_outer(&mut self) -> usize {
        let Some(mut outer) = self.outer.take() else { return 0 };
        let n = outer.rollback(&mut self.bytes);
        self.seal = Some(outer);
        n
    }

    /// Drops dirty tracking (both levels) without restoring.
    pub(crate) fn unseal(&mut self) {
        self.seal = None;
        self.outer = None;
    }

    /// Returns the region to its as-new state (all zeros, unsealed)
    /// without reallocating the byte buffer.
    pub(crate) fn reset(&mut self) {
        self.bytes.fill(0);
        self.seal = None;
        self.outer = None;
    }

    /// Distinct bytes dirtied since the seal (or last restore).
    pub(crate) fn dirty_len(&self) -> usize {
        self.seal.as_ref().map_or(0, |s| s.undo.len())
    }

    #[inline]
    fn note(&mut self, addr: u32) {
        if let Some(seal) = &mut self.seal {
            let idx = addr as usize;
            let word = idx >> 6;
            let bit = 1u64 << (idx & 63);
            if seal.dirty[word] & bit == 0 {
                seal.dirty[word] |= bit;
                seal.undo.push((addr, self.bytes[idx]));
            }
        }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `width` (1, 2 or 4) bytes little-endian at `addr`.
    pub fn read_uint(&self, addr: u32, width: u32) -> HeapResult<u32> {
        let end = addr
            .checked_add(width)
            .ok_or(HeapError::ExternalOutOfBounds { addr, width })?;
        if end as usize > self.bytes.len() || !matches!(width, 1 | 2 | 4) {
            return Err(HeapError::ExternalOutOfBounds { addr, width });
        }
        let mut v: u32 = 0;
        for i in (0..width).rev() {
            v = (v << 8) | u32::from(self.bytes[(addr + i) as usize]);
        }
        Ok(v)
    }

    /// Writes `width` (1, 2 or 4) bytes little-endian at `addr`.
    pub fn write_uint(&mut self, addr: u32, width: u32, value: u32) -> HeapResult<()> {
        let end = addr
            .checked_add(width)
            .ok_or(HeapError::ExternalOutOfBounds { addr, width })?;
        if end as usize > self.bytes.len() || !matches!(width, 1 | 2 | 4) {
            return Err(HeapError::ExternalOutOfBounds { addr, width });
        }
        for i in 0..width {
            self.note(addr + i);
            self.bytes[(addr + i) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Sign-extends a `width`-byte read to i32.
    pub fn read_int(&self, addr: u32, width: u32) -> HeapResult<i32> {
        let raw = self.read_uint(addr, width)?;
        Ok(match width {
            1 => raw as u8 as i8 as i32,
            2 => raw as u16 as i16 as i32,
            _ => raw as i32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = ExternalMemory::new(64);
        m.write_uint(0, 1, 0xab).unwrap();
        m.write_uint(8, 2, 0xbeef).unwrap();
        m.write_uint(16, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_uint(0, 1).unwrap(), 0xab);
        assert_eq!(m.read_uint(8, 2).unwrap(), 0xbeef);
        assert_eq!(m.read_uint(16, 4).unwrap(), 0xdead_beef);
    }

    #[test]
    fn sign_extension() {
        let mut m = ExternalMemory::new(16);
        m.write_uint(0, 1, 0xff).unwrap();
        m.write_uint(4, 2, 0x8000).unwrap();
        assert_eq!(m.read_int(0, 1).unwrap(), -1);
        assert_eq!(m.read_int(4, 2).unwrap(), -32768);
    }

    #[test]
    fn seal_restore_rolls_back_writes() {
        let mut m = ExternalMemory::new(32);
        m.write_uint(0, 4, 0x1111_2222).unwrap();
        m.seal_in_place();
        m.write_uint(0, 4, 0xdead_beef).unwrap();
        m.write_uint(8, 2, 0x4455).unwrap();
        assert_eq!(m.dirty_len(), 6);
        assert_eq!(m.restore_seal(), 6);
        assert_eq!(m.read_uint(0, 4).unwrap(), 0x1111_2222);
        assert_eq!(m.read_uint(8, 2).unwrap(), 0);
        // The seal stays armed: a second mutate/restore round works.
        m.write_uint(4, 1, 0x7f).unwrap();
        assert_eq!(m.restore_seal(), 1);
        assert_eq!(m.read_uint(4, 1).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut m = ExternalMemory::new(4);
        assert!(m.read_uint(4, 1).is_err());
        assert!(m.read_uint(2, 4).is_err());
        assert!(m.write_uint(u32::MAX, 4, 0).is_err());
        assert!(m.read_uint(0, 3).is_err(), "width 3 is not a valid access");
    }
}
