//! The object memory: arena, headers, allocation and checked access.

use crate::class::{ClassDescription, ClassIndex, ClassTable};
use crate::error::{HeapError, HeapResult};
use crate::external::ExternalMemory;
use crate::format::ObjectFormat;
use crate::snapshot::{SealState, Snapshot};
use crate::tagged::{is_small_int_value, Oop};

/// Number of 32-bit header words before every object body:
/// `[class|format, element count, identity hash]`.
pub const HEADER_WORDS: u32 = 3;

const HEAP_BASE: u32 = 0x0001_0000;
const DEFAULT_HEAP_WORDS: usize = 1 << 18; // 1 MiB arena
const DEFAULT_EXTERNAL_BYTES: usize = 4096;
/// Words zero-committed up front; the rest of the arena is committed on
/// demand as allocation reaches it. The differential campaign builds a
/// fresh memory per materialized model, so eagerly zeroing the full
/// arena each time made memory bandwidth the sweep's bottleneck.
const INITIAL_COMMIT_WORDS: usize = 1 << 10;
/// Committed words kept beyond the allocation frontier so unchecked
/// reads just past the last object (the planted missing-type-check
/// defects read a "float payload" there) still see zeros, exactly as
/// they did when the whole arena was zeroed up front.
const COMMIT_MARGIN_WORDS: usize = 16;

/// The simulated 32-bit object memory.
///
/// Owns the heap arena, the class table, the three canonical objects
/// (`nil`, `false`, `true`) and the simulated external memory region.
/// All body accesses are bounds- and format-checked and report
/// [`HeapError`]s; *unchecked* raw word access (used by JIT-compiled
/// code running on the machine simulator) goes through
/// [`ObjectMemory::read_word_raw`] / [`ObjectMemory::write_word_raw`],
/// which only check arena bounds — mirroring how machine code sees
/// memory.
#[derive(Clone, Debug)]
pub struct ObjectMemory {
    words: Vec<u32>,
    capacity_words: usize,
    alloc_ptr: u32,
    classes: ClassTable,
    /// Addresses of live objects, sorted ascending. Allocation only
    /// ever moves `alloc_ptr` forward and restore only truncates, so
    /// plain pushes keep the order — and membership is a binary search
    /// instead of a hash probe on the checked-access hot path.
    live: Vec<u32>,
    hash_counter: u32,
    nil_obj: Oop,
    false_obj: Oop,
    true_obj: Oop,
    external: ExternalMemory,
    seal: Option<Box<SealState>>,
    outer: Option<Box<SealState>>,
    seal_epoch: u64,
}

/// Semantic equality: two memories are equal when every observable —
/// allocation frontier, live set, class table, object words, external
/// region, identity-hash counter — matches. Seal bookkeeping and how
/// much of the arena happens to be committed are not observable (all
/// uncommitted words read as zero), so trailing zero words are
/// insignificant.
impl PartialEq for ObjectMemory {
    fn eq(&self, other: &ObjectMemory) -> bool {
        fn trimmed(words: &[u32]) -> &[u32] {
            let mut n = words.len();
            while n > 0 && words[n - 1] == 0 {
                n -= 1;
            }
            &words[..n]
        }
        self.capacity_words == other.capacity_words
            && self.alloc_ptr == other.alloc_ptr
            && self.hash_counter == other.hash_counter
            && self.nil_obj == other.nil_obj
            && self.false_obj == other.false_obj
            && self.true_obj == other.true_obj
            && self.live == other.live
            && self.classes == other.classes
            && self.external == other.external
            && trimmed(&self.words) == trimmed(&other.words)
    }
}

impl Default for ObjectMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectMemory {
    /// Creates a memory with the default arena size and well-known
    /// classes and instances installed.
    pub fn new() -> ObjectMemory {
        ObjectMemory::with_capacity(DEFAULT_HEAP_WORDS)
    }

    /// Creates a memory with an arena of `words` 32-bit words. The
    /// arena is committed (zeroed) lazily as allocation reaches it.
    pub fn with_capacity(words: usize) -> ObjectMemory {
        let mut mem = ObjectMemory {
            words: vec![0; words.min(INITIAL_COMMIT_WORDS)],
            capacity_words: words,
            alloc_ptr: HEAP_BASE,
            classes: ClassTable::with_well_known_classes(),
            live: Vec::new(),
            hash_counter: 0,
            nil_obj: Oop::ZERO,
            false_obj: Oop::ZERO,
            true_obj: Oop::ZERO,
            external: ExternalMemory::new(DEFAULT_EXTERNAL_BYTES),
            seal: None,
            outer: None,
            seal_epoch: 0,
        };
        mem.nil_obj = mem
            .allocate(ClassIndex::UNDEFINED_OBJECT, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
        mem.false_obj = mem
            .allocate(ClassIndex::FALSE, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
        mem.true_obj = mem
            .allocate(ClassIndex::TRUE, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
        mem
    }

    /// Returns the memory to the state of a freshly constructed one of
    /// the same capacity, reusing the arena buffer. Observably
    /// equivalent (`==`) to `ObjectMemory::with_capacity(capacity)`;
    /// callers that build one memory per exploration step reset a
    /// scratch instance instead of paying an allocation each time.
    pub fn reset(&mut self) {
        // Words at or beyond the allocation frontier are zero by
        // invariant (nothing writes past `alloc_ptr`, and restore
        // re-zeroes rolled-back allocations), so zeroing up to the
        // frontier leaves the whole committed buffer zero.
        let frontier = ((self.alloc_ptr - HEAP_BASE) / 4) as usize;
        let hi = frontier.min(self.words.len());
        self.words[..hi].fill(0);
        self.words.truncate(self.capacity_words.min(INITIAL_COMMIT_WORDS));
        self.alloc_ptr = HEAP_BASE;
        self.classes.truncate(ClassIndex::FIRST_USER.0 as usize);
        self.live.clear();
        self.hash_counter = 0;
        self.external.reset();
        self.seal = None;
        self.outer = None;
        self.seal_epoch = 0;
        self.nil_obj = self
            .allocate(ClassIndex::UNDEFINED_OBJECT, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
        self.false_obj = self
            .allocate(ClassIndex::FALSE, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
        self.true_obj = self
            .allocate(ClassIndex::TRUE, ObjectFormat::ZeroSized, 0)
            .expect("fresh heap cannot be full");
    }

    // ------------------------------------------------------------------
    // Canonical objects and class table
    // ------------------------------------------------------------------

    /// The `nil` object.
    pub fn nil(&self) -> Oop {
        self.nil_obj
    }

    /// The `false` object.
    pub fn false_object(&self) -> Oop {
        self.false_obj
    }

    /// The `true` object.
    pub fn true_object(&self) -> Oop {
        self.true_obj
    }

    /// Maps a Rust bool to the corresponding canonical object.
    pub fn bool_object(&self, value: bool) -> Oop {
        if value {
            self.true_obj
        } else {
            self.false_obj
        }
    }

    /// Read access to the class table.
    pub fn classes(&self) -> &ClassTable {
        &self.classes
    }

    /// Registers a user class.
    pub fn add_class(&mut self, desc: ClassDescription) -> ClassIndex {
        self.classes.add_class(desc)
    }

    /// The simulated external memory region.
    pub fn external(&self) -> &ExternalMemory {
        &self.external
    }

    /// Mutable access to the simulated external memory region.
    pub fn external_mut(&mut self) -> &mut ExternalMemory {
        &mut self.external
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Seals the current heap image and returns a token for
    /// [`ObjectMemory::restore`]. Sealing is O(frontier/64): it records
    /// the allocation high-water marks and arms a dirty-word bitmap;
    /// no heap contents are copied. A second `seal` supersedes all
    /// existing levels (their tokens become stale).
    pub fn seal(&mut self) -> Snapshot {
        self.seal_epoch += 1;
        let frontier_idx = (self.alloc_ptr - HEAP_BASE) / 4;
        self.seal = Some(Box::new(SealState::new(
            self.seal_epoch,
            self.alloc_ptr,
            frontier_idx,
            self.words.len(),
            self.hash_counter,
            self.classes.len(),
        )));
        self.outer = None;
        self.external.seal_in_place();
        Snapshot { epoch: self.seal_epoch }
    }

    /// Seals a second, *nested* level on top of the current seal, which
    /// moves to the outer slot (its token stays valid: restoring it
    /// rolls back through both levels and re-activates it). At most two
    /// levels exist — pushing while already nested folds the superseded
    /// inner log into the outer seal first. Errors when unsealed.
    ///
    /// This serves the replay loop's two reset horizons: an outer seal
    /// at the reusable blank image and an inner seal per materialized
    /// frame, restored between engine runs.
    pub fn push_seal(&mut self) -> HeapResult<Snapshot> {
        let prev = self.seal.take().ok_or(HeapError::NotSealed)?;
        match &mut self.outer {
            None => self.outer = Some(prev),
            Some(outer) => outer.absorb(&prev),
        }
        self.seal_epoch += 1;
        let frontier_idx = (self.alloc_ptr - HEAP_BASE) / 4;
        self.seal = Some(Box::new(SealState::new(
            self.seal_epoch,
            self.alloc_ptr,
            frontier_idx,
            self.words.len(),
            self.hash_counter,
            self.classes.len(),
        )));
        self.external.push_seal_in_place();
        Ok(Snapshot { epoch: self.seal_epoch })
    }

    /// Rolls the memory back to the sealed image `snap` names,
    /// returning the number of dirty units undone (heap words written
    /// below the sealed frontier + words allocated beyond it +
    /// external bytes). Cost is O(that number), not O(heap). The seal
    /// stays armed, so mutate/restore cycles can repeat indefinitely.
    ///
    /// Restoring the *outer* token of a nested pair rolls back through
    /// the inner level first, consumes it, and re-activates the outer
    /// seal (whose token stays usable; the inner one goes stale).
    pub fn restore(&mut self, snap: &Snapshot) -> HeapResult<usize> {
        let inner_epoch = self.seal.as_ref().map(|s| s.epoch).ok_or(HeapError::NotSealed)?;
        if inner_epoch == snap.epoch {
            let seal = self.seal.as_mut().expect("checked above");
            let mut dirty = apply_level_restore(
                seal,
                &mut self.words,
                &mut self.alloc_ptr,
                &mut self.hash_counter,
                &mut self.live,
                &mut self.classes,
            );
            dirty += self.external.restore_seal();
            return Ok(dirty);
        }
        match &self.outer {
            Some(outer) if outer.epoch == snap.epoch => {}
            _ => {
                return Err(HeapError::StaleSnapshot { expected: snap.epoch, actual: inner_epoch })
            }
        }
        // Restore-to-outer: the inner log holds the only record of
        // writes since the inner seal, so roll it back first, then
        // apply the outer level and promote it to the active seal.
        let mut inner = self.seal.take().expect("checked above");
        let mut dirty = apply_level_restore(
            &mut inner,
            &mut self.words,
            &mut self.alloc_ptr,
            &mut self.hash_counter,
            &mut self.live,
            &mut self.classes,
        );
        dirty += self.external.restore_seal();
        let mut outer = self.outer.take().expect("checked above");
        dirty += apply_level_restore(
            &mut outer,
            &mut self.words,
            &mut self.alloc_ptr,
            &mut self.hash_counter,
            &mut self.live,
            &mut self.classes,
        );
        dirty += self.external.restore_outer();
        self.seal = Some(outer);
        Ok(dirty)
    }

    /// Drops the seal (both levels, with their dirty tracking) without
    /// restoring, leaving the current contents as-is. Outstanding
    /// tokens become unusable. Cloned replicas that will never be
    /// restored should unseal to shed the write-barrier bookkeeping.
    pub fn unseal(&mut self) {
        self.seal = None;
        self.outer = None;
        self.external.unseal();
    }

    /// Whether a seal is currently armed.
    pub fn is_sealed(&self) -> bool {
        self.seal.is_some()
    }

    /// Dirty units accumulated since the seal (or last restore):
    /// distinct pre-frontier heap words + external bytes written.
    /// 0 when unsealed.
    pub fn dirty_len(&self) -> usize {
        self.seal.as_ref().map_or(0, |s| s.undo_len()) + self.external.dirty_len()
    }

    /// Write barrier: every overwrite of an already-committed word goes
    /// through here so a seal can log the old value. Unsealed cost is
    /// one branch.
    #[inline]
    fn note_write(&mut self, idx: usize) {
        if let Some(seal) = &mut self.seal {
            seal.note(idx, self.words[idx]);
        }
    }

    // ------------------------------------------------------------------
    // Tag-level predicates (the interpreter's `objectMemory` protocol)
    // ------------------------------------------------------------------

    /// `areIntegers:and:` — both oops are tagged SmallIntegers.
    pub fn are_integers(&self, a: Oop, b: Oop) -> bool {
        a.is_small_int() && b.is_small_int()
    }

    /// `isIntegerObject:`.
    pub fn is_integer_object(&self, oop: Oop) -> bool {
        oop.is_small_int()
    }

    /// `isIntegerValue:` — the overflow check of Listing 1.
    pub fn is_integer_value(&self, value: i64) -> bool {
        is_small_int_value(value)
    }

    /// `integerValueOf:` — untag without checking (unsafe by design).
    pub fn integer_value_of(&self, oop: Oop) -> i64 {
        oop.small_int_value()
    }

    /// `integerObjectOf:` — tag a value known to be in range.
    pub fn integer_object_of(&self, value: i64) -> Oop {
        Oop::from_small_int(value)
    }

    // ------------------------------------------------------------------
    // Headers
    // ------------------------------------------------------------------

    /// Class index of any oop (SmallIntegers report their virtual class).
    pub fn class_index_of(&self, oop: Oop) -> ClassIndex {
        if oop.is_small_int() {
            return ClassIndex::SMALL_INTEGER;
        }
        match self.header0(oop) {
            Ok(h) => ClassIndex(h & 0x00ff_ffff),
            Err(_) => ClassIndex::INVALID,
        }
    }

    /// Format of a heap object.
    pub fn format_of(&self, oop: Oop) -> HeapResult<ObjectFormat> {
        let h = self.header0(oop)?;
        ObjectFormat::from_bits(h >> 24).ok_or(HeapError::InvalidAddress { addr: oop.address() })
    }

    /// Element count: pointer slots, bytes, or words depending on format.
    pub fn element_count(&self, oop: Oop) -> HeapResult<u32> {
        let base = self.object_index(oop)?;
        Ok(self.words[base + 1])
    }

    /// Pointer-slot count; errors on non-pointer formats.
    pub fn slot_count(&self, oop: Oop) -> HeapResult<u32> {
        let fmt = self.format_of(oop)?;
        if !fmt.has_pointer_slots() && fmt != ObjectFormat::ZeroSized {
            return Err(HeapError::WrongFormat { oop });
        }
        self.element_count(oop)
    }

    /// Byte count of a byte-indexable object.
    pub fn byte_count(&self, oop: Oop) -> HeapResult<u32> {
        let fmt = self.format_of(oop)?;
        if !fmt.is_bytes() {
            return Err(HeapError::WrongFormat { oop });
        }
        self.element_count(oop)
    }

    /// The stored identity hash of a heap object.
    pub fn identity_hash(&self, oop: Oop) -> HeapResult<u32> {
        let base = self.object_index(oop)?;
        Ok(self.words[base + 2])
    }

    /// Whether this oop points at a live allocated object.
    pub fn is_live_object(&self, oop: Oop) -> bool {
        oop.is_pointer() && self.live.binary_search(&oop.address()).is_ok()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates an object of class `class` with `count` elements whose
    /// meaning depends on `format` (pointer slots, bytes or words).
    pub fn allocate(
        &mut self,
        class: ClassIndex,
        format: ObjectFormat,
        count: u32,
    ) -> HeapResult<Oop> {
        let body_words = match format {
            ObjectFormat::ZeroSized => 0,
            ObjectFormat::Fixed
            | ObjectFormat::Indexable
            | ObjectFormat::CompiledMethod
            | ObjectFormat::Words => count,
            ObjectFormat::Bytes => count.div_ceil(4),
            ObjectFormat::BoxedFloat64 => 2,
            ObjectFormat::ExternalAddress => 1,
        };
        let total = HEADER_WORDS + body_words;
        let addr = self.alloc_ptr;
        let end = addr as u64 + 4 * total as u64;
        let limit = HEAP_BASE as u64 + 4 * self.capacity_words as u64;
        if end > limit {
            return Err(HeapError::OutOfMemory);
        }
        self.alloc_ptr = end as u32;
        let base = ((addr - HEAP_BASE) / 4) as usize;
        let object_end = base + total as usize;
        if object_end + COMMIT_MARGIN_WORDS > self.words.len() {
            // Geometric growth, clamped to the arena capacity (the
            // limit check above guarantees the object itself fits).
            let target = (object_end + COMMIT_MARGIN_WORDS)
                .max(self.words.len() * 2)
                .min(self.capacity_words);
            self.words.resize(target, 0);
        }
        self.hash_counter = self.hash_counter.wrapping_add(0x9e37);
        // No write barrier: all of [base, object_end) sits at or past
        // any sealed frontier (alloc_ptr only grows), and restore
        // re-zeroes that region wholesale.
        self.words[base] = class.0 | (format.to_bits() << 24);
        self.words[base + 1] = match format {
            ObjectFormat::BoxedFloat64 => 2,
            ObjectFormat::ExternalAddress => 1,
            _ => count,
        };
        self.words[base + 2] = self.hash_counter & 0x3fff_ffff;
        let nil = self.nil_obj;
        if format.has_pointer_slots() {
            for i in 0..count as usize {
                self.words[base + HEADER_WORDS as usize + i] = nil.0;
            }
        } else {
            for i in 0..body_words as usize {
                self.words[base + HEADER_WORDS as usize + i] = 0;
            }
        }
        let oop = Oop::from_address(addr);
        debug_assert!(self.live.last().is_none_or(|&l| l < addr));
        self.live.push(addr);
        Ok(oop)
    }

    /// Allocates an `Array` populated from `elements`.
    pub fn instantiate_array(&mut self, elements: &[Oop]) -> HeapResult<Oop> {
        let arr = self.allocate(ClassIndex::ARRAY, ObjectFormat::Indexable, elements.len() as u32)?;
        for (i, &e) in elements.iter().enumerate() {
            self.store_pointer(arr, i as u32, e)?;
        }
        Ok(arr)
    }

    /// Allocates a byte object of class `class` populated from `bytes`.
    pub fn instantiate_bytes(&mut self, class: ClassIndex, bytes: &[u8]) -> HeapResult<Oop> {
        let obj = self.allocate(class, ObjectFormat::Bytes, bytes.len() as u32)?;
        for (i, &b) in bytes.iter().enumerate() {
            self.store_byte(obj, i as u32, b)?;
        }
        Ok(obj)
    }

    /// Allocates a boxed float.
    pub fn instantiate_float(&mut self, value: f64) -> HeapResult<Oop> {
        let obj = self.allocate(ClassIndex::FLOAT, ObjectFormat::BoxedFloat64, 2)?;
        let bits = value.to_bits();
        let base = self.object_index(obj)?;
        self.note_write(base + HEADER_WORDS as usize);
        self.note_write(base + HEADER_WORDS as usize + 1);
        self.words[base + HEADER_WORDS as usize] = bits as u32;
        self.words[base + HEADER_WORDS as usize + 1] = (bits >> 32) as u32;
        Ok(obj)
    }

    /// Allocates an external-address handle pointing at `addr` in the
    /// simulated external memory.
    pub fn instantiate_external_address(&mut self, addr: u32) -> HeapResult<Oop> {
        let obj = self.allocate(ClassIndex::EXTERNAL_ADDRESS, ObjectFormat::ExternalAddress, 1)?;
        let base = self.object_index(obj)?;
        self.note_write(base + HEADER_WORDS as usize);
        self.words[base + HEADER_WORDS as usize] = addr;
        Ok(obj)
    }

    /// Reads the payload of a boxed float.
    pub fn float_value_of(&self, oop: Oop) -> HeapResult<f64> {
        if self.format_of(oop)? != ObjectFormat::BoxedFloat64 {
            return Err(HeapError::WrongFormat { oop });
        }
        let base = self.object_index(oop)?;
        let lo = self.words[base + HEADER_WORDS as usize] as u64;
        let hi = self.words[base + HEADER_WORDS as usize + 1] as u64;
        Ok(f64::from_bits(lo | (hi << 32)))
    }

    /// Reads a float payload *without* checking the receiver's format —
    /// the unchecked unboxing JIT-compiled float primitives perform when
    /// their type check was omitted (the paper's §5.3 defect family).
    pub fn float_value_unchecked(&self, oop: Oop) -> HeapResult<f64> {
        let base = self.object_index(oop)?;
        let n = self.words.len();
        let lo_i = base + HEADER_WORDS as usize;
        if lo_i + 1 >= n {
            return Err(HeapError::InvalidAddress { addr: oop.address() });
        }
        let lo = self.words[lo_i] as u64;
        let hi = self.words[lo_i + 1] as u64;
        Ok(f64::from_bits(lo | (hi << 32)))
    }

    /// Reads the address stored in an external-address handle.
    pub fn external_address_of(&self, oop: Oop) -> HeapResult<u32> {
        if self.format_of(oop)? != ObjectFormat::ExternalAddress {
            return Err(HeapError::WrongFormat { oop });
        }
        let base = self.object_index(oop)?;
        Ok(self.words[base + HEADER_WORDS as usize])
    }

    // ------------------------------------------------------------------
    // Checked body access
    // ------------------------------------------------------------------

    /// Reads pointer slot `index` (0-based) of a pointer-format object.
    pub fn fetch_pointer(&self, oop: Oop, index: u32) -> HeapResult<Oop> {
        let fmt = self.format_of(oop)?;
        if !fmt.has_pointer_slots() {
            return Err(HeapError::WrongFormat { oop });
        }
        let size = self.element_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        Ok(Oop(self.words[base + HEADER_WORDS as usize + index as usize]))
    }

    /// Writes pointer slot `index` (0-based) of a pointer-format object.
    pub fn store_pointer(&mut self, oop: Oop, index: u32, value: Oop) -> HeapResult<()> {
        let fmt = self.format_of(oop)?;
        if !fmt.has_pointer_slots() {
            return Err(HeapError::WrongFormat { oop });
        }
        let size = self.element_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        self.note_write(base + HEADER_WORDS as usize + index as usize);
        self.words[base + HEADER_WORDS as usize + index as usize] = value.0;
        Ok(())
    }

    /// Reads byte `index` (0-based) of a byte-format object.
    pub fn fetch_byte(&self, oop: Oop, index: u32) -> HeapResult<u8> {
        let size = self.byte_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        let w = self.words[base + HEADER_WORDS as usize + (index / 4) as usize];
        Ok((w >> (8 * (index % 4))) as u8)
    }

    /// Writes byte `index` (0-based) of a byte-format object.
    pub fn store_byte(&mut self, oop: Oop, index: u32, value: u8) -> HeapResult<()> {
        let size = self.byte_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        let wi = base + HEADER_WORDS as usize + (index / 4) as usize;
        let shift = 8 * (index % 4);
        self.note_write(wi);
        self.words[wi] = (self.words[wi] & !(0xffu32 << shift)) | (u32::from(value) << shift);
        Ok(())
    }

    /// Reads 32-bit word element `index` of a word-format object.
    pub fn fetch_word(&self, oop: Oop, index: u32) -> HeapResult<u32> {
        if self.format_of(oop)? != ObjectFormat::Words {
            return Err(HeapError::WrongFormat { oop });
        }
        let size = self.element_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        Ok(self.words[base + HEADER_WORDS as usize + index as usize])
    }

    /// Writes 32-bit word element `index` of a word-format object.
    pub fn store_word(&mut self, oop: Oop, index: u32, value: u32) -> HeapResult<()> {
        if self.format_of(oop)? != ObjectFormat::Words {
            return Err(HeapError::WrongFormat { oop });
        }
        let size = self.element_count(oop)?;
        if index >= size {
            return Err(HeapError::OutOfBoundsSlot { oop, index, size });
        }
        let base = self.object_index(oop)?;
        self.note_write(base + HEADER_WORDS as usize + index as usize);
        self.words[base + HEADER_WORDS as usize + index as usize] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw access (machine-code view of memory)
    // ------------------------------------------------------------------

    /// Lowest mapped heap byte address.
    pub fn heap_base(&self) -> u32 {
        HEAP_BASE
    }

    /// One past the highest *allocated* heap byte address.
    pub fn heap_limit(&self) -> u32 {
        self.alloc_ptr
    }

    /// Raw word read with only arena bounds checking — how JIT-compiled
    /// code sees memory on the machine simulator.
    pub fn read_word_raw(&self, addr: u32) -> HeapResult<u32> {
        if !addr.is_multiple_of(4) || addr < HEAP_BASE || addr >= self.alloc_ptr {
            return Err(HeapError::InvalidAddress { addr });
        }
        Ok(self.words[((addr - HEAP_BASE) / 4) as usize])
    }

    /// Raw word write with only arena bounds checking.
    pub fn write_word_raw(&mut self, addr: u32, value: u32) -> HeapResult<()> {
        if !addr.is_multiple_of(4) || addr < HEAP_BASE || addr >= self.alloc_ptr {
            return Err(HeapError::InvalidAddress { addr });
        }
        self.note_write(((addr - HEAP_BASE) / 4) as usize);
        self.words[((addr - HEAP_BASE) / 4) as usize] = value;
        Ok(())
    }

    fn object_index(&self, oop: Oop) -> HeapResult<usize> {
        if oop.is_small_int() {
            return Err(HeapError::NotAPointer { oop });
        }
        let addr = oop.address();
        if self.live.binary_search(&addr).is_err() {
            return Err(HeapError::InvalidAddress { addr });
        }
        Ok(((addr - HEAP_BASE) / 4) as usize)
    }

    fn header0(&self, oop: Oop) -> HeapResult<u32> {
        let base = self.object_index(oop)?;
        Ok(self.words[base])
    }
}

/// Rolls one seal level back over the heap-side state (the external
/// region restores separately), returning the dirty words undone. A
/// free function over disjoint fields so `restore` can apply it to the
/// inner and outer levels in sequence.
fn apply_level_restore(
    seal: &mut SealState,
    words: &mut Vec<u32>,
    alloc_ptr: &mut u32,
    hash_counter: &mut u32,
    live: &mut Vec<u32>,
    classes: &mut ClassTable,
) -> usize {
    let mut dirty = 0usize;
    // Undo post-seal allocations: words at or beyond the sealed
    // frontier were zero at seal time (nothing writes beyond
    // `alloc_ptr`), so re-zero up to the current frontier and drop
    // any commit growth. Truncated words need no zeroing — recommit
    // via `Vec::resize` zero-fills them again.
    let frontier = seal.frontier_idx as usize;
    let cur_frontier = ((*alloc_ptr - HEAP_BASE) / 4) as usize;
    let hi = cur_frontier.min(seal.committed_len).min(words.len());
    if hi > frontier {
        for w in &mut words[frontier..hi] {
            *w = 0;
        }
        dirty += hi - frontier;
    }
    words.truncate(seal.committed_len);
    dirty += seal.rollback(words);
    *alloc_ptr = seal.alloc_ptr;
    *hash_counter = seal.hash_counter;
    let sealed_frontier_addr = seal.alloc_ptr;
    live.truncate(live.partition_point(|&addr| addr < sealed_frontier_addr));
    classes.truncate(seal.class_count);
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_objects_have_expected_classes() {
        let mem = ObjectMemory::new();
        assert_eq!(mem.class_index_of(mem.nil()), ClassIndex::UNDEFINED_OBJECT);
        assert_eq!(mem.class_index_of(mem.false_object()), ClassIndex::FALSE);
        assert_eq!(mem.class_index_of(mem.true_object()), ClassIndex::TRUE);
        assert_eq!(mem.bool_object(true), mem.true_object());
        assert_eq!(mem.bool_object(false), mem.false_object());
    }

    #[test]
    fn small_int_class_is_virtual() {
        let mem = ObjectMemory::new();
        assert_eq!(
            mem.class_index_of(Oop::from_small_int(7)),
            ClassIndex::SMALL_INTEGER
        );
    }

    #[test]
    fn array_allocation_and_access() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)]).unwrap();
        assert_eq!(mem.slot_count(a).unwrap(), 2);
        assert_eq!(mem.fetch_pointer(a, 1).unwrap().small_int_value(), 2);
        mem.store_pointer(a, 0, Oop::from_small_int(9)).unwrap();
        assert_eq!(mem.fetch_pointer(a, 0).unwrap().small_int_value(), 9);
    }

    #[test]
    fn out_of_bounds_slot_access_errors() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1)]).unwrap();
        assert_eq!(
            mem.fetch_pointer(a, 1),
            Err(HeapError::OutOfBoundsSlot { oop: a, index: 1, size: 1 })
        );
        assert!(mem.store_pointer(a, 5, Oop::from_small_int(0)).is_err());
    }

    #[test]
    fn byte_object_roundtrip() {
        let mut mem = ObjectMemory::new();
        let b = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[10, 20, 30, 40, 50]).unwrap();
        assert_eq!(mem.byte_count(b).unwrap(), 5);
        for (i, v) in [10u8, 20, 30, 40, 50].iter().enumerate() {
            assert_eq!(mem.fetch_byte(b, i as u32).unwrap(), *v);
        }
        mem.store_byte(b, 4, 99).unwrap();
        assert_eq!(mem.fetch_byte(b, 4).unwrap(), 99);
        assert!(mem.fetch_byte(b, 5).is_err());
    }

    #[test]
    fn float_boxing_roundtrip() {
        let mut mem = ObjectMemory::new();
        for v in [0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE] {
            let f = mem.instantiate_float(v).unwrap();
            assert_eq!(mem.float_value_of(f).unwrap(), v);
            assert_eq!(mem.class_index_of(f), ClassIndex::FLOAT);
        }
    }

    #[test]
    fn unchecked_float_unboxing_garbage() {
        // The hazard behind the "missing compiled type check" defects:
        // unboxing a non-float object yields garbage, not an error.
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)]).unwrap();
        let garbage = mem.float_value_unchecked(a).unwrap();
        let real = mem.instantiate_float(1.5).unwrap();
        assert_ne!(garbage, mem.float_value_of(real).unwrap());
        assert!(mem.float_value_of(a).is_err());
    }

    #[test]
    fn wrong_format_accesses_error() {
        let mut mem = ObjectMemory::new();
        let b = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[1, 2, 3]).unwrap();
        assert!(mem.fetch_pointer(b, 0).is_err());
        let a = mem.instantiate_array(&[]).unwrap();
        assert!(mem.fetch_byte(a, 0).is_err());
        assert!(mem.fetch_word(a, 0).is_err());
    }

    #[test]
    fn word_object_roundtrip() {
        let mut mem = ObjectMemory::new();
        let w = mem.allocate(ClassIndex::WORD_ARRAY, ObjectFormat::Words, 3).unwrap();
        mem.store_word(w, 2, 0xdead_beef).unwrap();
        assert_eq!(mem.fetch_word(w, 2).unwrap(), 0xdead_beef);
        assert!(mem.fetch_word(w, 3).is_err());
    }

    #[test]
    fn identity_hashes_are_distinct_and_stable() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[]).unwrap();
        let b = mem.instantiate_array(&[]).unwrap();
        assert_ne!(mem.identity_hash(a).unwrap(), mem.identity_hash(b).unwrap());
        assert_eq!(mem.identity_hash(a).unwrap(), mem.identity_hash(a).unwrap());
    }

    #[test]
    fn external_address_objects() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x40).unwrap();
        assert_eq!(mem.external_address_of(h).unwrap(), 0x40);
        assert_eq!(mem.class_index_of(h), ClassIndex::EXTERNAL_ADDRESS);
        let a = mem.instantiate_array(&[]).unwrap();
        assert!(mem.external_address_of(a).is_err());
    }

    #[test]
    fn raw_access_respects_arena_bounds() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(3)]).unwrap();
        let body = a.address() + 4 * HEADER_WORDS;
        assert_eq!(mem.read_word_raw(body).unwrap(), Oop::from_small_int(3).0);
        assert!(mem.read_word_raw(2).is_err(), "below heap base");
        assert!(mem.read_word_raw(mem.heap_limit()).is_err(), "above allocations");
        assert!(mem.read_word_raw(body + 1).is_err(), "misaligned");
        assert!(mem.write_word_raw(0xffff_fffc, 0).is_err());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut mem = ObjectMemory::with_capacity(32);
        let mut last = Ok(Oop::ZERO);
        for _ in 0..100 {
            last = mem.allocate(ClassIndex::ARRAY, ObjectFormat::Indexable, 4);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last, Err(HeapError::OutOfMemory));
    }

    #[test]
    fn reset_is_indistinguishable_from_fresh() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)]).unwrap();
        mem.store_pointer(a, 0, Oop::from_small_int(9)).unwrap();
        mem.instantiate_float(2.5).unwrap();
        mem.add_class(ClassDescription {
            name: "Scratch".into(),
            instance_format: ObjectFormat::Fixed,
            fixed_slots: 1,
        });
        mem.external_mut().write_uint(0, 4, 0xdead_beef).unwrap();
        let snap = mem.seal();
        mem.instantiate_array(&[Oop::from_small_int(7)]).unwrap();
        mem.restore(&snap).unwrap();
        mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, b"hello").unwrap();

        mem.reset();
        let fresh = ObjectMemory::new();
        assert_eq!(mem, fresh);
        assert_eq!(mem.nil(), fresh.nil());
        assert_eq!(mem.true_object(), fresh.true_object());
        assert!(!mem.is_live_object(a));
        // Allocation after reset replays the fresh sequence exactly
        // (addresses and identity hashes included).
        let mut fresh = fresh;
        let x = mem.instantiate_array(&[Oop::from_small_int(3)]).unwrap();
        let y = fresh.instantiate_array(&[Oop::from_small_int(3)]).unwrap();
        assert_eq!(x, y);
        assert_eq!(mem, fresh);
    }

    #[test]
    fn dead_addresses_are_not_objects() {
        let mem = ObjectMemory::new();
        let bogus = Oop::from_address(mem.heap_limit() + 0x100);
        assert!(!mem.is_live_object(bogus));
        assert!(mem.fetch_pointer(bogus, 0).is_err());
        assert!(mem.format_of(bogus).is_err());
    }

    #[test]
    fn seal_restore_undoes_mutation_and_allocation() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)]).unwrap();
        let f = mem.instantiate_float(1.5).unwrap();
        mem.external_mut().write_uint(0, 4, 0x1234).unwrap();
        let baseline = mem.clone();
        let snap = mem.seal();

        // Mutate existing objects, allocate new ones, register a class,
        // touch external memory.
        mem.store_pointer(a, 0, Oop::from_small_int(99)).unwrap();
        let b = mem.instantiate_array(&[Oop::from_small_int(7)]).unwrap();
        let g = mem.instantiate_float(2.5).unwrap();
        mem.add_class(ClassDescription {
            name: "Scratch".into(),
            instance_format: ObjectFormat::Fixed,
            fixed_slots: 1,
        });
        mem.external_mut().write_uint(0, 4, 0xdead_beef).unwrap();
        assert!(mem.dirty_len() > 0);

        let dirty = mem.restore(&snap).unwrap();
        assert!(dirty > 0);
        assert_eq!(mem, baseline);
        assert_eq!(mem.fetch_pointer(a, 0).unwrap().small_int_value(), 1);
        assert_eq!(mem.float_value_of(f).unwrap(), 1.5);
        assert_eq!(mem.external().read_uint(0, 4).unwrap(), 0x1234);
        assert!(!mem.is_live_object(b));
        assert!(!mem.is_live_object(g));
        assert_eq!(mem.classes().len(), baseline.classes().len());

        // Replayed allocation is bit-identical to the post-seal one
        // (same address, same identity hash).
        let b2 = mem.instantiate_array(&[Oop::from_small_int(7)]).unwrap();
        assert_eq!(b2, b);
        mem.restore(&snap).unwrap();
        assert_eq!(mem, baseline);
    }

    #[test]
    fn restore_is_repeatable_across_many_rounds() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(5)]).unwrap();
        let baseline = mem.clone();
        let snap = mem.seal();
        for round in 0..10 {
            mem.store_pointer(a, 0, Oop::from_small_int(round)).unwrap();
            let w = mem.allocate(ClassIndex::WORD_ARRAY, ObjectFormat::Words, 4).unwrap();
            mem.store_word(w, 1, 0xabcd).unwrap();
            mem.restore(&snap).unwrap();
            assert_eq!(mem, baseline);
        }
    }

    #[test]
    fn stale_and_missing_seals_error() {
        let mut mem = ObjectMemory::new();
        let snap = mem.seal();
        let snap2 = mem.seal();
        assert_eq!(
            mem.restore(&snap),
            Err(HeapError::StaleSnapshot { expected: snap.epoch(), actual: snap2.epoch() })
        );
        assert!(mem.restore(&snap2).is_ok());
        mem.unseal();
        assert!(!mem.is_sealed());
        assert_eq!(mem.restore(&snap2), Err(HeapError::NotSealed));
    }

    #[test]
    fn raw_writes_are_restored() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(3)]).unwrap();
        let baseline = mem.clone();
        let snap = mem.seal();
        let body = a.address() + 4 * HEADER_WORDS;
        mem.write_word_raw(body, 0xffff_ffff).unwrap();
        assert_eq!(mem.restore(&snap).unwrap(), 1);
        assert_eq!(mem, baseline);
    }

    #[test]
    fn restore_cost_tracks_mutations_not_heap_size() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&vec![Oop::from_small_int(0); 200]).unwrap();
        let snap = mem.seal();
        // Write the same slot repeatedly: first-write-wins dedup means
        // one undo entry, so restore reports exactly one dirty word.
        for v in 0..50 {
            mem.store_pointer(a, 7, Oop::from_small_int(v)).unwrap();
        }
        assert_eq!(mem.dirty_len(), 1);
        assert_eq!(mem.restore(&snap).unwrap(), 1);
    }

    #[test]
    fn nested_seal_restores_both_levels() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(1)]).unwrap();
        let blank = mem.clone();
        let outer = mem.seal();
        // Writes while only the outer seal is armed.
        mem.store_pointer(a, 0, Oop::from_small_int(2)).unwrap();
        let b = mem.instantiate_array(&[Oop::from_small_int(7)]).unwrap();
        mem.external_mut().write_uint(0, 2, 0x1234).unwrap();
        let mid = mem.clone();
        let inner = mem.push_seal().unwrap();
        // Inner mutate/restore cycles roll back to the mid image,
        // including writes landing below the *outer* frontier.
        for round in 0..5 {
            mem.store_pointer(a, 0, Oop::from_small_int(round)).unwrap();
            mem.store_pointer(b, 0, Oop::from_small_int(-round)).unwrap();
            let _ = mem.instantiate_float(0.5 * round as f64);
            mem.external_mut().write_uint(0, 4, 0xdead_beef).unwrap();
            mem.restore(&inner).unwrap();
            assert_eq!(mem, mid);
        }
        // Restore-to-outer rolls back through both levels…
        mem.store_pointer(a, 0, Oop::from_small_int(42)).unwrap();
        mem.restore(&outer).unwrap();
        assert_eq!(mem, blank);
        // …and re-activates the outer seal: the inner token goes
        // stale, the outer one keeps working (a fresh round of
        // mutate + push + restore-to-outer is legal).
        assert!(mem.restore(&inner).is_err());
        mem.store_pointer(a, 0, Oop::from_small_int(9)).unwrap();
        let inner2 = mem.push_seal().unwrap();
        let _ = mem.instantiate_array(&[]).unwrap();
        mem.restore(&inner2).unwrap();
        mem.restore(&outer).unwrap();
        assert_eq!(mem, blank);
    }

    #[test]
    fn push_seal_twice_absorbs_the_superseded_inner() {
        let mut mem = ObjectMemory::new();
        let a = mem
            .instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)])
            .unwrap();
        let blank = mem.clone();
        let outer = mem.seal();
        mem.store_pointer(a, 0, Oop::from_small_int(10)).unwrap();
        let inner1 = mem.push_seal().unwrap();
        // Sub-outer-frontier writes recorded only by the first inner
        // log — they must survive into the outer log when superseded.
        mem.store_pointer(a, 1, Oop::from_small_int(20)).unwrap();
        mem.external_mut().write_uint(0, 4, 0xabcd).unwrap();
        let inner2 = mem.push_seal().unwrap();
        assert!(mem.restore(&inner1).is_err(), "superseded inner token is stale");
        mem.store_pointer(a, 0, Oop::from_small_int(30)).unwrap();
        mem.restore(&inner2).unwrap();
        assert_eq!(mem.fetch_pointer(a, 0).unwrap().small_int_value(), 10);
        assert_eq!(mem.fetch_pointer(a, 1).unwrap().small_int_value(), 20);
        assert_eq!(mem.external().read_uint(0, 4).unwrap(), 0xabcd);
        mem.restore(&outer).unwrap();
        assert_eq!(mem, blank);
    }

    #[test]
    fn push_seal_requires_a_seal_and_full_seal_supersedes_nesting() {
        let mut mem = ObjectMemory::new();
        assert_eq!(mem.push_seal().unwrap_err(), HeapError::NotSealed);
        let outer = mem.seal();
        let _inner = mem.push_seal().unwrap();
        let fresh = mem.seal();
        assert!(mem.restore(&outer).is_err(), "full seal staled the outer token");
        assert!(mem.restore(&fresh).is_ok());
    }

    proptest! {
        /// Restore-from-snapshot must be indistinguishable from never
        /// having run: arbitrary interleavings of slot stores, raw
        /// writes, allocations, float boxing, external writes and
        /// nested restores always roll back to the sealed image.
        #[test]
        fn prop_mutate_restore_roundtrip(
            ops in proptest::collection::vec((0u8..6, any::<u16>(), any::<u16>()), 0..48),
            restore_every in 1usize..8,
        ) {
            let mut mem = ObjectMemory::new();
            let arr = mem.instantiate_array(
                &(0..8).map(Oop::from_small_int).collect::<Vec<_>>()).unwrap();
            let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[0; 16]).unwrap();
            let baseline = mem.clone();
            let snap = mem.seal();
            for (i, &(op, x, y)) in ops.iter().enumerate() {
                match op {
                    0 => { let _ = mem.store_pointer(arr, u32::from(x) % 8, Oop::from_small_int(i64::from(y))); }
                    1 => { let _ = mem.store_byte(bytes, u32::from(x) % 16, y as u8); }
                    2 => { let _ = mem.instantiate_array(&[Oop::from_small_int(i64::from(x))]); }
                    3 => { let _ = mem.instantiate_float(f64::from(x) + f64::from(y) / 7.0); }
                    4 => { let _ = mem.external_mut().write_uint(u32::from(x) % 64, 4, u32::from(y)); }
                    _ => {
                        let body = arr.address() + 4 * HEADER_WORDS + 4 * (u32::from(x) % 8);
                        let _ = mem.write_word_raw(body, u32::from(y));
                    }
                }
                if i % restore_every == 0 {
                    mem.restore(&snap).unwrap();
                    prop_assert_eq!(&mem, &baseline);
                }
            }
            mem.restore(&snap).unwrap();
            prop_assert_eq!(&mem, &baseline);
        }
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut mem = ObjectMemory::new();
            let b = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &data).unwrap();
            prop_assert_eq!(mem.byte_count(b).unwrap() as usize, data.len());
            for (i, &v) in data.iter().enumerate() {
                prop_assert_eq!(mem.fetch_byte(b, i as u32).unwrap(), v);
            }
        }

        #[test]
        fn prop_array_store_fetch(vals in proptest::collection::vec(-1000i64..1000, 1..32),
                                  idx in 0usize..32) {
            let mut mem = ObjectMemory::new();
            let oops: Vec<Oop> = vals.iter().map(|&v| Oop::from_small_int(v)).collect();
            let a = mem.instantiate_array(&oops).unwrap();
            if idx < vals.len() {
                prop_assert_eq!(mem.fetch_pointer(a, idx as u32).unwrap(), oops[idx]);
            } else {
                prop_assert!(mem.fetch_pointer(a, idx as u32).is_err());
            }
        }

        #[test]
        fn prop_float_roundtrip(v in any::<f64>()) {
            let mut mem = ObjectMemory::new();
            let f = mem.instantiate_float(v).unwrap();
            let back = mem.float_value_of(f).unwrap();
            prop_assert_eq!(v.to_bits(), back.to_bits());
        }
    }
}
