//! Copy-on-write heap snapshots.
//!
//! The differential campaign materializes one concrete frame per
//! (path, model) and then runs it under several engines that must all
//! start from bit-identical memory. Rebuilding the heap per engine is
//! O(heap); sealing it once and rolling back after each run is
//! O(words actually mutated by the run).
//!
//! The mechanism exploits an `ObjectMemory` invariant: words are only
//! ever written below `alloc_ptr`, so at seal time every committed word
//! at or beyond the allocation frontier is zero. A run can then be
//! undone by
//!
//! 1. re-zeroing `[sealed frontier, current frontier)` and truncating
//!    the commit back to its sealed length (undoes post-seal
//!    allocations),
//! 2. replaying a first-write-wins undo log of `(index, old word)`
//!    pairs for writes that landed *below* the sealed frontier,
//! 3. restoring the allocation pointer, hash counter, live set, class
//!    table length and external memory.
//!
//! [`Snapshot`] is an epoch-stamped token; restoring against a memory
//! whose seal has moved on (or was never taken) is a [`HeapError`]
//! (`StaleSnapshot` / `NotSealed`), not silent corruption.
//!
//! [`HeapError`]: crate::error::HeapError

/// An opaque, epoch-stamped token naming one sealed heap image.
///
/// Obtained from `ObjectMemory::seal` and consumed (by reference, any
/// number of times) by `ObjectMemory::restore`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Snapshot {
    pub(crate) epoch: u64,
}

impl Snapshot {
    /// The seal epoch this token was issued for (diagnostic only).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Per-seal bookkeeping owned by a sealed `ObjectMemory`.
///
/// The dirty bitmap spans the words committed below the sealed
/// allocation frontier and dedupes undo-log entries so each word is
/// logged at most once between restores (first-write-wins: the logged
/// value is the sealed one).
#[derive(Clone, Debug)]
pub(crate) struct SealState {
    pub(crate) epoch: u64,
    /// Sealed allocation pointer (byte address).
    pub(crate) alloc_ptr: u32,
    /// Sealed allocation frontier as a word index into `words`.
    pub(crate) frontier_idx: u32,
    /// Sealed committed length of the `words` vector.
    pub(crate) committed_len: usize,
    /// Sealed identity-hash counter.
    pub(crate) hash_counter: u32,
    /// Sealed class-table length.
    pub(crate) class_count: usize,
    dirty: Vec<u64>,
    undo: Vec<(u32, u32)>,
}

impl SealState {
    pub(crate) fn new(
        epoch: u64,
        alloc_ptr: u32,
        frontier_idx: u32,
        committed_len: usize,
        hash_counter: u32,
        class_count: usize,
    ) -> SealState {
        SealState {
            epoch,
            alloc_ptr,
            frontier_idx,
            committed_len,
            hash_counter,
            class_count,
            dirty: vec![0; (frontier_idx as usize >> 6) + 1],
            undo: Vec::new(),
        }
    }

    /// Write barrier: records `old` as the sealed value of word `idx`
    /// the first time that word is overwritten after the seal. Writes
    /// at or beyond the sealed frontier need no log entry — restore
    /// re-zeroes that region wholesale.
    #[inline]
    pub(crate) fn note(&mut self, idx: usize, old: u32) {
        if (idx as u32) >= self.frontier_idx {
            return;
        }
        let word = idx >> 6;
        let bit = 1u64 << (idx & 63);
        if self.dirty[word] & bit == 0 {
            self.dirty[word] |= bit;
            self.undo.push((idx as u32, old));
        }
    }

    /// Number of distinct pre-frontier words dirtied since the last
    /// restore (or the seal).
    pub(crate) fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Applies the undo log to `words` and resets the dirty tracking,
    /// returning how many words were rolled back.
    pub(crate) fn rollback(&mut self, words: &mut [u32]) -> usize {
        let n = self.undo.len();
        for &(idx, old) in self.undo.iter().rev() {
            words[idx as usize] = old;
        }
        for &(idx, _) in &self.undo {
            self.dirty[idx as usize >> 6] &= !(1u64 << (idx as usize & 63));
        }
        self.undo.clear();
        n
    }

    /// Folds the undo log of a superseded *inner* seal into this
    /// (outer) one. The inner log holds the only record of
    /// sub-outer-frontier writes made while it was active; first-write
    /// wins, so entries this log already has keep their (older, hence
    /// correct) value. Entries at or beyond this seal's frontier are
    /// covered by the restore-time zero sweep and are dropped.
    pub(crate) fn absorb(&mut self, inner: &SealState) {
        for &(idx, old) in &inner.undo {
            if idx >= self.frontier_idx {
                continue;
            }
            let word = idx as usize >> 6;
            let bit = 1u64 << (idx as usize & 63);
            if self.dirty[word] & bit == 0 {
                self.dirty[word] |= bit;
                self.undo.push((idx, old));
            }
        }
    }
}
