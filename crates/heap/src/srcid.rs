//! Compile-time identity of this crate's sources.
//!
//! `SOURCE_FINGERPRINT` is an FNV-1a hash over every `.rs` file in
//! `src/`, computed at build time via `include_bytes!`. The persistent
//! campaign corpus (`igjit-corpus`) mixes these per-crate hashes into
//! its section fingerprints, so editing any file of a semantic crate
//! invalidates exactly the corpus sections whose results could have
//! changed — and nothing else. `igjit-corpus` has a test that walks
//! this directory and fails if `SRC_FILES` goes stale.

/// Every source file baked into [`SOURCE_FINGERPRINT`], sorted,
/// relative to `src/`.
pub const SRC_FILES: &[&str] = &[
    "class.rs",
    "error.rs",
    "external.rs",
    "format.rs",
    "fxhash.rs",
    "lib.rs",
    "memory.rs",
    "snapshot.rs",
    "srcid.rs",
    "tagged.rs",
];

const SRC_BYTES: &[&[u8]] = &[
    include_bytes!("class.rs"),
    include_bytes!("error.rs"),
    include_bytes!("external.rs"),
    include_bytes!("format.rs"),
    include_bytes!("fxhash.rs"),
    include_bytes!("lib.rs"),
    include_bytes!("memory.rs"),
    include_bytes!("snapshot.rs"),
    include_bytes!("srcid.rs"),
    include_bytes!("tagged.rs"),
];

/// FNV-1a over the concatenation of [`SRC_FILES`] contents (with a
/// separator byte between files, so moving bytes across a file
/// boundary changes the hash).
pub const SOURCE_FINGERPRINT: u64 = fnv64(SRC_BYTES);

const fn fnv64(files: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut i = 0;
    while i < files.len() {
        let f = files[i];
        let mut j = 0;
        while j < f.len() {
            h ^= f[j] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            j += 1;
        }
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    h
}
