//! Heap access errors.

use crate::class::ClassIndex;
use crate::tagged::Oop;

/// Result alias for heap operations.
pub type HeapResult<T> = Result<T, HeapError>;

/// Everything that can go wrong touching the object memory.
///
/// `OutOfBoundsSlot` maps onto the paper's *invalid memory access* exit
/// condition: the concolic engine treats it as "the object needs more
/// slots" for bytecodes and as a genuine failure for native methods.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// The oop is a SmallInteger where a heap object was required.
    NotAPointer {
        /// The offending oop.
        oop: Oop,
    },
    /// The address does not point at a live object header.
    InvalidAddress {
        /// The offending byte address.
        addr: u32,
    },
    /// A slot index past the object's slot count was accessed.
    OutOfBoundsSlot {
        /// Object whose body was accessed.
        oop: Oop,
        /// The out-of-range index.
        index: u32,
        /// The object's actual element count.
        size: u32,
    },
    /// The object's format does not support the attempted access.
    WrongFormat {
        /// Object whose body was accessed.
        oop: Oop,
    },
    /// The class index is not registered in the class table.
    UnknownClass {
        /// The unregistered index.
        class: ClassIndex,
    },
    /// The heap arena is exhausted.
    OutOfMemory,
    /// An external-memory access fell outside the simulated region.
    ExternalOutOfBounds {
        /// Faulting external address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
    /// `restore` was called on a memory that carries no seal.
    NotSealed,
    /// `restore` was called with a snapshot token from a superseded
    /// seal.
    StaleSnapshot {
        /// Epoch the token names.
        expected: u64,
        /// Epoch of the memory's current seal.
        actual: u64,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::NotAPointer { oop } => write!(f, "{oop:?} is not a heap pointer"),
            HeapError::InvalidAddress { addr } => write!(f, "0x{addr:08x} is not an object"),
            HeapError::OutOfBoundsSlot { oop, index, size } => {
                write!(f, "index {index} out of bounds (size {size}) in {oop:?}")
            }
            HeapError::WrongFormat { oop } => write!(f, "format of {oop:?} forbids this access"),
            HeapError::UnknownClass { class } => write!(f, "unknown class index {}", class.0),
            HeapError::OutOfMemory => write!(f, "object heap exhausted"),
            HeapError::ExternalOutOfBounds { addr, width } => {
                write!(f, "external access of {width} bytes at 0x{addr:08x} out of bounds")
            }
            HeapError::NotSealed => write!(f, "memory carries no seal to restore to"),
            HeapError::StaleSnapshot { expected, actual } => {
                write!(f, "snapshot names seal epoch {expected} but memory is at {actual}")
            }
        }
    }
}

impl std::error::Error for HeapError {}
