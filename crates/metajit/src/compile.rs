//! Driving the evaluator and assembling the compiled artifact.

use igjit_bytecode::Instruction;
use igjit_heap::Oop;
use igjit_interp::{step_spec, Frame, MethodInfo, Selector, StepOutcome};
use igjit_jit::{backend, CompiledCode, Convention, Ir, VReg, MUST_BE_BOOLEAN_SELECTOR,
                SPILL_BYTES};
use igjit_machine::{AluOp, Isa};

use crate::eval::{MetaContext, MetaVal};

/// A meta-compiled test method, plus the facts the runner needs that
/// are not in the machine code.
#[derive(Clone, Debug)]
pub struct MetaArtifact {
    /// The compiled test method (same shape as the hand-written
    /// tiers' artifacts, so the machine half of the runner is shared).
    pub code: CompiledCode,
}

/// Why the partial evaluator could not compile a (instruction, frame)
/// pair. The tier stays total: every refusal routes the run through
/// the interpreter trampoline instead.
#[derive(Clone, Debug)]
pub struct MetaRefusal {
    /// Human-readable reason, surfaced in coverage diagnostics.
    pub reason: String,
}

impl MetaRefusal {
    fn new(reason: impl Into<String>) -> MetaRefusal {
        MetaRefusal { reason: reason.into() }
    }
}

impl std::fmt::Display for MetaRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "meta-compilation refused: {}", self.reason)
    }
}

/// Partially evaluates `instr` against the concrete frame shape and
/// emits a compiled test method following the §4.2 schema — same
/// preamble, exit tails and breakpoint codes as the hand-written
/// tiers, so `run_compiled_sequence_timed`'s exit extraction applies
/// unchanged.
///
/// The receiver is the only dynamic input: it rides in the
/// convention's receiver register and is deliberately absent from the
/// embedded constants, exactly like the hand tiers. Everything else
/// (operand stack, temps, literals, the special oops) is baked in.
pub fn compile_meta(
    instr: Instruction,
    frame: &Frame<Oop>,
    nil: Oop,
    true_obj: Oop,
    false_obj: Oop,
    isa: Isa,
) -> Result<MetaArtifact, MetaRefusal> {
    if !step_spec(instr).supported {
        return Err(MetaRefusal::new("instruction unsupported by the interpreter"));
    }
    let conv = Convention::for_isa(isa);
    let mut ctx = MetaContext::new(conv, nil, true_obj, false_obj);

    // Lift the frame: every value is a compile-time constant except
    // the receiver, which enters as the receiver register.
    let method = MethodInfo {
        literals: frame.method.literals.iter().map(|&o| MetaVal::Static(o)).collect(),
        num_args: frame.method.num_args,
        num_temps: frame.method.num_temps,
    };
    let mut mframe = Frame::new(MetaVal::Dyn(conv.receiver), method);
    mframe.temps = frame.temps.iter().map(|&o| MetaVal::Static(o)).collect();
    mframe.stack = frame.stack.iter().map(|&o| MetaVal::Static(o)).collect();

    // One step of the interpreter — the single copy of the semantics —
    // with values that fold or emit IR.
    let outcome = igjit_interp::step(&mut ctx, &mut mframe, instr);
    if let Some(reason) = ctx.stuck {
        return Err(MetaRefusal::new(reason));
    }

    // Assemble: preamble (frame pointer, *final* temp values, spill
    // reserve), then the heap accesses the evaluation recorded, then
    // the exit tail for the statically-decided outcome.
    let mut ir: Vec<Ir> = Vec::new();
    let sp = VReg::phys(conv.sp);
    let fp = VReg::phys(conv.fp);
    let t_mat = VReg::phys(conv.arg2);
    ir.push(Ir::MovReg { dst: fp, src: sp });
    for &t in &mframe.temps {
        let MetaVal::Static(o) = t else {
            // A runtime value cannot be pushed before the body that
            // loads it has run; no current opcode produces this.
            return Err(MetaRefusal::new("runtime value in a temp slot"));
        };
        ir.push(Ir::MovImm { dst: t_mat, imm: o.0 });
        ir.push(Ir::Push { src: t_mat });
    }
    ir.push(Ir::AluImm { op: AluOp::Sub, dst: sp, a: sp, imm: SPILL_BYTES });
    ir.extend(ctx.body.iter().copied());

    match outcome {
        StepOutcome::Continue => {
            // Flush the final operand stack bottom-first (the machine
            // stack grows down, so the last push lands at SP — the
            // extraction reads SP upward and reverses).
            for &v in &mframe.stack {
                match v {
                    MetaVal::Static(o) => {
                        ir.push(Ir::MovImm { dst: t_mat, imm: o.0 });
                        ir.push(Ir::Push { src: t_mat });
                    }
                    MetaVal::Dyn(r) => ir.push(Ir::Push { src: VReg::phys(r) }),
                }
            }
            ir.push(Ir::Stop(igjit_jit::stops::FALL_THROUGH));
        }
        StepOutcome::Jump { .. } => {
            // The jump was decided at compile time; the displacement is
            // an exit payload the extraction does not read.
            ir.push(Ir::Stop(igjit_jit::stops::JUMP_TAKEN));
        }
        StepOutcome::MethodReturn { value } => {
            let rr = VReg::phys(conv.receiver);
            match value {
                MetaVal::Static(o) => ir.push(Ir::MovImm { dst: rr, imm: o.0 }),
                MetaVal::Dyn(r) if r == conv.receiver => {}
                MetaVal::Dyn(r) => ir.push(Ir::MovReg { dst: rr, src: VReg::phys(r) }),
            }
            ir.push(Ir::MovReg { dst: sp, src: fp });
            ir.push(Ir::Ret);
        }
        StepOutcome::MessageSend { selector, receiver, args } => {
            if args.len() > 3 {
                return Err(MetaRefusal::new("send arity above the convention's registers"));
            }
            // Arguments first (their targets are never runtime-value
            // homes), receiver last (its target may *be* a pending
            // runtime value's home).
            for (i, &a) in args.iter().enumerate() {
                let dst = VReg::phys(conv.arg(i));
                match a {
                    MetaVal::Static(o) => ir.push(Ir::MovImm { dst, imm: o.0 }),
                    MetaVal::Dyn(r) if VReg::phys(r) == dst => {}
                    MetaVal::Dyn(r) => ir.push(Ir::MovReg { dst, src: VReg::phys(r) }),
                }
            }
            let rr = VReg::phys(conv.receiver);
            match receiver {
                MetaVal::Static(o) => ir.push(Ir::MovImm { dst: rr, imm: o.0 }),
                MetaVal::Dyn(r) if r == conv.receiver => {}
                MetaVal::Dyn(r) => ir.push(Ir::MovReg { dst: rr, src: VReg::phys(r) }),
            }
            let selector_id = match selector {
                Selector::Special(s) => s.index(),
                Selector::MustBeBoolean => MUST_BE_BOOLEAN_SELECTOR,
                Selector::Literal(MetaVal::Static(o)) => o.0,
                Selector::Literal(MetaVal::Dyn(_)) => {
                    return Err(MetaRefusal::new("runtime selector value"));
                }
            };
            ir.push(Ir::Send { selector_id });
        }
        StepOutcome::InvalidFrame => {
            return Err(MetaRefusal::new("frame shape traps in the interpreter"));
        }
        StepOutcome::InvalidMemoryAccess => {
            return Err(MetaRefusal::new("decided memory fault"));
        }
        StepOutcome::Unsupported { reason } => return Err(MetaRefusal::new(reason)),
    }

    let code = backend::lower(&ir, isa).map_err(|e| MetaRefusal::new(e.to_string()))?;
    Ok(MetaArtifact {
        code: CompiledCode { code, isa, ntemps: mframe.temps.len() as u32 },
    })
}
