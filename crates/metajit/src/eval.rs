//! The partial-evaluation context: a [`VmContext`] whose values are
//! compile-time constants or runtime registers.
//!
//! Driving the interpreter's own [`igjit_interp::step`] with this
//! context *is* the partial evaluator: every operation the step body
//! performs either folds (both operands static), emits IR (a heap
//! access against a runtime value) or — when the outcome genuinely
//! depends on runtime heap state the evaluator refuses to consult —
//! poisons the evaluation, which makes the tier fall back to the
//! interpreter trampoline for that frame.
//!
//! The semantics here deliberately mirror
//! `igjit_interp::ConcreteContext` operation for operation: the folded
//! constants must be exactly the values the interpreter would compute,
//! because the differential oracle compares the two executions
//! verbatim.

use igjit_heap::{ClassIndex, ObjectFormat, Oop, HEADER_WORDS, SMALL_INT_MAX, SMALL_INT_MIN};
use igjit_interp::{AllocFault, CmpKind, Frame, MemFault, VmContext};
use igjit_jit::{Convention, Ir, VReg};
use igjit_machine::Reg;

/// Byte offset of pointer slot 0 from an object's oop.
const BODY_OFF: i32 = (HEADER_WORDS * 4) as i32;

/// A partially evaluated value: known at compile time, or live in a
/// machine register at run time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MetaVal {
    /// A compile-time constant oop (frame values, literals, folded
    /// results — §4.2 embeds them all as constants).
    Static(Oop),
    /// A runtime value living in a physical register (the receiver on
    /// entry, heap loads thereafter).
    Dyn(Reg),
}

impl MetaVal {
    fn dummy() -> MetaVal {
        MetaVal::Static(Oop::ZERO)
    }
}

/// The evaluation state threaded through one `step` call.
pub(crate) struct MetaContext {
    conv: Convention,
    nil: Oop,
    true_obj: Oop,
    false_obj: Oop,
    /// Heap-access IR emitted in evaluation order.
    pub(crate) body: Vec<Ir>,
    /// Registers still free to hold runtime load results.
    pool: Vec<Reg>,
    /// Why evaluation got stuck, when it did. Once set, every
    /// operation returns dummies; the caller must discard the result.
    pub(crate) stuck: Option<&'static str>,
}

impl MetaContext {
    pub(crate) fn new(conv: Convention, nil: Oop, true_obj: Oop, false_obj: Oop) -> MetaContext {
        MetaContext {
            conv,
            nil,
            true_obj,
            false_obj,
            body: Vec::new(),
            // Runtime values may only live in the scratch pair: the
            // receiver register must survive to the exit tails, and
            // the argument registers are written by the send tail.
            pool: vec![conv.scratch2, conv.scratch],
            stuck: None,
        }
    }

    fn poison(&mut self, reason: &'static str) {
        if self.stuck.is_none() {
            self.stuck = Some(reason);
        }
    }

    fn fresh_dyn(&mut self) -> Option<Reg> {
        let r = self.pool.pop();
        if r.is_none() {
            self.poison("ran out of runtime-value registers");
        }
        r
    }

    /// Slot index → load/store displacement, when it fits the IR's
    /// 16-bit offset field.
    fn slot_off(&mut self, idx: i64) -> Option<i16> {
        let off = BODY_OFF as i64 + 4 * idx;
        match i16::try_from(off) {
            Ok(o) => Some(o),
            Err(_) => {
                self.poison("slot offset exceeds the IR displacement range");
                None
            }
        }
    }
}

impl VmContext for MetaContext {
    type V = MetaVal;
    type N = i64;
    type F = f64;

    fn nil(&mut self) -> MetaVal {
        MetaVal::Static(self.nil)
    }
    fn true_obj(&mut self) -> MetaVal {
        MetaVal::Static(self.true_obj)
    }
    fn false_obj(&mut self) -> MetaVal {
        MetaVal::Static(self.false_obj)
    }
    fn int_const(&mut self, v: i64) -> i64 {
        v
    }
    fn small_int_obj(&mut self, v: i64) -> MetaVal {
        match Oop::try_from_small_int(v) {
            Some(o) => MetaVal::Static(o),
            None => {
                self.poison("small-int constant out of tagged range");
                MetaVal::dummy()
            }
        }
    }

    // --- predicates ----------------------------------------------------

    fn is_integer_object(&mut self, v: MetaVal) -> bool {
        match v {
            MetaVal::Static(s) => s.is_small_int(),
            MetaVal::Dyn(_) => {
                self.poison("tag of a runtime value");
                false
            }
        }
    }

    fn has_class(&mut self, v: MetaVal, class: ClassIndex) -> bool {
        // Decidable without touching the heap for tagged ints and the
        // three singletons — everything else is runtime heap state the
        // evaluator must not bake into the artifact.
        match v {
            MetaVal::Static(s) if s.is_small_int() => class == ClassIndex::SMALL_INTEGER,
            MetaVal::Static(s) if s == self.true_obj => class == ClassIndex::TRUE,
            MetaVal::Static(s) if s == self.false_obj => class == ClassIndex::FALSE,
            MetaVal::Static(s) if s == self.nil => class == ClassIndex::UNDEFINED_OBJECT,
            _ => {
                self.poison("class of a heap object");
                false
            }
        }
    }

    fn is_integer_value(&mut self, n: i64) -> bool {
        (SMALL_INT_MIN..=SMALL_INT_MAX).contains(&n)
    }

    fn int_cmp(&mut self, op: CmpKind, a: i64, b: i64) -> bool {
        match op {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }

    fn float_cmp(&mut self, op: CmpKind, a: f64, b: f64) -> bool {
        match op {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }

    fn value_identical(&mut self, a: MetaVal, b: MetaVal) -> bool {
        match (a, b) {
            (MetaVal::Static(x), MetaVal::Static(y)) => x == y,
            (MetaVal::Dyn(r), MetaVal::Dyn(s)) if r == s => true,
            _ => {
                self.poison("identity of a runtime value");
                false
            }
        }
    }

    // --- conversions ---------------------------------------------------

    fn integer_value_of(&mut self, v: MetaVal) -> i64 {
        match v {
            MetaVal::Static(s) => s.small_int_value(),
            MetaVal::Dyn(_) => {
                self.poison("untag of a runtime value");
                0
            }
        }
    }

    fn integer_object_of(&mut self, n: i64) -> MetaVal {
        match Oop::try_from_small_int(n) {
            Some(o) => MetaVal::Static(o),
            None => {
                self.poison("tagging an out-of-range integer");
                MetaVal::dummy()
            }
        }
    }

    fn float_value_of(&mut self, _v: MetaVal) -> f64 {
        // Unboxing reads the float body — runtime heap state.
        self.poison("float unbox reads the heap");
        0.0
    }

    fn new_float(&mut self, _f: f64) -> Result<MetaVal, AllocFault> {
        self.poison("float allocation");
        Ok(MetaVal::dummy())
    }

    fn int_to_float(&mut self, n: i64) -> f64 {
        n as f64
    }
    fn float_to_int(&mut self, f: f64) -> i64 {
        f.trunc() as i64
    }
    fn float_fits_small_int(&mut self, f: f64) -> bool {
        f.is_finite()
            && f.trunc() >= igjit_heap::SMALL_INT_MIN as f64
            && f.trunc() <= igjit_heap::SMALL_INT_MAX as f64
    }

    // --- integer arithmetic (mirrors ConcreteContext exactly) ----------

    fn int_add(&mut self, a: i64, b: i64) -> i64 {
        a + b
    }
    fn int_sub(&mut self, a: i64, b: i64) -> i64 {
        a - b
    }
    fn int_mul(&mut self, a: i64, b: i64) -> i64 {
        a * b
    }
    fn int_div_floor(&mut self, a: i64, b: i64) -> i64 {
        let q = a / b;
        if a % b != 0 && (a ^ b) < 0 {
            q - 1
        } else {
            q
        }
    }
    fn int_div_trunc(&mut self, a: i64, b: i64) -> i64 {
        a / b
    }
    fn int_mod_floor(&mut self, a: i64, b: i64) -> i64 {
        let r = a % b;
        if r != 0 && (r ^ b) < 0 {
            r + b
        } else {
            r
        }
    }
    fn int_bit_and(&mut self, a: i64, b: i64) -> i64 {
        a & b
    }
    fn int_bit_or(&mut self, a: i64, b: i64) -> i64 {
        a | b
    }
    fn int_bit_xor(&mut self, a: i64, b: i64) -> i64 {
        a ^ b
    }
    fn int_shift(&mut self, a: i64, b: i64) -> i64 {
        if b >= 0 {
            a.checked_shl(b.min(62) as u32).unwrap_or(0)
        } else {
            a >> (-b).min(62)
        }
    }

    // --- float arithmetic ----------------------------------------------

    fn float_add(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn float_sub(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }
    fn float_mul(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }
    fn float_div(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }
    fn float_fraction_part(&mut self, f: f64) -> f64 {
        f.fract()
    }
    fn float_exponent(&mut self, f: f64) -> i64 {
        if f == 0.0 || !f.is_finite() {
            0
        } else {
            f.abs().log2().floor() as i64
        }
    }
    fn int_bits_to_f32(&mut self, _bits: i64) -> f64 {
        self.poison("FFI float marshalling");
        0.0
    }
    fn int_bits_to_f64(&mut self, _lo: i64, _hi: i64) -> f64 {
        self.poison("FFI float marshalling");
        0.0
    }
    fn float_to_bits(&mut self, _f: f64, _single: bool) -> (i64, i64) {
        self.poison("FFI float marshalling");
        (0, 0)
    }

    // --- heap protocol -------------------------------------------------

    fn slot_count(&mut self, _v: MetaVal) -> Result<i64, MemFault> {
        self.poison("object size is runtime heap state");
        Ok(0)
    }
    fn byte_count(&mut self, _v: MetaVal) -> Result<i64, MemFault> {
        self.poison("object size is runtime heap state");
        Ok(0)
    }

    fn fetch_slot(&mut self, v: MetaVal, idx: i64) -> Result<MetaVal, MemFault> {
        if self.stuck.is_some() {
            return Ok(MetaVal::dummy());
        }
        if u32::try_from(idx).is_err() {
            // Mirrors the concrete context: a negative index faults
            // before the heap is consulted.
            return Err(MemFault);
        }
        match v {
            MetaVal::Static(s) if s.is_small_int() => {
                // The heap faults on a tagged int decidably, for every
                // heap — no runtime knowledge needed.
                Err(MemFault)
            }
            MetaVal::Static(s) => {
                let Some(off) = self.slot_off(idx) else { return Ok(MetaVal::dummy()) };
                let Some(d) = self.fresh_dyn() else { return Ok(MetaVal::dummy()) };
                self.body.push(Ir::MovImm { dst: VReg::phys(d), imm: s.0 });
                self.body.push(Ir::Load { dst: VReg::phys(d), base: VReg::phys(d), off });
                Ok(MetaVal::Dyn(d))
            }
            MetaVal::Dyn(r) => {
                let Some(off) = self.slot_off(idx) else { return Ok(MetaVal::dummy()) };
                let Some(d) = self.fresh_dyn() else { return Ok(MetaVal::dummy()) };
                self.body.push(Ir::Load { dst: VReg::phys(d), base: VReg::phys(r), off });
                Ok(MetaVal::Dyn(d))
            }
        }
    }

    fn store_slot(&mut self, v: MetaVal, idx: i64, value: MetaVal) -> Result<(), MemFault> {
        if self.stuck.is_some() {
            return Ok(());
        }
        if u32::try_from(idx).is_err() {
            return Err(MemFault);
        }
        let base = match v {
            MetaVal::Static(s) if s.is_small_int() => return Err(MemFault),
            MetaVal::Static(s) => {
                // arg2 is a transient here: the send tail (the only
                // reader of argument registers) rewrites it, and
                // runtime values never live in it.
                let t = self.conv.arg2;
                self.body.push(Ir::MovImm { dst: VReg::phys(t), imm: s.0 });
                t
            }
            MetaVal::Dyn(r) => r,
        };
        let Some(off) = self.slot_off(idx) else { return Ok(()) };
        let src = match value {
            MetaVal::Static(s) => {
                let t = self.conv.arg1;
                self.body.push(Ir::MovImm { dst: VReg::phys(t), imm: s.0 });
                t
            }
            MetaVal::Dyn(r) => r,
        };
        self.body.push(Ir::Store { src: VReg::phys(src), base: VReg::phys(base), off });
        Ok(())
    }

    fn fetch_byte(&mut self, _v: MetaVal, _idx: i64) -> Result<i64, MemFault> {
        self.poison("byte access");
        Ok(0)
    }
    fn store_byte(&mut self, _v: MetaVal, _idx: i64, _value: i64) -> Result<(), MemFault> {
        self.poison("byte access");
        Ok(())
    }
    fn element_count(&mut self, _v: MetaVal) -> Result<i64, MemFault> {
        self.poison("object size is runtime heap state");
        Ok(0)
    }
    fn fetch_word(&mut self, _v: MetaVal, _idx: i64) -> Result<i64, MemFault> {
        self.poison("word access");
        Ok(0)
    }
    fn store_word(&mut self, _v: MetaVal, _idx: i64, _value: i64) -> Result<(), MemFault> {
        self.poison("word access");
        Ok(())
    }
    fn identity_hash(&mut self, v: MetaVal) -> Result<i64, MemFault> {
        match v {
            MetaVal::Static(s) if s.is_small_int() => Ok(s.small_int_value()),
            _ => {
                self.poison("identity hash of a heap object");
                Ok(0)
            }
        }
    }
    fn class_index_as_int(&mut self, v: MetaVal) -> i64 {
        match v {
            MetaVal::Static(s) if s.is_small_int() => {
                i64::from(ClassIndex::SMALL_INTEGER.value())
            }
            _ => {
                self.poison("class of a heap object");
                0
            }
        }
    }
    fn allocate(
        &mut self,
        _class: ClassIndex,
        _format: ObjectFormat,
        _count: i64,
    ) -> Result<MetaVal, AllocFault> {
        self.poison("allocation");
        Ok(MetaVal::dummy())
    }

    // --- external (FFI) memory -----------------------------------------

    fn external_address_of(&mut self, _v: MetaVal) -> Result<i64, MemFault> {
        self.poison("external memory");
        Ok(0)
    }
    fn new_external_address(&mut self, _addr: i64) -> Result<MetaVal, AllocFault> {
        self.poison("external memory");
        Ok(MetaVal::dummy())
    }
    fn ext_read(&mut self, _addr: i64, _width: u32, _signed: bool) -> Result<i64, MemFault> {
        self.poison("external memory");
        Ok(0)
    }
    fn ext_write(&mut self, _addr: i64, _width: u32, _value: i64) -> Result<(), MemFault> {
        self.poison("external memory");
        Ok(())
    }

    // --- frame protocol (static — mirrors ConcreteContext) -------------

    fn stack_value(&mut self, frame: &Frame<MetaVal>, depth: usize) -> Result<MetaVal, MemFault> {
        if frame.depth() <= depth {
            Err(MemFault)
        } else {
            Ok(frame.stack_at_depth(depth))
        }
    }
    fn temp(&mut self, frame: &Frame<MetaVal>, index: usize) -> Result<MetaVal, MemFault> {
        frame.temps.get(index).copied().ok_or(MemFault)
    }
    fn set_temp(
        &mut self,
        frame: &mut Frame<MetaVal>,
        index: usize,
        value: MetaVal,
    ) -> Result<(), MemFault> {
        match frame.temps.get_mut(index) {
            Some(t) => {
                *t = value;
                Ok(())
            }
            None => Err(MemFault),
        }
    }
    fn literal(&mut self, frame: &Frame<MetaVal>, index: usize) -> Result<MetaVal, MemFault> {
        frame.method.literals.get(index).copied().ok_or(MemFault)
    }
}
