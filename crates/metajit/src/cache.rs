//! The meta-artifact cache.
//!
//! Meta-compiled code is a pure function of `(ISA, instruction,
//! embedded frame values, special oops)` — the receiver is dynamic and
//! deliberately absent from the key. The cache is **campaign-owned**,
//! not process-global: the mutation foundry arms fault injectors
//! in-process, and the evaluator's `backend::lower` call sits behind
//! several of them, so artifacts compiled under one arming must never
//! be served to a run under another.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use igjit_bytecode::Instruction;
use igjit_heap::Oop;
use igjit_interp::Frame;
use igjit_machine::Isa;

use crate::compile::{compile_meta, MetaArtifact, MetaRefusal};

#[derive(Clone, PartialEq, Eq, Hash)]
struct MetaKey {
    isa: Isa,
    instr: Instruction,
    stack: Vec<u32>,
    temps: Vec<u32>,
    literals: Vec<u32>,
    nil: u32,
    true_obj: u32,
    false_obj: u32,
}

/// Cache of meta-compiled artifacts (and remembered refusals, so a
/// trampolining key does not re-run the evaluator per model).
#[derive(Default)]
pub struct MetaCache {
    entries: Mutex<HashMap<MetaKey, Arc<Result<MetaArtifact, MetaRefusal>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MetaCache {
    /// An empty cache.
    pub fn new() -> MetaCache {
        MetaCache::default()
    }

    /// Looks up (or compiles and remembers) the artifact for one
    /// (instruction, frame shape) on one ISA.
    pub fn get_or_compile(
        &self,
        isa: Isa,
        instr: Instruction,
        frame: &Frame<Oop>,
        nil: Oop,
        true_obj: Oop,
        false_obj: Oop,
    ) -> Arc<Result<MetaArtifact, MetaRefusal>> {
        let key = MetaKey {
            isa,
            instr,
            stack: frame.stack.iter().map(|o| o.0).collect(),
            temps: frame.temps.iter().map(|o| o.0).collect(),
            literals: frame.method.literals.iter().map(|o| o.0).collect(),
            nil: nil.0,
            true_obj: true_obj.0,
            false_obj: false_obj.0,
        };
        {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(e);
            }
        }
        // Compile outside the lock: evaluation is pure, so a racing
        // duplicate compile returns an identical artifact.
        let compiled = Arc::new(compile_meta(instr, frame, nil, true_obj, false_obj, isa));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(entries.entry(key).or_insert(compiled))
    }

    /// Lookups answered without compiling.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Evaluator invocations actually run.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MetaCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}
