//! # igjit-metajit — the meta-compiled tier (#5)
//!
//! Druid ("Meta-compilation of Baseline JIT Compilers", PAPERS.md)
//! derives a baseline JIT from the interpreter itself. This crate
//! closes that loop for the reproduction: a **partial evaluator over
//! the interpreter's step functions** that emits CogRTL IR per opcode,
//! lowered by the same back-ends as the hand-written tiers and judged
//! by the same differential pipeline.
//!
//! There is exactly one copy of the semantics: the evaluator is a
//! [`igjit_interp::VmContext`] implementation whose values are
//! compile-time constants ([`MetaVal::Static`]) or runtime registers
//! ([`MetaVal::Dyn`]). Running the unmodified
//! [`igjit_interp::step`] with it folds every frame-value computation
//! at compile time (§4.2 embeds the frame as constants, so only the
//! receiver is dynamic), records heap accesses as `Load`/`Store` IR,
//! and decides the instruction's exit statically. Whatever the
//! evaluator cannot decide without consulting runtime heap state
//! *refuses* instead of guessing — the differential campaign then
//! routes that (instruction, frame) through an interpreter trampoline,
//! keeping the tier total from day one while coverage is reported per
//! run.
//!
//! ## Example: meta-compile `Add` for a concrete frame
//!
//! ```
//! use igjit_heap::{ObjectMemory, Oop};
//! use igjit_bytecode::Instruction;
//! use igjit_interp::{Frame, MethodInfo};
//! use igjit_metajit::compile_meta;
//! use igjit_machine::Isa;
//!
//! let mem = ObjectMemory::new();
//! let mut frame = Frame::new(Oop::from_small_int(0), MethodInfo::empty());
//! frame.stack = vec![Oop::from_small_int(20), Oop::from_small_int(22)];
//! let artifact = compile_meta(
//!     Instruction::Add, &frame,
//!     mem.nil(), mem.true_object(), mem.false_object(),
//!     Isa::X86ish,
//! ).expect("int + int folds");
//! assert!(!artifact.code.code.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod compile;
mod eval;

pub use cache::MetaCache;
pub use compile::{compile_meta, MetaArtifact, MetaRefusal};
pub use eval::MetaVal;

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
