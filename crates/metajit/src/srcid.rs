//! Compile-time identity of this crate's sources.
//!
//! Mirrors the other semantic crates' `srcid` modules: an FNV-1a hash
//! over every `.rs` file in `src/`, so the persistent campaign corpus
//! can invalidate sections whose results could depend on the
//! meta-compiler's behaviour.

/// Every source file baked into [`SOURCE_FINGERPRINT`], sorted,
/// relative to `src/`.
pub const SRC_FILES: &[&str] = &[
    "cache.rs",
    "compile.rs",
    "eval.rs",
    "lib.rs",
    "srcid.rs",
];

const SRC_BYTES: &[&[u8]] = &[
    include_bytes!("cache.rs"),
    include_bytes!("compile.rs"),
    include_bytes!("eval.rs"),
    include_bytes!("lib.rs"),
    include_bytes!("srcid.rs"),
];

/// FNV-1a over the concatenation of [`SRC_FILES`] contents (with a
/// separator byte between files, so moving bytes across a file
/// boundary changes the hash).
pub const SOURCE_FINGERPRINT: u64 = fnv64(SRC_BYTES);

const fn fnv64(files: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut i = 0;
    while i < files.len() {
        let f = files[i];
        let mut j = 0;
        while j < f.len() {
            h ^= f[j] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            j += 1;
        }
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    h
}
