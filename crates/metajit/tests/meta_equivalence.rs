//! Per-opcode equivalence between the meta-compiled tier and the
//! interpreter it was derived from.
//!
//! For random frames and every catalog opcode: partially evaluate the
//! instruction against the frame, run the emitted code on the machine
//! simulator, and compare the observable exit (operand stack, temps,
//! jump/return/send payload) plus the heap effects (receiver and
//! association slots, dirty-word count under a seal) against one step
//! of the plain interpreter on an identical pristine environment.
//! A refusal is always acceptable — the campaign routes it through the
//! interpreter trampoline — but a *compiled* run must agree exactly.
//!
//! Frames whose interpreter step traps (frame fault, memory fault,
//! unsupported) are out of contract: the campaign's oracle gate
//! (`EngineExit::is_testable`) never lets them reach a compiled run,
//! so the comparison skips them the same way `predecode_props.rs`
//! skips undecodable tails.

use igjit_bytecode::Instruction;
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{step, ConcreteContext, Frame, MethodInfo, Selector, StepOutcome};
use igjit_jit::{stops, Convention, MUST_BE_BOOLEAN_SELECTOR, SPILL_BYTES};
use igjit_machine::{Isa, Machine, MachineConfig, MachineOutcome, MachineSession};
use igjit_metajit::compile_meta;
use proptest::prelude::*;

/// Executable instructions, with operand indexes straddling the valid
/// range (2 args + 2 temps, 3 literals, 3 receiver slots) so frame and
/// memory faults are generated as often as clean steps — mirroring
/// `predecode_props.rs`.
fn arb_instr() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        (0u8..6).prop_map(I::PushReceiverVariable),
        (0u8..6).prop_map(I::PushReceiverVariableLong),
        (0u8..6).prop_map(I::PushTemp),
        (0u8..6).prop_map(I::PushTempLong),
        (0u8..6).prop_map(I::PushLiteralConstant),
        (0u8..6).prop_map(I::PushLiteralLong),
        (0u8..6).prop_map(I::PushLiteralVariable),
        Just(I::PushReceiver),
        Just(I::PushTrue),
        Just(I::PushFalse),
        Just(I::PushNil),
        Just(I::PushZero),
        Just(I::PushOne),
        Just(I::PushMinusOne),
        Just(I::PushTwo),
        any::<i8>().prop_map(I::PushInteger),
        Just(I::PushThisContext),
        Just(I::Dup),
        Just(I::Pop),
        (0u8..6).prop_map(I::PopIntoTemp),
        (0u8..6).prop_map(I::StoreTemp),
        (0u8..6).prop_map(I::StoreTempLong),
        (0u8..6).prop_map(I::PopIntoReceiverVariable),
        (0u8..6).prop_map(I::StoreReceiverVariableLong),
        Just(I::Add),
        Just(I::Subtract),
        Just(I::Multiply),
        Just(I::Divide),
        Just(I::Modulo),
        Just(I::IntegerDivide),
        Just(I::LessThan),
        Just(I::GreaterThan),
        Just(I::LessOrEqual),
        Just(I::GreaterOrEqual),
        Just(I::Equal),
        Just(I::NotEqual),
        Just(I::IdentityEqual),
        Just(I::BitAnd),
        Just(I::BitOr),
        Just(I::BitShift),
        Just(I::SpecialSendAt),
        Just(I::SpecialSendAtPut),
        Just(I::SpecialSendSize),
        Just(I::SpecialSendValue),
        Just(I::SpecialSendNew),
        Just(I::SpecialSendClass),
        (0u8..6, 0u8..4).prop_map(|(lit, nargs)| I::Send { lit, nargs }),
        Just(I::ReturnReceiver),
        Just(I::ReturnTrue),
        Just(I::ReturnFalse),
        Just(I::ReturnNil),
        Just(I::ReturnTop),
        (1u8..9).prop_map(I::ShortJumpForward),
        (1u8..9).prop_map(I::ShortJumpTrue),
        (1u8..9).prop_map(I::ShortJumpFalse),
        any::<i8>().prop_map(I::LongJumpForward),
        (0u8..16).prop_map(I::LongJumpTrue),
        (0u8..16).prop_map(I::LongJumpFalse),
        Just(I::Nop),
    ]
}

/// A frame value, abstract over the concrete memory it is built in:
/// the two environments must be bit-identical, so values are drawn as
/// descriptors and resolved against each memory separately.
#[derive(Clone, Copy, Debug)]
enum D {
    Nil,
    True,
    False,
    Recv,
    Float,
    Assoc,
    Int(i64),
}

fn arb_val() -> impl Strategy<Value = D> {
    prop_oneof![
        Just(D::Nil),
        Just(D::True),
        Just(D::False),
        Just(D::Recv),
        Just(D::Float),
        Just(D::Assoc),
        (-8i64..9).prop_map(D::Int),
        (-(1i64 << 30)..(1i64 << 30)).prop_map(D::Int),
    ]
}

struct Env {
    mem: ObjectMemory,
    recv: Oop,
    float: Oop,
    assoc: Oop,
}

/// The shared pristine environment of `predecode_props.rs`: a 3-slot
/// receiver candidate, a Float and a 2-slot association. Deterministic,
/// so building it twice yields bit-identical memories (and therefore
/// identical oop addresses, which the meta-compiler bakes in).
fn build_env() -> Env {
    let mut mem = ObjectMemory::new();
    let recv = mem
        .instantiate_array(&[
            Oop::from_small_int(10),
            Oop::from_small_int(20),
            Oop::from_small_int(30),
        ])
        .unwrap();
    let float = mem.instantiate_float(1.5).unwrap();
    let assoc = mem
        .instantiate_array(&[Oop::from_small_int(0), Oop::from_small_int(99)])
        .unwrap();
    Env { mem, recv, float, assoc }
}

fn oop_of(d: D, env: &Env) -> Oop {
    match d {
        D::Nil => env.mem.nil(),
        D::True => env.mem.true_object(),
        D::False => env.mem.false_object(),
        D::Recv => env.recv,
        D::Float => env.float,
        D::Assoc => env.assoc,
        D::Int(v) => Oop::from_small_int(v),
    }
}

fn make_frame(recv: D, stack: &[D], temps: &[D], env: &Env) -> Frame<Oop> {
    let method = MethodInfo {
        literals: vec![Oop::from_small_int(5), env.float, env.assoc],
        num_args: 2,
        num_temps: 2,
    };
    let mut f = Frame::new(oop_of(recv, env), method);
    f.temps = temps.iter().map(|&d| oop_of(d, env)).collect();
    f.stack = stack.iter().map(|&d| oop_of(d, env)).collect();
    f
}

/// Heap words the random opcodes can reach: the receiver candidate's
/// three slots and the association's two.
fn observable_slots(env: &ObjectMemory, recv: Oop, assoc: Oop) -> Vec<Result<Oop, ()>> {
    (0..3)
        .map(|i| env.fetch_pointer(recv, i).map_err(|_| ()))
        .chain((0..2).map(|i| env.fetch_pointer(assoc, i).map_err(|_| ())))
        .collect()
}

fn check(
    instr: Instruction,
    recv_d: D,
    stack_d: &[D],
    temps_d: &[D],
    isa: Isa,
) {
    // Interpreter side: one step from a sealed pristine environment.
    let mut env_i = build_env();
    let mut frame_i = make_frame(recv_d, stack_d, temps_d, &env_i);
    let _seal_i = env_i.mem.seal();
    let outcome = {
        let mut ctx = ConcreteContext::new(&mut env_i.mem);
        step(&mut ctx, &mut frame_i, instr)
    };
    if matches!(
        outcome,
        StepOutcome::InvalidFrame
            | StepOutcome::InvalidMemoryAccess
            | StepOutcome::Unsupported { .. }
    ) {
        // Fault paths never reach compiled runs in the campaign
        // (`EngineExit::is_testable`); out of the tier's contract.
        return;
    }

    // Meta side: compile against a bit-identical environment.
    let mut env_m = build_env();
    let frame_m = make_frame(recv_d, stack_d, temps_d, &env_m);
    let artifact = match compile_meta(
        instr,
        &frame_m,
        env_m.mem.nil(),
        env_m.mem.true_object(),
        env_m.mem.false_object(),
        isa,
    ) {
        Ok(a) => a,
        // A refusal trampolines to the interpreter — trivially equal.
        Err(_) => return,
    };
    let _seal_m = env_m.mem.seal();

    let conv = Convention::for_isa(isa);
    let frame_bytes = 4 * artifact.code.ntemps + SPILL_BYTES;
    let ntemps = artifact.code.ntemps;
    let mut session = MachineSession::new();
    let mut m = Machine::with_session(&mut env_m.mem, isa, &artifact.code.code, &mut session);
    m.set_reg(conv.receiver, frame_m.receiver.0);
    let machine_out = m.run(MachineConfig::default());
    match machine_out {
        MachineOutcome::Breakpoint { code } if code == stops::FALL_THROUGH => {
            prop_assert!(
                matches!(outcome, StepOutcome::Continue),
                "machine fell through but interpreter said {outcome:?}"
            );
            let sp = m.reg(conv.sp);
            let limit = m.initial_sp().wrapping_sub(frame_bytes);
            let mut stack = Vec::new();
            let mut a = sp;
            while a < limit {
                match m.read_stack(a) {
                    Ok(w) => stack.push(Oop(w)),
                    Err(_) => break,
                }
                a += 4;
            }
            stack.reverse();
            let fp = m.reg(conv.fp);
            let temps: Vec<Oop> = (0..ntemps)
                .map(|i| Oop(m.read_stack(fp.wrapping_sub(4 * (i + 1))).unwrap_or(0)))
                .collect();
            prop_assert_eq!(&stack, &frame_i.stack, "final operand stack differs");
            prop_assert_eq!(&temps, &frame_i.temps, "final temps differ");
        }
        MachineOutcome::Breakpoint { .. } => {
            prop_assert!(
                matches!(outcome, StepOutcome::Jump { .. }),
                "machine took a jump but interpreter said {outcome:?}"
            );
        }
        MachineOutcome::ReturnedToCaller => {
            let StepOutcome::MethodReturn { value } = outcome else {
                panic!("machine returned but interpreter said {outcome:?}");
            };
            prop_assert_eq!(Oop(m.reg(conv.receiver)), value, "returned value differs");
        }
        MachineOutcome::Send { selector_id } => {
            let StepOutcome::MessageSend { selector, receiver, args } = outcome else {
                panic!("machine sent #{selector_id} but interpreter said {outcome:?}");
            };
            let want = match selector {
                Selector::Special(s) => s.index(),
                Selector::MustBeBoolean => MUST_BE_BOOLEAN_SELECTOR,
                Selector::Literal(o) => o.0,
            };
            prop_assert_eq!(selector_id, want, "send selector differs");
            prop_assert_eq!(Oop(m.reg(conv.receiver)), receiver, "send receiver differs");
            for (i, &a) in args.iter().enumerate().take(3) {
                prop_assert_eq!(Oop(m.reg(conv.arg(i))), a, "send argument {} differs", i);
            }
        }
        other => {
            panic!("compiled run ended in {other:?} but interpreter said {outcome:?}");
        }
    }
    drop(m);

    // Heap effects: same dirty-word count under the seal, same
    // observable slot contents.
    prop_assert_eq!(
        env_i.mem.dirty_len(),
        env_m.mem.dirty_len(),
        "dirty-word bitmaps differ"
    );
    let slots_i = observable_slots(&env_i.mem, env_i.recv, env_i.assoc);
    let slots_m = observable_slots(&env_m.mem, env_m.recv, env_m.assoc);
    prop_assert_eq!(slots_i, slots_m, "heap slots differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_meta_tier_matches_interpreter(
        instr in arb_instr(),
        recv_d in arb_val(),
        stack_d in proptest::collection::vec(arb_val(), 0..5),
        temps_d in proptest::collection::vec(arb_val(), 4..5),
        pick_arm in any::<bool>(),
    ) {
        let isa = if pick_arm { Isa::Arm32ish } else { Isa::X86ish };
        check(instr, recv_d, &stack_d, &temps_d, isa);
    }
}

/// The tier's static coverage floor: with a canonical well-formed
/// frame, well over 60% of the catalog's opcodes must meta-compile
/// outright (the ISSUE's acceptance bar for the campaign's coverage
/// report).
#[test]
fn catalog_coverage_is_above_the_floor() {
    let env = build_env();
    let frame = make_frame(
        D::Recv,
        &[D::Int(2), D::Int(3), D::Int(4)],
        &[D::Int(7), D::Int(-3), D::Nil, D::Nil],
        &env,
    );
    let catalog = igjit_bytecode::instruction_catalog();
    let mut compiled = 0usize;
    let mut refused: Vec<String> = Vec::new();
    for spec in &catalog {
        match compile_meta(
            spec.instruction,
            &frame,
            env.mem.nil(),
            env.mem.true_object(),
            env.mem.false_object(),
            Isa::X86ish,
        ) {
            Ok(_) => compiled += 1,
            Err(e) => refused.push(format!("{:?}: {}", spec.instruction, e)),
        }
    }
    assert!(
        compiled * 100 >= catalog.len() * 60,
        "only {}/{} opcodes meta-compile; refusals:\n{}",
        compiled,
        catalog.len(),
        refused.join("\n")
    );
}
