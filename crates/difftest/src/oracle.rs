//! The interpreter oracle: concrete re-execution of an explored path.

use std::sync::{Mutex, OnceLock, PoisonError};

use igjit_bytecode::fxhash::FxHashMap;
use igjit_bytecode::{encode, Instruction, SpecialSelector};
use igjit_concolic::{materialize_frame, AbstractState, InstrUnderTest};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{
    native_spec, run_native, step, ConcreteContext, Frame, MethodInfo, NativeOutcome,
    PredecodedProgram, Selector, StepOutcome,
};
use igjit_solver::Model;

/// A message-send selector, comparable across engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectorId {
    /// Entry of the special-selector table.
    Special(SpecialSelector),
    /// The `mustBeBoolean` error send.
    MustBeBoolean,
    /// A literal selector oop.
    Literal(Oop),
}

/// Engine-neutral observable behaviour of one instruction execution.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineExit {
    /// Fell through to the next instruction (bytecode) or returned to
    /// the caller (native method).
    Success {
        /// Operand stack after execution, bottom first (bytecodes).
        stack: Vec<Oop>,
        /// Temps after execution.
        temps: Vec<Oop>,
        /// The primitive's result (native methods).
        result: Option<Oop>,
    },
    /// A jump was taken.
    JumpTaken,
    /// The native method failed its operand validation.
    Failure,
    /// The method returned.
    Return {
        /// Returned value.
        value: Oop,
    },
    /// A message send left compiled/interpreted code.
    Send {
        /// The selector.
        selector: SelectorId,
        /// Receiver.
        receiver: Oop,
        /// Arguments.
        args: Vec<Oop>,
    },
    /// Frame too small — an expected failure the runner skips.
    InvalidFrame,
    /// Out-of-bounds object access.
    InvalidMemory,
    /// The simulated runtime itself failed (reflection table hole).
    SimulationError(String),
    /// Harness-level failure (step limits, undecodable code).
    EngineError(String),
}

impl EngineExit {
    /// Whether the differential runner should execute compiled code
    /// for a path with this interpreter exit (§3.4: invalid frame and
    /// invalid memory are expected failures for bytecodes).
    pub fn is_testable(&self) -> bool {
        matches!(
            self,
            EngineExit::Success { .. }
                | EngineExit::JumpTaken
                | EngineExit::Failure
                | EngineExit::Return { .. }
                | EngineExit::Send { .. }
        )
    }
}

/// Strips symbolic shadows from a materialized frame.
pub fn concrete_frame(frame: &Frame<igjit_concolic::SymOop>) -> Frame<Oop> {
    let mut f = Frame::new(
        frame.receiver.concrete,
        MethodInfo {
            literals: frame.method.literals.iter().map(|l| l.concrete).collect(),
            num_args: frame.method.num_args,
            num_temps: frame.method.num_temps,
        },
    );
    f.temps = frame.temps.iter().map(|t| t.concrete).collect();
    f.stack = frame.stack.iter().map(|s| s.concrete).collect();
    f
}

/// Everything an oracle run produced.
#[derive(Debug)]
pub struct OracleRun {
    /// Observable exit of the interpreter.
    pub exit: EngineExit,
    /// The heap after the run (for side-effect comparison).
    pub mem: ObjectMemory,
    /// The materialized input frame (for the compiled run to reuse).
    pub input_frame: Frame<Oop>,
    /// Variable→oop mapping of the materialization.
    pub var_oops: FxHashMap<igjit_solver::VarId, Oop>,
    /// Model assignments the materializer could not realize
    /// faithfully. Non-empty means the run used fallback inputs and
    /// must be reported as a test error, not compared.
    pub witness_errors: Vec<igjit_concolic::WitnessError>,
}

/// The predecoded view of one catalog entry's single-instruction
/// program, built once per distinct instruction and shared by every
/// oracle run for the rest of the process (engine v8,
/// `IGJIT_INTERP_PREDECODE`).
///
/// The instruction is *encoded and sequentially re-decoded* through
/// [`PredecodedProgram`], so the oracle consumes exactly the artifact
/// the predecoded fetch loop would — any encode/decode drift shows up
/// as a changed oracle row instead of hiding behind the ad-hoc enum
/// value. Entries are leaked: the universe of distinct instructions is
/// bounded by the catalog plus test-local immediates.
fn unit_program(i: Instruction) -> &'static PredecodedProgram {
    static CACHE: OnceLock<Mutex<FxHashMap<Instruction, &'static PredecodedProgram>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(FxHashMap::default()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    map.entry(i).or_insert_with(|| {
        let mut bytes = Vec::new();
        encode(i, &mut bytes);
        Box::leak(Box::new(PredecodedProgram::new(&bytes)))
    })
}

/// The oracle run: materializes `model` into a fresh heap and runs the
/// interpreter concretely (through the predecoded pipeline; see
/// [`run_oracle_with`] for the knob).
pub fn run_oracle(state: &AbstractState, model: &Model, instr: InstrUnderTest) -> OracleRun {
    run_oracle_with(state, model, instr, true)
}

/// [`run_oracle`] with explicit control over the interpreter pipeline:
/// `interp_predecode` selects the per-catalog-entry
/// [`PredecodedProgram`] path or the historical ad-hoc dispatch. Both
/// produce byte-identical rows.
pub fn run_oracle_with(
    state: &AbstractState,
    model: &Model,
    instr: InstrUnderTest,
    interp_predecode: bool,
) -> OracleRun {
    let mut state = state.clone();
    let mut mem = ObjectMemory::new();
    let mat = materialize_frame(&mut state, model, &mut mem);
    let input_frame = concrete_frame(&mat.frame);
    let mut frame = input_frame.clone();
    let exit = run_oracle_on_with(&mut mem, &mut frame, instr, interp_predecode);
    OracleRun { exit, mem, input_frame, var_oops: mat.var_oops, witness_errors: mat.witness_errors }
}

/// Runs the interpreter concretely on an already-materialized frame
/// and heap, mutating both. This is the replay-friendly half of
/// [`run_oracle`]: the campaign materializes a sealed base image once
/// and feeds (a clone of) it here instead of rebuilding the heap.
pub fn run_oracle_on(
    mem: &mut ObjectMemory,
    frame: &mut Frame<Oop>,
    instr: InstrUnderTest,
) -> EngineExit {
    run_oracle_on_with(mem, frame, instr, true)
}

/// [`run_oracle_on`] with the interpreter-pipeline knob; see
/// [`run_oracle_with`].
pub fn run_oracle_on_with(
    mem: &mut ObjectMemory,
    frame: &mut Frame<Oop>,
    instr: InstrUnderTest,
    interp_predecode: bool,
) -> EngineExit {
    match instr {
        InstrUnderTest::Bytecode(i) => {
            // Under the predecoded pipeline the executed instruction
            // comes from the cached program view (one sequential
            // decode per catalog entry), not the ad-hoc enum value.
            let i = if interp_predecode {
                let prog = unit_program(i);
                match prog.lookup(0) {
                    Some(s) => prog.steps()[s].instr,
                    None => i,
                }
            } else {
                i
            };
            let mut ctx = ConcreteContext::new(mem);
            match step(&mut ctx, frame, i) {
                StepOutcome::Continue => EngineExit::Success {
                    stack: frame.stack.clone(),
                    temps: frame.temps.clone(),
                    result: None,
                },
                StepOutcome::Jump { displacement: _ } => EngineExit::JumpTaken,
                StepOutcome::MethodReturn { value } => EngineExit::Return { value },
                StepOutcome::MessageSend { selector, receiver, args } => EngineExit::Send {
                    selector: match selector {
                        Selector::Special(s) => SelectorId::Special(s),
                        Selector::MustBeBoolean => SelectorId::MustBeBoolean,
                        Selector::Literal(v) => SelectorId::Literal(v),
                    },
                    receiver,
                    args,
                },
                StepOutcome::InvalidFrame => EngineExit::InvalidFrame,
                StepOutcome::InvalidMemoryAccess => EngineExit::InvalidMemory,
                StepOutcome::Unsupported { reason } => EngineExit::EngineError(reason.into()),
            }
        }
        InstrUnderTest::Native(id) => {
            let mut ctx = ConcreteContext::new(mem);
            match run_native(&mut ctx, frame, id) {
                NativeOutcome::Success { result } => EngineExit::Success {
                    stack: frame.stack.clone(),
                    temps: frame.temps.clone(),
                    result: Some(result),
                },
                NativeOutcome::Failure => EngineExit::Failure,
                NativeOutcome::InvalidFrame => EngineExit::InvalidFrame,
                NativeOutcome::InvalidMemoryAccess => EngineExit::InvalidMemory,
                NativeOutcome::Unsupported { reason } => EngineExit::EngineError(reason.into()),
            }
        }
    }
}

/// The receiver and argument slice of a native-method frame (receiver
/// deepest, per the native calling convention).
pub fn native_operands(frame: &Frame<Oop>, id: igjit_interp::NativeMethodId) -> Option<(Oop, Vec<Oop>)> {
    let argc = native_spec(id)?.argc as usize;
    let depth = frame.stack.len();
    if depth < argc + 1 {
        return None;
    }
    let receiver = frame.stack[depth - 1 - argc];
    let args = frame.stack[depth - argc..].to_vec();
    Some((receiver, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;
    use igjit_concolic::Explorer;
    use igjit_interp::NativeMethodId;

    #[test]
    fn oracle_reproduces_explored_outcomes() {
        let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
        for path in r.curated_paths() {
            let run = run_oracle(&r.state, &path.model, path.instruction);
            assert!(run.witness_errors.is_empty(), "solver witnesses are in range");
            // The oracle's exit class must match what the concolic run
            // observed for the same model.
            let expected = path.outcome.exit_condition().unwrap();
            let got = match &run.exit {
                EngineExit::Success { .. } | EngineExit::JumpTaken => {
                    igjit_interp::ExitCondition::Success
                }
                EngineExit::Failure => igjit_interp::ExitCondition::Failure,
                EngineExit::Return { .. } => igjit_interp::ExitCondition::MethodReturn,
                EngineExit::Send { .. } => igjit_interp::ExitCondition::MessageSend,
                EngineExit::InvalidFrame => igjit_interp::ExitCondition::InvalidFrame,
                EngineExit::InvalidMemory => igjit_interp::ExitCondition::InvalidMemoryAccess,
                other => panic!("{other:?}"),
            };
            assert_eq!(got, expected, "{:?}", path.constraints);
        }
    }

    #[test]
    fn native_operand_extraction() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(1)));
        let ok = r
            .curated_paths()
            .iter()
            .any(|p| {
                let run = run_oracle(&r.state, &p.model, p.instruction);
                matches!(run.exit, EngineExit::Success { .. })
                    && native_operands(&run.input_frame, NativeMethodId(1)).is_some()
            });
        assert!(ok, "at least one successful path with extractable operands");
    }
}
