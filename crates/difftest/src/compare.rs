//! Behavioural comparison between the interpreter and compiled runs.

use igjit_heap::fxhash::FxHashMap;

use igjit_heap::{ObjectMemory, Oop};
use igjit_solver::VarId;

use crate::compiled::CompiledRun;
use crate::oracle::EngineExit;

/// Result of comparing one path's two executions.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Same observable behaviour.
    Agree,
    /// The engines diverged.
    Difference(Difference),
}

impl Verdict {
    /// Whether this verdict is a difference.
    pub fn is_difference(&self) -> bool {
        matches!(self, Verdict::Difference(_))
    }
}

/// A detected divergence.
#[derive(Clone, Debug)]
pub struct Difference {
    /// What kind of divergence.
    pub kind: DifferenceKind,
    /// Human-readable detail for the report.
    pub detail: String,
}

/// The kinds of divergence the comparator distinguishes.
#[derive(Clone, PartialEq, Debug)]
pub enum DifferenceKind {
    /// Different exit conditions (e.g. Success vs MessageSend).
    ExitMismatch {
        /// Interpreter exit (short form).
        interp: String,
        /// Compiled exit (short form).
        compiled: String,
    },
    /// Same exit, different operand stack contents.
    StackMismatch,
    /// Same exit, different temp contents.
    TempsMismatch,
    /// Same exit, different result / return value.
    ResultMismatch,
    /// Same exit (send), different selector or send payload.
    SendMismatch,
    /// Side effects on the input object graph differ.
    SideEffectMismatch,
    /// The compiler refused the instruction.
    CompileRefused,
    /// The simulated runtime errored (reflection-table hole).
    SimulationError,
    /// Harness-level failure.
    EngineError,
}

fn exit_name(e: &EngineExit) -> String {
    match e {
        EngineExit::Success { .. } => "Success".into(),
        EngineExit::JumpTaken => "JumpTaken".into(),
        EngineExit::Failure => "Failure".into(),
        EngineExit::Return { .. } => "Return".into(),
        EngineExit::Send { .. } => "Send".into(),
        EngineExit::InvalidFrame => "InvalidFrame".into(),
        EngineExit::InvalidMemory => "InvalidMemory".into(),
        EngineExit::SimulationError(r) => format!("SimulationError({r})"),
        EngineExit::EngineError(r) => format!("EngineError({r})"),
    }
}

/// Structural value equivalence across two heaps.
///
/// Materialization is deterministic, so *input* objects occupy the
/// same addresses in both heaps and raw comparison usually suffices;
/// freshly allocated results (boxed floats, copies) are compared
/// structurally instead.
pub fn values_equivalent(
    mem_a: &ObjectMemory,
    a: Oop,
    mem_b: &ObjectMemory,
    b: Oop,
    depth: u32,
) -> bool {
    if a.is_small_int() || b.is_small_int() {
        return a == b;
    }
    if depth > 4 {
        return true; // bounded structural comparison
    }
    let ca = mem_a.class_index_of(a);
    let cb = mem_b.class_index_of(b);
    if ca != cb {
        return false;
    }
    // Floats compare by payload bits.
    if let (Ok(fa), Ok(fb)) = (mem_a.float_value_of(a), mem_b.float_value_of(b)) {
        return fa.to_bits() == fb.to_bits();
    }
    match (mem_a.format_of(a), mem_b.format_of(b)) {
        (Ok(fa), Ok(fb)) if fa == fb => {
            if fa.is_bytes() {
                let (na, nb) = (
                    mem_a.byte_count(a).unwrap_or(0),
                    mem_b.byte_count(b).unwrap_or(0),
                );
                if na != nb {
                    return false;
                }
                return (0..na).all(|i| {
                    mem_a.fetch_byte(a, i).ok() == mem_b.fetch_byte(b, i).ok()
                });
            }
            if fa.has_pointer_slots() {
                let (na, nb) = (
                    mem_a.element_count(a).unwrap_or(0),
                    mem_b.element_count(b).unwrap_or(0),
                );
                if na != nb {
                    return false;
                }
                return (0..na).all(|i| {
                    match (mem_a.fetch_pointer(a, i), mem_b.fetch_pointer(b, i)) {
                        (Ok(va), Ok(vb)) => {
                            values_equivalent(mem_a, va, mem_b, vb, depth + 1)
                        }
                        _ => false,
                    }
                });
            }
            true
        }
        _ => false,
    }
}

fn vecs_equivalent(mem_a: &ObjectMemory, a: &[Oop], mem_b: &ObjectMemory, b: &[Oop]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| values_equivalent(mem_a, x, mem_b, y, 0))
}

/// Compares the side effects on the shared input object graph.
fn side_effects_equivalent(
    mem_a: &ObjectMemory,
    mem_b: &ObjectMemory,
    var_oops: &FxHashMap<VarId, Oop>,
) -> bool {
    var_oops.values().all(|&oop| {
        if !mem_a.is_live_object(oop) || !mem_b.is_live_object(oop) {
            return true;
        }
        values_equivalent(mem_a, oop, mem_b, oop, 0)
    })
}

/// Compares one path's interpreter run against its compiled run.
///
/// `interp_mem`/`compiled_mem` are the post-execution heaps;
/// `var_oops` maps input variables to their (identical) materialized
/// oops.
pub fn compare_runs(
    interp: &EngineExit,
    interp_mem: &ObjectMemory,
    compiled: &CompiledRun,
    compiled_mem: &ObjectMemory,
    var_oops: &FxHashMap<VarId, Oop>,
) -> Verdict {
    let compiled_exit = match compiled {
        CompiledRun::Refused(e) => {
            return Verdict::Difference(Difference {
                kind: DifferenceKind::CompileRefused,
                detail: format!("compiler refused: {e}"),
            });
        }
        CompiledRun::Ran(e) => e,
    };
    if let EngineExit::SimulationError(r) = compiled_exit {
        return Verdict::Difference(Difference {
            kind: DifferenceKind::SimulationError,
            detail: format!("simulation runtime error on register {r}"),
        });
    }
    if let EngineExit::EngineError(r) = compiled_exit {
        return Verdict::Difference(Difference {
            kind: DifferenceKind::EngineError,
            detail: r.clone(),
        });
    }
    let verdict = match (interp, compiled_exit) {
        (
            EngineExit::Success { stack: s1, temps: t1, result: r1 },
            EngineExit::Success { stack: s2, temps: t2, result: r2 },
        ) => {
            // Native results: compare result values. Bytecode: compare
            // stacks and temps.
            let result_ok = match (r1, r2) {
                (Some(a), Some(b)) => values_equivalent(interp_mem, *a, compiled_mem, *b, 0),
                _ => true,
            };
            if !result_ok {
                Some(Difference {
                    kind: DifferenceKind::ResultMismatch,
                    detail: format!("results differ: {r1:?} vs {r2:?}"),
                })
            } else if r1.is_none() && !vecs_equivalent(interp_mem, s1, compiled_mem, s2) {
                Some(Difference {
                    kind: DifferenceKind::StackMismatch,
                    detail: format!("operand stacks differ: {s1:?} vs {s2:?}"),
                })
            } else if r1.is_none() && !vecs_equivalent(interp_mem, t1, compiled_mem, t2) {
                Some(Difference {
                    kind: DifferenceKind::TempsMismatch,
                    detail: format!("temps differ: {t1:?} vs {t2:?}"),
                })
            } else {
                None
            }
        }
        (EngineExit::JumpTaken, EngineExit::JumpTaken) => None,
        (EngineExit::Failure, EngineExit::Failure) => None,
        (EngineExit::Return { value: v1 }, EngineExit::Return { value: v2 }) => {
            if values_equivalent(interp_mem, *v1, compiled_mem, *v2, 0) {
                None
            } else {
                Some(Difference {
                    kind: DifferenceKind::ResultMismatch,
                    detail: format!("returned values differ: {v1:?} vs {v2:?}"),
                })
            }
        }
        (
            EngineExit::Send { selector: sel1, receiver: r1, args: a1 },
            EngineExit::Send { selector: sel2, receiver: r2, args: a2 },
        ) => {
            // Compare the raw trampoline payloads: the compiled side
            // cannot distinguish a special-selector index from a
            // literal selector oop with the same bits, but the raw
            // encodings are directly comparable.
            let raw = |s: &crate::oracle::SelectorId| -> u32 {
                match s {
                    crate::oracle::SelectorId::Special(sp) => sp.index(),
                    crate::oracle::SelectorId::MustBeBoolean => {
                        igjit_jit::MUST_BE_BOOLEAN_SELECTOR
                    }
                    crate::oracle::SelectorId::Literal(oop) => oop.0,
                }
            };
            let sel_ok = raw(sel1) == raw(sel2);
            let rcvr_ok = values_equivalent(interp_mem, *r1, compiled_mem, *r2, 0);
            // Compare as many args as both sides captured.
            let n = a1.len().min(a2.len());
            let args_ok = vecs_equivalent(interp_mem, &a1[..n], compiled_mem, &a2[..n]);
            if sel_ok && rcvr_ok && args_ok {
                None
            } else {
                Some(Difference {
                    kind: DifferenceKind::SendMismatch,
                    detail: format!(
                        "sends differ: {sel1:?} to {r1:?} {a1:?} vs {sel2:?} to {r2:?} {a2:?}"
                    ),
                })
            }
        }
        (i, c) => Some(Difference {
            kind: DifferenceKind::ExitMismatch { interp: exit_name(i), compiled: exit_name(c) },
            detail: format!("exits differ: {} vs {}", exit_name(i), exit_name(c)),
        }),
    };
    if let Some(d) = verdict {
        return Verdict::Difference(d);
    }
    if !side_effects_equivalent(interp_mem, compiled_mem, var_oops) {
        return Verdict::Difference(Difference {
            kind: DifferenceKind::SideEffectMismatch,
            detail: "input object graphs diverged".into(),
        });
    }
    Verdict::Agree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn small_ints_compare_by_value() {
        let a = ObjectMemory::new();
        let b = ObjectMemory::new();
        assert!(values_equivalent(&a, si(5), &b, si(5), 0));
        assert!(!values_equivalent(&a, si(5), &b, si(6), 0));
    }

    #[test]
    fn floats_compare_by_bits_across_heaps() {
        let mut a = ObjectMemory::new();
        let mut b = ObjectMemory::new();
        // Allocate extra garbage in b so addresses differ.
        let _pad = b.instantiate_array(&[]).unwrap();
        let fa = a.instantiate_float(2.5).unwrap();
        let fb = b.instantiate_float(2.5).unwrap();
        let fc = b.instantiate_float(3.5).unwrap();
        assert!(values_equivalent(&a, fa, &b, fb, 0));
        assert!(!values_equivalent(&a, fa, &b, fc, 0));
    }

    #[test]
    fn arrays_compare_structurally() {
        let mut a = ObjectMemory::new();
        let mut b = ObjectMemory::new();
        let aa = a.instantiate_array(&[si(1), si(2)]).unwrap();
        let bb = b.instantiate_array(&[si(1), si(2)]).unwrap();
        let cc = b.instantiate_array(&[si(1), si(3)]).unwrap();
        assert!(values_equivalent(&a, aa, &b, bb, 0));
        assert!(!values_equivalent(&a, aa, &b, cc, 0));
    }

    #[test]
    fn class_mismatch_is_inequivalent() {
        let mut a = ObjectMemory::new();
        let mut b = ObjectMemory::new();
        let aa = a.instantiate_array(&[]).unwrap();
        let bb = b.instantiate_bytes(igjit_heap::ClassIndex::BYTE_ARRAY, &[]).unwrap();
        assert!(!values_equivalent(&a, aa, &b, bb, 0));
    }

    #[test]
    fn matching_success_exits_agree() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Success { stack: vec![si(1)], temps: vec![], result: None };
        let c = CompiledRun::Ran(EngineExit::Success {
            stack: vec![si(1)],
            temps: vec![],
            result: None,
        });
        let v = compare_runs(&i, &mem, &c, &mem, &FxHashMap::default());
        assert!(!v.is_difference());
    }

    #[test]
    fn exit_mismatch_is_detected() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Failure;
        let c = CompiledRun::Ran(EngineExit::Success {
            stack: vec![],
            temps: vec![],
            result: Some(si(0)),
        });
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => {
                assert!(matches!(d.kind, DifferenceKind::ExitMismatch { .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refusal_is_a_difference() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Failure;
        let c = CompiledRun::Refused(igjit_jit::CompileError::NotImplemented("ffi"));
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => assert_eq!(d.kind, DifferenceKind::CompileRefused),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn return_value_mismatch_is_detected() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Return { value: si(1) };
        let c = CompiledRun::Ran(EngineExit::Return { value: si(2) });
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => assert_eq!(d.kind, DifferenceKind::ResultMismatch),
            other => panic!("{other:?}"),
        }
        let c = CompiledRun::Ran(EngineExit::Return { value: si(1) });
        assert!(!compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()).is_difference());
    }

    #[test]
    fn temps_mismatch_is_detected() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Success { stack: vec![], temps: vec![si(1)], result: None };
        let c = CompiledRun::Ran(EngineExit::Success {
            stack: vec![],
            temps: vec![si(2)],
            result: None,
        });
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => assert_eq!(d.kind, DifferenceKind::TempsMismatch),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn send_payload_mismatch_is_detected() {
        use crate::oracle::SelectorId;
        use igjit_bytecode::SpecialSelector;
        let mem = ObjectMemory::new();
        let i = EngineExit::Send {
            selector: SelectorId::Special(SpecialSelector::Plus),
            receiver: si(1),
            args: vec![si(2)],
        };
        // Same selector, different receiver.
        let c = CompiledRun::Ran(EngineExit::Send {
            selector: SelectorId::Special(SpecialSelector::Plus),
            receiver: si(9),
            args: vec![si(2)],
        });
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => assert_eq!(d.kind, DifferenceKind::SendMismatch),
            other => panic!("{other:?}"),
        }
        // Literal selector vs special selector with colliding bits:
        // the raw-payload comparison distinguishes nothing here (both
        // encode the same trampoline payload), so a literal whose oop
        // bits equal the special index counts as the same send.
        let lit = EngineExit::Send {
            selector: SelectorId::Literal(igjit_heap::Oop(SpecialSelector::Plus.index())),
            receiver: si(1),
            args: vec![si(2)],
        };
        assert!(!compare_runs(&i, &mem, &CompiledRun::Ran(lit), &mem, &FxHashMap::default())
            .is_difference());
    }

    #[test]
    fn side_effect_divergence_is_detected() {
        let mut mem_a = ObjectMemory::new();
        let mut mem_b = ObjectMemory::new();
        let a = mem_a.instantiate_array(&[si(1)]).unwrap();
        let b = mem_b.instantiate_array(&[si(1)]).unwrap();
        assert_eq!(a, b, "deterministic layout");
        mem_b.store_pointer(b, 0, si(9)).unwrap();
        let mut var_oops = FxHashMap::default();
        var_oops.insert(igjit_solver::VarId(0), a);
        let i = EngineExit::Success { stack: vec![], temps: vec![], result: None };
        let c = CompiledRun::Ran(EngineExit::Success {
            stack: vec![],
            temps: vec![],
            result: None,
        });
        match compare_runs(&i, &mem_a, &c, &mem_b, &var_oops) {
            Verdict::Difference(d) => {
                assert_eq!(d.kind, DifferenceKind::SideEffectMismatch)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stack_mismatch_is_detected() {
        let mem = ObjectMemory::new();
        let i = EngineExit::Success { stack: vec![si(1)], temps: vec![], result: None };
        let c = CompiledRun::Ran(EngineExit::Success {
            stack: vec![si(2)],
            temps: vec![],
            result: None,
        });
        match compare_runs(&i, &mem, &c, &mem, &FxHashMap::default()) {
            Verdict::Difference(d) => assert_eq!(d.kind, DifferenceKind::StackMismatch),
            other => panic!("{other:?}"),
        }
    }
}
