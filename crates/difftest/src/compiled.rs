//! Running compiled code for one explored path.

use std::time::{Duration, Instant};

use igjit_bytecode::SpecialSelector;
use igjit_concolic::InstrUnderTest;
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::native_spec;
use igjit_jit::{
    compile_native_test, BytecodeTestInput, CodeCache, CompileError, CompileKeyRef, CompilerKind,
    Convention, NativeTestInput, MUST_BE_BOOLEAN_SELECTOR, SPILL_BYTES,
};
use igjit_machine::{Isa, Machine, MachineConfig, MachineOutcome, MachineSession};

use crate::campaign::StageTimes;
use crate::oracle::{EngineExit, SelectorId};

/// Outcome of a compiled run (or the compiler's refusal).
#[derive(Clone, Debug)]
pub enum CompiledRun {
    /// Compiled and executed; observable behaviour inside.
    Ran(EngineExit),
    /// The front-end refused (missing functionality / unsupported).
    Refused(CompileError),
}

/// Shared execution context for a batch of compiled runs: the artifact
/// cache, the predecode switch and the persistent simulator session
/// every run replays through (engine v5's batched-replay state).
///
/// The campaign creates one per `test_instruction_with` call; the
/// session is *reset* — registers zeroed, dirty stack extent cleared —
/// between runs instead of reallocating the 64 KiB stack per model.
pub struct RunCtx<'c> {
    /// Compiled-artifact cache, shared across instructions and worker
    /// threads by the campaign driver.
    pub cache: &'c CodeCache,
    /// Step predecoded instructions (built once per cache entry)
    /// instead of byte-decoding on every step.
    pub predecode: bool,
    /// The persistent machine session (registers + stack arena).
    pub session: &'c mut MachineSession,
}

pub(crate) fn selector_of(id: u32) -> SelectorId {
    if id == MUST_BE_BOOLEAN_SELECTOR {
        return SelectorId::MustBeBoolean;
    }
    match SpecialSelector::from_index(id) {
        Some(s) => SelectorId::Special(s),
        None => SelectorId::Literal(Oop(id)),
    }
}

/// Compiles and runs a bytecode instruction test: the operand stack,
/// temps and literals of `frame` are embedded as constants (§4.2);
/// the receiver rides in the convention register.
///
/// `mem` must be a *fresh* materialization of the same model the
/// oracle ran on. Returns the run plus the mutated heap.
pub fn run_compiled_bytecode(
    kind: CompilerKind,
    isa: Isa,
    instr: igjit_bytecode::Instruction,
    frame: &igjit_interp::Frame<Oop>,
    mem: ObjectMemory,
    send_arity_hint: usize,
) -> (CompiledRun, ObjectMemory) {
    run_compiled_sequence(kind, isa, &[instr], frame, mem, send_arity_hint)
}

/// Compiles and runs a straight-line bytecode *sequence* test (the
/// future-work extension): same schema, several instructions generated
/// back to back.
pub fn run_compiled_sequence(
    kind: CompilerKind,
    isa: Isa,
    instrs: &[igjit_bytecode::Instruction],
    frame: &igjit_interp::Frame<Oop>,
    mut mem: ObjectMemory,
    send_arity_hint: usize,
) -> (CompiledRun, ObjectMemory) {
    let mut scratch = StageTimes::default();
    let cache = CodeCache::disabled();
    let mut session = MachineSession::new();
    let mut ctx = RunCtx { cache: &cache, predecode: false, session: &mut session };
    let run = run_compiled_sequence_timed(
        kind, isa, instrs, frame, &mut mem, send_arity_hint, &mut ctx, &mut scratch,
    );
    (run, mem)
}

/// [`run_compiled_sequence`] with the campaign's execution context
/// (artifact cache, predecode switch, persistent session) and with the
/// per-stage wall clock split out into `times` for the observability
/// layer. Mutates `mem` in place so the campaign can run on a sealed
/// base image and roll it back between ISAs instead of rebuilding it.
#[allow(clippy::too_many_arguments)]
pub fn run_compiled_sequence_timed(
    kind: CompilerKind,
    isa: Isa,
    instrs: &[igjit_bytecode::Instruction],
    frame: &igjit_interp::Frame<Oop>,
    mem: &mut ObjectMemory,
    send_arity_hint: usize,
    ctx: &mut RunCtx<'_>,
    times: &mut StageTimes,
) -> CompiledRun {
    let input = BytecodeTestInput {
        instruction: instrs[0],
        operand_stack: &frame.stack,
        temps: &frame.temps,
        literals: &frame.method.literals,
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    // Everything the generated code depends on (§4.2: frame values are
    // embedded as constants; the receiver rides in a register and is
    // deliberately absent). The key borrows the frame's own slices —
    // an owned key is only materialized inside the cache on a miss.
    let t_hash = Instant::now();
    let key = CompileKeyRef::Bytecode {
        kind,
        isa,
        instrs,
        stack: &frame.stack,
        temps: &frame.temps,
        literals: &frame.method.literals,
        nil: mem.nil().0,
        true_obj: mem.true_object().0,
        false_obj: mem.false_object().0,
    };
    let mut compile_time = Duration::ZERO;
    let entry = ctx.cache.get_or_compile_ref(key, || {
        let t0 = Instant::now();
        let artifact = igjit_jit::compile_bytecode_sequence_test(kind, instrs, &input, isa);
        compile_time = t0.elapsed();
        artifact
    });
    times.hash += t_hash.elapsed().saturating_sub(compile_time);
    times.compile += compile_time;
    let compiled = match entry.artifact() {
        Ok(c) => c,
        Err(e) => return CompiledRun::Refused(e.clone()),
    };
    let frame_bytes = 4 * compiled.ntemps + SPILL_BYTES;
    let conv = Convention::for_isa(isa);
    let ntemps = compiled.ntemps;
    let predecoded =
        if ctx.predecode { entry.predecoded_timed(&mut times.decode) } else { None };
    let t_setup = Instant::now();
    let mut m = match predecoded {
        Some(pd) => Machine::with_predecoded(mem, pd, ctx.session),
        None => Machine::with_session(mem, isa, &compiled.code, ctx.session),
    };
    m.set_reg(conv.receiver, frame.receiver.0);
    times.setup += t_setup.elapsed();
    let t_sim = Instant::now();
    let outcome = m.run(MachineConfig::default());
    times.simulate += t_sim.elapsed();
    let t_report = Instant::now();
    let exit = match outcome {
        MachineOutcome::Breakpoint { code } if code == igjit_jit::stops::FALL_THROUGH => {
            // Operand stack: words between SP and the frame base,
            // top first; reverse to bottom-first.
            let sp = m.reg(conv.sp);
            let limit = m.initial_sp().wrapping_sub(frame_bytes);
            let mut stack = Vec::new();
            let mut a = sp;
            while a < limit {
                match m.read_stack(a) {
                    Ok(w) => stack.push(Oop(w)),
                    Err(_) => break,
                }
                a += 4;
            }
            stack.reverse();
            // Temps from the frame slots.
            let fp = m.reg(conv.fp);
            let temps: Vec<Oop> = (0..ntemps)
                .map(|i| Oop(m.read_stack(fp.wrapping_sub(4 * (i + 1))).unwrap_or(0)))
                .collect();
            EngineExit::Success { stack, temps, result: None }
        }
        MachineOutcome::Breakpoint { .. } => EngineExit::JumpTaken,
        MachineOutcome::ReturnedToCaller => {
            EngineExit::Return { value: Oop(m.reg(conv.receiver)) }
        }
        MachineOutcome::Send { selector_id } => {
            let selector = selector_of(selector_id);
            let receiver = Oop(m.reg(conv.receiver));
            let args: Vec<Oop> = (0..send_arity_hint.min(3))
                .map(|i| Oop(m.reg(conv.arg(i))))
                .collect();
            EngineExit::Send { selector, receiver, args }
        }
        MachineOutcome::MemoryFault { .. } => EngineExit::InvalidMemory,
        MachineOutcome::SimulationError { register } => EngineExit::SimulationError(register),
        MachineOutcome::StepLimit => EngineExit::EngineError("machine step limit".into()),
        MachineOutcome::DecodeFault { pc } => {
            EngineExit::EngineError(format!("decode fault at 0x{pc:08x}"))
        }
    };
    times.report += t_report.elapsed();
    CompiledRun::Ran(exit)
}

/// Compiles and runs a native-method test: receiver and args ride in
/// the convention registers (Listing 4's schema).
pub fn run_compiled_native(
    isa: Isa,
    id: igjit_interp::NativeMethodId,
    receiver: Oop,
    args: &[Oop],
    mut mem: ObjectMemory,
) -> (CompiledRun, ObjectMemory) {
    let mut scratch = StageTimes::default();
    let cache = CodeCache::disabled();
    let mut session = MachineSession::new();
    let mut ctx = RunCtx { cache: &cache, predecode: false, session: &mut session };
    let run =
        run_compiled_native_timed(isa, id, receiver, args, &mut mem, &mut ctx, &mut scratch);
    (run, mem)
}

/// [`run_compiled_native`] with the campaign's execution context and
/// with the per-stage wall clock split out into `times`. Mutates `mem`
/// in place (see [`run_compiled_sequence_timed`]).
pub fn run_compiled_native_timed(
    isa: Isa,
    id: igjit_interp::NativeMethodId,
    receiver: Oop,
    args: &[Oop],
    mem: &mut ObjectMemory,
    ctx: &mut RunCtx<'_>,
    times: &mut StageTimes,
) -> CompiledRun {
    let input = NativeTestInput {
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    // Native templates depend only on the method id, the ISA and the
    // special oops — receiver and arguments ride in registers.
    let t_hash = Instant::now();
    let key = CompileKeyRef::Native {
        id: u32::from(id.0),
        isa,
        nil: mem.nil().0,
        true_obj: mem.true_object().0,
        false_obj: mem.false_object().0,
    };
    let mut compile_time = Duration::ZERO;
    let entry = ctx.cache.get_or_compile_ref(key, || {
        let t0 = Instant::now();
        let artifact = compile_native_test(
            igjit_jit::native::igjit_bytecode_native_id::NativeMethodIdLike(id.0),
            input,
            isa,
        );
        compile_time = t0.elapsed();
        artifact
    });
    times.hash += t_hash.elapsed().saturating_sub(compile_time);
    times.compile += compile_time;
    let compiled = match entry.artifact() {
        Ok(c) => c,
        Err(e) => return CompiledRun::Refused(e.clone()),
    };
    let conv = Convention::for_isa(isa);
    let argc = native_spec(id).map(|s| s.argc as usize).unwrap_or(args.len());
    let predecoded =
        if ctx.predecode { entry.predecoded_timed(&mut times.decode) } else { None };
    let t_setup = Instant::now();
    let mut m = match predecoded {
        Some(pd) => Machine::with_predecoded(mem, pd, ctx.session),
        None => Machine::with_session(mem, isa, &compiled.code, ctx.session),
    };
    m.set_reg(conv.receiver, receiver.0);
    for (i, a) in args.iter().take(argc.min(3)).enumerate() {
        m.set_reg(conv.arg(i), a.0);
    }
    times.setup += t_setup.elapsed();
    let t_sim = Instant::now();
    let outcome = m.run(MachineConfig::default());
    times.simulate += t_sim.elapsed();
    let t_report = Instant::now();
    let exit = match outcome {
        MachineOutcome::ReturnedToCaller => EngineExit::Success {
            stack: Vec::new(),
            temps: Vec::new(),
            result: Some(Oop(m.reg(conv.receiver))),
        },
        MachineOutcome::Breakpoint { .. } => EngineExit::Failure,
        MachineOutcome::Send { selector_id } => EngineExit::Send {
            selector: selector_of(selector_id),
            receiver: Oop(m.reg(conv.receiver)),
            args: Vec::new(),
        },
        MachineOutcome::MemoryFault { .. } => EngineExit::InvalidMemory,
        MachineOutcome::SimulationError { register } => EngineExit::SimulationError(register),
        MachineOutcome::StepLimit => EngineExit::EngineError("machine step limit".into()),
        MachineOutcome::DecodeFault { pc } => {
            EngineExit::EngineError(format!("decode fault at 0x{pc:08x}"))
        }
    };
    times.report += t_report.elapsed();
    CompiledRun::Ran(exit)
}

/// Convenience: the compiled-run entry point used by the campaign.
pub fn run_compiled_for_instr(
    target_kind: Option<CompilerKind>,
    isa: Isa,
    instr: InstrUnderTest,
    frame: &igjit_interp::Frame<Oop>,
    mut mem: ObjectMemory,
) -> (CompiledRun, ObjectMemory) {
    let mut scratch = StageTimes::default();
    let cache = CodeCache::disabled();
    let mut session = MachineSession::new();
    let mut ctx = RunCtx { cache: &cache, predecode: false, session: &mut session };
    let run = run_compiled_for_instr_timed(
        target_kind, isa, instr, frame, &mut mem, &mut ctx, &mut scratch,
    );
    (run, mem)
}

/// [`run_compiled_for_instr`] with the campaign's execution context
/// and with the per-stage wall clock split out into `times`. Mutates
/// `mem` in place (see [`run_compiled_sequence_timed`]).
pub fn run_compiled_for_instr_timed(
    target_kind: Option<CompilerKind>,
    isa: Isa,
    instr: InstrUnderTest,
    frame: &igjit_interp::Frame<Oop>,
    mem: &mut ObjectMemory,
    ctx: &mut RunCtx<'_>,
    times: &mut StageTimes,
) -> CompiledRun {
    match instr {
        InstrUnderTest::Bytecode(i) => {
            let arity = i.stack_arity() as usize;
            run_compiled_sequence_timed(
                target_kind.expect("bytecode target needs a compiler kind"),
                isa,
                &[i],
                frame,
                mem,
                arity.saturating_sub(1),
                ctx,
                times,
            )
        }
        InstrUnderTest::Native(id) => {
            match crate::oracle::native_operands(frame, id) {
                Some((receiver, args)) => {
                    run_compiled_native_timed(isa, id, receiver, &args, mem, ctx, times)
                }
                None => CompiledRun::Ran(EngineExit::InvalidFrame),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;
    use igjit_interp::{Frame, MethodInfo};

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn compiled_add_matches_shape() {
        let mem = ObjectMemory::new();
        let mut frame = Frame::new(si(0), MethodInfo::empty());
        frame.stack = vec![si(20), si(22)];
        let (run, _) = run_compiled_bytecode(
            CompilerKind::StackToRegister,
            Isa::X86ish,
            Instruction::Add,
            &frame,
            mem,
            1,
        );
        match run {
            CompiledRun::Ran(EngineExit::Success { stack, .. }) => {
                assert_eq!(stack, vec![si(42)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compiled_native_ffi_refuses() {
        let mem = ObjectMemory::new();
        let (run, _) = run_compiled_native(
            Isa::Arm32ish,
            igjit_interp::NativeMethodId(120),
            si(0),
            &[],
            mem,
        );
        assert!(matches!(run, CompiledRun::Refused(CompileError::NotImplemented(_))));
    }

    #[test]
    fn compiled_native_add_succeeds() {
        let mem = ObjectMemory::new();
        let (run, _) = run_compiled_native(
            Isa::X86ish,
            igjit_interp::NativeMethodId(1),
            si(20),
            &[si(3)],
            mem,
        );
        match run {
            CompiledRun::Ran(EngineExit::Success { result, .. }) => {
                assert_eq!(result, Some(si(23)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predecoded_run_matches_byte_decoded_run() {
        // The same compiled artifact, replayed through one session with
        // predecode off then on, must produce the identical exit.
        let cache = CodeCache::new();
        let mut session = MachineSession::new();
        let mut frame = Frame::new(si(0), MethodInfo::empty());
        frame.stack = vec![si(20), si(22)];
        let mut exits = Vec::new();
        for predecode in [false, true] {
            let mut mem = ObjectMemory::new();
            let mut times = StageTimes::default();
            let mut ctx = RunCtx { cache: &cache, predecode, session: &mut session };
            let run = run_compiled_sequence_timed(
                CompilerKind::StackToRegister,
                Isa::X86ish,
                &[Instruction::Add],
                &frame,
                &mut mem,
                1,
                &mut ctx,
                &mut times,
            );
            match run {
                CompiledRun::Ran(exit) => exits.push(format!("{exit:?}")),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(exits[0], exits[1]);
    }
}
