//! Running the meta-compiled tier (#5) for one explored path.
//!
//! The tier is **total from day one**: when the partial evaluator
//! refuses an (instruction, frame) pair — or the instruction is a
//! native method, which the evaluator does not model — the run falls
//! back to an *interpreter trampoline*: the instruction is interpreted
//! directly on the replay heap, so its side effects land exactly where
//! the comparison looks, and the row stays comparable. Coverage (runs
//! executed as machine code vs. trampolined) is counted per call and
//! reported per campaign run.
//!
//! Meta artifacts are not registered in the [`igjit_jit::CodeCache`]
//! (their key includes the whole embedded frame, which the code
//! cache's compile keys do not model); they live in the
//! campaign-owned [`MetaCache`] instead, and replay byte-decoded —
//! the predecoded-machine-view optimisation is a code-cache feature.

use std::time::Instant;

use igjit_concolic::InstrUnderTest;
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::Frame;
use igjit_jit::{stops, Convention, SPILL_BYTES};
use igjit_machine::{Isa, Machine, MachineConfig, MachineOutcome};
use igjit_metajit::{MetaArtifact, MetaCache};

use crate::campaign::StageTimes;
use crate::compiled::{selector_of, CompiledRun, RunCtx};
use crate::oracle::{run_oracle_on_with, EngineExit};

/// Coverage counters for the meta tier: how many compiled runs the
/// partial evaluator served vs. how many fell back to the trampoline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaRunCounts {
    /// Runs executed as meta-compiled machine code.
    pub compiled: usize,
    /// Runs routed through the interpreter trampoline.
    pub trampolined: usize,
}

impl MetaRunCounts {
    /// Accumulates another sample into this one.
    pub fn merge(&mut self, other: &MetaRunCounts) {
        self.compiled += other.compiled;
        self.trampolined += other.trampolined;
    }
}

/// The meta tier's analogue of
/// [`run_compiled_for_instr_timed`](crate::run_compiled_for_instr_timed):
/// look up (or partially evaluate) the artifact for this (instruction,
/// frame) pair, run it on the simulator, and extract the engine exit —
/// or trampoline through the interpreter on refusal.
///
/// Evaluator+lowering time lands in [`StageTimes::meta_compile`],
/// cache lookups in [`StageTimes::hash`], and trampoline interpretation
/// in [`StageTimes::simulate`] (it substitutes for the simulator run).
#[allow(clippy::too_many_arguments)]
pub fn run_meta_for_instr_timed(
    meta_cache: &MetaCache,
    isa: Isa,
    instr: InstrUnderTest,
    frame: &Frame<Oop>,
    mem: &mut ObjectMemory,
    ctx: &mut RunCtx<'_>,
    times: &mut StageTimes,
    interp_predecode: bool,
    counts: &mut MetaRunCounts,
) -> CompiledRun {
    if let InstrUnderTest::Bytecode(i) = instr {
        let t0 = Instant::now();
        let misses_before = meta_cache.misses();
        let entry = meta_cache.get_or_compile(
            isa,
            i,
            frame,
            mem.nil(),
            mem.true_object(),
            mem.false_object(),
        );
        let elapsed = t0.elapsed();
        if meta_cache.misses() > misses_before {
            times.meta_compile += elapsed;
        } else {
            times.hash += elapsed;
        }
        if let Ok(artifact) = entry.as_ref() {
            counts.compiled += 1;
            return run_meta_artifact(artifact, isa, i, frame, mem, ctx, times);
        }
    }
    // Trampoline: interpret on the replay heap so side effects land
    // where the comparison looks. The exit is the interpreter's own,
    // which by construction agrees with the oracle.
    counts.trampolined += 1;
    let t_sim = Instant::now();
    let mut f = frame.clone();
    let exit = run_oracle_on_with(mem, &mut f, instr, interp_predecode);
    times.simulate += t_sim.elapsed();
    CompiledRun::Ran(exit)
}

/// Convenience one-shot entry point (the meta analogue of
/// [`run_compiled_for_instr`](crate::run_compiled_for_instr)): fresh
/// cache, fresh session, byte-decoded replay. Returns the run, the
/// mutated heap and whether the run compiled or trampolined.
pub fn run_meta_for_instr(
    isa: Isa,
    instr: InstrUnderTest,
    frame: &Frame<Oop>,
    mut mem: ObjectMemory,
    interp_predecode: bool,
) -> (CompiledRun, ObjectMemory, MetaRunCounts) {
    let meta_cache = MetaCache::new();
    let code_cache = igjit_jit::CodeCache::disabled();
    let mut session = igjit_machine::MachineSession::new();
    let mut ctx = RunCtx { cache: &code_cache, predecode: false, session: &mut session };
    let mut times = StageTimes::default();
    let mut counts = MetaRunCounts::default();
    let run = run_meta_for_instr_timed(
        &meta_cache,
        isa,
        instr,
        frame,
        &mut mem,
        &mut ctx,
        &mut times,
        interp_predecode,
        &mut counts,
    );
    (run, mem, counts)
}

/// The machine half, mirroring `run_compiled_sequence_timed`'s setup,
/// run and exit extraction exactly — a meta artifact follows the same
/// §4.2 schema (frame-pointer preamble, temp pushes, spill reserve,
/// breakpoint exit codes) as the hand-written tiers.
fn run_meta_artifact(
    artifact: &MetaArtifact,
    isa: Isa,
    instr: igjit_bytecode::Instruction,
    frame: &Frame<Oop>,
    mem: &mut ObjectMemory,
    ctx: &mut RunCtx<'_>,
    times: &mut StageTimes,
) -> CompiledRun {
    let compiled = &artifact.code;
    let frame_bytes = 4 * compiled.ntemps + SPILL_BYTES;
    let conv = Convention::for_isa(isa);
    let ntemps = compiled.ntemps;
    let send_arity_hint = (instr.stack_arity() as usize).saturating_sub(1);
    let t_setup = Instant::now();
    let mut m = Machine::with_session(mem, isa, &compiled.code, ctx.session);
    m.set_reg(conv.receiver, frame.receiver.0);
    times.setup += t_setup.elapsed();
    let t_sim = Instant::now();
    let outcome = m.run(MachineConfig::default());
    times.simulate += t_sim.elapsed();
    let t_report = Instant::now();
    let exit = match outcome {
        MachineOutcome::Breakpoint { code } if code == stops::FALL_THROUGH => {
            let sp = m.reg(conv.sp);
            let limit = m.initial_sp().wrapping_sub(frame_bytes);
            let mut stack = Vec::new();
            let mut a = sp;
            while a < limit {
                match m.read_stack(a) {
                    Ok(w) => stack.push(Oop(w)),
                    Err(_) => break,
                }
                a += 4;
            }
            stack.reverse();
            let fp = m.reg(conv.fp);
            let temps: Vec<Oop> = (0..ntemps)
                .map(|i| Oop(m.read_stack(fp.wrapping_sub(4 * (i + 1))).unwrap_or(0)))
                .collect();
            EngineExit::Success { stack, temps, result: None }
        }
        MachineOutcome::Breakpoint { .. } => EngineExit::JumpTaken,
        MachineOutcome::ReturnedToCaller => {
            EngineExit::Return { value: Oop(m.reg(conv.receiver)) }
        }
        MachineOutcome::Send { selector_id } => {
            let selector = selector_of(selector_id);
            let receiver = Oop(m.reg(conv.receiver));
            let args: Vec<Oop> = (0..send_arity_hint.min(3))
                .map(|i| Oop(m.reg(conv.arg(i))))
                .collect();
            EngineExit::Send { selector, receiver, args }
        }
        MachineOutcome::MemoryFault { .. } => EngineExit::InvalidMemory,
        MachineOutcome::SimulationError { register } => EngineExit::SimulationError(register),
        MachineOutcome::StepLimit => EngineExit::EngineError("machine step limit".into()),
        MachineOutcome::DecodeFault { pc } => {
            EngineExit::EngineError(format!("decode fault at 0x{pc:08x}"))
        }
    };
    times.report += t_report.elapsed();
    CompiledRun::Ran(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;
    use igjit_interp::{MethodInfo, NativeMethodId};
    use igjit_jit::CodeCache;
    use igjit_machine::MachineSession;

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    fn run_one(instr: InstrUnderTest, frame: &Frame<Oop>) -> (CompiledRun, MetaRunCounts) {
        let cache = MetaCache::new();
        let code_cache = CodeCache::disabled();
        let mut session = MachineSession::new();
        let mut ctx = RunCtx { cache: &code_cache, predecode: false, session: &mut session };
        let mut times = StageTimes::default();
        let mut counts = MetaRunCounts::default();
        let mut mem = ObjectMemory::new();
        let run = run_meta_for_instr_timed(
            &cache,
            Isa::X86ish,
            instr,
            frame,
            &mut mem,
            &mut ctx,
            &mut times,
            false,
            &mut counts,
        );
        (run, counts)
    }

    #[test]
    fn meta_add_compiles_and_folds() {
        let mut frame = Frame::new(si(0), MethodInfo::empty());
        frame.stack = vec![si(20), si(22)];
        let (run, counts) = run_one(InstrUnderTest::Bytecode(Instruction::Add), &frame);
        assert_eq!(counts, MetaRunCounts { compiled: 1, trampolined: 0 });
        match run {
            CompiledRun::Ran(EngineExit::Success { stack, .. }) => {
                assert_eq!(stack, vec![si(42)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn meta_native_trampolines() {
        let frame = Frame::new(si(20), MethodInfo { literals: vec![si(3)], num_args: 1, num_temps: 0 });
        let mut frame = frame;
        frame.temps = vec![si(3)];
        let (run, counts) = run_one(InstrUnderTest::Native(NativeMethodId(1)), &frame);
        assert_eq!(counts, MetaRunCounts { compiled: 0, trampolined: 1 });
        assert!(matches!(run, CompiledRun::Ran(_)));
    }

    #[test]
    fn meta_unsupported_bytecode_trampolines() {
        let frame: Frame<Oop> = Frame::new(si(0), MethodInfo::empty());
        let (run, counts) =
            run_one(InstrUnderTest::Bytecode(Instruction::PushThisContext), &frame);
        assert_eq!(counts, MetaRunCounts { compiled: 0, trampolined: 1 });
        // The trampoline reports the interpreter's own exit for the
        // unsupported opcode — never a refusal.
        assert!(matches!(run, CompiledRun::Ran(_)));
    }
}
