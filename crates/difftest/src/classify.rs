//! Defect classification (§5.3 / Table 3).
//!
//! Many paths fail for one underlying defect; classification assigns a
//! *category* and a *cause key*, and the campaign counts distinct
//! cause keys exactly like the paper counts "91 different causes".

use std::borrow::Cow;

use igjit_bytecode::Instruction;
use igjit_concolic::InstrUnderTest;
use igjit_jit::CompilerKind;

use crate::compare::{Difference, DifferenceKind};

/// The six defect families of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DefectCategory {
    /// A type check exists in the compiled code but not the
    /// interpreter (`primitiveAsFloat`, Listing 5).
    MissingInterpreterTypeCheck,
    /// A type check exists in the interpreter but not the compiled
    /// code (the 13 float primitives).
    MissingCompiledTypeCheck,
    /// An optimisation exists in one engine only (static type
    /// prediction differences).
    OptimisationDifference,
    /// Both engines are defensible but behave differently (bitwise
    /// negatives, `quo:` rounding).
    BehaviouralDifference,
    /// Functionality implemented in the interpreter but absent from
    /// the compiler (the 60 FFI primitives).
    MissingFunctionality,
    /// A defect of the testing/simulation environment itself.
    SimulationError,
}

impl DefectCategory {
    /// All categories, in Table 3's order.
    pub const ALL: [DefectCategory; 6] = [
        DefectCategory::MissingInterpreterTypeCheck,
        DefectCategory::MissingCompiledTypeCheck,
        DefectCategory::OptimisationDifference,
        DefectCategory::BehaviouralDifference,
        DefectCategory::MissingFunctionality,
        DefectCategory::SimulationError,
    ];

    /// Table 3 row label.
    pub fn name(self) -> &'static str {
        match self {
            DefectCategory::MissingInterpreterTypeCheck => "Missing interpreter type check",
            DefectCategory::MissingCompiledTypeCheck => "Missing compiled type check",
            DefectCategory::OptimisationDifference => "Optimisation difference",
            DefectCategory::BehaviouralDifference => "Behavioral difference",
            DefectCategory::MissingFunctionality => "Missing Functionality",
            DefectCategory::SimulationError => "Simulation Error",
        }
    }
}

/// Deduplication key for a defect cause: category + the instruction
/// (family) it afflicts + the compiler tier where relevant.
///
/// Both name fields are [`Cow`]s borrowing the `'static` catalog
/// entries (native-method specs, compiler-tier names) they almost
/// always come from — a campaign classifies thousands of differences
/// onto a few dozen distinct causes, so the keys should not each
/// re-allocate the same names.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CauseKey {
    /// The defect family.
    pub category: DefectCategory,
    /// Instruction identity: native id, or bytecode family name.
    pub instruction: Cow<'static, str>,
    /// Compiler tier (empty for the native-method compiler).
    pub compiler: Cow<'static, str>,
}

/// Classifies one difference into its defect family and cause key.
pub fn classify(
    instr: InstrUnderTest,
    compiler: Option<CompilerKind>,
    diff: &Difference,
) -> CauseKey {
    let category = match (&diff.kind, instr) {
        (DifferenceKind::CompileRefused, _) => DefectCategory::MissingFunctionality,
        (DifferenceKind::SimulationError, _) => DefectCategory::SimulationError,
        (DifferenceKind::EngineError, _) => DefectCategory::SimulationError,
        (_, InstrUnderTest::Native(id)) => match id.0 {
            // primitiveAsFloat: interpreter misses the check.
            40 => DefectCategory::MissingInterpreterTypeCheck,
            // Float primitives: compiled code misses the receiver
            // check (garbage successes and segfaults).
            41..=53 => DefectCategory::MissingCompiledTypeCheck,
            // Bitwise family + quo: defensible-but-different.
            13..=17 => DefectCategory::BehaviouralDifference,
            _ => DefectCategory::BehaviouralDifference,
        },
        (_, InstrUnderTest::Bytecode(i)) => match i {
            // Interpreter inlines paths these tiers send for: the
            // static-type-prediction gap.
            Instruction::Add
            | Instruction::Subtract
            | Instruction::Multiply
            | Instruction::Divide
            | Instruction::Modulo
            | Instruction::IntegerDivide
            | Instruction::LessThan
            | Instruction::GreaterThan
            | Instruction::LessOrEqual
            | Instruction::GreaterOrEqual
            | Instruction::Equal
            | Instruction::NotEqual
            | Instruction::BitAnd
            | Instruction::BitOr
            | Instruction::BitShift
            | Instruction::SpecialSendAt
            | Instruction::SpecialSendAtPut
            | Instruction::SpecialSendSize => DefectCategory::OptimisationDifference,
            _ => DefectCategory::BehaviouralDifference,
        },
    };
    let instruction: Cow<'static, str> = match instr {
        InstrUnderTest::Native(id) => match igjit_interp::native_spec(id) {
            Some(s) => Cow::Borrowed(s.name.as_str()),
            None => Cow::Owned(format!("prim{}", id.0)),
        },
        InstrUnderTest::Bytecode(i) => Cow::Owned(format!("{:?}", i.family())),
    };
    let compiler: Cow<'static, str> = match compiler {
        Some(k) => Cow::Borrowed(k.name()),
        None => Cow::Borrowed(""),
    };
    CauseKey { category, instruction, compiler }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_interp::NativeMethodId;

    fn diff(kind: DifferenceKind) -> Difference {
        Difference { kind, detail: String::new() }
    }

    #[test]
    fn ffi_refusals_are_missing_functionality() {
        let k = classify(
            InstrUnderTest::Native(NativeMethodId(120)),
            None,
            &diff(DifferenceKind::CompileRefused),
        );
        assert_eq!(k.category, DefectCategory::MissingFunctionality);
    }

    #[test]
    fn as_float_is_the_interpreter_defect() {
        let k = classify(
            InstrUnderTest::Native(NativeMethodId(40)),
            None,
            &diff(DifferenceKind::ExitMismatch { interp: "Success".into(), compiled: "Failure".into() }),
        );
        assert_eq!(k.category, DefectCategory::MissingInterpreterTypeCheck);
    }

    #[test]
    fn float_primitives_are_compiled_defects() {
        for id in [41u16, 47, 51] {
            let k = classify(
                InstrUnderTest::Native(NativeMethodId(id)),
                None,
                &diff(DifferenceKind::ExitMismatch { interp: "Failure".into(), compiled: "InvalidMemory".into() }),
            );
            assert_eq!(k.category, DefectCategory::MissingCompiledTypeCheck, "{id}");
        }
    }

    #[test]
    fn simulation_errors_classify_as_such() {
        let k = classify(
            InstrUnderTest::Native(NativeMethodId(52)),
            None,
            &diff(DifferenceKind::SimulationError),
        );
        assert_eq!(k.category, DefectCategory::SimulationError);
    }

    #[test]
    fn arithmetic_bytecode_sends_are_optimisation_differences() {
        let k = classify(
            InstrUnderTest::Bytecode(Instruction::Add),
            Some(CompilerKind::SimpleStackBased),
            &diff(DifferenceKind::ExitMismatch { interp: "Success".into(), compiled: "Send".into() }),
        );
        assert_eq!(k.category, DefectCategory::OptimisationDifference);
        assert!(k.compiler.contains("Simple"));
    }

    #[test]
    fn cause_keys_deduplicate_by_family() {
        let a = classify(
            InstrUnderTest::Bytecode(Instruction::PushTemp(0)),
            Some(CompilerKind::StackToRegister),
            &diff(DifferenceKind::StackMismatch),
        );
        let b = classify(
            InstrUnderTest::Bytecode(Instruction::PushTemp(5)),
            Some(CompilerKind::StackToRegister),
            &diff(DifferenceKind::StackMismatch),
        );
        assert_eq!(a, b, "same family, same tier → one cause");
    }
}
