//! # igjit-difftest — interpreter-guided differential testing
//!
//! Steps 2–4 of the paper's pipeline (Fig. 1): for every execution
//! path the concolic explorer discovered,
//!
//! 1. re-materialize the concrete input VM frame from the path's
//!    model into a fresh heap,
//! 2. run the **interpreter** on it — the oracle,
//! 3. **compile** the instruction with the front-end under test (per
//!    the §4.2 schema) and run the machine code on the simulator,
//! 4. **compare** the observable behaviour: exit condition, operand
//!    stack, temps, result values, message-send payloads, and side
//!    effects on the input object graph,
//! 5. classify any difference into the paper's six defect families
//!    (Table 3).
//!
//! The [`probe_models`] pass adds *kind probing*: for unconstrained
//! input variables it re-solves the path condition under extra kind
//! hypotheses, which is how the `primitiveAsFloat` missing-check
//! (whose interpreter path records **no** receiver constraint) becomes
//! visible to differential testing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod classify;
mod compare;
mod compiled;
mod meta;
mod oracle;
mod sequence;

pub use campaign::{test_instruction, test_instruction_with, CampaignRow, ExploreCost,
                   InstructionOutcome, PathVerdict, SnapshotStats, StageTimes, Target};
pub use classify::{classify, CauseKey, DefectCategory};
pub use compare::{compare_runs, values_equivalent, Difference, DifferenceKind, Verdict};
pub use compiled::{run_compiled_bytecode, run_compiled_for_instr, run_compiled_for_instr_timed,
                   run_compiled_native, run_compiled_native_timed, run_compiled_sequence,
                   run_compiled_sequence_timed, CompiledRun};
pub use meta::{run_meta_for_instr, run_meta_for_instr_timed, MetaRunCounts};
pub use oracle::{concrete_frame, run_oracle, run_oracle_on, run_oracle_on_with, run_oracle_with,
                 EngineExit, OracleRun, SelectorId};
pub use igjit_concolic::{probe_models, probe_models_with_stats};
pub use sequence::{minimal_sequence_for_path, run_oracle_sequence, run_oracle_sequence_with,
                   test_sequence, SequenceOutcome};

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
