//! Differential testing of bytecode **sequences** — the paper's
//! stated future work ("generate minimal and relevant byte-code
//! sequences for unit testing the JIT compiler"), implemented.
//!
//! A sequence test chains several instructions in one compiled
//! method: fast-path results of one instruction flow into the next
//! through the parse-time stack, which is exactly the interaction the
//! single-instruction schema cannot exercise (§4.2 notes the
//! StackToRegister tier only emits stack accesses when a *consumer*
//! shows up — a sequence provides real consumers).
//!
//! The module also derives *minimal relevant sequences* from explored
//! paths: the materialized operands of a path become real push
//! bytecodes, yielding a self-contained test method.

use igjit_bytecode::Instruction;
use igjit_concolic::{materialize_frame, AbstractState, Explorer, InstrUnderTest};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{resolve_sequence, step, ConcreteContext, Frame, Selector, StepOutcome};
use igjit_jit::CompilerKind;
use igjit_machine::Isa;
use igjit_solver::Model;

use crate::campaign::PathVerdict;
use crate::classify::classify;
use crate::compare::{compare_runs, Verdict};
use crate::compiled::run_compiled_sequence;
use crate::oracle::{concrete_frame, EngineExit, SelectorId};

/// Result of differentially testing one sequence.
#[derive(Clone, Debug)]
pub struct SequenceOutcome {
    /// The instruction sequence.
    pub instructions: Vec<Instruction>,
    /// Paths the sequence exploration discovered.
    pub paths_found: usize,
    /// Paths surviving curation.
    pub curated: usize,
    /// One verdict per curated path.
    pub verdicts: Vec<PathVerdict>,
}

impl SequenceOutcome {
    /// Number of differing paths.
    pub fn difference_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.verdict.is_difference()).count()
    }
}

/// The concrete interpreter oracle for a sequence: step instructions
/// until an exit, running off the end is success. Runs through the
/// predecoded pipeline; see [`run_oracle_sequence_with`] for the knob.
pub fn run_oracle_sequence(
    state: &AbstractState,
    model: &Model,
    instrs: &[Instruction],
) -> (EngineExit, ObjectMemory, Frame<Oop>) {
    run_oracle_sequence_with(state, model, instrs, true)
}

/// [`run_oracle_sequence`] with explicit control over the interpreter
/// pipeline (engine v8, `IGJIT_INTERP_PREDECODE`): with
/// `interp_predecode` on, the sequence's step functions are resolved
/// once up front ([`resolve_sequence`]) and executed against a single
/// hoisted [`ConcreteContext`], instead of a per-step dispatch match
/// and a per-step context construction. Both modes produce identical
/// exits, heaps and frames — the resolved functions *are* what
/// [`step`] dispatches to.
pub fn run_oracle_sequence_with(
    state: &AbstractState,
    model: &Model,
    instrs: &[Instruction],
    interp_predecode: bool,
) -> (EngineExit, ObjectMemory, Frame<Oop>) {
    let mut st = state.clone();
    let mut mem = ObjectMemory::new();
    let mat = materialize_frame(&mut st, model, &mut mem);
    let input_frame = concrete_frame(&mat.frame);
    let mut frame = input_frame.clone();
    let mut early_exit = None;
    {
        let fns = interp_predecode.then(|| resolve_sequence(instrs));
        let mut ctx = ConcreteContext::new(&mut mem);
        for (k, &instr) in instrs.iter().enumerate() {
            let outcome = match &fns {
                Some(fns) => (fns[k])(&mut ctx, &mut frame, instr),
                None => step(&mut ctx, &mut frame, instr),
            };
            let exit = match outcome {
                StepOutcome::Continue => continue,
                StepOutcome::Jump { .. } => EngineExit::JumpTaken,
                StepOutcome::MethodReturn { value } => EngineExit::Return { value },
                StepOutcome::MessageSend { selector, receiver, args } => {
                    let selector = match selector {
                        Selector::Special(s) => SelectorId::Special(s),
                        Selector::MustBeBoolean => SelectorId::MustBeBoolean,
                        Selector::Literal(v) => SelectorId::Literal(v),
                    };
                    EngineExit::Send { selector, receiver, args }
                }
                StepOutcome::InvalidFrame => EngineExit::InvalidFrame,
                StepOutcome::InvalidMemoryAccess => EngineExit::InvalidMemory,
                StepOutcome::Unsupported { reason } => EngineExit::EngineError(reason.into()),
            };
            early_exit = Some(exit);
            break;
        }
    }
    let exit = early_exit.unwrap_or_else(|| EngineExit::Success {
        stack: frame.stack.clone(),
        temps: frame.temps.clone(),
        result: None,
    });
    (exit, mem, input_frame)
}

/// Finds the sequence instruction a divergent compiled send points
/// at: when the compiled code bailed to a send the interpreter inlined
/// past, the sent *selector* names the diverging instruction.
fn diverging_instruction(
    instrs: &[Instruction],
    compiled: &crate::compiled::CompiledRun,
) -> Option<Instruction> {
    let crate::compiled::CompiledRun::Ran(EngineExit::Send {
        selector: SelectorId::Special(sel),
        ..
    }) = compiled
    else {
        return None;
    };
    instrs.iter().copied().find(|i| i.special_selector() == Some(*sel))
}

/// Differentially tests a bytecode sequence against one tier.
pub fn test_sequence(
    instrs: &[Instruction],
    kind: CompilerKind,
    isas: &[Isa],
) -> SequenceOutcome {
    // An empty sequence has no instruction under test; report the
    // trivially empty outcome instead of panicking deep in the engine.
    let Some(&last) = instrs.last() else {
        return SequenceOutcome {
            instructions: Vec::new(),
            paths_found: 0,
            curated: 0,
            verdicts: Vec::new(),
        };
    };
    let exploration = Explorer::new()
        .explore_sequence(instrs)
        .expect("sequence checked non-empty above");
    let curated: Vec<_> = exploration.curated_paths().into_iter().cloned().collect();
    let mut verdicts = Vec::new();
    let tag = InstrUnderTest::Bytecode(last);

    for path in &curated {
        let mut verdict = Verdict::Agree;
        let mut cause = None;
        let mut on_isa = None;
        let (interp_exit, interp_mem, _input) =
            run_oracle_sequence(&exploration.state, &path.model, instrs);
        if interp_exit.is_testable() {
            'isas: for &isa in isas {
                let mut st = exploration.state.clone();
                let mut mem2 = ObjectMemory::new();
                let mat = materialize_frame(&mut st, &path.model, &mut mem2);
                let frame2 = concrete_frame(&mat.frame);
                let arity = instrs.iter().map(|i| i.stack_arity() as usize).max().unwrap_or(0);
                let (compiled, compiled_mem) = run_compiled_sequence(
                    kind,
                    isa,
                    instrs,
                    &frame2,
                    mem2,
                    arity.saturating_sub(1),
                );
                let v = compare_runs(
                    &interp_exit,
                    &interp_mem,
                    &compiled,
                    &compiled_mem,
                    &mat.var_oops,
                );
                if let Verdict::Difference(d) = v {
                    // Attribute the cause to the instruction whose
                    // fast path diverged, not the sequence tail.
                    let culprit = diverging_instruction(instrs, &compiled)
                        .map(InstrUnderTest::Bytecode)
                        .unwrap_or(tag);
                    cause = Some(classify(culprit, Some(kind), &d));
                    verdict = Verdict::Difference(d);
                    on_isa = Some(isa);
                    break 'isas;
                }
            }
        }
        let all_causes = cause.clone().into_iter().collect();
        verdicts.push(PathVerdict {
            instruction: tag,
            interp_exit: String::new(),
            verdict,
            cause,
            all_causes,
            found_by_probe: false,
            isa: on_isa,
        });
    }

    SequenceOutcome {
        instructions: instrs.to_vec(),
        paths_found: exploration.paths.len(),
        curated: curated.len(),
        verdicts,
    }
}

/// Derives a *minimal relevant sequence* from one explored
/// single-instruction path: the materialized operand-stack values
/// become real push bytecodes in front of the instruction.
///
/// Answers `None` when an operand cannot be expressed as a push
/// bytecode (non-trivial heap objects need the literal frame, which a
/// standalone sequence does not carry).
pub fn minimal_sequence_for_path(
    state: &AbstractState,
    model: &Model,
    instr: Instruction,
) -> Option<Vec<Instruction>> {
    let stack_size = model.int_value(state.stack_size).clamp(0, 8) as usize;
    let mut seq = Vec::with_capacity(stack_size + 1);
    // Deepest first.
    for d in (0..stack_size).rev() {
        let var = *state.stack_vars.get(d)?;
        let a = model.assignment(var);
        let push = match a.kind {
            igjit_solver::Kind::SmallInt => {
                let v = a.int.clamp(igjit_heap::SMALL_INT_MIN, igjit_heap::SMALL_INT_MAX);
                match v {
                    0 => Instruction::PushZero,
                    1 => Instruction::PushOne,
                    -1 => Instruction::PushMinusOne,
                    2 => Instruction::PushTwo,
                    v if (-128..=127).contains(&v) => Instruction::PushInteger(v as i8),
                    _ => return None, // would need a literal slot
                }
            }
            igjit_solver::Kind::Nil => Instruction::PushNil,
            igjit_solver::Kind::True => Instruction::PushTrue,
            igjit_solver::Kind::False => Instruction::PushFalse,
            _ => return None,
        };
        seq.push(push);
    }
    seq.push(instr);
    Some(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

    #[test]
    fn empty_sequence_yields_empty_outcome() {
        let o = test_sequence(&[], CompilerKind::StackToRegister, &BOTH);
        assert_eq!(o.paths_found, 0);
        assert_eq!(o.curated, 0);
        assert!(o.verdicts.is_empty());
        assert_eq!(o.difference_count(), 0);
    }

    #[test]
    fn constant_sequences_agree_on_inlining_tiers() {
        for kind in [CompilerKind::StackToRegister, CompilerKind::RegisterAllocating] {
            let o = test_sequence(
                &[
                    Instruction::PushTwo,
                    Instruction::PushInteger(40),
                    Instruction::Add,
                    Instruction::Dup,
                    Instruction::Pop,
                ],
                kind,
                &BOTH,
            );
            assert!(o.paths_found >= 1);
            assert_eq!(o.difference_count(), 0, "{kind:?}: {:?}", o.verdicts);
        }
    }

    #[test]
    fn constant_arith_sequence_exposes_simple_tier_gap() {
        // The same sequence on the Simple tier diverges: its Add
        // always sends, the interpreter's does not — the optimisation
        // difference shows up in sequences too.
        let o = test_sequence(
            &[Instruction::PushTwo, Instruction::PushInteger(40), Instruction::Add],
            CompilerKind::SimpleStackBased,
            &BOTH,
        );
        assert_eq!(o.difference_count(), 1, "{:?}", o.verdicts);
    }

    #[test]
    fn pure_stack_sequences_agree_on_every_tier() {
        for kind in CompilerKind::ALL {
            let o = test_sequence(
                &[
                    Instruction::PushTwo,
                    Instruction::Dup,
                    Instruction::PushTrue,
                    Instruction::Pop,
                    Instruction::Pop,
                ],
                kind,
                &BOTH,
            );
            assert_eq!(o.difference_count(), 0, "{kind:?}: {:?}", o.verdicts);
        }
    }

    #[test]
    fn chained_arith_flows_through_the_parse_time_stack() {
        // Two adds back to back: the first result is consumed by the
        // second without touching the machine stack on the register
        // tiers — and the engines still agree on the integer paths.
        let o = test_sequence(
            &[Instruction::Add, Instruction::Add],
            CompilerKind::StackToRegister,
            &BOTH,
        );
        assert!(o.paths_found >= 4);
        for v in &o.verdicts {
            if let Verdict::Difference(_) = v.verdict {
                // Only the float-optimisation gap may show up.
                assert_eq!(
                    v.cause.as_ref().unwrap().category,
                    crate::DefectCategory::OptimisationDifference,
                    "{v:?}"
                );
            }
        }
    }

    #[test]
    fn sequences_with_stores_and_jumps_agree() {
        let o = test_sequence(
            &[
                Instruction::PushOne,
                Instruction::PopIntoTemp(0),
                Instruction::PushTemp(0),
                Instruction::PushTrue,
                Instruction::ShortJumpFalse(4),
                Instruction::Pop,
            ],
            CompilerKind::StackToRegister,
            &BOTH,
        );
        assert_eq!(o.difference_count(), 0, "{:?}", o.verdicts);
    }

    #[test]
    fn minimal_sequences_replay_their_paths() {
        // Derive a standalone sequence from each int-only Add path and
        // check the derived sequence tests clean.
        let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
        let mut derived = 0;
        for p in r.curated_paths() {
            if let Some(seq) =
                minimal_sequence_for_path(&r.state, &p.model, Instruction::Add)
            {
                derived += 1;
                let o = test_sequence(&seq, CompilerKind::RegisterAllocating, &[Isa::X86ish]);
                // The derived sequence may re-expose the known
                // float-path optimisation gap (its exploration covers
                // all of Add's branches again), but nothing else.
                for v in &o.verdicts {
                    if let Verdict::Difference(_) = v.verdict {
                        assert_eq!(
                            v.cause.as_ref().unwrap().category,
                            crate::DefectCategory::OptimisationDifference,
                            "derived {seq:?}: {v:?}"
                        );
                    }
                }
            }
        }
        assert!(derived >= 1, "at least the int paths derive");
    }
}
