//! The per-instruction differential campaign.

use std::time::{Duration, Instant};

use igjit_concolic::{
    materialize_frame, AbstractState, CurationReason, ExplorationResult, Explorer, InstrUnderTest,
};
use igjit_heap::fxhash::FxHashMap;
use igjit_heap::{ObjectMemory, Oop, Snapshot};
use igjit_interp::Frame;
use igjit_jit::{CodeCache, CompilerKind};
use igjit_machine::Isa;
use igjit_solver::{Model, SessionStats, TrailStats, VarId};

use crate::classify::{classify, CauseKey};
use crate::compare::{compare_runs, Difference, Verdict};
use crate::compiled::{run_compiled_for_instr_timed, RunCtx};
use crate::meta::{run_meta_for_instr_timed, MetaRunCounts};
use igjit_metajit::MetaCache;
use crate::oracle::{concrete_frame, run_oracle_on_with, run_oracle_with, EngineExit};
use igjit_concolic::probe_models_with_stats;

/// What compiler the campaign tests against the interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    /// The template-based native-method compiler.
    NativeMethods,
    /// One of the three bytecode tiers.
    Bytecode(CompilerKind),
    /// The meta-compiled tier (#5): bytecodes compiled by partially
    /// evaluating the interpreter's own step functions
    /// (`igjit-metajit`), with an interpreter trampoline for whatever
    /// the evaluator refuses.
    MetaCompiled,
}

impl Target {
    /// The Table 2 row label.
    pub fn label(self) -> &'static str {
        match self {
            Target::NativeMethods => "Native Methods (primitives)",
            Target::Bytecode(k) => k.name(),
            Target::MetaCompiled => "Meta-Compiled (tier 5)",
        }
    }

    fn compiler_kind(self) -> Option<CompilerKind> {
        match self {
            Target::NativeMethods | Target::MetaCompiled => None,
            Target::Bytecode(k) => Some(k),
        }
    }
}

/// The verdict for one explored path (aggregated over ISAs + probes).
#[derive(Clone, Debug)]
pub struct PathVerdict {
    /// The instruction.
    pub instruction: InstrUnderTest,
    /// Interpreter exit of the base model's run.
    pub interp_exit: String,
    /// The comparison verdict (the first difference found is kept for
    /// display).
    pub verdict: Verdict,
    /// Defect cause of the first difference, when different.
    pub cause: Option<CauseKey>,
    /// All distinct defect causes observed across ISAs and probe
    /// variants of this path (a path can expose several defects —
    /// e.g. a missing compiled type check *and* a simulation error).
    pub all_causes: Vec<CauseKey>,
    /// Whether the difference surfaced only under a probe model.
    pub found_by_probe: bool,
    /// ISA on which the difference was (first) observed.
    pub isa: Option<Isa>,
}

/// Everything the campaign learned about one instruction.
#[derive(Clone, Debug)]
pub struct InstructionOutcome {
    /// The instruction.
    pub instruction: InstrUnderTest,
    /// Paths the concolic exploration discovered.
    pub paths_found: usize,
    /// Paths surviving curation (§5.2).
    pub curated: usize,
    /// Curation records (why paths/prefixes were excluded).
    pub curated_out: Vec<CurationReason>,
    /// One verdict per curated path.
    pub verdicts: Vec<PathVerdict>,
    /// Solver/exploration iterations spent (for Fig. 6-style stats).
    pub explore_iterations: usize,
    /// Models whose materialization produced an unrealizable witness
    /// (reported as test errors; their runs are skipped, not
    /// compared).
    pub witness_errors: usize,
    /// Models whose oracle run (materialization or interpretation)
    /// panicked. A crashing interpreter path is a test error worth
    /// surfacing, not a quietly skipped model.
    pub oracle_panics: usize,
    /// Seal/restore accounting of the copy-on-write heap replay (all
    /// zero when the snapshot layer is disabled).
    pub snapshot: SnapshotStats,
    /// Runs executed as meta-compiled machine code (always zero for
    /// targets other than [`Target::MetaCompiled`]).
    pub meta_compiled_runs: usize,
    /// Runs the meta tier routed through the interpreter trampoline.
    pub meta_trampolines: usize,
}

/// Seal/restore accounting for the copy-on-write heap replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Base images sealed — one per materialized (path, model).
    pub seals: u64,
    /// Rollbacks of a sealed base between engine runs.
    pub restores: u64,
    /// Total dirty units (heap words + external bytes) undone across
    /// all restores.
    pub dirty_words: u64,
    /// Histogram of dirty units per restore, bucketed by powers of 4:
    /// 0, 1–3, 4–15, 16–63, 64–255, 256–1023, 1024–4095, ≥4096.
    pub dirty_hist: [u64; 8],
}

impl SnapshotStats {
    /// Folds one restore's dirty count in.
    pub fn record_restore(&mut self, dirty: usize) {
        self.restores += 1;
        self.dirty_words += dirty as u64;
        let mut bucket = 0usize;
        let mut d = dirty;
        while d > 0 && bucket < 7 {
            d >>= 2;
            bucket += 1;
        }
        self.dirty_hist[bucket] += 1;
    }

    /// Accumulates another sample into this one.
    pub fn merge(&mut self, other: &SnapshotStats) {
        self.seals += other.seals;
        self.restores += other.restores;
        self.dirty_words += other.dirty_words;
        for (a, b) in self.dirty_hist.iter_mut().zip(other.dirty_hist.iter()) {
            *a += *b;
        }
    }
}

impl InstructionOutcome {
    /// Number of differing paths.
    pub fn difference_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.verdict.is_difference()).count()
    }

    /// Distinct defect causes among the differences.
    pub fn causes(&self) -> Vec<CauseKey> {
        let mut keys: Vec<CauseKey> =
            self.verdicts.iter().flat_map(|v| v.all_causes.iter().cloned()).collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// One row of Table 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CampaignRow {
    /// Row label (compiler name).
    pub label: String,
    /// Number of tested instructions.
    pub tested_instructions: usize,
    /// Paths found by concolic exploration.
    pub interpreter_paths: usize,
    /// Paths surviving curation.
    pub curated_paths: usize,
    /// Paths showing differences.
    pub differences: usize,
    /// Meta-tier runs executed as machine code (zero on other rows).
    pub meta_compiled_runs: usize,
    /// Meta-tier runs that fell back to the interpreter trampoline.
    pub meta_trampolines: usize,
    /// Instructions every one of whose runs was meta-compiled (the
    /// coverage numerator; `tested_instructions` is the denominator).
    pub meta_full_instructions: usize,
}

impl CampaignRow {
    /// Percentage of curated paths that differ (Table 2's last
    /// column).
    pub fn difference_percent(&self) -> f64 {
        if self.curated_paths == 0 {
            0.0
        } else {
            100.0 * self.differences as f64 / self.curated_paths as f64
        }
    }

    /// Folds one instruction's outcome into the row.
    pub fn absorb(&mut self, outcome: &InstructionOutcome) {
        self.tested_instructions += 1;
        self.interpreter_paths += outcome.paths_found;
        self.curated_paths += outcome.curated;
        self.differences += outcome.difference_count();
        self.meta_compiled_runs += outcome.meta_compiled_runs;
        self.meta_trampolines += outcome.meta_trampolines;
        if outcome.meta_compiled_runs > 0 && outcome.meta_trampolines == 0 {
            self.meta_full_instructions += 1;
        }
    }

    /// Fraction of tested instructions the meta tier compiled on every
    /// run (0 when the row tested nothing or is not the meta row).
    pub fn meta_coverage(&self) -> f64 {
        if self.tested_instructions == 0 {
            0.0
        } else {
            self.meta_full_instructions as f64 / self.tested_instructions as f64
        }
    }
}

/// Wall-clock spent in each stage of the differential pipeline for
/// one instruction (the observability layer's unit of account).
///
/// Stage boundaries:
/// - `explore`: concolic exploration plus kind-probe model solving.
///   Zero when the exploration came from a cache.
/// - `materialize`: model-to-heap materialization *and* the concrete
///   interpreter oracle run it feeds (they share one traversal).
/// - `compile`: JIT front-end + back-end time for the target tier.
/// - `simulate`: machine-simulator execution of the compiled code
///   (the run loop only — construction and exit extraction are
///   attributed to `setup`/`report`).
/// - `compare`: behavioural comparison and defect classification.
///
/// Engine v5 split the formerly-opaque `other` bucket into named
/// sub-buckets so residual overhead is measured, not asserted:
/// - `setup`: simulator construction per run — session reset (dirty
///   stack extent + registers) and convention-register seeding.
/// - `decode`: one-time predecoding of cached artifacts (zero when
///   predecode is off or the artifact's view already exists).
/// - `hash`: compile-key construction and cache lookup (the cache's
///   hot path), minus any compile time spent inside a miss.
/// - `report`: engine-exit extraction and verdict/outcome assembly.
/// - `progress`: the driver's per-instruction progress callback
///   (stderr write + flush when a reporter is installed).
/// - `other`: the residual — whatever the named stages still don't
///   cover. Attributed by the driver as elapsed-minus-stages so the
///   stage sum accounts for the whole wall clock instead of silently
///   dropping driver overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Concolic exploration + probe-model solving.
    pub explore: Duration,
    /// Materialization + interpreter-oracle execution + base-image
    /// snapshot restores.
    pub materialize: Duration,
    /// JIT compilation.
    pub compile: Duration,
    /// Partial evaluation + lowering in the meta-compiled tier
    /// (engine v9; zero on every other target).
    pub meta_compile: Duration,
    /// Machine simulation of compiled code.
    pub simulate: Duration,
    /// Comparison + classification.
    pub compare: Duration,
    /// Machine construction + register/frame seeding per run.
    pub setup: Duration,
    /// One-time predecode of cached artifacts.
    pub decode: Duration,
    /// Compile-key construction + cache lookup.
    pub hash: Duration,
    /// Engine-exit extraction + verdict assembly.
    pub report: Duration,
    /// Per-instruction progress reporting (the driver's callback,
    /// typically a stderr write + flush).
    pub progress: Duration,
    /// Driver overhead outside the named stages.
    pub other: Duration,
    /// **Sub-slice of `explore`** (engine v8): frame materialization +
    /// concrete execution inside the negation walk. Not part of
    /// [`StageTimes::total`] — it re-counts time already in `explore`,
    /// attributed separately so the stage table shows where the walk's
    /// wall clock goes.
    pub walk_run: Duration,
    /// **Sub-slice of `explore`** (engine v8): kind-probe hypothesis
    /// solving (the batched per-path session sweep). Like `walk_run`,
    /// excluded from [`StageTimes::total`].
    pub probe_solve: Duration,
}

impl StageTimes {
    /// Sum over all stages. The `walk_run`/`probe_solve` sub-slices
    /// are *not* added — their time is already inside `explore`.
    pub fn total(&self) -> Duration {
        self.explore
            + self.materialize
            + self.compile
            + self.meta_compile
            + self.simulate
            + self.compare
            + self.setup
            + self.decode
            + self.hash
            + self.report
            + self.progress
            + self.other
    }

    /// Accumulates another sample into this one.
    pub fn merge(&mut self, other: &StageTimes) {
        self.explore += other.explore;
        self.materialize += other.materialize;
        self.compile += other.compile;
        self.meta_compile += other.meta_compile;
        self.simulate += other.simulate;
        self.compare += other.compare;
        self.setup += other.setup;
        self.decode += other.decode;
        self.hash += other.hash;
        self.report += other.report;
        self.progress += other.progress;
        self.other += other.other;
        self.walk_run += other.walk_run;
        self.probe_solve += other.probe_solve;
    }

    /// Keeps the per-stage maximum of the two samples. Folding each
    /// worker's self-time sum with this yields the per-stage critical
    /// path of a parallel batch (what the wall clock actually waits
    /// on), as opposed to [`StageTimes::merge`]'s CPU-side total.
    pub fn merge_max(&mut self, other: &StageTimes) {
        self.explore = self.explore.max(other.explore);
        self.materialize = self.materialize.max(other.materialize);
        self.compile = self.compile.max(other.compile);
        self.meta_compile = self.meta_compile.max(other.meta_compile);
        self.simulate = self.simulate.max(other.simulate);
        self.compare = self.compare.max(other.compare);
        self.setup = self.setup.max(other.setup);
        self.decode = self.decode.max(other.decode);
        self.hash = self.hash.max(other.hash);
        self.report = self.report.max(other.report);
        self.progress = self.progress.max(other.progress);
        self.other = self.other.max(other.other);
        self.walk_run = self.walk_run.max(other.walk_run);
        self.probe_solve = self.probe_solve.max(other.probe_solve);
    }
}

/// Wall-clock attribution of the exploration handed to
/// [`test_instruction_with`]: the total the caller spent producing it
/// (zero on a cache hit) plus the instrumented sub-slices the engine
/// reported ([`ExplorationResult::walk_run`] /
/// [`ExplorationResult::probe_solve`] — also zero on a hit, since a
/// shared entry's work is charged exactly once, by the miss).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreCost {
    /// Wall-clock spent producing the exploration.
    pub total: Duration,
    /// Of `total`, the negation walk's materialize + concrete-run time.
    pub walk_run: Duration,
    /// Of `total`, the kind-probe hypothesis solving time.
    pub probe_solve: Duration,
}

impl ExploreCost {
    /// The cost of an exploration served from a cache: zero all round.
    pub fn cached() -> ExploreCost {
        ExploreCost::default()
    }
}

fn materialized(
    state: &AbstractState,
    model: &Model,
) -> (ObjectMemory, Frame<Oop>, FxHashMap<VarId, Oop>) {
    let mut st = state.clone();
    let mut mem = ObjectMemory::new();
    let mat = materialize_frame(&mut st, model, &mut mem);
    let frame = concrete_frame(&mat.frame);
    (mem, frame, mat.var_oops)
}

/// The snapshot path's pair of recycled heaps, persisting across all
/// (path, model) iterations of one `test_instruction_with` call.
///
/// Both heaps are born blank and sealed; determinism of
/// `materialize_frame` from identical blank states guarantees the two
/// materializations of a model produce bit-identical addresses, so the
/// oracle's `var_oops` apply to the replay heap unchanged (spot-checked
/// by a `debug_assert` on the input frames).
struct ReplayArena {
    /// Runs the interpreter oracle: materialized and executed in
    /// place, then rolled back to blank for the next model.
    oracle: ObjectMemory,
    oracle_blank: Snapshot,
    oracle_used: bool,
    /// Runs the compiled code: blank outer seal + per-model inner seal,
    /// restored to the inner between ISAs and to blank between models.
    replay: ObjectMemory,
    replay_blank: Snapshot,
    replay_used: bool,
}

fn exit_label(e: &EngineExit) -> String {
    match e {
        EngineExit::Success { .. } => "Success".into(),
        EngineExit::JumpTaken => "Success".into(),
        EngineExit::Failure => "Failure".into(),
        EngineExit::Return { .. } => "MethodReturn".into(),
        EngineExit::Send { .. } => "MessageSend".into(),
        EngineExit::InvalidFrame => "InvalidFrame".into(),
        EngineExit::InvalidMemory => "InvalidMemoryAccess".into(),
        EngineExit::SimulationError(_) => "SimulationError".into(),
        EngineExit::EngineError(_) => "EngineError".into(),
    }
}

/// Runs the full differential pipeline for one instruction: concolic
/// exploration, curation, (optional) kind probing, and a compiled run
/// per ISA per model, compared against the interpreter oracle.
///
/// Explores from scratch on every call. The campaign driver avoids
/// that via [`test_instruction_with`] and a shared
/// [`igjit_concolic::ExplorationCache`].
pub fn test_instruction(
    instr: InstrUnderTest,
    target: Target,
    isas: &[Isa],
    enable_probes: bool,
) -> InstructionOutcome {
    let t0 = Instant::now();
    let exploration = Explorer::new().explore(instr);
    let explore_cost = ExploreCost {
        total: t0.elapsed(),
        walk_run: exploration.walk_run,
        probe_solve: exploration.probe_solve,
    };
    let cache = CodeCache::disabled();
    let meta_cache = MetaCache::new();
    let (outcome, _times, _solver, _trail) = test_instruction_with(
        instr,
        target,
        isas,
        enable_probes,
        &exploration,
        explore_cost,
        &cache,
        &meta_cache,
        true,
        true,
        true,
        true,
    );
    outcome
}

thread_local! {
    /// Simulator session reused across `test_instruction_with` calls on
    /// this thread. `Machine::with_session` resets registers and the
    /// dirty stack extent before every run, so reuse is outcome-neutral;
    /// a panic mid-call merely drops the slot and the next call
    /// allocates a fresh session.
    static REUSED_SESSION: std::cell::Cell<Option<igjit_machine::MachineSession>> =
        const { std::cell::Cell::new(None) };
}

/// Runs the differential pipeline against an exploration produced (and
/// possibly shared) by the caller, returning per-stage wall-clock and
/// the probe solver's work counters next to the outcome.
///
/// `explore_cost` is the wall-clock the caller spent producing
/// `exploration` (total plus the engine's instrumented sub-slices) —
/// pass [`ExploreCost::cached`] when it came from a cache so the stage
/// accounting reflects work actually done for this call.
/// Compiled artifacts are looked up in `code_cache`, which the caller
/// may share across instructions and threads.
///
/// With `heap_snapshot` on, the call keeps one replay arena — two
/// heaps allocated once and recycled across every (path, model): the
/// *oracle* heap is sealed at its blank image, materialized and
/// interpreted in place, and rolled back to blank for the next model;
/// the *replay* heap carries a blank outer seal plus a per-model inner
/// seal ([`ObjectMemory::push_seal`]) so compiled runs rewind to the
/// materialized image between ISAs and to blank between models. Every
/// reset is `restore` — O(words the run dirtied) — so neither
/// `ObjectMemory::new()` nor full object reconstruction happens more
/// than twice per model. Off, the legacy rebuild-per-ISA path runs;
/// both paths produce identical outcomes.
///
/// With `predecode` on, every compiled artifact carries a
/// [`igjit_machine::PredecodedCode`] view built once per cache entry,
/// and all models of all paths replay through one persistent
/// [`igjit_machine::MachineSession`] — registers and the dirty stack
/// extent are reset
/// between runs instead of reallocating the simulator. Off, the
/// byte-level decoder runs per step (the oracle path); both modes
/// produce identical outcomes (`tests/predecode_identity.rs`).
///
/// `interp_predecode` is the interpreter-side analogue (engine v8,
/// `IGJIT_INTERP_PREDECODE`): with it on, oracle runs execute through
/// the per-catalog-entry cached [`igjit_interp::PredecodedProgram`]
/// view of the instruction instead of ad-hoc dispatch. Both modes
/// produce byte-identical rows (`tests/engine_v8_identity.rs`).
#[allow(clippy::too_many_arguments)]
pub fn test_instruction_with(
    instr: InstrUnderTest,
    target: Target,
    isas: &[Isa],
    enable_probes: bool,
    exploration: &ExplorationResult,
    explore_cost: ExploreCost,
    code_cache: &CodeCache,
    meta_cache: &MetaCache,
    heap_snapshot: bool,
    predecode: bool,
    interp_predecode: bool,
    solver_trail: bool,
) -> (InstructionOutcome, StageTimes, SessionStats, TrailStats) {
    let mut times = StageTimes {
        explore: explore_cost.total,
        walk_run: explore_cost.walk_run,
        probe_solve: explore_cost.probe_solve,
        ..StageTimes::default()
    };
    let mut solver = SessionStats::default();
    let mut trail = TrailStats::default();
    let curated = exploration.curated_paths();
    let mut verdicts = Vec::new();
    let mut witness_errors = 0usize;
    let mut oracle_panics = 0usize;
    let mut snapshot_stats = SnapshotStats::default();
    let mut meta_counts = MetaRunCounts::default();
    let mut arena: Option<ReplayArena> = None;
    let mut session = REUSED_SESSION.with(|slot| slot.take()).unwrap_or_default();
    let mut ctx = RunCtx { cache: code_cache, predecode, session: &mut session };

    for (pi, path) in curated.iter().enumerate() {
        let t_probe = Instant::now();
        let mut probes_solved_here = false;
        let models: std::borrow::Cow<'_, [Model]> = if !enable_probes {
            std::borrow::Cow::Borrowed(std::slice::from_ref(&path.model))
        } else if let Some(precomputed) = exploration.probe_models.get(pi) {
            // The exploration cache precomputed probing for every
            // curated path (same order as `curated`); its solver work
            // is already in `exploration.solver`.
            std::borrow::Cow::Borrowed(precomputed.as_slice())
        } else {
            let (models, probe_stats, probe_trail) = probe_models_with_stats(
                &exploration.state,
                path,
                igjit_concolic::DEFAULT_MAX_PROBES,
                solver_trail,
            );
            solver.merge(&probe_stats);
            trail.merge(&probe_trail);
            probes_solved_here = true;
            std::borrow::Cow::Owned(models)
        };
        let probe_elapsed = t_probe.elapsed();
        times.explore += probe_elapsed;
        if probes_solved_here {
            times.probe_solve += probe_elapsed;
        }
        let mut verdict: Verdict = Verdict::Agree;
        let mut cause = None;
        let mut all_causes: Vec<CauseKey> = Vec::new();
        let mut found_by_probe = false;
        let mut on_isa = None;
        let mut base_exit_label = String::new();

        'models: for (mi, model) in models.iter().enumerate() {
            // Snapshot path: the oracle runs in place on the arena's
            // oracle heap; compiled runs replay the arena's replay heap
            // against the per-model inner seal recorded here. Legacy
            // path: a fresh oracle materialization owned by this
            // iteration.
            let mut replay_snap: Option<Snapshot> = None;
            let mut legacy_mem: Option<ObjectMemory> = None;
            let (interp_exit, input_frame, var_oops);
            if heap_snapshot {
                let t_mat = Instant::now();
                let a = arena.get_or_insert_with(|| {
                    let mut oracle = ObjectMemory::new();
                    let oracle_blank = oracle.seal();
                    let mut replay = ObjectMemory::new();
                    let replay_blank = replay.seal();
                    snapshot_stats.seals += 2;
                    ReplayArena {
                        oracle,
                        oracle_blank,
                        oracle_used: false,
                        replay,
                        replay_blank,
                        replay_used: false,
                    }
                });
                // Reset the oracle heap to blank (also cleans up after
                // a panicked materialization or oracle run) and
                // materialize this model directly onto it.
                if a.oracle_used {
                    let dirty = a.oracle.restore(&a.oracle_blank).expect("blank seal is armed");
                    snapshot_stats.record_restore(dirty);
                }
                a.oracle_used = true;
                let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut state = exploration.state.clone();
                    materialize_frame(&mut state, model, &mut a.oracle)
                }));
                let mat = match built {
                    Ok(mat) => mat,
                    Err(_) => {
                        times.materialize += t_mat.elapsed();
                        oracle_panics += 1;
                        continue 'models;
                    }
                };
                let frame0 = concrete_frame(&mat.frame);
                let mut oracle_frame = frame0.clone();
                let oracle_exit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_oracle_on_with(&mut a.oracle, &mut oracle_frame, instr, interp_predecode)
                }));
                let exit = match oracle_exit {
                    Ok(exit) => exit,
                    Err(_) => {
                        times.materialize += t_mat.elapsed();
                        oracle_panics += 1;
                        continue 'models;
                    }
                };
                if mi == 0 {
                    base_exit_label = exit_label(&exit);
                }
                if !mat.witness_errors.is_empty() {
                    // The materializer substituted fallback inputs for
                    // an unrealizable witness: report a test error and
                    // skip the comparison — the run no longer reflects
                    // the solver's model.
                    witness_errors += 1;
                    times.materialize += t_mat.elapsed();
                    continue 'models;
                }
                if !exit.is_testable() {
                    times.materialize += t_mat.elapsed();
                    continue 'models;
                }
                // The model is testable: prepare the replay heap —
                // back to blank, materialize the same model (bit-
                // identical by determinism), seal the inner level the
                // ISA loop rewinds to.
                if a.replay_used {
                    let dirty = a.replay.restore(&a.replay_blank).expect("blank seal is armed");
                    snapshot_stats.record_restore(dirty);
                }
                a.replay_used = true;
                let mut state2 = exploration.state.clone();
                let mat2 = materialize_frame(&mut state2, model, &mut a.replay);
                debug_assert_eq!(concrete_frame(&mat2.frame).stack, frame0.stack);
                replay_snap = Some(a.replay.push_seal().expect("blank seal is armed"));
                snapshot_stats.seals += 1;
                times.materialize += t_mat.elapsed();
                interp_exit = exit;
                input_frame = frame0;
                var_oops = mat.var_oops;
            } else {
                let t_oracle = Instant::now();
                let oracle_run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_oracle_with(&exploration.state, model, instr, interp_predecode)
                }));
                times.materialize += t_oracle.elapsed();
                match oracle_run {
                    Ok(run) => {
                        if mi == 0 {
                            base_exit_label = exit_label(&run.exit);
                        }
                        if !run.witness_errors.is_empty() {
                            witness_errors += 1;
                            continue 'models;
                        }
                        if !run.exit.is_testable() {
                            continue 'models;
                        }
                        interp_exit = run.exit;
                        legacy_mem = Some(run.mem);
                        input_frame = run.input_frame;
                        var_oops = run.var_oops;
                    }
                    Err(_) => {
                        oracle_panics += 1;
                        continue 'models;
                    }
                }
            }
            for (ii, &isa) in isas.iter().enumerate() {
                let v = match replay_snap {
                    Some(snap) => {
                        let a = arena.as_mut().expect("snapshot path armed the arena");
                        // Replay the sealed image: roll back the
                        // previous ISA's mutations instead of
                        // re-materializing.
                        if ii > 0 {
                            let t_mat = Instant::now();
                            let dirty = a.replay.restore(&snap).expect("inner seal is armed");
                            snapshot_stats.record_restore(dirty);
                            times.materialize += t_mat.elapsed();
                        }
                        let compiled = if target == Target::MetaCompiled {
                            run_meta_for_instr_timed(
                                meta_cache,
                                isa,
                                instr,
                                &input_frame,
                                &mut a.replay,
                                &mut ctx,
                                &mut times,
                                interp_predecode,
                                &mut meta_counts,
                            )
                        } else {
                            run_compiled_for_instr_timed(
                                target.compiler_kind(),
                                isa,
                                instr,
                                &input_frame,
                                &mut a.replay,
                                &mut ctx,
                                &mut times,
                            )
                        };
                        let t_cmp = Instant::now();
                        let v = compare_runs(&interp_exit, &a.oracle, &compiled, &a.replay, &var_oops);
                        times.compare += t_cmp.elapsed();
                        v
                    }
                    None => {
                        // Fresh, identical materialization for the
                        // compiled run.
                        let t_mat = Instant::now();
                        let (mut mem2, frame2, _) = materialized(&exploration.state, model);
                        times.materialize += t_mat.elapsed();
                        debug_assert_eq!(frame2.stack, input_frame.stack);
                        let compiled = if target == Target::MetaCompiled {
                            run_meta_for_instr_timed(
                                meta_cache,
                                isa,
                                instr,
                                &frame2,
                                &mut mem2,
                                &mut ctx,
                                &mut times,
                                interp_predecode,
                                &mut meta_counts,
                            )
                        } else {
                            run_compiled_for_instr_timed(
                                target.compiler_kind(),
                                isa,
                                instr,
                                &frame2,
                                &mut mem2,
                                &mut ctx,
                                &mut times,
                            )
                        };
                        let t_cmp = Instant::now();
                        let oracle_mem =
                            legacy_mem.as_ref().expect("legacy path kept the oracle heap");
                        let v = compare_runs(&interp_exit, oracle_mem, &compiled, &mem2, &var_oops);
                        times.compare += t_cmp.elapsed();
                        v
                    }
                };
                if let Verdict::Difference(d) = v {
                    let mut key = classify(instr, target.compiler_kind(), &d);
                    if target == Target::MetaCompiled {
                        // The classifier only knows the hand-written
                        // tiers; tag the cause with the meta tier's
                        // own name so causes stay per-tier distinct.
                        key.compiler = std::borrow::Cow::Borrowed("Meta-Compiled");
                    }
                    if !all_causes.contains(&key) {
                        all_causes.push(key.clone());
                    }
                    if cause.is_none() {
                        cause = Some(key);
                        verdict = Verdict::Difference(d);
                        found_by_probe = mi > 0;
                        on_isa = Some(isa);
                    }
                    // Compile refusals cannot change across models.
                    if matches!(
                        verdict,
                        Verdict::Difference(Difference {
                            kind: crate::compare::DifferenceKind::CompileRefused,
                            ..
                        })
                    ) {
                        break 'models;
                    }
                }
            }
        }

        let t_report = Instant::now();
        verdicts.push(PathVerdict {
            instruction: instr,
            interp_exit: base_exit_label,
            verdict,
            cause,
            all_causes,
            found_by_probe,
            isa: on_isa,
        });
        times.report += t_report.elapsed();
    }

    let t_report = Instant::now();
    let outcome = InstructionOutcome {
        instruction: instr,
        paths_found: exploration.paths.len(),
        curated: curated.len(),
        curated_out: exploration.curated_out.clone(),
        verdicts,
        explore_iterations: exploration.iterations,
        witness_errors,
        oracle_panics,
        snapshot: snapshot_stats,
        meta_compiled_runs: meta_counts.compiled,
        meta_trampolines: meta_counts.trampolined,
    };
    times.report += t_report.elapsed();
    REUSED_SESSION.with(|slot| slot.set(Some(session)));
    (outcome, times, solver, trail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;
    use igjit_interp::NativeMethodId;

    const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

    #[test]
    fn add_bytecode_agrees_on_stack_to_register_int_paths() {
        let o = test_instruction(
            InstrUnderTest::Bytecode(Instruction::Add),
            Target::Bytecode(CompilerKind::StackToRegister),
            &BOTH,
            false,
        );
        assert!(o.paths_found >= 5);
        // Exactly the float fast path differs (optimisation
        // difference); the int paths and send paths agree.
        assert_eq!(o.difference_count(), 1, "{:?}", o.verdicts);
        let causes = o.causes();
        assert_eq!(causes.len(), 1);
        assert_eq!(
            causes[0].category,
            crate::DefectCategory::OptimisationDifference
        );
    }

    #[test]
    fn add_bytecode_differs_more_on_simple_stack() {
        let o = test_instruction(
            InstrUnderTest::Bytecode(Instruction::Add),
            Target::Bytecode(CompilerKind::SimpleStackBased),
            &BOTH,
            false,
        );
        // Int fast path AND float fast path both differ (no static
        // type prediction at all).
        assert!(o.difference_count() >= 2, "{:?}", o.verdicts);
    }

    #[test]
    fn push_bytecodes_always_agree() {
        for instr in [
            Instruction::PushTrue,
            Instruction::PushZero,
            Instruction::Dup,
            Instruction::Pop,
            Instruction::PushTemp(1),
        ] {
            for kind in CompilerKind::ALL {
                let o = test_instruction(
                    InstrUnderTest::Bytecode(instr),
                    Target::Bytecode(kind),
                    &BOTH,
                    false,
                );
                assert_eq!(o.difference_count(), 0, "{instr:?} {kind:?}: {:?}", o.verdicts);
            }
        }
    }

    #[test]
    fn native_add_agrees() {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(1)),
            Target::NativeMethods,
            &BOTH,
            false,
        );
        assert!(o.curated >= 4);
        assert_eq!(o.difference_count(), 0, "{:?}", o.verdicts);
    }

    #[test]
    fn native_bitand_shows_behavioural_difference() {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(14)),
            Target::NativeMethods,
            &BOTH,
            false,
        );
        assert!(o.difference_count() >= 1, "{:?}", o.verdicts);
        assert!(o
            .causes()
            .iter()
            .any(|c| c.category == crate::DefectCategory::BehaviouralDifference));
    }

    #[test]
    fn native_float_add_shows_missing_compiled_check() {
        // The divergence needs a non-float receiver with a float
        // argument — a combination only kind probing produces, since
        // the interpreter's failure path leaves the argument
        // unconstrained.
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(41)),
            Target::NativeMethods,
            &BOTH,
            true,
        );
        assert!(o.difference_count() >= 1, "{:?}", o.verdicts);
        assert!(o
            .causes()
            .iter()
            .any(|c| c.category == crate::DefectCategory::MissingCompiledTypeCheck));
    }

    #[test]
    fn native_as_float_needs_probing() {
        let without = test_instruction(
            InstrUnderTest::Native(NativeMethodId(40)),
            Target::NativeMethods,
            &BOTH,
            false,
        );
        assert_eq!(without.difference_count(), 0, "invisible without probes");
        let with = test_instruction(
            InstrUnderTest::Native(NativeMethodId(40)),
            Target::NativeMethods,
            &BOTH,
            true,
        );
        assert!(with.difference_count() >= 1, "{:?}", with.verdicts);
        let v = with.verdicts.iter().find(|v| v.verdict.is_difference()).unwrap();
        assert!(v.found_by_probe);
        assert_eq!(
            v.cause.as_ref().unwrap().category,
            crate::DefectCategory::MissingInterpreterTypeCheck
        );
    }

    #[test]
    fn ffi_natives_are_missing_functionality() {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(120)),
            Target::NativeMethods,
            &BOTH,
            false,
        );
        assert!(o.difference_count() >= 1);
        assert!(o
            .causes()
            .iter()
            .all(|c| c.category == crate::DefectCategory::MissingFunctionality));
    }

    #[test]
    fn fraction_part_triggers_simulation_error() {
        let o = test_instruction(
            InstrUnderTest::Native(NativeMethodId(52)),
            Target::NativeMethods,
            &BOTH,
            true,
        );
        assert!(o
            .causes()
            .iter()
            .any(|c| c.category == crate::DefectCategory::SimulationError),
            "{:?}",
            o.verdicts
        );
    }

    #[test]
    fn campaign_row_aggregation() {
        let mut row = CampaignRow { label: "x".into(), ..Default::default() };
        let o = test_instruction(
            InstrUnderTest::Bytecode(Instruction::PushOne),
            Target::Bytecode(CompilerKind::StackToRegister),
            &[Isa::X86ish],
            false,
        );
        row.absorb(&o);
        assert_eq!(row.tested_instructions, 1);
        assert!(row.interpreter_paths >= 1);
        assert_eq!(row.differences, 0);
        assert_eq!(row.difference_percent(), 0.0);
    }
}
