//! Property tests of the predecoded interpreter mode: running a
//! method through [`PredecodedProgram`] (decode + dispatch resolved
//! once, fused push-pairs) is step-for-step identical to the
//! byte-at-a-time fetch loop — same result, same heap effects — for
//! arbitrary instruction streams (including wild jumps that land
//! mid-instruction, where the predecoded fetch must fall back to the
//! byte decoder) and for arbitrary byte soup (where both modes must
//! raise the same decode error).

use igjit_bytecode::{Instruction, MethodBuilder};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::run_method_with;
use proptest::prelude::*;

/// Executable instructions, with operand indexes straddling the valid
/// range (2 args + 2 temps, 3 literals, 3 receiver slots) so frame and
/// memory faults are generated as often as clean steps.
fn arb_instr() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        (0u8..6).prop_map(I::PushReceiverVariable),
        (0u8..6).prop_map(I::PushReceiverVariableLong),
        (0u8..6).prop_map(I::PushTemp),
        (0u8..6).prop_map(I::PushTempLong),
        (0u8..6).prop_map(I::PushLiteralConstant),
        (0u8..6).prop_map(I::PushLiteralLong),
        (0u8..6).prop_map(I::PushLiteralVariable),
        Just(I::PushReceiver),
        Just(I::PushTrue),
        Just(I::PushFalse),
        Just(I::PushNil),
        Just(I::PushZero),
        Just(I::PushOne),
        Just(I::PushMinusOne),
        Just(I::PushTwo),
        any::<i8>().prop_map(I::PushInteger),
        Just(I::PushThisContext),
        Just(I::Dup),
        Just(I::Pop),
        (0u8..6).prop_map(I::PopIntoTemp),
        (0u8..6).prop_map(I::StoreTemp),
        (0u8..6).prop_map(I::StoreTempLong),
        (0u8..6).prop_map(I::PopIntoReceiverVariable),
        (0u8..6).prop_map(I::StoreReceiverVariableLong),
        Just(I::Add),
        Just(I::Subtract),
        Just(I::Multiply),
        Just(I::Divide),
        Just(I::Modulo),
        Just(I::IntegerDivide),
        Just(I::LessThan),
        Just(I::GreaterThan),
        Just(I::LessOrEqual),
        Just(I::GreaterOrEqual),
        Just(I::Equal),
        Just(I::NotEqual),
        Just(I::IdentityEqual),
        Just(I::BitAnd),
        Just(I::BitOr),
        Just(I::BitShift),
        Just(I::SpecialSendAt),
        Just(I::SpecialSendAtPut),
        Just(I::SpecialSendSize),
        Just(I::SpecialSendValue),
        Just(I::SpecialSendNew),
        Just(I::SpecialSendClass),
        (0u8..6, 0u8..4).prop_map(|(lit, nargs)| I::Send { lit, nargs }),
        Just(I::ReturnReceiver),
        Just(I::ReturnTrue),
        Just(I::ReturnFalse),
        Just(I::ReturnNil),
        Just(I::ReturnTop),
        (1u8..9).prop_map(I::ShortJumpForward),
        (1u8..9).prop_map(I::ShortJumpTrue),
        (1u8..9).prop_map(I::ShortJumpFalse),
        any::<i8>().prop_map(I::LongJumpForward),
        (0u8..16).prop_map(I::LongJumpTrue),
        (0u8..16).prop_map(I::LongJumpFalse),
        Just(I::Nop),
    ]
}

/// Builds the shared pristine environment: a 3-slot receiver, one
/// SmallInteger argument, two temps, and three literals (a
/// SmallInteger, a Float, and a 2-slot array so `PushLiteralVariable`
/// has a fetchable value slot). Deterministic, so building it twice
/// yields bit-identical memories.
fn build_env(emit: impl Fn(&mut MethodBuilder)) -> (ObjectMemory, Oop, Oop, Vec<Oop>) {
    let mut mem = ObjectMemory::new();
    let receiver = mem
        .instantiate_array(&[
            Oop::from_small_int(10),
            Oop::from_small_int(20),
            Oop::from_small_int(30),
        ])
        .unwrap();
    let f = mem.instantiate_float(1.5).unwrap();
    let assoc = mem
        .instantiate_array(&[Oop::from_small_int(0), Oop::from_small_int(99)])
        .unwrap();
    let mut b = MethodBuilder::new(2, 2);
    b.add_literal(Oop::from_small_int(5));
    b.add_literal(f);
    b.add_literal(assoc);
    emit(&mut b);
    let method = b.install(&mut mem).unwrap();
    let args = vec![Oop::from_small_int(7), Oop::from_small_int(-3)];
    (mem, method, receiver, args)
}

/// Runs the method in both fetch modes from identical pristine state
/// and asserts result + receiver heap effects match exactly.
fn assert_run_identical(emit: impl Fn(&mut MethodBuilder)) {
    let (mut mem_b, method_b, recv_b, args_b) = build_env(&emit);
    let byte_result = run_method_with(&mut mem_b, method_b, recv_b, &args_b, false);
    let byte_slots: Vec<Oop> = (0..3).map(|i| mem_b.fetch_pointer(recv_b, i).unwrap()).collect();

    let (mut mem_p, method_p, recv_p, args_p) = build_env(&emit);
    let pre_result = run_method_with(&mut mem_p, method_p, recv_p, &args_p, true);
    let pre_slots: Vec<Oop> = (0..3).map(|i| mem_p.fetch_pointer(recv_p, i).unwrap()).collect();

    assert_eq!(byte_result, pre_result);
    assert_eq!(byte_slots, pre_slots);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_predecoded_identity_streams(
        instrs in proptest::collection::vec(arb_instr(), 1..24)
    ) {
        assert_run_identical(|b| {
            for &i in &instrs {
                b.emit(i);
            }
        });
    }

    #[test]
    fn prop_predecoded_identity_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        // Arbitrary blobs: predecoding stops at the first undecodable
        // offset, so the tail executes through the fallback path; both
        // modes must agree, decode errors included.
        assert_run_identical(|b| {
            b.emit_raw(&bytes);
        });
    }

    #[test]
    fn prop_predecoded_identity_wild_entry_jump(
        off in any::<i8>(),
        instrs in proptest::collection::vec(arb_instr(), 1..16)
    ) {
        // A leading jump with a random displacement lands anywhere in
        // the stream — instruction boundary, mid-instruction, past the
        // end, or negative (a decode error in both modes).
        assert_run_identical(|b| {
            b.emit(Instruction::LongJumpForward(off));
            for &i in &instrs {
                b.emit(i);
            }
        });
    }
}
