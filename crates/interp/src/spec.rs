//! Per-opcode effect descriptions (engine v9).
//!
//! Every step function in [`crate::step`] has a static *effect shape*:
//! how many operand-stack slots its `Continue` path consumes and
//! produces, whether it can touch the heap, and which non-`Continue`
//! outcomes it can take. Historically those facts lived implicitly in
//! the step bodies and were re-derived by hand wherever a consumer
//! needed them (the predecoder's fusion predicate, the test compiler's
//! arity table). [`StepSpec`] makes them an explicit, queryable
//! artifact:
//!
//! * the predecoder's superinstruction fusion derives its
//!   "push-class" predicate from the spec instead of a hand-written
//!   opcode list ([`StepSpec::is_fusible`]);
//! * the `igjit-metajit` partial evaluator consults the spec to refuse
//!   unsupported opcodes before evaluating anything.
//!
//! The spec is descriptive, never authoritative: execution still runs
//! the one copy of the semantics in [`crate::step`]. A consistency
//! test pins the spec's fusion predicate to the exact instruction set
//! the hand-written list used to name, and the flags are chosen so
//! that adding an opcode without a spec entry is a compile error
//! (the match in [`step_spec`] is exhaustive).

use igjit_bytecode::Instruction;

/// The static effect shape of one instruction's step function.
///
/// `pops`/`pushes` describe the **`Continue` path** — the stack delta
/// when the instruction neither jumps, returns, sends nor traps.
/// Instructions that always leave the frame (returns, plain sends)
/// report `0/0`. The `may_*` flags are conservative: a set flag means
/// *some* input reaches that outcome, not that every input does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepSpec {
    /// Operand-stack slots consumed on the `Continue` path.
    pub pops: u8,
    /// Operand-stack slots produced on the `Continue` path.
    pub pushes: u8,
    /// Whether any path reads heap object slots or bodies.
    pub reads_heap: bool,
    /// Whether any path writes heap object slots or allocates.
    pub writes_heap: bool,
    /// Whether any path takes a jump (`StepOutcome::Jump`).
    pub may_jump: bool,
    /// Whether any path returns from the method.
    pub may_return: bool,
    /// Whether any path escalates to a message send.
    pub may_send: bool,
    /// Whether any path can trap (`InvalidFrame` /
    /// `InvalidMemoryAccess` — frame bounds, heap bounds).
    pub may_trap: bool,
    /// Whether the interpreter implements the instruction at all
    /// (`false` only for `PushThisContext`, which steps to
    /// `Unsupported`).
    pub supported: bool,
}

impl StepSpec {
    /// A pure stack push: produces one value, consumes none, and its
    /// only non-`Continue` outcome is a fault. Exactly these
    /// instructions are safe to fuse a following step after (see
    /// `predecode.rs`): after a `Continue` the next sequential step
    /// runs unconditionally, which is only sound when the instruction
    /// can neither jump, return nor send.
    pub fn is_fusible(&self) -> bool {
        self.pushes == 1
            && self.pops == 0
            && !self.may_jump
            && !self.may_return
            && !self.may_send
            && self.supported
    }
}

/// The effect shape of `instr`'s step function. Total over the
/// instruction set; the match is exhaustive so a new opcode cannot
/// ship without declaring its shape.
pub fn step_spec(instr: Instruction) -> StepSpec {
    use Instruction as I;
    // Everything defaults to "no effects, no exits"; each arm turns on
    // exactly what its step body can do.
    let base = StepSpec {
        pops: 0,
        pushes: 0,
        reads_heap: false,
        writes_heap: false,
        may_jump: false,
        may_return: false,
        may_send: false,
        may_trap: false,
        supported: true,
    };
    match instr {
        // Pushes out of the frame itself: trap only on frame bounds.
        I::PushTemp(_) | I::PushTempLong(_) | I::PushLiteralConstant(_)
        | I::PushLiteralLong(_) => StepSpec { pushes: 1, may_trap: true, ..base },
        // Pushes that dereference a heap object (receiver slot or
        // association value slot).
        I::PushReceiverVariable(_) | I::PushReceiverVariableLong(_)
        | I::PushLiteralVariable(_) => {
            StepSpec { pushes: 1, reads_heap: true, may_trap: true, ..base }
        }
        // Constant pushes cannot fail.
        I::PushReceiver | I::PushTrue | I::PushFalse | I::PushNil | I::PushZero | I::PushOne
        | I::PushMinusOne | I::PushTwo | I::PushInteger(_) => StepSpec { pushes: 1, ..base },
        I::PushThisContext => StepSpec { supported: false, ..base },

        I::Dup => StepSpec { pushes: 1, may_trap: true, ..base },
        I::Pop => StepSpec { pops: 1, may_trap: true, ..base },

        I::PopIntoTemp(_) => StepSpec { pops: 1, may_trap: true, ..base },
        I::StoreTemp(_) | I::StoreTempLong(_) => StepSpec { may_trap: true, ..base },
        I::PopIntoReceiverVariable(_) => {
            StepSpec { pops: 1, writes_heap: true, may_trap: true, ..base }
        }
        I::StoreReceiverVariableLong(_) => {
            StepSpec { writes_heap: true, may_trap: true, ..base }
        }

        // Inlined binary arithmetic: the int fast path folds; the
        // float path reads operand bodies and allocates the result;
        // everything else escalates to a send.
        I::Add | I::Subtract | I::Multiply | I::Divide => StepSpec {
            pops: 2,
            pushes: 1,
            reads_heap: true,
            writes_heap: true,
            may_send: true,
            may_trap: true,
            ..base
        },
        // Inlined comparisons: float path reads operand bodies but the
        // result is a singleton boolean (no allocation).
        I::LessThan | I::GreaterThan | I::LessOrEqual | I::GreaterOrEqual | I::Equal
        | I::NotEqual => StepSpec {
            pops: 2,
            pushes: 1,
            reads_heap: true,
            may_send: true,
            may_trap: true,
            ..base
        },
        // SmallInteger-only fast paths: no heap traffic on the inlined
        // path at all.
        I::Modulo | I::IntegerDivide | I::BitAnd | I::BitOr | I::BitShift => StepSpec {
            pops: 2,
            pushes: 1,
            may_send: true,
            may_trap: true,
            ..base
        },
        I::IdentityEqual => StepSpec { pops: 2, pushes: 1, may_trap: true, ..base },

        // Quick-path special sends.
        I::SpecialSendAt => StepSpec {
            pops: 2,
            pushes: 1,
            reads_heap: true,
            may_send: true,
            may_trap: true,
            ..base
        },
        I::SpecialSendAtPut => StepSpec {
            pops: 3,
            pushes: 1,
            reads_heap: true,
            writes_heap: true,
            may_send: true,
            may_trap: true,
            ..base
        },
        I::SpecialSendSize => StepSpec {
            pops: 1,
            pushes: 1,
            reads_heap: true,
            may_send: true,
            may_trap: true,
            ..base
        },
        // Plain sends: always leave the frame (the `Continue` path is
        // unreachable, so the stack delta is 0/0).
        I::SpecialSendValue | I::SpecialSendNew | I::SpecialSendClass | I::Send { .. } => {
            StepSpec { may_send: true, may_trap: true, ..base }
        }

        I::ReturnReceiver | I::ReturnTrue | I::ReturnFalse | I::ReturnNil => {
            StepSpec { may_return: true, ..base }
        }
        I::ReturnTop => StepSpec { may_return: true, may_trap: true, ..base },

        I::ShortJumpForward(_) | I::LongJumpForward(_) => StepSpec { may_jump: true, ..base },
        // Conditional jumps pop the condition on every path and send
        // `mustBeBoolean` on a non-boolean.
        I::ShortJumpTrue(_) | I::ShortJumpFalse(_) | I::LongJumpTrue(_) | I::LongJumpFalse(_) => {
            StepSpec { pops: 1, may_jump: true, may_send: true, may_trap: true, ..base }
        }

        I::Nop => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::instruction_catalog;

    /// The instruction set the predecoder's hand-written push list
    /// used to name, member by member. The spec-derived predicate must
    /// reproduce it exactly — fusion soundness depends on "push" truly
    /// meaning "Continue or fault".
    fn hand_written_push_list(instr: Instruction) -> bool {
        use Instruction as I;
        matches!(
            instr,
            I::PushReceiverVariable(_)
                | I::PushReceiverVariableLong(_)
                | I::PushTemp(_)
                | I::PushTempLong(_)
                | I::PushLiteralConstant(_)
                | I::PushLiteralLong(_)
                | I::PushLiteralVariable(_)
                | I::PushReceiver
                | I::PushTrue
                | I::PushFalse
                | I::PushNil
                | I::PushZero
                | I::PushOne
                | I::PushMinusOne
                | I::PushTwo
                | I::PushInteger(_)
                | I::Dup
        )
    }

    #[test]
    fn fusion_predicate_matches_the_hand_written_list() {
        for spec in instruction_catalog() {
            let i = spec.instruction;
            assert_eq!(
                step_spec(i).is_fusible(),
                hand_written_push_list(i),
                "{i:?}"
            );
        }
        // The catalog uses one canonical operand per opcode; pin a few
        // shapes the catalog may not enumerate.
        assert!(step_spec(Instruction::PushInteger(-128)).is_fusible());
        assert!(!step_spec(Instruction::PushThisContext).is_fusible());
        assert!(!step_spec(Instruction::Send { lit: 0, nargs: 3 }).is_fusible());
    }

    #[test]
    fn continue_deltas_are_consistent_with_stack_arity() {
        // On instructions whose Continue path is reachable and that
        // consume what `stack_arity` pre-pushes, pops can never exceed
        // the arity the test compiler provisions.
        for spec in instruction_catalog() {
            let i = spec.instruction;
            let s = step_spec(i);
            if s.may_send || s.may_return {
                continue; // 0/0 or arity counts the send receiver too
            }
            assert!(
                u32::from(s.pops) <= i.stack_arity().max(1),
                "{i:?}: pops {} vs arity {}",
                s.pops,
                i.stack_arity()
            );
        }
    }

    #[test]
    fn unsupported_is_exactly_push_this_context() {
        for spec in instruction_catalog() {
            let i = spec.instruction;
            assert_eq!(
                !step_spec(i).supported,
                i == Instruction::PushThisContext,
                "{i:?}"
            );
        }
    }
}
