//! Float native methods (ids 40–53).
//!
//! `primitiveAsFloat` (id 40) reproduces the paper's Listing 5
//! verbatim: the interpreter's receiver type check is an assertion
//! that production builds compile out, so a pointer receiver gets
//! coerced through untagging and produces a garbage float instead of
//! failing — the paper's single *missing interpreter type check*
//! defect.
//!
//! The remaining 13 primitives (41–53) are correctly checked **here**;
//! their defect lives on the compiled side, where the template
//! compiler forgets the receiver check (*missing compiled type check*,
//! 13 cases in Table 3).

use super::{operands, succeed, NativeGroup, NativeMethodId, NativeMethodSpec, NativeOutcome};
use crate::context::{CmpKind, VmContext};
use crate::frame::Frame;
use igjit_heap::ClassIndex;

pub(super) fn catalog() -> Vec<NativeMethodSpec> {
    let names: [(u16, &str, u32); 14] = [
        (40, "primitiveAsFloat", 0),
        (41, "primitiveFloatAdd", 1),
        (42, "primitiveFloatSubtract", 1),
        (43, "primitiveFloatLessThan", 1),
        (44, "primitiveFloatGreaterThan", 1),
        (45, "primitiveFloatLessOrEqual", 1),
        (46, "primitiveFloatGreaterOrEqual", 1),
        (47, "primitiveFloatEqual", 1),
        (48, "primitiveFloatNotEqual", 1),
        (49, "primitiveFloatMultiply", 1),
        (50, "primitiveFloatDivide", 1),
        (51, "primitiveFloatTruncated", 0),
        (52, "primitiveFloatFractionPart", 0),
        (53, "primitiveFloatExponent", 0),
    ];
    names
        .into_iter()
        .map(|(id, name, argc)| NativeMethodSpec {
            id: NativeMethodId(id),
            name: name.to_string(),
            group: NativeGroup::Float,
            argc,
        })
        .collect()
}

pub(super) fn run<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    match id.0 {
        40 => as_float(ctx, frame),
        41 | 42 | 49 | 50 => float_arith(ctx, frame, id),
        43..=48 => float_compare(ctx, frame, id),
        51 => float_truncated(ctx, frame),
        52 => float_fraction_part(ctx, frame),
        53 => float_exponent(ctx, frame),
        _ => NativeOutcome::Unsupported { reason: "not a Float primitive" },
    }
}

/// Listing 5 of the paper, reproduced:
///
/// ```text
/// primitiveAsFloat
///     | rcvr |
///     rcvr := self stackTop.
///     self assert: (objectMemory isIntegerObject: rcvr).
///     self pop: 1 thenPushFloat:
///         (objectMemory integerValueOf: rcvr) asFloat
/// ```
///
/// The `assert:` is removed at compile time in the production build;
/// accordingly this implementation performs **no** receiver check. A
/// pointer receiver is untagged into a meaningless integer and coerced
/// to a double — the paper's *missing interpreter type check*.
fn as_float<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    // assert: (objectMemory isIntegerObject: rcvr) — compiled out.
    let raw = ctx.integer_value_of(rcvr);
    let f = ctx.int_to_float(raw);
    match ctx.new_float(f) {
        Ok(v) => succeed::<C>(frame, 0, v),
        Err(_) => NativeOutcome::Unsupported { reason: "allocation requires GC" },
    }
}

fn float_arith<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let arg = args[0];
    if !ctx.has_class(rcvr, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    if !ctx.has_class(arg, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    let a = ctx.float_value_of(rcvr);
    let b = ctx.float_value_of(arg);
    let r = match id.0 {
        41 => ctx.float_add(a, b),
        42 => ctx.float_sub(a, b),
        49 => ctx.float_mul(a, b),
        _ => {
            // primitiveFloatDivide fails on a zero divisor rather than
            // producing an IEEE infinity.
            let zero = ctx.int_const(0);
            let zero_f = ctx.int_to_float(zero);
            if ctx.float_cmp(CmpKind::Eq, b, zero_f) {
                return NativeOutcome::Failure;
            }
            ctx.float_div(a, b)
        }
    };
    match ctx.new_float(r) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(_) => NativeOutcome::Unsupported { reason: "allocation requires GC" },
    }
}

fn float_compare<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let arg = args[0];
    if !ctx.has_class(rcvr, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    if !ctx.has_class(arg, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    let a = ctx.float_value_of(rcvr);
    let b = ctx.float_value_of(arg);
    let op = match id.0 {
        43 => CmpKind::Lt,
        44 => CmpKind::Gt,
        45 => CmpKind::Le,
        46 => CmpKind::Ge,
        47 => CmpKind::Eq,
        _ => CmpKind::Ne,
    };
    let holds = ctx.float_cmp(op, a, b);
    let v = ctx.bool_obj(holds);
    succeed::<C>(frame, 1, v)
}

fn float_truncated<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    let f = ctx.float_value_of(rcvr);
    if !ctx.float_fits_small_int(f) {
        return NativeOutcome::Failure;
    }
    let n = ctx.float_to_int(f);
    let v = ctx.integer_object_of(n);
    succeed::<C>(frame, 0, v)
}

fn float_fraction_part<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    let f = ctx.float_value_of(rcvr);
    let r = ctx.float_fraction_part(f);
    match ctx.new_float(r) {
        Ok(v) => succeed::<C>(frame, 0, v),
        Err(_) => NativeOutcome::Unsupported { reason: "allocation requires GC" },
    }
}

fn float_exponent<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    let f = ctx.float_value_of(rcvr);
    let n = ctx.float_exponent(f);
    let v = ctx.integer_object_of(n);
    succeed::<C>(frame, 0, v)
}

#[cfg(test)]
mod tests {
    use crate::natives::{run_native, NativeMethodId, NativeOutcome};
    use crate::{ConcreteContext, Frame, MethodInfo};
    use igjit_heap::{ObjectMemory, Oop};

    fn run_prim(mem: &mut ObjectMemory, id: u16, stack: &[Oop]) -> (NativeOutcome<Oop>, Frame<Oop>) {
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        for &v in stack {
            frame.push(v);
        }
        let mut ctx = ConcreteContext::new(mem);
        let out = run_native(&mut ctx, &mut frame, NativeMethodId(id));
        (out, frame)
    }

    #[test]
    fn as_float_on_integer() {
        let mut mem = ObjectMemory::new();
        let (out, frame) = run_prim(&mut mem, 40, &[Oop::from_small_int(7)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let f = mem.float_value_of(frame.stack_at_depth(0)).unwrap();
        assert_eq!(f, 7.0);
    }

    #[test]
    fn as_float_misses_its_type_check() {
        // The Listing 5 defect: a pointer receiver "succeeds" with a
        // garbage float — the interpreter does NOT fail.
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let (out, frame) = run_prim(&mut mem, 40, &[arr]);
        assert!(matches!(out, NativeOutcome::Success { .. }), "bug: no type check");
        let f = mem.float_value_of(frame.stack_at_depth(0)).unwrap();
        // The garbage value is the untagged pointer, coerced.
        assert_eq!(f, ((arr.address() as i32) >> 1) as f64);
    }

    #[test]
    fn float_add_checks_both_operands() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_float(1.5).unwrap();
        let b = mem.instantiate_float(2.0).unwrap();
        let (out, frame) = run_prim(&mut mem, 41, &[a, b]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(mem.float_value_of(frame.stack_at_depth(0)).unwrap(), 3.5);

        let (out, _) = run_prim(&mut mem, 41, &[Oop::from_small_int(1), b]);
        assert_eq!(out, NativeOutcome::Failure, "interpreter checks the receiver");
        let (out, _) = run_prim(&mut mem, 41, &[a, Oop::from_small_int(1)]);
        assert_eq!(out, NativeOutcome::Failure, "interpreter checks the argument");
    }

    #[test]
    fn float_divide_rejects_zero() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_float(1.0).unwrap();
        let z = mem.instantiate_float(0.0).unwrap();
        let (out, _) = run_prim(&mut mem, 50, &[a, z]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn float_comparisons() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let a = mem.instantiate_float(1.0).unwrap();
        let b = mem.instantiate_float(2.0).unwrap();
        let (_, frame) = run_prim(&mut mem, 43, &[a, b]);
        assert_eq!(frame.stack_at_depth(0), t);
        let (_, frame) = run_prim(&mut mem, 48, &[a, b]);
        assert_eq!(frame.stack_at_depth(0), t);
    }

    #[test]
    fn truncated_range_check() {
        let mut mem = ObjectMemory::new();
        let ok = mem.instantiate_float(123.75).unwrap();
        let big = mem.instantiate_float(1e300).unwrap();
        let (out, frame) = run_prim(&mut mem, 51, &[ok]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 123);
        let (out, _) = run_prim(&mut mem, 51, &[big]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn fraction_part_and_exponent() {
        let mut mem = ObjectMemory::new();
        let f = mem.instantiate_float(2.75).unwrap();
        let (_, frame) = run_prim(&mut mem, 52, &[f]);
        assert_eq!(mem.float_value_of(frame.stack_at_depth(0)).unwrap(), 0.75);
        let e = mem.instantiate_float(8.0).unwrap();
        let (_, frame) = run_prim(&mut mem, 53, &[e]);
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 3);
    }
}
