//! Native methods (primitives).
//!
//! Native methods are the VM's non-inlined primitive operations
//! (§3.1): *safe by contract* — they validate operand types and shapes
//! and answer [`NativeOutcome::Failure`] instead of misbehaving, which
//! is why the paper treats an `InvalidMemoryAccess` from a native
//! method as a genuine error rather than an exploration signal.
//!
//! The catalog holds 112 native methods in four groups, matching the
//! scale of the paper's evaluation (112 tested primitives):
//!
//! | group | ids | count |
//! |-------|-----|-------|
//! | SmallInteger arithmetic | 1–17 | 17 |
//! | Float arithmetic        | 40–53 | 14 |
//! | Object access/allocation| 60–80 | 21 |
//! | FFI / external memory   | 100–159 | 60 |
//!
//! The FFI group is the substrate for the paper's *missing
//! functionality* defect family: all 60 are implemented here (the
//! interpreter side) and none are implemented by the 32-bit template
//! compiler.

mod ffi;
mod float;
mod object;
mod smallint;

use crate::context::VmContext;
use crate::frame::Frame;

/// Identifies a native method in the VM's primitive table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NativeMethodId(pub u16);

/// The four primitive groups.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NativeGroup {
    /// Tagged integer arithmetic, comparison and bitwise primitives.
    SmallInteger,
    /// Boxed float primitives.
    Float,
    /// Object access, allocation, identity and reflection primitives.
    Object,
    /// Foreign-memory primitives over the simulated external region.
    Ffi,
}

/// Catalog entry for one native method.
#[derive(Clone, Debug)]
pub struct NativeMethodSpec {
    /// Primitive id.
    pub id: NativeMethodId,
    /// Human-readable name (`primitiveAdd`, …).
    pub name: String,
    /// Group.
    pub group: NativeGroup,
    /// Number of arguments (receiver excluded).
    pub argc: u32,
}

/// How a native method finished (§3.4 for native methods).
#[derive(Clone, PartialEq, Debug)]
pub enum NativeOutcome<V> {
    /// The primitive succeeded: receiver and arguments were popped,
    /// `result` was pushed, and execution returns to the caller.
    Success {
        /// The value pushed for the caller.
        result: V,
    },
    /// Operand validation failed; the stack is untouched and execution
    /// falls back to the method's bytecode body.
    Failure,
    /// The frame does not hold receiver + arguments.
    InvalidFrame,
    /// The primitive performed an out-of-bounds access — a genuine bug
    /// when it happens, since natives are safe by contract.
    InvalidMemoryAccess,
    /// The primitive touches machinery the prototype does not model.
    Unsupported {
        /// What is missing.
        reason: &'static str,
    },
}

impl<V> NativeOutcome<V> {
    /// Collapses to the paper's exit-condition lattice.
    pub fn exit_condition(&self) -> Option<crate::ExitCondition> {
        Some(match self {
            NativeOutcome::Success { .. } => crate::ExitCondition::Success,
            NativeOutcome::Failure => crate::ExitCondition::Failure,
            NativeOutcome::InvalidFrame => crate::ExitCondition::InvalidFrame,
            NativeOutcome::InvalidMemoryAccess => crate::ExitCondition::InvalidMemoryAccess,
            NativeOutcome::Unsupported { .. } => return None,
        })
    }
}

/// The catalog, built once per process. `native_spec` sits on the
/// per-run hot path of the compiled pipeline (twice per compiled
/// native run: operand extraction and template argc), so rebuilding
/// the 112-entry spec vector per lookup costs real campaign wall
/// clock — memoize it and hand out borrows.
static CATALOG: std::sync::OnceLock<Vec<NativeMethodSpec>> = std::sync::OnceLock::new();

fn cached_catalog() -> &'static [NativeMethodSpec] {
    CATALOG.get_or_init(|| {
        let mut specs = Vec::new();
        specs.extend(smallint::catalog());
        specs.extend(float::catalog());
        specs.extend(object::catalog());
        specs.extend(ffi::catalog());
        specs
    })
}

/// Enumerates the full native-method catalog in id order.
pub fn native_catalog() -> Vec<NativeMethodSpec> {
    cached_catalog().to_vec()
}

/// Looks up one spec by id.
pub fn native_spec(id: NativeMethodId) -> Option<&'static NativeMethodSpec> {
    cached_catalog().iter().find(|s| s.id == id)
}

/// Runs native method `id` against `frame`, whose operand stack must
/// hold `receiver, arg0, …, argN` (receiver deepest).
///
/// On [`NativeOutcome::Success`] the operands are replaced by the
/// result; on every other outcome the stack is untouched.
pub fn run_native<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    match id.0 {
        1..=17 => smallint::run(ctx, frame, id),
        40..=53 => float::run(ctx, frame, id),
        60..=80 => object::run(ctx, frame, id),
        100..=159 => ffi::run(ctx, frame, id),
        _ => NativeOutcome::Unsupported { reason: "unknown primitive id" },
    }
}

/// Pops `argc + 1` operands and pushes `result`; shared success
/// epilogue for all primitives.
pub(crate) fn succeed<C: VmContext>(
    frame: &mut Frame<C::V>,
    argc: u32,
    result: C::V,
) -> NativeOutcome<C::V> {
    frame.pop_n(argc as usize + 1);
    frame.push(result);
    NativeOutcome::Success { result }
}

/// Reads `receiver, args..` from the operand stack; `None` means the
/// frame is too shallow (InvalidFrame).
pub(crate) fn operands<C: VmContext>(
    ctx: &mut C,
    frame: &Frame<C::V>,
    argc: u32,
) -> Option<(C::V, Vec<C::V>)> {
    let receiver = ctx.stack_value(frame, argc as usize).ok()?;
    let mut args = Vec::with_capacity(argc as usize);
    for i in (0..argc as usize).rev() {
        args.push(ctx.stack_value(frame, i).ok()?);
    }
    Some((receiver, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_112_natives() {
        let catalog = native_catalog();
        assert_eq!(catalog.len(), 112);
    }

    #[test]
    fn catalog_ids_are_unique_and_sorted() {
        let catalog = native_catalog();
        for w in catalog.windows(2) {
            assert!(w[0].id < w[1].id, "{:?} !< {:?}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn group_counts_match_the_design() {
        let catalog = native_catalog();
        let count = |g: NativeGroup| catalog.iter().filter(|s| s.group == g).count();
        assert_eq!(count(NativeGroup::SmallInteger), 17);
        assert_eq!(count(NativeGroup::Float), 14);
        assert_eq!(count(NativeGroup::Object), 21);
        assert_eq!(count(NativeGroup::Ffi), 60);
    }

    #[test]
    fn spec_lookup_works() {
        assert_eq!(native_spec(NativeMethodId(1)).unwrap().name, "primitiveAdd");
        assert!(native_spec(NativeMethodId(999)).is_none());
    }

    #[test]
    fn unknown_id_is_unsupported() {
        let mut mem = igjit_heap::ObjectMemory::new();
        let nil = mem.nil();
        let mut ctx = crate::ConcreteContext::new(&mut mem);
        let mut frame = crate::Frame::new(nil, crate::MethodInfo::empty());
        assert!(matches!(
            run_native(&mut ctx, &mut frame, NativeMethodId(999)),
            NativeOutcome::Unsupported { .. }
        ));
    }
}
