//! SmallInteger native methods (ids 1–17).
//!
//! All of these check both operands are tagged integers (they are
//! *safe*, unlike the corresponding bytecodes). The bitwise primitives
//! (14–17, plus xor at 16) carry one of the paper's authentic
//! *behavioural difference* defects: the interpreter versions fail on
//! negative operands (falling back to the large-integer library code),
//! while the compiled versions treat operands as unsigned and succeed
//! (§5.3).

use super::{operands, succeed, NativeGroup, NativeMethodId, NativeMethodSpec, NativeOutcome};
use crate::context::{CmpKind, VmContext};
use crate::frame::Frame;

pub(super) fn catalog() -> Vec<NativeMethodSpec> {
    let names: [(u16, &str, u32); 17] = [
        (1, "primitiveAdd", 1),
        (2, "primitiveSubtract", 1),
        (3, "primitiveLessThan", 1),
        (4, "primitiveGreaterThan", 1),
        (5, "primitiveLessOrEqual", 1),
        (6, "primitiveGreaterOrEqual", 1),
        (7, "primitiveEqual", 1),
        (8, "primitiveNotEqual", 1),
        (9, "primitiveMultiply", 1),
        (10, "primitiveDivide", 1),
        (11, "primitiveMod", 1),
        (12, "primitiveDiv", 1),
        (13, "primitiveQuo", 1),
        (14, "primitiveBitAnd", 1),
        (15, "primitiveBitOr", 1),
        (16, "primitiveBitXor", 1),
        (17, "primitiveBitShift", 1),
    ];
    names
        .into_iter()
        .map(|(id, name, argc)| NativeMethodSpec {
            id: NativeMethodId(id),
            name: name.to_string(),
            group: NativeGroup::SmallInteger,
            argc,
        })
        .collect()
}

pub(super) fn run<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let arg = args[0];
    // Safe by contract: both operands must be tagged integers.
    if !ctx.is_integer_object(rcvr) {
        return NativeOutcome::Failure;
    }
    if !ctx.is_integer_object(arg) {
        return NativeOutcome::Failure;
    }
    let a = ctx.integer_value_of(rcvr);
    let b = ctx.integer_value_of(arg);
    let zero = ctx.int_const(0);
    match id.0 {
        1 | 2 | 9 => {
            let r = match id.0 {
                1 => ctx.int_add(a, b),
                2 => ctx.int_sub(a, b),
                _ => ctx.int_mul(a, b),
            };
            if !ctx.is_integer_value(r) {
                return NativeOutcome::Failure;
            }
            let v = ctx.integer_object_of(r);
            succeed::<C>(frame, 1, v)
        }
        3..=8 => {
            let op = match id.0 {
                3 => CmpKind::Lt,
                4 => CmpKind::Gt,
                5 => CmpKind::Le,
                6 => CmpKind::Ge,
                7 => CmpKind::Eq,
                _ => CmpKind::Ne,
            };
            let holds = ctx.int_cmp(op, a, b);
            let v = ctx.bool_obj(holds);
            succeed::<C>(frame, 1, v)
        }
        10 => {
            // `/` — exact division only.
            if !ctx.int_cmp(CmpKind::Ne, b, zero) {
                return NativeOutcome::Failure;
            }
            let rem = ctx.int_mod_floor(a, b);
            if !ctx.int_cmp(CmpKind::Eq, rem, zero) {
                return NativeOutcome::Failure;
            }
            let q = ctx.int_div_floor(a, b);
            if !ctx.is_integer_value(q) {
                return NativeOutcome::Failure;
            }
            let v = ctx.integer_object_of(q);
            succeed::<C>(frame, 1, v)
        }
        11..=13 => {
            if !ctx.int_cmp(CmpKind::Ne, b, zero) {
                return NativeOutcome::Failure;
            }
            let r = match id.0 {
                11 => ctx.int_mod_floor(a, b),
                12 => ctx.int_div_floor(a, b),
                _ => ctx.int_div_trunc(a, b),
            };
            if !ctx.is_integer_value(r) {
                return NativeOutcome::Failure;
            }
            let v = ctx.integer_object_of(r);
            succeed::<C>(frame, 1, v)
        }
        14..=16 => {
            // Authentic behavioural-difference defect: the interpreter
            // primitives refuse negative operands and fall back to the
            // (slow) large-integer library, while the compiled
            // templates treat both as unsigned and succeed.
            if !ctx.int_cmp(CmpKind::Ge, a, zero) {
                return NativeOutcome::Failure;
            }
            if !ctx.int_cmp(CmpKind::Ge, b, zero) {
                return NativeOutcome::Failure;
            }
            let r = match id.0 {
                14 => ctx.int_bit_and(a, b),
                15 => ctx.int_bit_or(a, b),
                _ => ctx.int_bit_xor(a, b),
            };
            let v = ctx.integer_object_of(r);
            succeed::<C>(frame, 1, v)
        }
        17 => {
            if !ctx.int_cmp(CmpKind::Ge, a, zero) {
                return NativeOutcome::Failure;
            }
            let r = ctx.int_shift(a, b);
            if !ctx.is_integer_value(r) {
                return NativeOutcome::Failure;
            }
            let v = ctx.integer_object_of(r);
            succeed::<C>(frame, 1, v)
        }
        _ => NativeOutcome::Unsupported { reason: "not a SmallInteger primitive" },
    }
}

#[cfg(test)]
mod tests {
    use crate::natives::{run_native, NativeMethodId, NativeOutcome};
    use crate::{ConcreteContext, Frame, MethodInfo};
    use igjit_heap::{ObjectMemory, Oop};

    fn run_prim(mem: &mut ObjectMemory, id: u16, stack: &[Oop]) -> (NativeOutcome<Oop>, Frame<Oop>) {
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        for &v in stack {
            frame.push(v);
        }
        let mut ctx = ConcreteContext::new(mem);
        let out = run_native(&mut ctx, &mut frame, NativeMethodId(id));
        (out, frame)
    }

    fn ints(vals: &[i64]) -> Vec<Oop> {
        vals.iter().map(|&v| Oop::from_small_int(v)).collect()
    }

    #[test]
    fn add_success_pops_and_pushes() {
        let mut mem = ObjectMemory::new();
        let (out, frame) = run_prim(&mut mem, 1, &ints(&[20, 22]));
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.depth(), 1);
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 42);
    }

    #[test]
    fn add_overflow_fails() {
        let mut mem = ObjectMemory::new();
        let (out, frame) = run_prim(&mut mem, 1, &ints(&[igjit_heap::SMALL_INT_MAX, 1]));
        assert_eq!(out, NativeOutcome::Failure);
        assert_eq!(frame.depth(), 2, "failure leaves the stack intact");
    }

    #[test]
    fn type_checks_fail_cleanly() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let (out, _) = run_prim(&mut mem, 1, &[arr, Oop::from_small_int(1)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 1, &[Oop::from_small_int(1), arr]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn missing_operands_invalid_frame() {
        let mut mem = ObjectMemory::new();
        let (out, _) = run_prim(&mut mem, 1, &ints(&[5]));
        assert_eq!(out, NativeOutcome::InvalidFrame);
    }

    #[test]
    fn comparisons() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        let (out, frame) = run_prim(&mut mem, 3, &ints(&[1, 2]));
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0), t);
        let (_, frame) = run_prim(&mut mem, 4, &ints(&[1, 2]));
        assert_eq!(frame.stack_at_depth(0), f);
        let (_, frame) = run_prim(&mut mem, 7, &ints(&[2, 2]));
        assert_eq!(frame.stack_at_depth(0), t);
    }

    #[test]
    fn exact_division() {
        let mut mem = ObjectMemory::new();
        let (out, frame) = run_prim(&mut mem, 10, &ints(&[12, 4]));
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 3);
        let (out, _) = run_prim(&mut mem, 10, &ints(&[12, 5]));
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 10, &ints(&[12, 0]));
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn quo_truncates_div_floors() {
        let mut mem = ObjectMemory::new();
        let (_, frame) = run_prim(&mut mem, 12, &ints(&[-7, 2]));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), -4);
        let (_, frame) = run_prim(&mut mem, 13, &ints(&[-7, 2]));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), -3);
    }

    #[test]
    fn bitwise_refuse_negative_operands() {
        // The behavioural-difference defect: interpreter side fails.
        let mut mem = ObjectMemory::new();
        let (out, _) = run_prim(&mut mem, 14, &ints(&[-1, 3]));
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 15, &ints(&[3, -1]));
        assert_eq!(out, NativeOutcome::Failure);
        let (out, frame) = run_prim(&mut mem, 14, &ints(&[6, 3]));
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 2);
    }

    #[test]
    fn bitshift_directions_and_overflow() {
        let mut mem = ObjectMemory::new();
        let (_, frame) = run_prim(&mut mem, 17, &ints(&[4, 2]));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 16);
        let (_, frame) = run_prim(&mut mem, 17, &ints(&[16, -2]));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 4);
        let (out, _) = run_prim(&mut mem, 17, &ints(&[1, 62]));
        assert_eq!(out, NativeOutcome::Failure);
    }
}
