//! FFI / external-memory native methods (ids 100–159).
//!
//! These 60 primitives accelerate foreign-memory and structure access
//! over the simulated external region. **Every one of them is
//! implemented here, in the interpreter** — and *none* of them is
//! implemented by the 32-bit template compiler, reproducing the
//! paper's largest defect family (*missing functionality*, 60 cases in
//! Table 3: "several native methods introduced to accelerate FFI
//! memory and structure accesses were never implemented in the 32 bit
//! compiler version").
//!
//! Layout of the id space:
//!
//! * `100..=135` — 36 typed accessors: 6 access patterns × 6
//!   type/width combos. Pattern = `(id-100) / 6` ∈ {direct read,
//!   direct write, array read, array write, struct read, struct
//!   write}; combo = `(id-100) % 6` ∈ {i8, u8, i16, u16, i32, u32}.
//! * `136..=159` — 24 singleton primitives (allocate, copy, strlen,
//!   pointers, floats, C strings, atomics, bit fields, callbacks).

use super::{operands, succeed, NativeGroup, NativeMethodId, NativeMethodSpec, NativeOutcome};
use crate::context::{CmpKind, VmContext};
use crate::frame::Frame;
use igjit_heap::ClassIndex;

const TYPE_NAMES: [&str; 6] = ["Int8", "UInt8", "Int16", "UInt16", "Int32", "UInt32"];
const PATTERN_NAMES: [&str; 6] = ["Read", "Write", "ArrayRead", "ArrayWrite", "StructRead", "StructWrite"];

const SINGLETONS: [(u16, &str, u32); 24] = [
    (136, "primitiveFFIAllocate", 1),
    (137, "primitiveFFIFree", 0),
    (138, "primitiveFFIAddressAdd", 1),
    (139, "primitiveFFIAddressValue", 0),
    (140, "primitiveFFIIsNull", 0),
    (141, "primitiveFFICopy", 2),
    (142, "primitiveFFIFill", 2),
    (143, "primitiveFFIStrlen", 0),
    (144, "primitiveFFIPointerAt", 1),
    (145, "primitiveFFIPointerAtPut", 2),
    (146, "primitiveFFIReadFloat32", 1),
    (147, "primitiveFFIWriteFloat32", 2),
    (148, "primitiveFFIReadFloat64", 1),
    (149, "primitiveFFIWriteFloat64", 2),
    (150, "primitiveFFIReadCString", 1),
    (151, "primitiveFFIWriteCString", 2),
    (152, "primitiveFFIAtomicRead32", 1),
    (153, "primitiveFFIAtomicWrite32", 2),
    (154, "primitiveFFIBitFieldRead", 2),
    (155, "primitiveFFIBitFieldWrite", 3),
    (156, "primitiveFFICallbackRegister", 1),
    (157, "primitiveFFICallbackInvoke", 1),
    (158, "primitiveFFIExternalNew", 1),
    (159, "primitiveFFIExternalResize", 1),
];

pub(super) fn catalog() -> Vec<NativeMethodSpec> {
    let mut specs = Vec::new();
    for id in 100u16..=135 {
        let off = id - 100;
        let pattern = (off / 6) as usize;
        let combo = (off % 6) as usize;
        let is_write = pattern % 2 == 1;
        // reads take (offset) or (index); writes take (offset, value).
        let argc = if is_write { 2 } else { 1 };
        specs.push(NativeMethodSpec {
            id: NativeMethodId(id),
            name: format!("primitiveFFI{}{}", PATTERN_NAMES[pattern], TYPE_NAMES[combo]),
            group: NativeGroup::Ffi,
            argc,
        });
    }
    for (id, name, argc) in SINGLETONS {
        specs.push(NativeMethodSpec {
            id: NativeMethodId(id),
            name: name.to_string(),
            group: NativeGroup::Ffi,
            argc,
        });
    }
    specs
}

/// Width in bytes and signedness of the 6 type combos.
fn combo_type(combo: u16) -> (u32, bool) {
    match combo {
        0 => (1, true),
        1 => (1, false),
        2 => (2, true),
        3 => (2, false),
        4 => (4, true),
        _ => (4, false),
    }
}

pub(super) fn run<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    match id.0 {
        100..=135 => typed_accessor(ctx, frame, id.0 - 100),
        136 => allocate(ctx, frame),
        137 => free(ctx, frame),
        138 => address_add(ctx, frame),
        139 => address_value(ctx, frame),
        140 => is_null(ctx, frame),
        141 => copy(ctx, frame),
        142 => fill(ctx, frame),
        143 => strlen(ctx, frame),
        144 => pointer_at(ctx, frame),
        145 => pointer_at_put(ctx, frame),
        146 => read_float(ctx, frame, 4),
        147 => write_float(ctx, frame, 4),
        148 => read_float(ctx, frame, 8),
        149 => write_float(ctx, frame, 8),
        150 => read_c_string(ctx, frame),
        151 => write_c_string(ctx, frame),
        152 => atomic_read(ctx, frame),
        153 => atomic_write(ctx, frame),
        154 => bit_field_read(ctx, frame),
        155 => bit_field_write(ctx, frame),
        156 => callback_register(ctx, frame),
        157 => callback_invoke(ctx, frame),
        158 => external_new(ctx, frame),
        159 => external_resize(ctx, frame),
        _ => NativeOutcome::Unsupported { reason: "not an FFI primitive" },
    }
}

/// Validates the receiver is an external-address handle and answers
/// its raw address.
fn handle_address<C: VmContext>(ctx: &mut C, rcvr: C::V) -> Result<C::N, ()> {
    if !ctx.has_class(rcvr, ClassIndex::EXTERNAL_ADDRESS) {
        return Err(());
    }
    ctx.external_address_of(rcvr).map_err(|_| ())
}

/// Validates an integer argument and answers its value.
fn int_arg<C: VmContext>(ctx: &mut C, v: C::V) -> Result<C::N, ()> {
    if !ctx.is_integer_object(v) {
        return Err(());
    }
    Ok(ctx.integer_value_of(v))
}

fn nonneg<C: VmContext>(ctx: &mut C, n: C::N) -> bool {
    let zero = ctx.int_const(0);
    ctx.int_cmp(CmpKind::Ge, n, zero)
}

fn typed_accessor<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    off: u16,
) -> NativeOutcome<C::V> {
    let pattern = off / 6;
    let (width, signed) = combo_type(off % 6);
    let is_write = pattern % 2 == 1;
    let argc = if is_write { 2 } else { 1 };
    let Some((rcvr, args)) = operands(ctx, frame, argc) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(first) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !nonneg(ctx, first) {
        return NativeOutcome::Failure;
    }
    let addr = match pattern {
        0 | 1 => ctx.int_add(base, first), // direct: byte offset
        2 | 3 => {
            // array: 1-based index scaled by width
            let one = ctx.int_const(1);
            if !ctx.int_cmp(CmpKind::Ge, first, one) {
                return NativeOutcome::Failure;
            }
            let zero_based = ctx.int_sub(first, one);
            let w = ctx.int_const(i64::from(width));
            let scaled = ctx.int_mul(zero_based, w);
            ctx.int_add(base, scaled)
        }
        _ => {
            // struct: field offset, must be naturally aligned
            let w = ctx.int_const(i64::from(width));
            let rem = ctx.int_mod_floor(first, w);
            let zero = ctx.int_const(0);
            if !ctx.int_cmp(CmpKind::Eq, rem, zero) {
                return NativeOutcome::Failure;
            }
            ctx.int_add(base, first)
        }
    };
    if is_write {
        let Ok(value) = int_arg(ctx, args[1]) else {
            return NativeOutcome::Failure;
        };
        match ctx.ext_write(addr, width, value) {
            Ok(()) => succeed::<C>(frame, argc, args[1]),
            Err(_) => NativeOutcome::Failure,
        }
    } else {
        match ctx.ext_read(addr, width, signed) {
            Ok(v) => {
                if !ctx.is_integer_value(v) {
                    return NativeOutcome::Failure;
                }
                let obj = ctx.integer_object_of(v);
                succeed::<C>(frame, argc, obj)
            }
            Err(_) => NativeOutcome::Failure,
        }
    }
}

/// Bump allocation: the bump pointer lives in the first external word.
fn allocate<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((_, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(size) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let one = ctx.int_const(1);
    let cap = ctx.int_const(512);
    if !ctx.int_cmp(CmpKind::Ge, size, one) || !ctx.int_cmp(CmpKind::Le, size, cap) {
        return NativeOutcome::Failure;
    }
    let zero = ctx.int_const(0);
    let Ok(bump) = ctx.ext_read(zero, 4, false) else {
        return NativeOutcome::Failure;
    };
    // Reserve the first 8 bytes for allocator state.
    let eight = ctx.int_const(8);
    let base = ctx.int_add(bump, eight);
    let new_bump = ctx.int_add(bump, size);
    if ctx.ext_write(zero, 4, new_bump).is_err() {
        return NativeOutcome::Failure;
    }
    // Materialize a fresh handle. The handle address must be concrete;
    // allocate() concretizes internally.
    match make_handle(ctx, base) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(()) => NativeOutcome::Failure,
    }
}

/// Allocates an ExternalAddress handle object holding `addr`.
fn make_handle<C: VmContext>(ctx: &mut C, addr: C::N) -> Result<C::V, ()> {
    ctx.new_external_address(addr).map_err(|_| ())
}

fn free<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if handle_address(ctx, rcvr).is_err() {
        return NativeOutcome::Failure;
    }
    succeed::<C>(frame, 0, rcvr)
}

fn address_add<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(delta) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let addr = ctx.int_add(base, delta);
    if !nonneg(ctx, addr) {
        return NativeOutcome::Failure;
    }
    match make_handle(ctx, addr) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(()) => NativeOutcome::Failure,
    }
}

fn address_value<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(addr) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    if !ctx.is_integer_value(addr) {
        return NativeOutcome::Failure;
    }
    let v = ctx.integer_object_of(addr);
    succeed::<C>(frame, 0, v)
}

fn is_null<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(addr) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let null = ctx.int_cmp(CmpKind::Eq, addr, zero);
    let v = ctx.bool_obj(null);
    succeed::<C>(frame, 0, v)
}

fn copy<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(src) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(dst) = handle_address(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(n) = int_arg(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(256);
    if !ctx.int_cmp(CmpKind::Ge, n, zero) || !ctx.int_cmp(CmpKind::Le, n, cap) {
        return NativeOutcome::Failure;
    }
    let mut i = zero;
    loop {
        if !ctx.int_cmp(CmpKind::Lt, i, n) {
            break;
        }
        let s = ctx.int_add(src, i);
        let d = ctx.int_add(dst, i);
        let Ok(b) = ctx.ext_read(s, 1, false) else {
            return NativeOutcome::Failure;
        };
        if ctx.ext_write(d, 1, b).is_err() {
            return NativeOutcome::Failure;
        }
        let one = ctx.int_const(1);
        i = ctx.int_add(i, one);
    }
    succeed::<C>(frame, 2, rcvr)
}

fn fill<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(value) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(n) = int_arg(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(256);
    if !ctx.int_cmp(CmpKind::Ge, n, zero) || !ctx.int_cmp(CmpKind::Le, n, cap) {
        return NativeOutcome::Failure;
    }
    let mut i = zero;
    loop {
        if !ctx.int_cmp(CmpKind::Lt, i, n) {
            break;
        }
        let d = ctx.int_add(base, i);
        if ctx.ext_write(d, 1, value).is_err() {
            return NativeOutcome::Failure;
        }
        let one = ctx.int_const(1);
        i = ctx.int_add(i, one);
    }
    succeed::<C>(frame, 2, rcvr)
}

fn strlen<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let mut len = zero;
    // Bounded scan: a run past the region is a failure, not a crash.
    for _ in 0..4096 {
        let addr = ctx.int_add(base, len);
        let Ok(b) = ctx.ext_read(addr, 1, false) else {
            return NativeOutcome::Failure;
        };
        if ctx.int_cmp(CmpKind::Eq, b, zero) {
            let v = ctx.integer_object_of(len);
            return succeed::<C>(frame, 0, v);
        }
        let one = ctx.int_const(1);
        len = ctx.int_add(len, one);
    }
    NativeOutcome::Failure
}

fn pointer_at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    let Ok(p) = ctx.ext_read(addr, 4, false) else {
        return NativeOutcome::Failure;
    };
    match make_handle(ctx, p) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(()) => NativeOutcome::Failure,
    }
}

fn pointer_at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(target) = handle_address(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    if !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    match ctx.ext_write(addr, 4, target) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::Failure,
    }
}

fn read_float<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    bytes: u32,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    let Ok(lo) = ctx.ext_read(addr, 4, false) else {
        return NativeOutcome::Failure;
    };
    let f = if bytes == 4 {
        
        ctx.int_bits_to_f32(lo)
    } else {
        let four = ctx.int_const(4);
        let addr_hi = ctx.int_add(addr, four);
        let Ok(hi) = ctx.ext_read(addr_hi, 4, false) else {
            return NativeOutcome::Failure;
        };
        ctx.int_bits_to_f64(lo, hi)
    };
    match ctx.new_float(f) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(_) => NativeOutcome::Failure,
    }
}

fn write_float<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    bytes: u32,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !ctx.has_class(args[1], ClassIndex::FLOAT) {
        return NativeOutcome::Failure;
    }
    if !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let f = ctx.float_value_of(args[1]);
    let addr = ctx.int_add(base, off);
    let (lo, hi) = ctx.float_to_bits(f, bytes == 4);
    if ctx.ext_write(addr, 4, lo).is_err() {
        return NativeOutcome::Failure;
    }
    if bytes == 8 {
        let four = ctx.int_const(4);
        let addr_hi = ctx.int_add(addr, four);
        if ctx.ext_write(addr_hi, 4, hi).is_err() {
            return NativeOutcome::Failure;
        }
    }
    succeed::<C>(frame, 2, args[1])
}

fn read_c_string<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(max) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(256);
    if !ctx.int_cmp(CmpKind::Ge, max, zero) || !ctx.int_cmp(CmpKind::Le, max, cap) {
        return NativeOutcome::Failure;
    }
    // Collect bytes up to nul or max.
    let mut collected: Vec<C::N> = Vec::new();
    let mut i = zero;
    loop {
        if !ctx.int_cmp(CmpKind::Lt, i, max) {
            break;
        }
        let addr = ctx.int_add(base, i);
        let Ok(b) = ctx.ext_read(addr, 1, false) else {
            return NativeOutcome::Failure;
        };
        if ctx.int_cmp(CmpKind::Eq, b, zero) {
            break;
        }
        collected.push(b);
        let one = ctx.int_const(1);
        i = ctx.int_add(i, one);
    }
    let len = ctx.int_const(collected.len() as i64);
    let s = match ctx.allocate(ClassIndex::STRING, igjit_heap::ObjectFormat::Bytes, len) {
        Ok(s) => s,
        Err(_) => return NativeOutcome::Failure,
    };
    for (k, &b) in collected.iter().enumerate() {
        let idx = ctx.int_const(k as i64);
        if ctx.store_byte(s, idx, b).is_err() {
            return NativeOutcome::InvalidMemoryAccess;
        }
    }
    succeed::<C>(frame, 1, s)
}

fn write_c_string<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !ctx.has_class(args[1], ClassIndex::STRING) {
        return NativeOutcome::Failure;
    }
    if !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let Ok(len) = ctx.byte_count(args[1]) else {
        return NativeOutcome::Failure;
    };
    let start = ctx.int_add(base, off);
    let zero = ctx.int_const(0);
    let mut i = zero;
    loop {
        if !ctx.int_cmp(CmpKind::Lt, i, len) {
            break;
        }
        let Ok(b) = ctx.fetch_byte(args[1], i) else {
            return NativeOutcome::InvalidMemoryAccess;
        };
        let d = ctx.int_add(start, i);
        if ctx.ext_write(d, 1, b).is_err() {
            return NativeOutcome::Failure;
        }
        let one = ctx.int_const(1);
        i = ctx.int_add(i, one);
    }
    // Trailing nul.
    let d = ctx.int_add(start, len);
    if ctx.ext_write(d, 1, zero).is_err() {
        return NativeOutcome::Failure;
    }
    succeed::<C>(frame, 2, args[1])
}

fn atomic_read<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let four = ctx.int_const(4);
    let rem = ctx.int_mod_floor(off, four);
    let zero = ctx.int_const(0);
    if !ctx.int_cmp(CmpKind::Eq, rem, zero) || !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    match ctx.ext_read(addr, 4, false) {
        Ok(v) => {
            if !ctx.is_integer_value(v) {
                return NativeOutcome::Failure;
            }
            let obj = ctx.integer_object_of(v);
            succeed::<C>(frame, 1, obj)
        }
        Err(_) => NativeOutcome::Failure,
    }
}

fn atomic_write<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(value) = int_arg(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    let four = ctx.int_const(4);
    let rem = ctx.int_mod_floor(off, four);
    let zero = ctx.int_const(0);
    if !ctx.int_cmp(CmpKind::Eq, rem, zero) || !nonneg(ctx, off) {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    match ctx.ext_write(addr, 4, value) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::Failure,
    }
}

fn bit_field_read<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(bit) = int_arg(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let seven = ctx.int_const(7);
    if !nonneg(ctx, off)
        || !ctx.int_cmp(CmpKind::Ge, bit, zero)
        || !ctx.int_cmp(CmpKind::Le, bit, seven)
    {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    let Ok(byte) = ctx.ext_read(addr, 1, false) else {
        return NativeOutcome::Failure;
    };
    // Extract the bit with arithmetic the solver can ignore (the
    // result is concretized; §4.3: no bitwise theory).
    let neg = {
        let zero = ctx.int_const(0);
        ctx.int_sub(zero, bit)
    };
    let shifted = ctx.int_shift(byte, neg);
    let one = ctx.int_const(1);
    let bitv = ctx.int_bit_and(shifted, one);
    let v = ctx.integer_object_of(bitv);
    succeed::<C>(frame, 2, v)
}

fn bit_field_write<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 3) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(base) = handle_address(ctx, rcvr) else {
        return NativeOutcome::Failure;
    };
    let Ok(off) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let Ok(bit) = int_arg(ctx, args[1]) else {
        return NativeOutcome::Failure;
    };
    let Ok(value) = int_arg(ctx, args[2]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let seven = ctx.int_const(7);
    let one = ctx.int_const(1);
    if !nonneg(ctx, off)
        || !ctx.int_cmp(CmpKind::Ge, bit, zero)
        || !ctx.int_cmp(CmpKind::Le, bit, seven)
        || !ctx.int_cmp(CmpKind::Ge, value, zero)
        || !ctx.int_cmp(CmpKind::Le, value, one)
    {
        return NativeOutcome::Failure;
    }
    let addr = ctx.int_add(base, off);
    let Ok(byte) = ctx.ext_read(addr, 1, false) else {
        return NativeOutcome::Failure;
    };
    let mask = ctx.int_shift(one, bit);
    let or_mask = ctx.int_bit_or(byte, mask);
    let full = ctx.int_const(0xff);
    let inv = ctx.int_bit_xor(mask, full);
    let cleared = ctx.int_bit_and(byte, inv);
    let shifted_val = ctx.int_shift(value, bit);
    let is_set = ctx.int_cmp(CmpKind::Eq, value, one);
    let _ = shifted_val;
    let newb = if is_set { or_mask } else { cleared };
    if ctx.ext_write(addr, 1, newb).is_err() {
        return NativeOutcome::Failure;
    }
    succeed::<C>(frame, 3, args[2])
}

/// Callback table: byte 4 of the external region holds the registered
/// callback count.
fn callback_register<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if handle_address(ctx, rcvr).is_err() {
        return NativeOutcome::Failure;
    }
    let Ok(index) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(7);
    if !ctx.int_cmp(CmpKind::Ge, index, zero) || !ctx.int_cmp(CmpKind::Gt, cap, index) {
        return NativeOutcome::Failure;
    }
    let four = ctx.int_const(4);
    let slot = ctx.int_add(four, index);
    let one = ctx.int_const(1);
    if ctx.ext_write(slot, 1, one).is_err() {
        return NativeOutcome::Failure;
    }
    succeed::<C>(frame, 1, args[0])
}

fn callback_invoke<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if handle_address(ctx, rcvr).is_err() {
        return NativeOutcome::Failure;
    }
    let Ok(index) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(7);
    if !ctx.int_cmp(CmpKind::Ge, index, zero) || !ctx.int_cmp(CmpKind::Gt, cap, index) {
        return NativeOutcome::Failure;
    }
    let four = ctx.int_const(4);
    let slot = ctx.int_add(four, index);
    let Ok(mark) = ctx.ext_read(slot, 1, false) else {
        return NativeOutcome::Failure;
    };
    if !ctx.int_cmp(CmpKind::Ne, mark, zero) {
        // Unregistered callback: fail into image code.
        return NativeOutcome::Failure;
    }
    let v = ctx.integer_object_of(index);
    succeed::<C>(frame, 1, v)
}

fn external_new<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((_, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let Ok(addr) = int_arg(ctx, args[0]) else {
        return NativeOutcome::Failure;
    };
    if !nonneg(ctx, addr) {
        return NativeOutcome::Failure;
    }
    match make_handle(ctx, addr) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(()) => NativeOutcome::Failure,
    }
}

fn external_resize<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    // The simulated region is fixed-size; resizing always fails into
    // the image-side fallback (it still validates operands first).
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if handle_address(ctx, rcvr).is_err() {
        return NativeOutcome::Failure;
    }
    if int_arg(ctx, args[0]).is_err() {
        return NativeOutcome::Failure;
    }
    NativeOutcome::Failure
}

#[cfg(test)]
mod tests {
    use crate::natives::{run_native, NativeMethodId, NativeOutcome};
    use crate::{ConcreteContext, Frame, MethodInfo};
    use igjit_heap::{ObjectMemory, Oop};

    fn run_prim(mem: &mut ObjectMemory, id: u16, stack: &[Oop]) -> (NativeOutcome<Oop>, Frame<Oop>) {
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        for &v in stack {
            frame.push(v);
        }
        let mut ctx = ConcreteContext::new(mem);
        let out = run_native(&mut ctx, &mut frame, NativeMethodId(id));
        (out, frame)
    }

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn direct_read_write_roundtrip() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x40).unwrap();
        // 105 = DirectWrite? Pattern layout: 100..105 read (off/6==0),
        // 106..111 write. Write u32 (combo 5) = 111.
        let (out, _) = run_prim(&mut mem, 111, &[h, si(0), si(0x1234)]);
        assert!(matches!(out, NativeOutcome::Success { .. }), "{out:?}");
        // Read u32 = 105? combo 5 of pattern 0 = id 105.
        let (out, f) = run_prim(&mut mem, 105, &[h, si(0)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 0x1234);
    }

    #[test]
    fn signed_read_sign_extends() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x10).unwrap();
        // write u8 0xff (pattern 1 write, combo 1 u8 = id 107)
        let (out, _) = run_prim(&mut mem, 107, &[h, si(0), si(0xff)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        // read i8 (pattern 0 combo 0 = id 100) → -1
        let (_, f) = run_prim(&mut mem, 100, &[h, si(0)]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), -1);
        // read u8 (id 101) → 255
        let (_, f) = run_prim(&mut mem, 101, &[h, si(0)]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 255);
    }

    #[test]
    fn array_accessors_scale_by_width() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x20).unwrap();
        // ArrayWrite i16: pattern 3, combo 2 → id 100 + 18 + 2 = 120.
        let (out, _) = run_prim(&mut mem, 120, &[h, si(2), si(300)]);
        assert!(matches!(out, NativeOutcome::Success { .. }), "{out:?}");
        // ArrayRead i16: pattern 2, combo 2 → id 114.
        let (_, f) = run_prim(&mut mem, 114, &[h, si(2)]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 300);
        // Index 0 fails (1-based).
        let (out, _) = run_prim(&mut mem, 114, &[h, si(0)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn struct_accessors_require_alignment() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x20).unwrap();
        // StructRead i32: pattern 4, combo 4 → id 100+24+4 = 128.
        let (out, _) = run_prim(&mut mem, 128, &[h, si(2)]);
        assert_eq!(out, NativeOutcome::Failure, "offset 2 is not 4-aligned");
        let (out, _) = run_prim(&mut mem, 128, &[h, si(4)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
    }

    #[test]
    fn out_of_region_accesses_fail() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(100_000).unwrap();
        let (out, _) = run_prim(&mut mem, 100, &[h, si(0)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn non_handle_receiver_fails() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let (out, _) = run_prim(&mut mem, 100, &[arr, si(0)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 100, &[si(5), si(0)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn address_arithmetic_and_null() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        let h = mem.instantiate_external_address(0).unwrap();
        let (_, fr) = run_prim(&mut mem, 140, &[h]);
        assert_eq!(fr.stack_at_depth(0), t);
        let (out, fr) = run_prim(&mut mem, 138, &[h, si(16)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let h2 = fr.stack_at_depth(0);
        assert_eq!(mem.external_address_of(h2).unwrap(), 16);
        let (_, fr) = run_prim(&mut mem, 140, &[h2]);
        assert_eq!(fr.stack_at_depth(0), f);
        let (_, fr) = run_prim(&mut mem, 139, &[h2]);
        assert_eq!(fr.stack_at_depth(0).small_int_value(), 16);
    }

    #[test]
    fn fill_copy_strlen() {
        let mut mem = ObjectMemory::new();
        let src = mem.instantiate_external_address(0x100).unwrap();
        let dst = mem.instantiate_external_address(0x200).unwrap();
        let (out, _) = run_prim(&mut mem, 142, &[src, si(7), si(4)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, _) = run_prim(&mut mem, 141, &[src, dst, si(4)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(mem.external().read_uint(0x200, 1).unwrap(), 7);
        // strlen: 4 nonzero bytes then zeros.
        let (out, f) = run_prim(&mut mem, 143, &[dst]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 4);
    }

    #[test]
    fn float_roundtrip_through_external_memory() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x80).unwrap();
        let pi = mem.instantiate_float(3.140625).unwrap();
        let (out, _) = run_prim(&mut mem, 149, &[h, si(0), pi]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, f) = run_prim(&mut mem, 148, &[h, si(0)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(mem.float_value_of(f.stack_at_depth(0)).unwrap(), 3.140625);
    }

    #[test]
    fn c_string_roundtrip() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x300).unwrap();
        let s = mem.instantiate_bytes(igjit_heap::ClassIndex::STRING, b"hi").unwrap();
        let (out, _) = run_prim(&mut mem, 151, &[h, si(0), s]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, f) = run_prim(&mut mem, 150, &[h, si(16)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let out_str = f.stack_at_depth(0);
        assert_eq!(mem.byte_count(out_str).unwrap(), 2);
        assert_eq!(mem.fetch_byte(out_str, 0).unwrap(), b'h');
        assert_eq!(mem.fetch_byte(out_str, 1).unwrap(), b'i');
    }

    #[test]
    fn callbacks_register_then_invoke() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0).unwrap();
        let (out, _) = run_prim(&mut mem, 157, &[h, si(2)]);
        assert_eq!(out, NativeOutcome::Failure, "unregistered callback");
        let (out, _) = run_prim(&mut mem, 156, &[h, si(2)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, f) = run_prim(&mut mem, 157, &[h, si(2)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 2);
    }

    #[test]
    fn allocate_bumps_and_resize_fails() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0).unwrap();
        let (out, f) = run_prim(&mut mem, 136, &[h, si(16)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let first = f.stack_at_depth(0);
        let (out, f2) = run_prim(&mut mem, 136, &[h, si(16)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let second = f2.stack_at_depth(0);
        assert_ne!(
            mem.external_address_of(first).unwrap(),
            mem.external_address_of(second).unwrap()
        );
        let (out, _) = run_prim(&mut mem, 159, &[h, si(64)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn atomics_require_alignment() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x40).unwrap();
        let (out, _) = run_prim(&mut mem, 153, &[h, si(4), si(777)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, f) = run_prim(&mut mem, 152, &[h, si(4)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 777);
        // Misaligned offsets fail cleanly.
        let (out, _) = run_prim(&mut mem, 152, &[h, si(2)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 153, &[h, si(6), si(1)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn pointer_indirection() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x10).unwrap();
        let target = mem.instantiate_external_address(0x80).unwrap();
        // Store a pointer at [h+0], read it back as a fresh handle.
        let (out, _) = run_prim(&mut mem, 145, &[h, si(0), target]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let (out, f) = run_prim(&mut mem, 144, &[h, si(0)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let loaded = f.stack_at_depth(0);
        assert_eq!(mem.external_address_of(loaded).unwrap(), 0x80);
    }

    #[test]
    fn bit_fields() {
        let mut mem = ObjectMemory::new();
        let h = mem.instantiate_external_address(0x60).unwrap();
        let (out, _) = run_prim(&mut mem, 155, &[h, si(0), si(3), si(1)]);
        assert!(matches!(out, NativeOutcome::Success { .. }), "{out:?}");
        let (out, f) = run_prim(&mut mem, 154, &[h, si(0), si(3)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 1);
        let (_, f) = run_prim(&mut mem, 154, &[h, si(0), si(4)]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 0);
        let (out, _) = run_prim(&mut mem, 154, &[h, si(0), si(8)]);
        assert_eq!(out, NativeOutcome::Failure);
    }
}
