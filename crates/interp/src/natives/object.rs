//! Object access, allocation, identity and reflection natives
//! (ids 60–80).

use super::{operands, succeed, NativeGroup, NativeMethodId, NativeMethodSpec, NativeOutcome};
use crate::context::{CmpKind, VmContext};
use crate::frame::Frame;
use igjit_heap::{ClassIndex, ObjectFormat};

pub(super) fn catalog() -> Vec<NativeMethodSpec> {
    let names: [(u16, &str, u32); 21] = [
        (60, "primitiveAt", 1),
        (61, "primitiveAtPut", 2),
        (62, "primitiveSize", 0),
        (63, "primitiveStringAt", 1),
        (64, "primitiveStringAtPut", 2),
        (65, "primitiveStringSize", 0),
        (66, "primitiveByteAt", 1),
        (67, "primitiveByteAtPut", 2),
        (68, "primitiveObjectAt", 1),
        (69, "primitiveObjectAtPut", 2),
        (70, "primitiveNew", 0),
        (71, "primitiveNewWithArg", 1),
        (72, "primitiveWordAt", 1),
        (73, "primitiveWordAtPut", 2),
        (74, "primitiveInstVarAt", 1),
        (75, "primitiveInstVarAtPut", 2),
        (76, "primitiveIdentityHash", 0),
        (77, "primitiveClassIndex", 0),
        (78, "primitiveIdentical", 1),
        (79, "primitiveNotIdentical", 1),
        (80, "primitiveShallowCopy", 0),
    ];
    names
        .into_iter()
        .map(|(id, name, argc)| NativeMethodSpec {
            id: NativeMethodId(id),
            name: name.to_string(),
            group: NativeGroup::Object,
            argc,
        })
        .collect()
}

pub(super) fn run<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    id: NativeMethodId,
) -> NativeOutcome<C::V> {
    match id.0 {
        60 => at(ctx, frame),
        61 => at_put(ctx, frame),
        62 => size(ctx, frame),
        63 => byte_like_at(ctx, frame, ClassIndex::STRING),
        64 => byte_like_at_put(ctx, frame, ClassIndex::STRING),
        65 => string_size(ctx, frame),
        66 => byte_like_at(ctx, frame, ClassIndex::BYTE_ARRAY),
        67 => byte_like_at_put(ctx, frame, ClassIndex::BYTE_ARRAY),
        68 => object_at(ctx, frame),
        69 => object_at_put(ctx, frame),
        70 => new(ctx, frame),
        71 => new_with_arg(ctx, frame),
        72 => word_at(ctx, frame),
        73 => word_at_put(ctx, frame),
        74 => inst_var_at(ctx, frame),
        75 => inst_var_at_put(ctx, frame),
        76 => identity_hash(ctx, frame),
        77 => class_index(ctx, frame),
        78 => identical(ctx, frame, true),
        79 => identical(ctx, frame, false),
        80 => shallow_copy(ctx, frame),
        _ => NativeOutcome::Unsupported { reason: "not an Object primitive" },
    }
}

/// Checks `idx_obj` is a SmallInteger in `1..=limit`; returns the
/// 0-based index. `None` means a (clean) primitive failure.
fn checked_index<C: VmContext>(ctx: &mut C, idx_obj: C::V, limit: C::N) -> Option<C::N> {
    if !ctx.is_integer_object(idx_obj) {
        return None;
    }
    let idx = ctx.integer_value_of(idx_obj);
    let one = ctx.int_const(1);
    if !ctx.int_cmp(CmpKind::Ge, idx, one) {
        return None;
    }
    if !ctx.int_cmp(CmpKind::Le, idx, limit) {
        return None;
    }
    Some(ctx.int_sub(idx, one))
}

fn at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::ARRAY) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.slot_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.fetch_slot(rcvr, idx) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::ARRAY) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.slot_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.store_slot(rcvr, idx, args[1]) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn size<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if ctx.has_class(rcvr, ClassIndex::ARRAY) {
        let Ok(n) = ctx.slot_count(rcvr) else {
            return NativeOutcome::Failure;
        };
        let v = ctx.integer_object_of(n);
        return succeed::<C>(frame, 0, v);
    }
    if ctx.has_class(rcvr, ClassIndex::BYTE_ARRAY) || ctx.has_class(rcvr, ClassIndex::STRING) {
        let Ok(n) = ctx.byte_count(rcvr) else {
            return NativeOutcome::Failure;
        };
        let v = ctx.integer_object_of(n);
        return succeed::<C>(frame, 0, v);
    }
    NativeOutcome::Failure
}

fn string_size<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::STRING) {
        return NativeOutcome::Failure;
    }
    let Ok(n) = ctx.byte_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let v = ctx.integer_object_of(n);
    succeed::<C>(frame, 0, v)
}

fn byte_like_at<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    class: ClassIndex,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, class) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.byte_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.fetch_byte(rcvr, idx) {
        Ok(b) => {
            let v = ctx.integer_object_of(b);
            succeed::<C>(frame, 1, v)
        }
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn byte_like_at_put<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    class: ClassIndex,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, class) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.byte_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    // The stored value must be a byte-ranged SmallInteger.
    if !ctx.is_integer_object(args[1]) {
        return NativeOutcome::Failure;
    }
    let value = ctx.integer_value_of(args[1]);
    let zero = ctx.int_const(0);
    let max = ctx.int_const(255);
    if !ctx.int_cmp(CmpKind::Ge, value, zero) || !ctx.int_cmp(CmpKind::Le, value, max) {
        return NativeOutcome::Failure;
    }
    match ctx.store_byte(rcvr, idx, value) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

/// `objectAt:` — raw 1-based slot read on any pointer-format object
/// (used to reflect over compiled-method literal frames).
fn object_at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if ctx.is_integer_object(rcvr) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.slot_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.fetch_slot(rcvr, idx) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn object_at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    if ctx.is_integer_object(rcvr) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.slot_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.store_slot(rcvr, idx, args[1]) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

/// `basicNew` — the receiver is a *class index* (classes are not
/// reified as heap objects in this reproduction).
fn new<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.is_integer_object(rcvr) {
        return NativeOutcome::Failure;
    }
    let class_val = ctx.integer_value_of(rcvr);
    let lo = ctx.int_const(1);
    let hi = ctx.int_const(64);
    if !ctx.int_cmp(CmpKind::Ge, class_val, lo) || !ctx.int_cmp(CmpKind::Le, class_val, hi) {
        return NativeOutcome::Failure;
    }
    let zero = ctx.int_const(0);
    match ctx.allocate(ClassIndex::OBJECT, ObjectFormat::Fixed, zero) {
        Ok(v) => succeed::<C>(frame, 0, v),
        Err(_) => NativeOutcome::Failure,
    }
}

fn new_with_arg<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.is_integer_object(rcvr) {
        return NativeOutcome::Failure;
    }
    let class_val = ctx.integer_value_of(rcvr);
    let lo = ctx.int_const(1);
    let hi = ctx.int_const(64);
    if !ctx.int_cmp(CmpKind::Ge, class_val, lo) || !ctx.int_cmp(CmpKind::Le, class_val, hi) {
        return NativeOutcome::Failure;
    }
    if !ctx.is_integer_object(args[0]) {
        return NativeOutcome::Failure;
    }
    let count = ctx.integer_value_of(args[0]);
    let zero = ctx.int_const(0);
    let cap = ctx.int_const(100_000);
    if !ctx.int_cmp(CmpKind::Ge, count, zero) || !ctx.int_cmp(CmpKind::Le, count, cap) {
        return NativeOutcome::Failure;
    }
    match ctx.allocate(ClassIndex::ARRAY, ObjectFormat::Indexable, count) {
        Ok(v) => succeed::<C>(frame, 1, v),
        Err(_) => NativeOutcome::Failure,
    }
}

fn word_at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::WORD_ARRAY) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.element_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    match ctx.fetch_word(rcvr, idx) {
        Ok(w) => {
            // A raw 32-bit word may not fit the tagged range.
            if !ctx.is_integer_value(w) {
                return NativeOutcome::Failure;
            }
            let v = ctx.integer_object_of(w);
            succeed::<C>(frame, 1, v)
        }
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn word_at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 2) else {
        return NativeOutcome::InvalidFrame;
    };
    if !ctx.has_class(rcvr, ClassIndex::WORD_ARRAY) {
        return NativeOutcome::Failure;
    }
    let Ok(limit) = ctx.element_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let Some(idx) = checked_index(ctx, args[0], limit) else {
        return NativeOutcome::Failure;
    };
    if !ctx.is_integer_object(args[1]) {
        return NativeOutcome::Failure;
    }
    let value = ctx.integer_value_of(args[1]);
    let zero = ctx.int_const(0);
    if !ctx.int_cmp(CmpKind::Ge, value, zero) {
        return NativeOutcome::Failure;
    }
    match ctx.store_word(rcvr, idx, value) {
        Ok(()) => succeed::<C>(frame, 2, args[1]),
        Err(_) => NativeOutcome::InvalidMemoryAccess,
    }
}

fn inst_var_at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    object_at(ctx, frame)
}

fn inst_var_at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    object_at_put(ctx, frame)
}

fn identity_hash<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    match ctx.identity_hash(rcvr) {
        Ok(h) => {
            let v = ctx.integer_object_of(h);
            succeed::<C>(frame, 0, v)
        }
        Err(_) => NativeOutcome::Failure,
    }
}

fn class_index<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    let idx = ctx.class_index_as_int(rcvr);
    let v = ctx.integer_object_of(idx);
    succeed::<C>(frame, 0, v)
}

fn identical<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    want_same: bool,
) -> NativeOutcome<C::V> {
    let Some((rcvr, args)) = operands(ctx, frame, 1) else {
        return NativeOutcome::InvalidFrame;
    };
    let same = ctx.value_identical(rcvr, args[0]);
    let v = ctx.bool_obj(same == want_same);
    succeed::<C>(frame, 1, v)
}

fn shallow_copy<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> NativeOutcome<C::V> {
    let Some((rcvr, _)) = operands(ctx, frame, 0) else {
        return NativeOutcome::InvalidFrame;
    };
    if ctx.is_integer_object(rcvr) {
        // Immediate values are their own copy.
        return succeed::<C>(frame, 0, rcvr);
    }
    if !ctx.has_class(rcvr, ClassIndex::ARRAY) {
        // Only indexable pointer objects are copied by this primitive;
        // everything else falls back to the image-side implementation.
        return NativeOutcome::Failure;
    }
    let Ok(count) = ctx.slot_count(rcvr) else {
        return NativeOutcome::Failure;
    };
    let copy = match ctx.allocate(ClassIndex::ARRAY, ObjectFormat::Indexable, count) {
        Ok(v) => v,
        Err(_) => return NativeOutcome::Failure,
    };
    // Copy slots one by one; the count was just read, so accesses are
    // in bounds unless the heap is corrupted.
    let zero = ctx.int_const(0);
    let mut i = zero;
    loop {
        if !ctx.int_cmp(CmpKind::Lt, i, count) {
            break;
        }
        let v = match ctx.fetch_slot(rcvr, i) {
            Ok(v) => v,
            Err(_) => return NativeOutcome::InvalidMemoryAccess,
        };
        if ctx.store_slot(copy, i, v).is_err() {
            return NativeOutcome::InvalidMemoryAccess;
        }
        let one = ctx.int_const(1);
        i = ctx.int_add(i, one);
    }
    succeed::<C>(frame, 0, copy)
}

#[cfg(test)]
mod tests {
    use crate::natives::{run_native, NativeMethodId, NativeOutcome};
    use crate::{ConcreteContext, Frame, MethodInfo};
    use igjit_heap::{ClassIndex, ObjectMemory, Oop};

    fn run_prim(mem: &mut ObjectMemory, id: u16, stack: &[Oop]) -> (NativeOutcome<Oop>, Frame<Oop>) {
        let nil = mem.nil();
        let mut frame = Frame::new(nil, MethodInfo::empty());
        for &v in stack {
            frame.push(v);
        }
        let mut ctx = ConcreteContext::new(mem);
        let out = run_native(&mut ctx, &mut frame, NativeMethodId(id));
        (out, frame)
    }

    #[test]
    fn at_bounds_and_types() {
        let mut mem = ObjectMemory::new();
        let arr = mem
            .instantiate_array(&[Oop::from_small_int(10), Oop::from_small_int(20)])
            .unwrap();
        let (out, frame) = run_prim(&mut mem, 60, &[arr, Oop::from_small_int(1)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 10);

        let (out, _) = run_prim(&mut mem, 60, &[arr, Oop::from_small_int(0)]);
        assert_eq!(out, NativeOutcome::Failure, "1-based indexing");
        let (out, _) = run_prim(&mut mem, 60, &[arr, Oop::from_small_int(3)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 60, &[arr, arr]);
        assert_eq!(out, NativeOutcome::Failure, "index must be an integer");
        let (out, _) = run_prim(&mut mem, 60, &[Oop::from_small_int(5), Oop::from_small_int(1)]);
        assert_eq!(out, NativeOutcome::Failure, "receiver must be an Array");
    }

    #[test]
    fn at_put_stores() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[Oop::from_small_int(0)]).unwrap();
        let (out, frame) =
            run_prim(&mut mem, 61, &[arr, Oop::from_small_int(1), Oop::from_small_int(99)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(frame.stack_at_depth(0).small_int_value(), 99, "at:put: answers the value");
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap().small_int_value(), 99);
    }

    #[test]
    fn size_variants() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[Oop::from_small_int(0)]).unwrap();
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[1, 2, 3]).unwrap();
        let string = mem.instantiate_bytes(ClassIndex::STRING, b"hello").unwrap();
        let (_, f) = run_prim(&mut mem, 62, &[arr]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 1);
        let (_, f) = run_prim(&mut mem, 62, &[bytes]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 3);
        let (_, f) = run_prim(&mut mem, 65, &[string]);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 5);
        let (out, _) = run_prim(&mut mem, 62, &[Oop::from_small_int(5)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 65, &[bytes]);
        assert_eq!(out, NativeOutcome::Failure, "stringSize wants a String");
    }

    #[test]
    fn string_and_byte_accessors_are_class_strict() {
        let mut mem = ObjectMemory::new();
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[7]).unwrap();
        let string = mem.instantiate_bytes(ClassIndex::STRING, b"a").unwrap();
        let one = Oop::from_small_int(1);
        let (out, f) = run_prim(&mut mem, 66, &[bytes, one]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 7);
        let (out, _) = run_prim(&mut mem, 66, &[string, one]);
        assert_eq!(out, NativeOutcome::Failure, "byteAt rejects Strings");
        let (out, _) = run_prim(&mut mem, 63, &[bytes, one]);
        assert_eq!(out, NativeOutcome::Failure, "stringAt rejects ByteArrays");
    }

    #[test]
    fn byte_at_put_validates_the_byte_range() {
        let mut mem = ObjectMemory::new();
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[0]).unwrap();
        let one = Oop::from_small_int(1);
        let (out, _) = run_prim(&mut mem, 67, &[bytes, one, Oop::from_small_int(256)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 67, &[bytes, one, Oop::from_small_int(-1)]);
        assert_eq!(out, NativeOutcome::Failure);
        let (out, _) = run_prim(&mut mem, 67, &[bytes, one, Oop::from_small_int(255)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(mem.fetch_byte(bytes, 0).unwrap(), 255);
    }

    #[test]
    fn new_with_arg_allocates_arrays() {
        let mut mem = ObjectMemory::new();
        let class = Oop::from_small_int(i64::from(ClassIndex::ARRAY.value()));
        let (out, frame) = run_prim(&mut mem, 71, &[class, Oop::from_small_int(3)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let arr = frame.stack_at_depth(0);
        assert_eq!(mem.slot_count(arr).unwrap(), 3);
        let (out, _) = run_prim(&mut mem, 71, &[class, Oop::from_small_int(-1)]);
        assert_eq!(out, NativeOutcome::Failure);
    }

    #[test]
    fn identity_primitives() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let a = mem.instantiate_array(&[]).unwrap();
        let b = mem.instantiate_array(&[]).unwrap();
        let (_, f) = run_prim(&mut mem, 78, &[a, a]);
        assert_eq!(f.stack_at_depth(0), t);
        let (_, f) = run_prim(&mut mem, 79, &[a, b]);
        assert_eq!(f.stack_at_depth(0), t);
    }

    #[test]
    fn identity_hash_and_class_index() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[]).unwrap();
        let (out, f) = run_prim(&mut mem, 76, &[a]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(
            f.stack_at_depth(0).small_int_value(),
            i64::from(mem.identity_hash(a).unwrap())
        );
        let (_, f) = run_prim(&mut mem, 77, &[a]);
        assert_eq!(
            f.stack_at_depth(0).small_int_value(),
            i64::from(ClassIndex::ARRAY.value())
        );
        let (_, f) = run_prim(&mut mem, 77, &[Oop::from_small_int(3)]);
        assert_eq!(
            f.stack_at_depth(0).small_int_value(),
            i64::from(ClassIndex::SMALL_INTEGER.value())
        );
    }

    #[test]
    fn shallow_copy_copies_arrays() {
        let mut mem = ObjectMemory::new();
        let a = mem
            .instantiate_array(&[Oop::from_small_int(1), Oop::from_small_int(2)])
            .unwrap();
        let (out, f) = run_prim(&mut mem, 80, &[a]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        let copy = f.stack_at_depth(0);
        assert_ne!(copy, a);
        assert_eq!(mem.fetch_pointer(copy, 0).unwrap().small_int_value(), 1);
        assert_eq!(mem.fetch_pointer(copy, 1).unwrap().small_int_value(), 2);
        // SmallInteger receivers answer themselves.
        let (out, f) = run_prim(&mut mem, 80, &[Oop::from_small_int(5)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 5);
    }

    #[test]
    fn object_at_reads_raw_slots() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_array(&[Oop::from_small_int(11)]).unwrap();
        let (out, f) = run_prim(&mut mem, 68, &[a, Oop::from_small_int(1)]);
        assert!(matches!(out, NativeOutcome::Success { .. }));
        assert_eq!(f.stack_at_depth(0).small_int_value(), 11);
        let (out, _) = run_prim(&mut mem, 68, &[Oop::from_small_int(1), Oop::from_small_int(1)]);
        assert_eq!(out, NativeOutcome::Failure);
    }
}
