//! The bytecode interpreter, written once, generic over [`VmContext`].
//!
//! This is the reproduction's analogue of the Pharo interpreter the
//! paper meta-interprets: `bytecodePrimAdd` (Listing 1) appears here as
//! the `Add` arm of [`step`], with the same structure — static type
//! prediction inlining the SmallInteger **and** Float cases, overflow
//! check, and a `normalSend` slow path.
//!
//! Because every semantic operation goes through the context trait, the
//! concolic engine replays *this exact function* to discover paths;
//! there is no second encoding of the semantics anywhere in the
//! repository.

use igjit_bytecode::{Instruction, SpecialSelector};
use igjit_heap::ClassIndex;

use crate::context::{CmpKind, VmContext};
use crate::exit::{Selector, StepOutcome};
use crate::frame::Frame;

macro_rules! frame_try {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(_) => return StepOutcome::InvalidFrame,
        }
    };
}

macro_rules! mem_try {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(_) => return StepOutcome::InvalidMemoryAccess,
        }
    };
}

/// A resolved per-opcode step function (see [`resolve_step`]).
///
/// Every function behind this pointer re-extracts its immediates from
/// the [`Instruction`] it is handed, so the pointer alone — resolved
/// once, at predecode time — carries the whole dispatch decision out
/// of the fetch loop.
pub type StepFn<C> = fn(
    &mut C,
    &mut Frame<<C as VmContext>::V>,
    Instruction,
) -> StepOutcome<<C as VmContext>::V>;

/// Executes one bytecode instruction against `frame`.
///
/// The returned [`StepOutcome`] carries both the control effect
/// (continue/jump/return/send) and the §3.4 exit condition the
/// differential tester compares.
///
/// Implemented as [`resolve_step`] followed by the resolved call, so
/// the predecoded pipeline (which resolves once and calls many times)
/// is step-for-step identical to this function by construction.
pub fn step<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    instr: Instruction,
) -> StepOutcome<C::V> {
    (resolve_step::<C>(instr))(ctx, frame, instr)
}

/// Resolves an instruction to its standalone step function — the
/// dispatch half of [`step`], split out so a fetch loop (or the
/// concolic negation walk, which executes one instruction against
/// hundreds of solver models) pays for the opcode match once instead
/// of once per execution.
pub fn resolve_step<C: VmContext>(instr: Instruction) -> StepFn<C> {
    use Instruction as I;
    match instr {
        // --- pushes ---------------------------------------------------
        I::PushReceiverVariable(_) | I::PushReceiverVariableLong(_) => {
            steps::push_receiver_variable
        }
        I::PushTemp(_) | I::PushTempLong(_) => steps::push_temp,
        I::PushLiteralConstant(_) | I::PushLiteralLong(_) => steps::push_literal_constant,
        I::PushLiteralVariable(_) => steps::push_literal_variable,
        I::PushReceiver => steps::push_receiver,
        I::PushTrue => steps::push_true,
        I::PushFalse => steps::push_false,
        I::PushNil => steps::push_nil,
        I::PushZero | I::PushOne | I::PushMinusOne | I::PushTwo | I::PushInteger(_) => {
            steps::push_small_int
        }
        I::PushThisContext => steps::push_this_context,

        // --- stack shuffling ------------------------------------------
        I::Dup => steps::dup,
        I::Pop => steps::pop,

        // --- stores ----------------------------------------------------
        I::PopIntoTemp(_) => steps::pop_into_temp,
        I::StoreTemp(_) | I::StoreTempLong(_) => steps::store_temp,
        I::PopIntoReceiverVariable(_) => steps::pop_into_receiver_variable,
        I::StoreReceiverVariableLong(_) => steps::store_receiver_variable_long,

        // --- inlined arithmetic (static type prediction) ----------------
        I::Add | I::Subtract | I::Multiply => steps::arith,
        I::Divide => steps::divide,
        I::Modulo | I::IntegerDivide => steps::modulo_like,
        I::LessThan
        | I::GreaterThan
        | I::LessOrEqual
        | I::GreaterOrEqual
        | I::Equal
        | I::NotEqual => steps::compare,
        I::IdentityEqual => steps::identity_equal,
        I::BitAnd | I::BitOr | I::BitShift => steps::bitwise,

        // --- special sends with quick paths ------------------------------
        I::SpecialSendAt => steps::special_at,
        I::SpecialSendAtPut => steps::special_at_put,
        I::SpecialSendSize => steps::special_size,
        I::SpecialSendValue | I::SpecialSendNew | I::SpecialSendClass => steps::special_unary,

        // --- generic sends -------------------------------------------------
        I::Send { .. } => steps::send,

        // --- returns ----------------------------------------------------------
        I::ReturnReceiver => steps::return_receiver,
        I::ReturnTrue => steps::return_true,
        I::ReturnFalse => steps::return_false,
        I::ReturnNil => steps::return_nil,
        I::ReturnTop => steps::return_top,

        // --- jumps ---------------------------------------------------------------
        I::ShortJumpForward(_) | I::LongJumpForward(_) => steps::jump_forward,
        I::ShortJumpTrue(_) | I::ShortJumpFalse(_) | I::LongJumpTrue(_) | I::LongJumpFalse(_) => {
            steps::conditional_jump
        }

        I::Nop => steps::nop,
    }
}

/// The per-opcode step bodies, one standalone function per semantic
/// group, all with the uniform [`StepFn`] signature so they can be
/// stored in predecoded step arrays and called without re-matching
/// the opcode. Each function only accepts the instructions
/// [`resolve_step`] routes to it and panics on any other — the
/// resolver is the single source of truth for the pairing.
pub mod steps {
    use super::*;

    /// Instruction/step-function mismatch: only reachable by calling a
    /// step function directly with an instruction [`resolve_step`]
    /// does not route to it.
    macro_rules! wrong_instr {
        ($i:expr) => {
            unreachable!("step function called with unrouted instruction {:?}", $i)
        };
    }

    /// `PushReceiverVariable`/`PushReceiverVariableLong`.
    pub fn push_receiver_variable<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let n = match instr {
            Instruction::PushReceiverVariable(n) => u32::from(n),
            Instruction::PushReceiverVariableLong(n) => u32::from(n),
            other => wrong_instr!(other),
        };
        super::push_receiver_variable(ctx, frame, n)
    }

    /// `PushTemp`/`PushTempLong`.
    pub fn push_temp<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let n = match instr {
            Instruction::PushTemp(n) | Instruction::PushTempLong(n) => n,
            other => wrong_instr!(other),
        };
        let v = frame_try!(ctx.temp(frame, usize::from(n)));
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushLiteralConstant`/`PushLiteralLong`.
    pub fn push_literal_constant<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let n = match instr {
            Instruction::PushLiteralConstant(n) | Instruction::PushLiteralLong(n) => n,
            other => wrong_instr!(other),
        };
        let v = frame_try!(ctx.literal(frame, usize::from(n)));
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushLiteralVariable`: the literal holds an Association; push
    /// its value slot. Unsafe by design: no class check on the
    /// association.
    pub fn push_literal_variable<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let Instruction::PushLiteralVariable(n) = instr else { wrong_instr!(instr) };
        let assoc = frame_try!(ctx.literal(frame, usize::from(n)));
        let one = ctx.int_const(1);
        let v = mem_try!(ctx.fetch_slot(assoc, one));
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushReceiver`.
    pub fn push_receiver<C: VmContext>(
        _ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let r = frame.receiver;
        frame.push(r);
        StepOutcome::Continue
    }

    /// `PushTrue`.
    pub fn push_true<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.true_obj();
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushFalse`.
    pub fn push_false<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.false_obj();
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushNil`.
    pub fn push_nil<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.nil();
        frame.push(v);
        StepOutcome::Continue
    }

    /// `PushZero`/`PushOne`/`PushMinusOne`/`PushTwo`/`PushInteger`.
    pub fn push_small_int<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = match instr {
            Instruction::PushZero => 0,
            Instruction::PushOne => 1,
            Instruction::PushMinusOne => -1,
            Instruction::PushTwo => 2,
            Instruction::PushInteger(v) => i64::from(v),
            other => wrong_instr!(other),
        };
        super::push_int_const(ctx, frame, v)
    }

    /// `PushThisContext` (curated out, §5.2).
    pub fn push_this_context<C: VmContext>(
        _ctx: &mut C,
        _frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        StepOutcome::Unsupported {
            reason: "stack-frame reification (lazy context-to-stack mapping)",
        }
    }

    /// `Dup`.
    pub fn dup<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = frame_try!(ctx.stack_value(frame, 0));
        frame.push(v);
        StepOutcome::Continue
    }

    /// `Pop`.
    pub fn pop<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        frame_try!(ctx.stack_value(frame, 0));
        frame.pop_n(1);
        StepOutcome::Continue
    }

    /// `PopIntoTemp`.
    pub fn pop_into_temp<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let Instruction::PopIntoTemp(n) = instr else { wrong_instr!(instr) };
        let v = frame_try!(ctx.stack_value(frame, 0));
        frame_try!(ctx.set_temp(frame, usize::from(n), v));
        frame.pop_n(1);
        StepOutcome::Continue
    }

    /// `StoreTemp`/`StoreTempLong`.
    pub fn store_temp<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let n = match instr {
            Instruction::StoreTemp(n) | Instruction::StoreTempLong(n) => n,
            other => wrong_instr!(other),
        };
        let v = frame_try!(ctx.stack_value(frame, 0));
        frame_try!(ctx.set_temp(frame, usize::from(n), v));
        StepOutcome::Continue
    }

    /// `PopIntoReceiverVariable`.
    pub fn pop_into_receiver_variable<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let Instruction::PopIntoReceiverVariable(n) = instr else { wrong_instr!(instr) };
        let v = frame_try!(ctx.stack_value(frame, 0));
        let r = frame.receiver;
        let idx = ctx.int_const(i64::from(n));
        mem_try!(ctx.store_slot(r, idx, v));
        frame.pop_n(1);
        StepOutcome::Continue
    }

    /// `StoreReceiverVariableLong`.
    pub fn store_receiver_variable_long<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let Instruction::StoreReceiverVariableLong(n) = instr else { wrong_instr!(instr) };
        let v = frame_try!(ctx.stack_value(frame, 0));
        let r = frame.receiver;
        let idx = ctx.int_const(i64::from(n));
        mem_try!(ctx.store_slot(r, idx, v));
        StepOutcome::Continue
    }

    /// `Add`/`Subtract`/`Multiply` (Listing 1 with the Float fast
    /// path).
    pub fn arith<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let op = match instr {
            Instruction::Add => ArithOp::Add,
            Instruction::Subtract => ArithOp::Sub,
            Instruction::Multiply => ArithOp::Mul,
            other => wrong_instr!(other),
        };
        super::binary_arith(ctx, frame, op)
    }

    /// `Divide` (exact division only on the fast path).
    pub fn divide<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        super::divide(ctx, frame)
    }

    /// `Modulo`/`IntegerDivide`.
    pub fn modulo_like<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let op = match instr {
            Instruction::Modulo => ModOp::Modulo,
            Instruction::IntegerDivide => ModOp::FloorDivide,
            other => wrong_instr!(other),
        };
        super::modulo_like(ctx, frame, op)
    }

    /// The six inlined comparison bytecodes.
    pub fn compare<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let (op, selector) = match instr {
            Instruction::LessThan => (CmpKind::Lt, SpecialSelector::LessThan),
            Instruction::GreaterThan => (CmpKind::Gt, SpecialSelector::GreaterThan),
            Instruction::LessOrEqual => (CmpKind::Le, SpecialSelector::LessOrEqual),
            Instruction::GreaterOrEqual => (CmpKind::Ge, SpecialSelector::GreaterOrEqual),
            Instruction::Equal => (CmpKind::Eq, SpecialSelector::Equal),
            Instruction::NotEqual => (CmpKind::Ne, SpecialSelector::NotEqual),
            other => wrong_instr!(other),
        };
        super::binary_compare(ctx, frame, op, selector)
    }

    /// `IdentityEqual`.
    pub fn identity_equal<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let arg = frame_try!(ctx.stack_value(frame, 0));
        let rcvr = frame_try!(ctx.stack_value(frame, 1));
        let same = ctx.value_identical(rcvr, arg);
        let b = ctx.bool_obj(same);
        frame.pop_n(2);
        frame.push(b);
        StepOutcome::Continue
    }

    /// `BitAnd`/`BitOr`/`BitShift`.
    pub fn bitwise<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let op = match instr {
            Instruction::BitAnd => BitOp::And,
            Instruction::BitOr => BitOp::Or,
            Instruction::BitShift => BitOp::Shift,
            other => wrong_instr!(other),
        };
        super::bitwise(ctx, frame, op)
    }

    /// `SpecialSendAt`.
    pub fn special_at<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        super::special_at(ctx, frame)
    }

    /// `SpecialSendAtPut`.
    pub fn special_at_put<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        super::special_at_put(ctx, frame)
    }

    /// `SpecialSendSize`.
    pub fn special_size<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        super::special_size(ctx, frame)
    }

    /// `SpecialSendValue`/`SpecialSendNew`/`SpecialSendClass` — no
    /// quick path, always a send.
    pub fn special_unary<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let selector = match instr {
            Instruction::SpecialSendValue => SpecialSelector::Value,
            Instruction::SpecialSendNew => SpecialSelector::New,
            Instruction::SpecialSendClass => SpecialSelector::Class,
            other => wrong_instr!(other),
        };
        super::unary_send(ctx, frame, selector)
    }

    /// `Send { lit, nargs }`.
    pub fn send<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let Instruction::Send { lit, nargs } = instr else { wrong_instr!(instr) };
        let selector = frame_try!(ctx.literal(frame, usize::from(lit)));
        let n = usize::from(nargs);
        let mut args = Vec::with_capacity(n);
        for i in (0..n).rev() {
            args.push(frame_try!(ctx.stack_value(frame, i)));
        }
        let receiver = frame_try!(ctx.stack_value(frame, n));
        StepOutcome::MessageSend { selector: Selector::Literal(selector), receiver, args }
    }

    /// `ReturnReceiver`.
    pub fn return_receiver<C: VmContext>(
        _ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        StepOutcome::MethodReturn { value: frame.receiver }
    }

    /// `ReturnTrue`.
    pub fn return_true<C: VmContext>(
        ctx: &mut C,
        _frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.true_obj();
        StepOutcome::MethodReturn { value: v }
    }

    /// `ReturnFalse`.
    pub fn return_false<C: VmContext>(
        ctx: &mut C,
        _frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.false_obj();
        StepOutcome::MethodReturn { value: v }
    }

    /// `ReturnNil`.
    pub fn return_nil<C: VmContext>(
        ctx: &mut C,
        _frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = ctx.nil();
        StepOutcome::MethodReturn { value: v }
    }

    /// `ReturnTop`.
    pub fn return_top<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        let v = frame_try!(ctx.stack_value(frame, 0));
        StepOutcome::MethodReturn { value: v }
    }

    /// `ShortJumpForward`/`LongJumpForward`.
    pub fn jump_forward<C: VmContext>(
        _ctx: &mut C,
        _frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let displacement = match instr {
            Instruction::ShortJumpForward(n) => i32::from(n),
            Instruction::LongJumpForward(d) => i32::from(d),
            other => wrong_instr!(other),
        };
        StepOutcome::Jump { displacement }
    }

    /// The four conditional jumps.
    pub fn conditional_jump<C: VmContext>(
        ctx: &mut C,
        frame: &mut Frame<C::V>,
        instr: Instruction,
    ) -> StepOutcome<C::V> {
        let (displacement, jump_on_true) = match instr {
            Instruction::ShortJumpTrue(n) => (i32::from(n), true),
            Instruction::ShortJumpFalse(n) => (i32::from(n), false),
            Instruction::LongJumpTrue(n) => (i32::from(n), true),
            Instruction::LongJumpFalse(n) => (i32::from(n), false),
            other => wrong_instr!(other),
        };
        super::conditional_jump(ctx, frame, displacement, jump_on_true)
    }

    /// `Nop`.
    pub fn nop<C: VmContext>(
        _ctx: &mut C,
        _frame: &mut Frame<C::V>,
        _instr: Instruction,
    ) -> StepOutcome<C::V> {
        StepOutcome::Continue
    }
}

fn push_int_const<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>, v: i64) -> StepOutcome<C::V> {
    let obj = ctx.small_int_obj(v);
    frame.push(obj);
    StepOutcome::Continue
}

fn push_receiver_variable<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    n: u32,
) -> StepOutcome<C::V> {
    // Unsafe by design (§3.1): no type or bounds check beyond the
    // fetch itself.
    let r = frame.receiver;
    let idx = ctx.int_const(i64::from(n));
    let v = mem_try!(ctx.fetch_slot(r, idx));
    frame.push(v);
    StepOutcome::Continue
}

#[derive(Clone, Copy)]
enum ArithOp {
    Add,
    Sub,
    Mul,
}

impl ArithOp {
    fn selector(self) -> SpecialSelector {
        match self {
            ArithOp::Add => SpecialSelector::Plus,
            ArithOp::Sub => SpecialSelector::Minus,
            ArithOp::Mul => SpecialSelector::Times,
        }
    }
}

/// The reproduction of Listing 1, extended with the Float fast path
/// the Pharo interpreter also inlines (§5.3 "optimisation
/// difference": the production JIT inlines only the integer case).
fn binary_arith<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    op: ArithOp,
) -> StepOutcome<C::V> {
    let arg = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let rcvr_int = ctx.is_integer_object(rcvr);
    let arg_int = ctx.is_integer_object(arg);
    if rcvr_int && arg_int {
        let a = ctx.integer_value_of(rcvr);
        let b = ctx.integer_value_of(arg);
        let result = match op {
            ArithOp::Add => ctx.int_add(a, b),
            ArithOp::Sub => ctx.int_sub(a, b),
            ArithOp::Mul => ctx.int_mul(a, b),
        };
        // "Check for overflow" (Listing 1).
        if ctx.is_integer_value(result) {
            frame.pop_n(2);
            let v = ctx.integer_object_of(result);
            frame.push(v);
            return StepOutcome::Continue;
        }
    } else {
        let rcvr_float = ctx.has_class(rcvr, ClassIndex::FLOAT);
        let arg_float = ctx.has_class(arg, ClassIndex::FLOAT);
        if rcvr_float && arg_float {
            let a = ctx.float_value_of(rcvr);
            let b = ctx.float_value_of(arg);
            let result = match op {
                ArithOp::Add => ctx.float_add(a, b),
                ArithOp::Sub => ctx.float_sub(a, b),
                ArithOp::Mul => ctx.float_mul(a, b),
            };
            match ctx.new_float(result) {
                Ok(v) => {
                    frame.pop_n(2);
                    frame.push(v);
                    return StepOutcome::Continue;
                }
                Err(_) => {
                    return StepOutcome::Unsupported { reason: "allocation requires GC" }
                }
            }
        }
    }
    // Slow path, message send (normalSend in Listing 1).
    StepOutcome::MessageSend {
        selector: Selector::Special(op.selector()),
        receiver: rcvr,
        args: vec![arg],
    }
}

fn binary_compare<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    op: CmpKind,
    selector: SpecialSelector,
) -> StepOutcome<C::V> {
    let arg = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let rcvr_int = ctx.is_integer_object(rcvr);
    let arg_int = ctx.is_integer_object(arg);
    if rcvr_int && arg_int {
        let a = ctx.integer_value_of(rcvr);
        let b = ctx.integer_value_of(arg);
        let holds = ctx.int_cmp(op, a, b);
        let v = ctx.bool_obj(holds);
        frame.pop_n(2);
        frame.push(v);
        return StepOutcome::Continue;
    }
    let rcvr_float = ctx.has_class(rcvr, ClassIndex::FLOAT);
    let arg_float = ctx.has_class(arg, ClassIndex::FLOAT);
    if rcvr_float && arg_float {
        let a = ctx.float_value_of(rcvr);
        let b = ctx.float_value_of(arg);
        let holds = ctx.float_cmp(op, a, b);
        let v = ctx.bool_obj(holds);
        frame.pop_n(2);
        frame.push(v);
        return StepOutcome::Continue;
    }
    StepOutcome::MessageSend {
        selector: Selector::Special(selector),
        receiver: rcvr,
        args: vec![arg],
    }
}

fn divide<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> StepOutcome<C::V> {
    let arg = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let rcvr_int = ctx.is_integer_object(rcvr);
    let arg_int = ctx.is_integer_object(arg);
    if rcvr_int && arg_int {
        let a = ctx.integer_value_of(rcvr);
        let b = ctx.integer_value_of(arg);
        let zero = ctx.int_const(0);
        if ctx.int_cmp(CmpKind::Ne, b, zero) {
            // `/` succeeds only on exact division.
            let rem = ctx.int_mod_floor(a, b);
            if ctx.int_cmp(CmpKind::Eq, rem, zero) {
                let q = ctx.int_div_floor(a, b);
                if ctx.is_integer_value(q) {
                    frame.pop_n(2);
                    let v = ctx.integer_object_of(q);
                    frame.push(v);
                    return StepOutcome::Continue;
                }
            }
        }
    } else {
        let rcvr_float = ctx.has_class(rcvr, ClassIndex::FLOAT);
        let arg_float = ctx.has_class(arg, ClassIndex::FLOAT);
        if rcvr_float && arg_float {
            let a = ctx.float_value_of(rcvr);
            let b = ctx.float_value_of(arg);
            let result = ctx.float_div(a, b);
            match ctx.new_float(result) {
                Ok(v) => {
                    frame.pop_n(2);
                    frame.push(v);
                    return StepOutcome::Continue;
                }
                Err(_) => {
                    return StepOutcome::Unsupported { reason: "allocation requires GC" }
                }
            }
        }
    }
    StepOutcome::MessageSend {
        selector: Selector::Special(SpecialSelector::Divide),
        receiver: rcvr,
        args: vec![arg],
    }
}

#[derive(Clone, Copy)]
enum ModOp {
    Modulo,
    FloorDivide,
}

fn modulo_like<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    op: ModOp,
) -> StepOutcome<C::V> {
    let arg = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let rcvr_int = ctx.is_integer_object(rcvr);
    let arg_int = ctx.is_integer_object(arg);
    if rcvr_int && arg_int {
        let a = ctx.integer_value_of(rcvr);
        let b = ctx.integer_value_of(arg);
        let zero = ctx.int_const(0);
        if ctx.int_cmp(CmpKind::Ne, b, zero) {
            let r = match op {
                ModOp::Modulo => ctx.int_mod_floor(a, b),
                ModOp::FloorDivide => ctx.int_div_floor(a, b),
            };
            if ctx.is_integer_value(r) {
                frame.pop_n(2);
                let v = ctx.integer_object_of(r);
                frame.push(v);
                return StepOutcome::Continue;
            }
        }
    }
    let selector = match op {
        ModOp::Modulo => SpecialSelector::Modulo,
        ModOp::FloorDivide => SpecialSelector::IntegerDivide,
    };
    StepOutcome::MessageSend { selector: Selector::Special(selector), receiver: rcvr, args: vec![arg] }
}

#[derive(Clone, Copy)]
enum BitOp {
    And,
    Or,
    Shift,
}

fn bitwise<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>, op: BitOp) -> StepOutcome<C::V> {
    let arg = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let rcvr_int = ctx.is_integer_object(rcvr);
    let arg_int = ctx.is_integer_object(arg);
    if rcvr_int && arg_int {
        let a = ctx.integer_value_of(rcvr);
        let b = ctx.integer_value_of(arg);
        // Shift counts beyond the word width take the slow path (the
        // inline shifter is word-sized; the library code handles the
        // rest) — mirroring the compiled fast path's guard.
        let in_shift_range = if matches!(op, BitOp::Shift) {
            let lo = ctx.int_const(-31);
            let hi = ctx.int_const(31);
            ctx.int_cmp(CmpKind::Ge, b, lo) && ctx.int_cmp(CmpKind::Le, b, hi)
        } else {
            true
        };
        if in_shift_range {
            let result = match op {
                BitOp::And => ctx.int_bit_and(a, b),
                BitOp::Or => ctx.int_bit_or(a, b),
                BitOp::Shift => ctx.int_shift(a, b),
            };
            // and/or of two tagged values cannot leave the range, but
            // a left shift can.
            if ctx.is_integer_value(result) {
                frame.pop_n(2);
                let v = ctx.integer_object_of(result);
                frame.push(v);
                return StepOutcome::Continue;
            }
        }
    }
    let selector = match op {
        BitOp::And => SpecialSelector::BitAnd,
        BitOp::Or => SpecialSelector::BitOr,
        BitOp::Shift => SpecialSelector::BitShift,
    };
    StepOutcome::MessageSend { selector: Selector::Special(selector), receiver: rcvr, args: vec![arg] }
}

fn special_at<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> StepOutcome<C::V> {
    let idx_obj = frame_try!(ctx.stack_value(frame, 0));
    let rcvr = frame_try!(ctx.stack_value(frame, 1));
    let idx_int = ctx.is_integer_object(idx_obj);
    let rcvr_array = ctx.has_class(rcvr, ClassIndex::ARRAY);
    if idx_int && rcvr_array {
        let idx = ctx.integer_value_of(idx_obj);
        if let Ok(size) = ctx.slot_count(rcvr) {
            let one = ctx.int_const(1);
            if ctx.int_cmp(CmpKind::Ge, idx, one) && ctx.int_cmp(CmpKind::Le, idx, size) {
                let zero_based = ctx.int_sub(idx, one);
                let v = mem_try!(ctx.fetch_slot(rcvr, zero_based));
                frame.pop_n(2);
                frame.push(v);
                return StepOutcome::Continue;
            }
        }
    }
    StepOutcome::MessageSend {
        selector: Selector::Special(SpecialSelector::At),
        receiver: rcvr,
        args: vec![idx_obj],
    }
}

fn special_at_put<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> StepOutcome<C::V> {
    let value = frame_try!(ctx.stack_value(frame, 0));
    let idx_obj = frame_try!(ctx.stack_value(frame, 1));
    let rcvr = frame_try!(ctx.stack_value(frame, 2));
    let idx_int = ctx.is_integer_object(idx_obj);
    let rcvr_array = ctx.has_class(rcvr, ClassIndex::ARRAY);
    if idx_int && rcvr_array {
        let idx = ctx.integer_value_of(idx_obj);
        if let Ok(size) = ctx.slot_count(rcvr) {
            let one = ctx.int_const(1);
            if ctx.int_cmp(CmpKind::Ge, idx, one) && ctx.int_cmp(CmpKind::Le, idx, size) {
                let zero_based = ctx.int_sub(idx, one);
                mem_try!(ctx.store_slot(rcvr, zero_based, value));
                frame.pop_n(3);
                frame.push(value);
                return StepOutcome::Continue;
            }
        }
    }
    StepOutcome::MessageSend {
        selector: Selector::Special(SpecialSelector::AtPut),
        receiver: rcvr,
        args: vec![idx_obj, value],
    }
}

fn special_size<C: VmContext>(ctx: &mut C, frame: &mut Frame<C::V>) -> StepOutcome<C::V> {
    let rcvr = frame_try!(ctx.stack_value(frame, 0));
    let is_array = ctx.has_class(rcvr, ClassIndex::ARRAY);
    if is_array {
        if let Ok(size) = ctx.slot_count(rcvr) {
            frame.pop_n(1);
            let v = ctx.integer_object_of(size);
            frame.push(v);
            return StepOutcome::Continue;
        }
    }
    let is_bytes = ctx.has_class(rcvr, ClassIndex::BYTE_ARRAY);
    if is_bytes {
        if let Ok(size) = ctx.byte_count(rcvr) {
            frame.pop_n(1);
            let v = ctx.integer_object_of(size);
            frame.push(v);
            return StepOutcome::Continue;
        }
    }
    StepOutcome::MessageSend {
        selector: Selector::Special(SpecialSelector::Size),
        receiver: rcvr,
        args: Vec::new(),
    }
}

fn unary_send<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    selector: SpecialSelector,
) -> StepOutcome<C::V> {
    let rcvr = frame_try!(ctx.stack_value(frame, 0));
    StepOutcome::MessageSend { selector: Selector::Special(selector), receiver: rcvr, args: Vec::new() }
}

fn conditional_jump<C: VmContext>(
    ctx: &mut C,
    frame: &mut Frame<C::V>,
    displacement: i32,
    jump_on_true: bool,
) -> StepOutcome<C::V> {
    let v = frame_try!(ctx.stack_value(frame, 0));
    frame.pop_n(1);
    let is_true = ctx.has_class(v, ClassIndex::TRUE);
    if is_true {
        return if jump_on_true {
            StepOutcome::Jump { displacement }
        } else {
            StepOutcome::Continue
        };
    }
    let is_false = ctx.has_class(v, ClassIndex::FALSE);
    if is_false {
        return if jump_on_true {
            StepOutcome::Continue
        } else {
            StepOutcome::Jump { displacement }
        };
    }
    StepOutcome::MessageSend {
        selector: Selector::MustBeBoolean,
        receiver: v,
        args: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::ConcreteContext;
    use crate::frame::MethodInfo;
    use igjit_heap::{ObjectMemory, Oop};

    fn setup() -> ObjectMemory {
        ObjectMemory::new()
    }

    fn int_frame(mem: &mut ObjectMemory, values: &[i64]) -> Frame<Oop> {
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        for &v in values {
            f.push(Oop::from_small_int(v));
        }
        f
    }

    #[test]
    fn add_fast_path() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[20, 22]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::Add), StepOutcome::Continue);
        assert_eq!(f.depth(), 1);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 42);
    }

    #[test]
    fn add_on_empty_stack_is_invalid_frame() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::Add), StepOutcome::InvalidFrame);
        let mut f1 = int_frame(&mut mem, &[1]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f1, Instruction::Add), StepOutcome::InvalidFrame);
    }

    #[test]
    fn add_overflow_takes_slow_path() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[igjit_heap::SMALL_INT_MAX, 1]);
        let mut ctx = ConcreteContext::new(&mut mem);
        match step(&mut ctx, &mut f, Instruction::Add) {
            StepOutcome::MessageSend { selector: Selector::Special(s), .. } => {
                assert_eq!(s, SpecialSelector::Plus);
            }
            other => panic!("expected send, got {other:?}"),
        }
        assert_eq!(f.depth(), 2, "slow path leaves the operands for the send");
    }

    #[test]
    fn add_floats_inlined() {
        let mut mem = setup();
        let a = mem.instantiate_float(1.5).unwrap();
        let b = mem.instantiate_float(2.25).unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(a);
        f.push(b);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::Add), StepOutcome::Continue);
        let top = f.stack_at_depth(0);
        assert_eq!(mem.float_value_of(top).unwrap(), 3.75);
    }

    #[test]
    fn add_mixed_types_sends() {
        let mut mem = setup();
        let a = mem.instantiate_float(1.5).unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(Oop::from_small_int(2));
        f.push(a);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f, Instruction::Add),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn compare_pushes_booleans() {
        let mut mem = setup();
        let t = mem.true_object();
        let fa = mem.false_object();
        let mut f = int_frame(&mut mem, &[3, 5]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::LessThan), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0), t);
        let mut f2 = int_frame(&mut mem, &[5, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f2, Instruction::LessThan), StepOutcome::Continue);
        assert_eq!(f2.stack_at_depth(0), fa);
    }

    #[test]
    fn divide_exact_and_inexact() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[10, 2]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::Divide), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 5);

        let mut f2 = int_frame(&mut mem, &[10, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f2, Instruction::Divide),
            StepOutcome::MessageSend { .. }
        ));

        let mut f3 = int_frame(&mut mem, &[10, 0]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f3, Instruction::Divide),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn modulo_floor_semantics() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[-7, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::Modulo), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 2);
        let mut f2 = int_frame(&mut mem, &[-7, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f2, Instruction::IntegerDivide), StepOutcome::Continue);
        assert_eq!(f2.stack_at_depth(0).small_int_value(), -3);
    }

    #[test]
    fn bitshift_overflow_sends() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[1, 29]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::BitShift), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 1 << 29);
        let mut f2 = int_frame(&mut mem, &[1, 40]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f2, Instruction::BitShift),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn identity_equal_never_sends() {
        let mut mem = setup();
        let arr = mem.instantiate_array(&[]).unwrap();
        let t = mem.true_object();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(arr);
        f.push(arr);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::IdentityEqual), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0), t);
    }

    #[test]
    fn push_receiver_variable_reads_slots() {
        let mut mem = setup();
        let payload = Oop::from_small_int(123);
        let obj = mem.instantiate_array(&[payload]).unwrap();
        let mut f = Frame::new(obj, MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushReceiverVariable(0)),
            StepOutcome::Continue
        );
        assert_eq!(f.stack_at_depth(0), payload);
        // Out of bounds → invalid memory access (unsafe by design).
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushReceiverVariable(5)),
            StepOutcome::InvalidMemoryAccess
        );
    }

    #[test]
    fn push_receiver_variable_on_small_int_receiver_faults() {
        let mut mem = setup();
        let mut f = Frame::new(Oop::from_small_int(5), MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushReceiverVariable(0)),
            StepOutcome::InvalidMemoryAccess
        );
    }

    #[test]
    fn temps_and_literals_guard_the_frame() {
        let mut mem = setup();
        let nil = mem.nil();
        let mut f = Frame::new(nil, MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::PushTemp(0)), StepOutcome::InvalidFrame);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushLiteralConstant(0)),
            StepOutcome::InvalidFrame
        );
        f.temps.push(Oop::from_small_int(9));
        f.method.literals.push(Oop::from_small_int(8));
        assert_eq!(step(&mut ctx, &mut f, Instruction::PushTemp(0)), StepOutcome::Continue);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushLiteralConstant(0)),
            StepOutcome::Continue
        );
        assert_eq!(f.stack_at_depth(1).small_int_value(), 9);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 8);
    }

    #[test]
    fn special_at_quick_path_and_fallback() {
        let mut mem = setup();
        let arr = mem
            .instantiate_array(&[Oop::from_small_int(10), Oop::from_small_int(20)])
            .unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(arr);
        f.push(Oop::from_small_int(2)); // 1-based index
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::SpecialSendAt), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 20);

        // Out-of-range index bails to the send.
        let mut f2 = Frame::new(mem.nil(), MethodInfo::empty());
        f2.push(arr);
        f2.push(Oop::from_small_int(3));
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f2, Instruction::SpecialSendAt),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn conditional_jumps() {
        let mut mem = setup();
        let t = mem.true_object();
        let fo = mem.false_object();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(t);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::ShortJumpTrue(4)),
            StepOutcome::Jump { displacement: 4 }
        );
        f.push(fo);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::ShortJumpTrue(4)),
            StepOutcome::Continue
        );
        // Non-boolean: mustBeBoolean send.
        f.push(Oop::from_small_int(1));
        assert!(matches!(
            step(&mut ctx, &mut f, Instruction::ShortJumpTrue(4)),
            StepOutcome::MessageSend { selector: Selector::MustBeBoolean, .. }
        ));
    }

    #[test]
    fn returns() {
        let mut mem = setup();
        let nil = mem.nil();
        let rcvr = Oop::from_small_int(7);
        let mut f = Frame::new(rcvr, MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::ReturnReceiver),
            StepOutcome::MethodReturn { value: rcvr }
        );
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::ReturnNil),
            StepOutcome::MethodReturn { value: nil }
        );
        assert_eq!(step(&mut ctx, &mut f, Instruction::ReturnTop), StepOutcome::InvalidFrame);
        f.push(Oop::from_small_int(3));
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::ReturnTop),
            StepOutcome::MethodReturn { value: Oop::from_small_int(3) }
        );
    }

    #[test]
    fn generic_send_collects_args() {
        let mut mem = setup();
        let sel = mem.instantiate_bytes(igjit_heap::ClassIndex::SYMBOL, b"foo:bar:").unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.method.literals.push(sel);
        f.push(Oop::from_small_int(1)); // receiver
        f.push(Oop::from_small_int(2)); // arg0
        f.push(Oop::from_small_int(3)); // arg1
        let mut ctx = ConcreteContext::new(&mut mem);
        match step(&mut ctx, &mut f, Instruction::Send { lit: 0, nargs: 2 }) {
            StepOutcome::MessageSend { selector: Selector::Literal(s), receiver, args } => {
                assert_eq!(s, sel);
                assert_eq!(receiver.small_int_value(), 1);
                assert_eq!(args.len(), 2);
                assert_eq!(args[0].small_int_value(), 2);
                assert_eq!(args[1].small_int_value(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn push_this_context_unsupported() {
        let mut mem = setup();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f, Instruction::PushThisContext),
            StepOutcome::Unsupported { .. }
        ));
    }

    #[test]
    fn push_literal_variable_reads_association_value() {
        let mut mem = setup();
        let key = Oop::from_small_int(1);
        let value = Oop::from_small_int(77);
        let assoc = mem
            .allocate(
                igjit_heap::ClassIndex::ASSOCIATION,
                igjit_heap::ObjectFormat::Fixed,
                2,
            )
            .unwrap();
        mem.store_pointer(assoc, 0, key).unwrap();
        mem.store_pointer(assoc, 1, value).unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.method.literals.push(assoc);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushLiteralVariable(0)),
            StepOutcome::Continue
        );
        assert_eq!(f.stack_at_depth(0), value);
    }

    #[test]
    fn push_literal_variable_on_small_int_literal_faults() {
        // Unsafe by design: no class check on the association.
        let mut mem = setup();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.method.literals.push(Oop::from_small_int(5));
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PushLiteralVariable(0)),
            StepOutcome::InvalidMemoryAccess
        );
    }

    #[test]
    fn special_at_put_quick_path_and_fallbacks() {
        let mut mem = setup();
        let arr = mem.instantiate_array(&[Oop::from_small_int(0)]).unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(arr);
        f.push(Oop::from_small_int(1));
        f.push(Oop::from_small_int(55));
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::SpecialSendAtPut),
            StepOutcome::Continue
        );
        assert_eq!(f.depth(), 1, "at:put: answers the stored value");
        assert_eq!(f.stack_at_depth(0).small_int_value(), 55);
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap().small_int_value(), 55);

        // Out-of-bounds index falls back to the send.
        let mut f2 = Frame::new(mem.nil(), MethodInfo::empty());
        f2.push(arr);
        f2.push(Oop::from_small_int(2));
        f2.push(Oop::from_small_int(9));
        let mut ctx = ConcreteContext::new(&mut mem);
        match step(&mut ctx, &mut f2, Instruction::SpecialSendAtPut) {
            StepOutcome::MessageSend { selector: Selector::Special(s), args, .. } => {
                assert_eq!(s, SpecialSelector::AtPut);
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        // Non-array receiver falls back too.
        let mut f3 = Frame::new(mem.nil(), MethodInfo::empty());
        f3.push(Oop::from_small_int(3));
        f3.push(Oop::from_small_int(1));
        f3.push(Oop::from_small_int(9));
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f3, Instruction::SpecialSendAtPut),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn long_jump_variants() {
        let mut mem = setup();
        let t = mem.true_object();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::LongJumpForward(-9)),
            StepOutcome::Jump { displacement: -9 },
            "backward jumps drive loops"
        );
        f.push(t);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::LongJumpTrue(200)),
            StepOutcome::Jump { displacement: 200 }
        );
        f.push(t);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::LongJumpFalse(200)),
            StepOutcome::Continue
        );
    }

    #[test]
    fn bitand_bitor_tagged_fast_paths() {
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[6, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::BitAnd), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 2);
        let mut f2 = int_frame(&mut mem, &[-8, 3]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f2, Instruction::BitOr), StepOutcome::Continue);
        assert_eq!(f2.stack_at_depth(0).small_int_value(), -8 | 3);
    }

    #[test]
    fn shift_range_guard_sends() {
        // |shift| > 31 bails to the send, matching the compiled guard.
        let mut mem = setup();
        let mut f = int_frame(&mut mem, &[1, 32]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f, Instruction::BitShift),
            StepOutcome::MessageSend { .. }
        ));
        let mut f2 = int_frame(&mut mem, &[1, -32]);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f2, Instruction::BitShift),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn size_quick_path_for_bytes_and_fallback() {
        let mut mem = setup();
        let bytes = mem
            .instantiate_bytes(igjit_heap::ClassIndex::BYTE_ARRAY, &[1, 2, 3, 4])
            .unwrap();
        let mut f = Frame::new(mem.nil(), MethodInfo::empty());
        f.push(bytes);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::SpecialSendSize), StepOutcome::Continue);
        assert_eq!(f.stack_at_depth(0).small_int_value(), 4);
        // Strings are NOT quick-pathed by size (only Array/ByteArray).
        let s = mem.instantiate_bytes(igjit_heap::ClassIndex::STRING, b"xyz").unwrap();
        let mut f2 = Frame::new(mem.nil(), MethodInfo::empty());
        f2.push(s);
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(matches!(
            step(&mut ctx, &mut f2, Instruction::SpecialSendSize),
            StepOutcome::MessageSend { .. }
        ));
    }

    #[test]
    fn stores_roundtrip() {
        let mut mem = setup();
        let arr = mem.instantiate_array(&[Oop::from_small_int(0)]).unwrap();
        let mut f = Frame::new(arr, MethodInfo::empty());
        f.temps.push(Oop::from_small_int(0));
        f.push(Oop::from_small_int(42));
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(step(&mut ctx, &mut f, Instruction::StoreTemp(0)), StepOutcome::Continue);
        assert_eq!(f.depth(), 1, "store keeps the value");
        assert_eq!(f.temps[0].small_int_value(), 42);
        assert_eq!(
            step(&mut ctx, &mut f, Instruction::PopIntoReceiverVariable(0)),
            StepOutcome::Continue
        );
        assert_eq!(f.depth(), 0);
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap().small_int_value(), 42);
    }
}
