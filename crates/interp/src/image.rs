//! A minimal "image": method dictionaries plus a send-dispatching
//! execution loop.
//!
//! The differential pipeline never needs full message dispatch (sends
//! are exit conditions it compares, not executes), but a VM library a
//! downstream user would adopt does. `Image` owns an object memory and
//! a method table keyed by (class index, selector name); its
//! [`Image::send`] runs methods through the same
//! [`step`](crate::step) interpreter, recursively activating nested
//! sends — including the slow paths of the optimised arithmetic
//! bytecodes, so `SmallInteger >> #+` can be *defined in the image*
//! and overflow sends land in it.

use std::collections::HashMap;

use igjit_bytecode::{decode, CompiledMethod, MethodBuilder};
use igjit_heap::{ClassIndex, ObjectMemory, Oop};

use crate::concrete::ConcreteContext;
use crate::exit::{Selector, StepOutcome};
use crate::frame::{Frame, MethodInfo};
use crate::natives::{run_native, NativeMethodId, NativeOutcome};
use crate::runner::RunError;
use crate::step::step;

/// An object memory plus method dictionaries.
pub struct Image {
    /// The heap.
    pub mem: ObjectMemory,
    methods: HashMap<(u32, String), Oop>,
    max_depth: usize,
}

impl Default for Image {
    fn default() -> Self {
        Image::new()
    }
}

impl Image {
    /// An empty image with a fresh heap.
    pub fn new() -> Image {
        Image { mem: ObjectMemory::new(), methods: HashMap::new(), max_depth: 256 }
    }

    /// Installs a method for `class` under `selector`. The builder
    /// callback assembles the method body.
    pub fn install_method(
        &mut self,
        class: ClassIndex,
        selector: &str,
        num_args: u8,
        num_temps: u8,
        build: impl FnOnce(&mut MethodBuilder, &mut ObjectMemory),
    ) -> Oop {
        let mut b = MethodBuilder::new(num_args, num_temps);
        build(&mut b, &mut self.mem);
        let m = b.install(&mut self.mem).expect("heap space for methods");
        self.methods.insert((class.value(), selector.to_string()), m);
        m
    }

    /// Interns a selector symbol in the heap (for `Send` literals).
    pub fn intern(&mut self, name: &str) -> Oop {
        self.mem
            .instantiate_bytes(ClassIndex::SYMBOL, name.as_bytes())
            .expect("heap space for symbols")
    }

    /// Looks up a method for (receiver class, selector).
    pub fn lookup(&self, class: ClassIndex, selector: &str) -> Option<Oop> {
        self.methods.get(&(class.value(), selector.to_string())).copied()
    }

    /// Sends `selector` to `receiver` and answers the result.
    pub fn send(&mut self, receiver: Oop, selector: &str, args: &[Oop]) -> Result<Oop, RunError> {
        self.dispatch(receiver, selector, args, 0)
    }

    fn selector_name(&self, sel: &Selector<Oop>) -> Result<String, RunError> {
        Ok(match sel {
            Selector::Special(s) => s.name().to_string(),
            Selector::MustBeBoolean => "mustBeBoolean".to_string(),
            Selector::Literal(oop) => {
                let n = self.mem.byte_count(*oop).map_err(|_| RunError::BadMethod)?;
                let bytes: Vec<u8> = (0..n)
                    .map(|i| self.mem.fetch_byte(*oop, i).unwrap_or(b'?'))
                    .collect();
                String::from_utf8_lossy(&bytes).into_owned()
            }
        })
    }

    fn dispatch(
        &mut self,
        receiver: Oop,
        selector: &str,
        args: &[Oop],
        depth: usize,
    ) -> Result<Oop, RunError> {
        if depth > self.max_depth {
            return Err(RunError::StepLimit);
        }
        let class = self.mem.class_index_of(receiver);
        let method = self
            .lookup(class, selector)
            .ok_or(RunError::Unsupported("doesNotUnderstand"))?;
        self.activate(method, receiver, args, depth)
    }

    fn activate(
        &mut self,
        method: Oop,
        receiver: Oop,
        args: &[Oop],
        depth: usize,
    ) -> Result<Oop, RunError> {
        let cm = CompiledMethod::new(method);
        let header = cm.header(&self.mem).map_err(|_| RunError::BadMethod)?;
        let bytes = cm.bytecodes(&self.mem).map_err(|_| RunError::BadMethod)?;
        let mut literals = Vec::with_capacity(usize::from(header.num_literals));
        for i in 0..u32::from(header.num_literals) {
            literals.push(cm.literal(&self.mem, i).map_err(|_| RunError::BadMethod)?);
        }
        let nil = self.mem.nil();
        let mut frame = Frame::new(
            receiver,
            MethodInfo { literals, num_args: header.num_args, num_temps: header.num_temps },
        );
        frame.temps.extend_from_slice(args);
        frame
            .temps
            .resize(usize::from(header.num_args) + usize::from(header.num_temps), nil);

        // Hybrid native methods: try the primitive first (§4.2).
        if header.primitive != 0 {
            frame.push(receiver);
            for &a in args {
                frame.push(a);
            }
            let mut ctx = ConcreteContext::new(&mut self.mem);
            match run_native(&mut ctx, &mut frame, NativeMethodId(header.primitive)) {
                NativeOutcome::Success { result } => return Ok(result),
                NativeOutcome::Failure => frame.pop_n(args.len() + 1),
                NativeOutcome::InvalidFrame => return Err(RunError::InvalidFrame),
                NativeOutcome::InvalidMemoryAccess => return Err(RunError::InvalidMemoryAccess),
                NativeOutcome::Unsupported { reason } => return Err(RunError::Unsupported(reason)),
            }
        }

        let mut pc: usize = 0;
        for _ in 0..100_000 {
            if pc >= bytes.len() {
                return Ok(frame.receiver);
            }
            let (instr, len) = decode(&bytes, pc).map_err(RunError::Decode)?;
            let outcome = {
                let mut ctx = ConcreteContext::new(&mut self.mem);
                step(&mut ctx, &mut frame, instr)
            };
            match outcome {
                StepOutcome::Continue => pc += len,
                StepOutcome::Jump { displacement } => {
                    let next = pc as i64 + len as i64 + i64::from(displacement);
                    if next < 0 {
                        return Err(RunError::BadMethod);
                    }
                    pc = next as usize;
                }
                StepOutcome::MethodReturn { value } => return Ok(value),
                StepOutcome::MessageSend { selector, receiver: rcvr, args: sargs } => {
                    // Recursive activation; the result replaces the
                    // consumed operands, exactly what `normalSend`
                    // arranges in the real interpreter.
                    let name = self.selector_name(&selector)?;
                    let result = self.dispatch(rcvr, &name, &sargs, depth + 1)?;
                    frame.pop_n(sargs.len() + 1);
                    frame.push(result);
                    pc += len;
                }
                StepOutcome::InvalidFrame => return Err(RunError::InvalidFrame),
                StepOutcome::InvalidMemoryAccess => return Err(RunError::InvalidMemoryAccess),
                StepOutcome::Unsupported { reason } => return Err(RunError::Unsupported(reason)),
            }
        }
        Err(RunError::StepLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn simple_unary_method() {
        let mut image = Image::new();
        // SmallInteger >> #double  ^self + self
        image.install_method(ClassIndex::SMALL_INTEGER, "double", 0, 0, |b, _| {
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::Add);
            b.emit(Instruction::ReturnTop);
        });
        assert_eq!(image.send(si(21), "double", &[]).unwrap(), si(42));
    }

    #[test]
    fn nested_sends_dispatch_recursively() {
        let mut image = Image::new();
        image.install_method(ClassIndex::SMALL_INTEGER, "double", 0, 0, |b, _| {
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::Add);
            b.emit(Instruction::ReturnTop);
        });
        // #quadruple  ^self double double
        let double_sel = image.intern("double");
        image.install_method(ClassIndex::SMALL_INTEGER, "quadruple", 0, 0, |b, _| {
            let lit = b.add_literal(double_sel);
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::Send { lit, nargs: 0 });
            b.emit(Instruction::Send { lit, nargs: 0 });
            b.emit(Instruction::ReturnTop);
        });
        assert_eq!(image.send(si(10), "quadruple", &[]).unwrap(), si(40));
    }

    #[test]
    fn recursive_fibonacci_via_sends() {
        let mut image = Image::new();
        // SmallInteger >> #fib
        //   self < 2 ifTrue: [^self].
        //   ^(self - 1) fib + (self - 2) fib
        let fib_sel = image.intern("fib");
        image.install_method(ClassIndex::SMALL_INTEGER, "fib", 0, 0, |b, _| {
            let lit = b.add_literal(fib_sel);
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushTwo);
            b.emit(Instruction::LessThan);
            b.emit(Instruction::ShortJumpFalse(1));
            b.emit(Instruction::ReturnReceiver);
            // (self - 1) fib
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushOne);
            b.emit(Instruction::Subtract);
            b.emit(Instruction::Send { lit, nargs: 0 });
            // (self - 2) fib
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushTwo);
            b.emit(Instruction::Subtract);
            b.emit(Instruction::Send { lit, nargs: 0 });
            b.emit(Instruction::Add);
            b.emit(Instruction::ReturnTop);
        });
        assert_eq!(image.send(si(10), "fib", &[]).unwrap(), si(55));
        assert_eq!(image.send(si(1), "fib", &[]).unwrap(), si(1));
    }

    #[test]
    fn overflow_slow_path_lands_in_image_code() {
        // Define SmallInteger >> #+ to answer a marker when the
        // inlined fast path overflows: the bytecode's slow-path send
        // must dispatch into it.
        let mut image = Image::new();
        image.install_method(ClassIndex::SMALL_INTEGER, "+", 1, 0, |b, _| {
            // Fallback: answer -1 as an "overflow" marker (a real
            // image would build a LargeInteger).
            b.emit(Instruction::PushMinusOne);
            b.emit(Instruction::ReturnTop);
        });
        image.install_method(ClassIndex::SMALL_INTEGER, "addTo", 1, 0, |b, _| {
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushTemp(0));
            b.emit(Instruction::Add);
            b.emit(Instruction::ReturnTop);
        });
        // In-range: the inlined path answers the sum without ever
        // hitting the image-level #+.
        assert_eq!(image.send(si(20), "addTo", &[si(22)]).unwrap(), si(42));
        // Overflow: the slow-path send dispatches to the marker.
        let max = si(igjit_heap::SMALL_INT_MAX);
        assert_eq!(image.send(max, "addTo", &[si(1)]).unwrap(), si(-1));
    }

    #[test]
    fn primitive_methods_with_bytecode_fallback() {
        let mut image = Image::new();
        // #asFloatChecked uses the (buggy) asFloat primitive; the
        // fallback answers nil for non-integers… but the primitive
        // never fails (Listing 5!), so the fallback is dead code.
        image.install_method(ClassIndex::SMALL_INTEGER, "asFloatP", 0, 0, |b, _| {
            b.primitive(40);
            b.emit(Instruction::PushNil);
            b.emit(Instruction::ReturnTop);
        });
        let r = image.send(si(7), "asFloatP", &[]).unwrap();
        assert_eq!(image.mem.float_value_of(r).unwrap(), 7.0);
    }

    #[test]
    fn does_not_understand() {
        let mut image = Image::new();
        assert!(matches!(
            image.send(si(1), "frobnicate", &[]),
            Err(RunError::Unsupported("doesNotUnderstand"))
        ));
    }

    #[test]
    fn runaway_recursion_is_bounded() {
        let mut image = Image::new();
        let loop_sel = image.intern("loopForever");
        image.install_method(ClassIndex::SMALL_INTEGER, "loopForever", 0, 0, |b, _| {
            let lit = b.add_literal(loop_sel);
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::Send { lit, nargs: 0 });
            b.emit(Instruction::ReturnTop);
        });
        assert!(matches!(
            image.send(si(1), "loopForever", &[]),
            Err(RunError::StepLimit)
        ));
    }

    #[test]
    fn methods_on_user_objects() {
        let mut image = Image::new();
        // Array >> #sum — iterate with temps and at:.
        image.install_method(ClassIndex::ARRAY, "first", 0, 0, |b, _| {
            b.emit(Instruction::PushReceiver);
            b.emit(Instruction::PushOne);
            b.emit(Instruction::SpecialSendAt);
            b.emit(Instruction::ReturnTop);
        });
        let arr = image.mem.instantiate_array(&[si(99), si(2)]).unwrap();
        assert_eq!(image.send(arr, "first", &[]).unwrap(), si(99));
    }
}
