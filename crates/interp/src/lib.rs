//! # igjit-interp — the executable specification
//!
//! The paper's core insight is that a VM's bytecode interpreter *is*
//! an executable specification of the language semantics, precise
//! enough to drive JIT compiler testing. This crate is that
//! interpreter — with one structural twist that makes the paper's
//! concolic meta-interpretation natural in Rust: every semantic
//! operation the interpreter performs (tag tests, class tests,
//! arithmetic, heap accesses, frame accesses) goes through the
//! [`VmContext`] trait.
//!
//! * [`ConcreteContext`] implements the trait directly over the
//!   [`igjit_heap::ObjectMemory`]; running [`step`] with it is plain
//!   interpretation.
//! * The `igjit-concolic` crate implements the same trait with values
//!   that carry a symbolic shadow; running the *same* [`step`] code
//!   records path constraints. There is exactly one copy of the
//!   semantics, so the interpreter genuinely is the specification —
//!   there is no second model to drift.
//!
//! The crate also implements the VM's **112 native methods**
//! (primitives) behind the same trait, with the paper's safety
//! contract: native methods check their operands and fail with
//! [`NativeOutcome::Failure`]; bytecodes are unsafe by design.
//!
//! Two of the paper's *authentic defects* live here (see DESIGN.md):
//! the interpreter's `primitiveAsFloat` misses its receiver type check
//! (Listing 5 of the paper), and the bitwise native methods refuse
//! negative operands while their compiled versions will not.
//!
//! ## Example: interpret a method
//!
//! ```
//! use igjit_heap::ObjectMemory;
//! use igjit_bytecode::{Instruction, MethodBuilder};
//! use igjit_interp::{run_method, MethodResult};
//!
//! let mut mem = ObjectMemory::new();
//! let mut b = MethodBuilder::new(0, 0);
//! b.push_small_int(20);
//! b.push_small_int(22);
//! b.emit(Instruction::Add);
//! b.emit(Instruction::ReturnTop);
//! let m = b.install(&mut mem).unwrap();
//! let nil = mem.nil();
//! match run_method(&mut mem, m, nil, &[]).unwrap() {
//!     MethodResult::Returned(v) => assert_eq!(v.small_int_value(), 42),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod concrete;
mod context;
mod exit;
mod frame;
mod image;
pub mod natives;
pub mod predecode;
mod runner;
pub mod spec;
mod step;

pub use concrete::ConcreteContext;
pub use image::Image;
pub use context::{AllocFault, CmpKind, MemFault, VmContext};
pub use exit::{ExitCondition, Selector, StepOutcome};
pub use frame::{Frame, MethodInfo};
pub use natives::{native_catalog, native_spec, run_native, NativeGroup, NativeMethodId,
                  NativeMethodSpec, NativeOutcome};
pub use predecode::{resolve_sequence, PredecodedProgram};
pub use runner::{run_method, run_method_with, MethodResult, RunError};
pub use spec::{step_spec, StepSpec};
pub use step::{resolve_step, step, StepFn};

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
