//! A concrete whole-method runner.
//!
//! The differential tester exercises single instructions, but the
//! examples (and the VM's own sanity tests) want to run entire
//! methods. This module drives [`step`](crate::step) through a
//! method's bytecode with proper pc management.

use igjit_bytecode::{decode, CompiledMethod, DecodeError};
use igjit_heap::{ObjectMemory, Oop};

use crate::concrete::ConcreteContext;
use crate::exit::{Selector, StepOutcome};
use crate::frame::{Frame, MethodInfo};
use crate::natives::{run_native, NativeMethodId, NativeOutcome};
use crate::predecode::PredecodedProgram;
use crate::step::step;

/// Why a method run stopped without returning a value.
#[derive(Clone, PartialEq, Debug)]
pub enum RunError {
    /// Bytecode decoding failed.
    Decode(DecodeError),
    /// A frame access was out of range.
    InvalidFrame,
    /// An object access was out of range.
    InvalidMemoryAccess,
    /// Unsupported VM feature was reached.
    Unsupported(&'static str),
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// The method oop is malformed.
    BadMethod,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Decode(e) => write!(f, "decode error: {e}"),
            RunError::InvalidFrame => write!(f, "invalid frame access"),
            RunError::InvalidMemoryAccess => write!(f, "invalid memory access"),
            RunError::Unsupported(r) => write!(f, "unsupported: {r}"),
            RunError::StepLimit => write!(f, "step limit exhausted"),
            RunError::BadMethod => write!(f, "malformed compiled method"),
        }
    }
}

impl std::error::Error for RunError {}

/// How a method run finished.
#[derive(Clone, PartialEq, Debug)]
pub enum MethodResult {
    /// The method returned this value.
    Returned(Oop),
    /// The method performed a message send the standalone runner does
    /// not dispatch (described for diagnostics).
    Sent {
        /// Human-readable selector description.
        selector: String,
        /// The receiver of the send.
        receiver: Oop,
    },
}

const STEP_LIMIT: usize = 100_000;

/// Runs `method` (a compiled-method oop) with `receiver` and `args`.
///
/// If the method declares a primitive, the native method is attempted
/// first, falling back to the bytecode body on failure — exactly the
/// hybrid structure of §4.2. Uses the predecoded fetch loop; see
/// [`run_method_with`] for the knob.
pub fn run_method(
    mem: &mut ObjectMemory,
    method: Oop,
    receiver: Oop,
    args: &[Oop],
) -> Result<MethodResult, RunError> {
    run_method_with(mem, method, receiver, args, true)
}

/// [`run_method`] with explicit control over the fetch loop:
/// `predecode = true` decodes and dispatch-resolves the method once up
/// front ([`PredecodedProgram`], engine v8) and executes fused
/// push-pairs; `predecode = false` is the historical byte-at-a-time
/// loop. The two are step-for-step identical, including every decode
/// error — `IGJIT_INTERP_PREDECODE=0` threads through here.
pub fn run_method_with(
    mem: &mut ObjectMemory,
    method: Oop,
    receiver: Oop,
    args: &[Oop],
    predecode: bool,
) -> Result<MethodResult, RunError> {
    let cm = CompiledMethod::new(method);
    let header = cm.header(mem).map_err(|_| RunError::BadMethod)?;
    let bytes = cm.bytecodes(mem).map_err(|_| RunError::BadMethod)?;
    let mut literals = Vec::with_capacity(usize::from(header.num_literals));
    for i in 0..u32::from(header.num_literals) {
        literals.push(cm.literal(mem, i).map_err(|_| RunError::BadMethod)?);
    }
    let nil = mem.nil();
    let mut frame = Frame::new(
        receiver,
        MethodInfo { literals, num_args: header.num_args, num_temps: header.num_temps },
    );
    frame.temps.extend_from_slice(args);
    frame.temps.resize(
        usize::from(header.num_args) + usize::from(header.num_temps),
        nil,
    );

    // Hybrid native methods: native behaviour first (§4.2).
    if header.primitive != 0 {
        let mut ctx = ConcreteContext::new(mem);
        // The native-method calling convention keeps receiver+args on
        // the operand stack.
        frame.push(receiver);
        for &a in args {
            frame.push(a);
        }
        match run_native(&mut ctx, &mut frame, NativeMethodId(header.primitive)) {
            NativeOutcome::Success { result } => return Ok(MethodResult::Returned(result)),
            NativeOutcome::Failure => {
                // Fall through to the bytecode body; drop the operands.
                frame.pop_n(args.len() + 1);
            }
            NativeOutcome::InvalidFrame => return Err(RunError::InvalidFrame),
            NativeOutcome::InvalidMemoryAccess => return Err(RunError::InvalidMemoryAccess),
            NativeOutcome::Unsupported { reason } => return Err(RunError::Unsupported(reason)),
        }
    }

    if predecode {
        run_predecoded(mem, &mut frame, &bytes)
    } else {
        run_bytes(mem, &mut frame, &bytes)
    }
}

/// What one settled step outcome means for the fetch loop.
enum Flow {
    /// Keep fetching at this pc.
    Next(usize),
    /// The run is over.
    Done(Result<MethodResult, RunError>),
}

/// Folds a [`StepOutcome`] into the runner's control flow; `pc`/`len`
/// locate the instruction that produced it and `code_len` sizes the
/// negative-jump decode error exactly as the byte loop always has.
fn apply_outcome(outcome: StepOutcome<Oop>, pc: usize, len: usize, code_len: usize) -> Flow {
    match outcome {
        StepOutcome::Continue => Flow::Next(pc + len),
        StepOutcome::Jump { displacement } => {
            let next = pc as i64 + len as i64 + i64::from(displacement);
            if next < 0 {
                Flow::Done(Err(RunError::Decode(DecodeError::PcOutOfRange {
                    pc: 0,
                    len: code_len,
                })))
            } else {
                Flow::Next(next as usize)
            }
        }
        StepOutcome::MethodReturn { value } => Flow::Done(Ok(MethodResult::Returned(value))),
        StepOutcome::MessageSend { selector, receiver, .. } => {
            let name = match selector {
                Selector::Special(s) => s.name().to_string(),
                Selector::MustBeBoolean => "mustBeBoolean".to_string(),
                Selector::Literal(oop) => format!("{oop:?}"),
            };
            Flow::Done(Ok(MethodResult::Sent { selector: name, receiver }))
        }
        StepOutcome::InvalidFrame => Flow::Done(Err(RunError::InvalidFrame)),
        StepOutcome::InvalidMemoryAccess => Flow::Done(Err(RunError::InvalidMemoryAccess)),
        StepOutcome::Unsupported { reason } => Flow::Done(Err(RunError::Unsupported(reason))),
    }
}

/// The historical fetch loop: decode at pc, dispatch, repeat.
fn run_bytes(
    mem: &mut ObjectMemory,
    frame: &mut Frame<Oop>,
    bytes: &[u8],
) -> Result<MethodResult, RunError> {
    let mut pc: usize = 0;
    for _ in 0..STEP_LIMIT {
        if pc >= bytes.len() {
            // Falling off the end answers the receiver, like an
            // implicit `^self`.
            return Ok(MethodResult::Returned(frame.receiver));
        }
        let (instr, len) = decode(bytes, pc).map_err(RunError::Decode)?;
        let mut ctx = ConcreteContext::new(mem);
        match apply_outcome(step(&mut ctx, frame, instr), pc, len, bytes.len()) {
            Flow::Next(next) => pc = next,
            Flow::Done(r) => return r,
        }
    }
    Err(RunError::StepLimit)
}

/// The engine-v8 fetch loop: decode and dispatch-resolve the whole
/// method once, then fetch steps through the jump table, chaining
/// fused push-pairs without a re-fetch. Off-boundary pcs fall back to
/// the byte decoder so decode faults reproduce exactly.
fn run_predecoded(
    mem: &mut ObjectMemory,
    frame: &mut Frame<Oop>,
    bytes: &[u8],
) -> Result<MethodResult, RunError> {
    let prog = PredecodedProgram::new(bytes);
    let mut ctx = ConcreteContext::new(mem);
    let fns = prog.resolve();
    let steps = prog.steps();
    let mut pc: usize = 0;
    let mut steps_left = STEP_LIMIT;
    while steps_left > 0 {
        steps_left -= 1;
        if pc >= bytes.len() {
            return Ok(MethodResult::Returned(frame.receiver));
        }
        let (outcome, len) = match prog.lookup(pc) {
            Some(i) => {
                let s = steps[i];
                let o = fns[i](&mut ctx, frame, s.instr);
                if s.fuse_next && matches!(o, StepOutcome::Continue) && steps_left > 0 {
                    // Superinstruction: the next sequential step starts
                    // exactly at pc + len; execute it without a
                    // re-fetch, charging it one step of budget.
                    steps_left -= 1;
                    pc += usize::from(s.len);
                    let n = steps[i + 1];
                    (fns[i + 1](&mut ctx, frame, n.instr), usize::from(n.len))
                } else {
                    (o, usize::from(s.len))
                }
            }
            None => {
                let (instr, len) = decode(bytes, pc).map_err(RunError::Decode)?;
                (step(&mut ctx, frame, instr), len)
            }
        };
        match apply_outcome(outcome, pc, len, bytes.len()) {
            Flow::Next(next) => pc = next,
            Flow::Done(r) => return r,
        }
    }
    Err(RunError::StepLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::{Instruction, MethodBuilder};

    #[test]
    fn straight_line_arithmetic() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.push_small_int(6);
        b.push_small_int(7);
        b.emit(Instruction::Multiply);
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        let nil = mem.nil();
        assert_eq!(
            run_method(&mut mem, m, nil, &[]).unwrap(),
            MethodResult::Returned(Oop::from_small_int(42))
        );
    }

    #[test]
    fn arguments_are_temps() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(2, 0);
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::PushTemp(1));
        b.emit(Instruction::Subtract);
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        let nil = mem.nil();
        let r = run_method(
            &mut mem,
            m,
            nil,
            &[Oop::from_small_int(50), Oop::from_small_int(8)],
        )
        .unwrap();
        assert_eq!(r, MethodResult::Returned(Oop::from_small_int(42)));
    }

    #[test]
    fn conditional_branches_execute() {
        // if 3 < 5 then 1 else 2
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.push_small_int(3);
        b.push_small_int(5);
        b.emit(Instruction::LessThan);
        b.emit(Instruction::ShortJumpFalse(2)); // skip "push 1; return"
        b.emit(Instruction::PushOne);
        b.emit(Instruction::ReturnTop);
        b.emit(Instruction::PushTwo);
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        let nil = mem.nil();
        assert_eq!(
            run_method(&mut mem, m, nil, &[]).unwrap(),
            MethodResult::Returned(Oop::from_small_int(1))
        );
    }

    #[test]
    fn backward_jumps_loop() {
        // temp0 := 0; [temp0 := temp0 + 1. temp0 < 5] whileTrue. ^temp0
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 1);
        b.emit(Instruction::PushZero);
        b.emit(Instruction::PopIntoTemp(0)); // pc 0..2
        // loop body starts at pc 2
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::PushOne);
        b.emit(Instruction::Add);
        b.emit(Instruction::PopIntoTemp(0));
        b.emit(Instruction::PushTemp(0));
        b.push_small_int(5);
        b.emit(Instruction::LessThan);
        // jump back to pc 2 when true: after this instr pc = 11; target 2 → disp -9
        b.emit(Instruction::LongJumpTrue(0)); // placeholder, patched below
        b.emit(Instruction::PushTemp(0));
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        // Patch: LongJumpTrue takes u8 (forward only); use LongJumpForward
        // semantics via a handcrafted method instead.
        let mut b2 = MethodBuilder::new(0, 1);
        b2.emit(Instruction::PushZero);
        b2.emit(Instruction::PopIntoTemp(0));
        b2.emit(Instruction::PushTemp(0));
        b2.emit(Instruction::PushOne);
        b2.emit(Instruction::Add);
        b2.emit(Instruction::PopIntoTemp(0));
        b2.emit(Instruction::PushTemp(0));
        b2.push_small_int(5);
        b2.emit(Instruction::GreaterOrEqual);
        // if >= 5 skip the back jump (2 bytes)
        b2.emit(Instruction::ShortJumpTrue(2));
        b2.emit(Instruction::LongJumpForward(-11)); // back to pc 2
        b2.emit(Instruction::PushTemp(0));
        b2.emit(Instruction::ReturnTop);
        let m2 = b2.install(&mut mem).unwrap();
        let _ = m;
        let nil = mem.nil();
        assert_eq!(
            run_method(&mut mem, m2, nil, &[]).unwrap(),
            MethodResult::Returned(Oop::from_small_int(5))
        );
    }

    #[test]
    fn hybrid_native_method_success_and_fallback() {
        let mut mem = ObjectMemory::new();
        // primitiveAdd with a bytecode fallback answering 99.
        let mut b = MethodBuilder::new(1, 0);
        b.primitive(1);
        b.push_small_int(99);
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        let five = Oop::from_small_int(5);
        let three = Oop::from_small_int(3);
        assert_eq!(
            run_method(&mut mem, m, five, &[three]).unwrap(),
            MethodResult::Returned(Oop::from_small_int(8))
        );
        // Failure path: non-integer argument → bytecode body.
        let arr = mem.instantiate_array(&[]).unwrap();
        assert_eq!(
            run_method(&mut mem, m, five, &[arr]).unwrap(),
            MethodResult::Returned(Oop::from_small_int(99))
        );
    }

    #[test]
    fn sends_are_reported() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        let f = mem.instantiate_float(1.5).unwrap();
        b.push_literal(f);
        b.push_small_int(1);
        b.emit(Instruction::Add);
        b.emit(Instruction::ReturnTop);
        let m = b.install(&mut mem).unwrap();
        let nil = mem.nil();
        match run_method(&mut mem, m, nil, &[]).unwrap() {
            MethodResult::Sent { selector, .. } => assert_eq!(selector, "+"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.emit(Instruction::Nop);
        b.emit(Instruction::LongJumpForward(-3));
        let m = b.install(&mut mem).unwrap();
        let nil = mem.nil();
        assert_eq!(run_method(&mut mem, m, nil, &[]), Err(RunError::StepLimit));
    }

    #[test]
    fn implicit_return_of_receiver() {
        let mut mem = ObjectMemory::new();
        let mut b = MethodBuilder::new(0, 0);
        b.emit(Instruction::Nop);
        let m = b.install(&mut mem).unwrap();
        let rcvr = Oop::from_small_int(123);
        assert_eq!(
            run_method(&mut mem, m, rcvr, &[]).unwrap(),
            MethodResult::Returned(rcvr)
        );
    }
}
