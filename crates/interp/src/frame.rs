//! Stack frames, generic over the value representation.

/// Method-level information a frame needs: the literal frame and the
/// declared argument/temp counts.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodInfo<V> {
    /// Literal oops, indexable by the push-literal bytecodes.
    pub literals: Vec<V>,
    /// Declared argument count.
    pub num_args: u8,
    /// Declared non-argument temporary count.
    pub num_temps: u8,
}

impl<V> MethodInfo<V> {
    /// A method with no literals and no declared temps.
    pub fn empty() -> MethodInfo<V> {
        MethodInfo { literals: Vec::new(), num_args: 0, num_temps: 0 }
    }
}

/// One VM stack frame: receiver, method info, temporaries (arguments
/// first, as in Smalltalk) and the operand stack.
///
/// The frame itself performs **no** bounds checking; all checked
/// access goes through the [`VmContext`](crate::VmContext) so that the
/// concolic implementation can record `operand_stack_size`-style
/// constraints (Fig. 2 of the paper).
#[derive(Clone, PartialEq, Debug)]
pub struct Frame<V> {
    /// The receiver (`self`).
    pub receiver: V,
    /// Method-level info.
    pub method: MethodInfo<V>,
    /// Arguments followed by temporaries.
    pub temps: Vec<V>,
    /// The operand stack; the top is the last element.
    pub stack: Vec<V>,
}

impl<V: Copy> Frame<V> {
    /// Builds a frame for `receiver` with an empty stack.
    pub fn new(receiver: V, method: MethodInfo<V>) -> Frame<V> {
        Frame { receiver, method, temps: Vec::new(), stack: Vec::new() }
    }

    /// Pushes a value on the operand stack.
    pub fn push(&mut self, v: V) {
        self.stack.push(v);
    }

    /// Unchecked read of the value `depth` slots below the top
    /// (`depth == 0` is the top). Callers must have validated depth
    /// via [`VmContext::stack_value`](crate::VmContext::stack_value).
    pub fn stack_at_depth(&self, depth: usize) -> V {
        self.stack[self.stack.len() - 1 - depth]
    }

    /// Pops `n` values.
    pub fn pop_n(&mut self, n: usize) {
        let new_len = self.stack.len().saturating_sub(n);
        self.stack.truncate(new_len);
    }

    /// Current operand stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_discipline() {
        let mut f: Frame<u32> = Frame::new(0, MethodInfo::empty());
        f.push(1);
        f.push(2);
        f.push(3);
        assert_eq!(f.depth(), 3);
        assert_eq!(f.stack_at_depth(0), 3);
        assert_eq!(f.stack_at_depth(2), 1);
        f.pop_n(2);
        assert_eq!(f.depth(), 1);
        assert_eq!(f.stack_at_depth(0), 1);
        f.pop_n(5);
        assert_eq!(f.depth(), 0);
    }
}
