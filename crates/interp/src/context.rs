//! The `VmContext` trait: every semantic operation the interpreter
//! performs, factored out so one interpreter body can run both
//! concretely and concolically.
//!
//! Predicates (`is_integer_object`, `has_class`, comparison tests,
//! `is_integer_value`) return the **concrete** truth value *and* give
//! the implementation a hook to record the corresponding semantic
//! constraint (§3.3) — `isSmallInteger(v)` rather than `(v & 1) == 1`.
//! Frame accessors record `operand_stack_size`/temp-count/literal-count
//! constraints; heap accessors record slot-count bounds. The concrete
//! implementation records nothing and just computes.

use igjit_heap::{ClassIndex, ObjectFormat};

use crate::frame::Frame;

/// A failed object access (out-of-bounds or wrong format); maps to the
/// `InvalidMemoryAccess` exit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault;

/// A failed allocation (heap exhausted or invalid request).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocFault;

/// Comparison operators shared by integer and float tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// The semantic operations of the VM, as used by [`step`](crate::step)
/// and the native methods.
pub trait VmContext {
    /// Value (oop) representation.
    type V: Copy + PartialEq + std::fmt::Debug;
    /// Integer representation (untagged).
    type N: Copy + std::fmt::Debug;
    /// Float representation (unboxed).
    type F: Copy + std::fmt::Debug;

    // --- constants -------------------------------------------------------

    /// The `nil` object.
    fn nil(&mut self) -> Self::V;
    /// The `true` object.
    fn true_obj(&mut self) -> Self::V;
    /// The `false` object.
    fn false_obj(&mut self) -> Self::V;
    /// `true`/`false` from a host bool.
    fn bool_obj(&mut self, b: bool) -> Self::V {
        if b {
            self.true_obj()
        } else {
            self.false_obj()
        }
    }
    /// An integer constant.
    fn int_const(&mut self, v: i64) -> Self::N;
    /// A tagged SmallInteger constant.
    fn small_int_obj(&mut self, v: i64) -> Self::V;

    // --- predicates (constraint-recording) --------------------------------

    /// `isSmallInteger(v)`.
    fn is_integer_object(&mut self, v: Self::V) -> bool;
    /// Class-index test against a well-known class.
    fn has_class(&mut self, v: Self::V, class: ClassIndex) -> bool;
    /// The overflow check: does `n` fit the tagged range?
    fn is_integer_value(&mut self, n: Self::N) -> bool;
    /// Integer comparison.
    fn int_cmp(&mut self, op: CmpKind, a: Self::N, b: Self::N) -> bool;
    /// Float comparison.
    fn float_cmp(&mut self, op: CmpKind, a: Self::F, b: Self::F) -> bool;
    /// Object identity (`==`).
    fn value_identical(&mut self, a: Self::V, b: Self::V) -> bool;

    // --- conversions -------------------------------------------------------

    /// Untags a SmallInteger **without checking** — unsafe by design;
    /// on a pointer this yields garbage, never an error.
    fn integer_value_of(&mut self, v: Self::V) -> Self::N;
    /// Tags an integer known (checked) to be in range.
    fn integer_object_of(&mut self, n: Self::N) -> Self::V;
    /// Unboxes a Float **without checking** the class.
    fn float_value_of(&mut self, v: Self::V) -> Self::F;
    /// Boxes a float (allocates).
    fn new_float(&mut self, f: Self::F) -> Result<Self::V, AllocFault>;
    /// Converts an integer to a float.
    fn int_to_float(&mut self, n: Self::N) -> Self::F;
    /// Truncates a float toward zero. The result is only valid when a
    /// range check confirmed it fits (callers must check).
    fn float_to_int(&mut self, f: Self::F) -> Self::N;
    /// Whether a float's truncation fits the SmallInteger range.
    fn float_fits_small_int(&mut self, f: Self::F) -> bool;

    // --- integer arithmetic --------------------------------------------------

    /// `a + b`.
    fn int_add(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// `a - b`.
    fn int_sub(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// `a * b`.
    fn int_mul(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Floor division; callers must have checked `b != 0`.
    fn int_div_floor(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Truncated division; callers must have checked `b != 0`.
    fn int_div_trunc(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Floor modulo; callers must have checked `b != 0`.
    fn int_mod_floor(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Bitwise and. The solver has no bitwise theory (§4.3), so
    /// concolic implementations concretize the result.
    fn int_bit_and(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Bitwise or (concretized symbolically).
    fn int_bit_or(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Bitwise xor (concretized symbolically).
    fn int_bit_xor(&mut self, a: Self::N, b: Self::N) -> Self::N;
    /// Arithmetic shift: positive `b` shifts left, negative right
    /// (concretized symbolically).
    fn int_shift(&mut self, a: Self::N, b: Self::N) -> Self::N;

    // --- float arithmetic -------------------------------------------------------

    /// `a + b`.
    fn float_add(&mut self, a: Self::F, b: Self::F) -> Self::F;
    /// `a - b`.
    fn float_sub(&mut self, a: Self::F, b: Self::F) -> Self::F;
    /// `a * b`.
    fn float_mul(&mut self, a: Self::F, b: Self::F) -> Self::F;
    /// `a / b` (IEEE semantics; division by zero gives inf/nan).
    fn float_div(&mut self, a: Self::F, b: Self::F) -> Self::F;
    /// Fractional part (`f - truncate(f)`).
    fn float_fraction_part(&mut self, f: Self::F) -> Self::F;
    /// IEEE exponent as an integer.
    fn float_exponent(&mut self, f: Self::F) -> Self::N;
    /// Reinterprets a 32-bit integer as an IEEE-754 single and widens
    /// to the VM's float representation (FFI unmarshalling).
    fn int_bits_to_f32(&mut self, bits: Self::N) -> Self::F;
    /// Reinterprets two 32-bit halves as an IEEE-754 double.
    fn int_bits_to_f64(&mut self, lo: Self::N, hi: Self::N) -> Self::F;
    /// Marshals a float to its bit pattern: `(lo, hi)` words; when
    /// `single` is true, `lo` holds the f32 bits and `hi` is zero.
    fn float_to_bits(&mut self, f: Self::F, single: bool) -> (Self::N, Self::N);

    // --- heap protocol ------------------------------------------------------------

    /// Pointer-slot count of an object, as an integer value. Faults on
    /// non-pointer objects (records the kind constraint).
    fn slot_count(&mut self, v: Self::V) -> Result<Self::N, MemFault>;
    /// Byte count of a byte object.
    fn byte_count(&mut self, v: Self::V) -> Result<Self::N, MemFault>;
    /// Reads pointer slot `idx` (0-based), recording bounds
    /// constraints; faults out-of-bounds.
    fn fetch_slot(&mut self, v: Self::V, idx: Self::N) -> Result<Self::V, MemFault>;
    /// Writes pointer slot `idx` (0-based).
    fn store_slot(&mut self, v: Self::V, idx: Self::N, value: Self::V) -> Result<(), MemFault>;
    /// Reads byte `idx` of a byte object as an integer.
    fn fetch_byte(&mut self, v: Self::V, idx: Self::N) -> Result<Self::N, MemFault>;
    /// Writes byte `idx` of a byte object.
    fn store_byte(&mut self, v: Self::V, idx: Self::N, value: Self::N) -> Result<(), MemFault>;
    /// Element count of any indexable object (slots, bytes or words).
    fn element_count(&mut self, v: Self::V) -> Result<Self::N, MemFault>;
    /// Reads 32-bit word element `idx` of a word-format object.
    fn fetch_word(&mut self, v: Self::V, idx: Self::N) -> Result<Self::N, MemFault>;
    /// Writes 32-bit word element `idx` of a word-format object.
    fn store_word(&mut self, v: Self::V, idx: Self::N, value: Self::N) -> Result<(), MemFault>;
    /// The stored identity hash.
    fn identity_hash(&mut self, v: Self::V) -> Result<Self::N, MemFault>;
    /// The class index of `v` as an integer value (for
    /// `primitiveClassIndex`-style reflection).
    fn class_index_as_int(&mut self, v: Self::V) -> Self::N;
    /// Allocates a fresh object; `count` is concretized.
    fn allocate(
        &mut self,
        class: ClassIndex,
        format: ObjectFormat,
        count: Self::N,
    ) -> Result<Self::V, AllocFault>;

    // --- external (FFI) memory -------------------------------------------------------

    /// The raw address held by an external-address handle. Faults on
    /// non-handles.
    fn external_address_of(&mut self, v: Self::V) -> Result<Self::N, MemFault>;
    /// Allocates a fresh external-address handle holding `addr`.
    fn new_external_address(&mut self, addr: Self::N) -> Result<Self::V, AllocFault>;
    /// Reads `width` bytes (1/2/4) at external address `addr`,
    /// optionally sign-extended.
    fn ext_read(&mut self, addr: Self::N, width: u32, signed: bool)
        -> Result<Self::N, MemFault>;
    /// Writes `width` bytes at external address `addr`.
    fn ext_write(&mut self, addr: Self::N, width: u32, value: Self::N)
        -> Result<(), MemFault>;

    // --- frame protocol -----------------------------------------------------------------

    /// Reads the operand-stack value `depth` below the top, recording
    /// an `operand_stack_size > depth` constraint; errors (recording
    /// the negation) when the stack is too shallow.
    fn stack_value(&mut self, frame: &Frame<Self::V>, depth: usize) -> Result<Self::V, MemFault>;
    /// Reads temporary `index`, recording a temp-count constraint.
    fn temp(&mut self, frame: &Frame<Self::V>, index: usize) -> Result<Self::V, MemFault>;
    /// Writes temporary `index`.
    fn set_temp(
        &mut self,
        frame: &mut Frame<Self::V>,
        index: usize,
        value: Self::V,
    ) -> Result<(), MemFault>;
    /// Reads literal `index`, recording a literal-count constraint.
    fn literal(&mut self, frame: &Frame<Self::V>, index: usize) -> Result<Self::V, MemFault>;
}
