//! The concrete `VmContext`: plain execution over the object memory.

use igjit_heap::{ClassIndex, ObjectFormat, ObjectMemory, Oop};

use crate::context::{AllocFault, CmpKind, MemFault, VmContext};
use crate::frame::Frame;

/// Executes interpreter semantics directly against an
/// [`ObjectMemory`], recording nothing.
pub struct ConcreteContext<'m> {
    mem: &'m mut ObjectMemory,
}

impl<'m> ConcreteContext<'m> {
    /// Wraps a memory.
    pub fn new(mem: &'m mut ObjectMemory) -> ConcreteContext<'m> {
        ConcreteContext { mem }
    }

    /// The wrapped memory.
    pub fn memory(&mut self) -> &mut ObjectMemory {
        self.mem
    }
}

impl CmpKind {
    /// Applies the comparison to two i64s.
    pub fn holds_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }

    /// Applies the comparison to two f64s.
    pub fn holds_float(self, a: f64, b: f64) -> bool {
        match self {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }
}

impl VmContext for ConcreteContext<'_> {
    type V = Oop;
    type N = i64;
    type F = f64;

    fn nil(&mut self) -> Oop {
        self.mem.nil()
    }
    fn true_obj(&mut self) -> Oop {
        self.mem.true_object()
    }
    fn false_obj(&mut self) -> Oop {
        self.mem.false_object()
    }
    fn int_const(&mut self, v: i64) -> i64 {
        v
    }
    fn small_int_obj(&mut self, v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    fn is_integer_object(&mut self, v: Oop) -> bool {
        v.is_small_int()
    }
    fn has_class(&mut self, v: Oop, class: ClassIndex) -> bool {
        self.mem.class_index_of(v) == class
    }
    fn is_integer_value(&mut self, n: i64) -> bool {
        self.mem.is_integer_value(n)
    }
    fn int_cmp(&mut self, op: CmpKind, a: i64, b: i64) -> bool {
        op.holds_int(a, b)
    }
    fn float_cmp(&mut self, op: CmpKind, a: f64, b: f64) -> bool {
        op.holds_float(a, b)
    }
    fn value_identical(&mut self, a: Oop, b: Oop) -> bool {
        a == b
    }

    fn integer_value_of(&mut self, v: Oop) -> i64 {
        v.small_int_value()
    }
    fn integer_object_of(&mut self, n: i64) -> Oop {
        Oop::from_small_int(n)
    }
    fn float_value_of(&mut self, v: Oop) -> f64 {
        // Unchecked by design: mirrors the unboxing machine code does.
        self.mem.float_value_unchecked(v).unwrap_or(f64::NAN)
    }
    fn new_float(&mut self, f: f64) -> Result<Oop, AllocFault> {
        self.mem.instantiate_float(f).map_err(|_| AllocFault)
    }
    fn int_to_float(&mut self, n: i64) -> f64 {
        n as f64
    }
    fn float_to_int(&mut self, f: f64) -> i64 {
        f.trunc() as i64
    }
    fn float_fits_small_int(&mut self, f: f64) -> bool {
        f.is_finite()
            && f.trunc() >= igjit_heap::SMALL_INT_MIN as f64
            && f.trunc() <= igjit_heap::SMALL_INT_MAX as f64
    }

    fn int_add(&mut self, a: i64, b: i64) -> i64 {
        a + b
    }
    fn int_sub(&mut self, a: i64, b: i64) -> i64 {
        a - b
    }
    fn int_mul(&mut self, a: i64, b: i64) -> i64 {
        a * b
    }
    fn int_div_floor(&mut self, a: i64, b: i64) -> i64 {
        // Floored division (the Smalltalk `//`): the quotient rounds
        // toward negative infinity, so the remainder's sign follows
        // the divisor — NOT Euclidean division, which differs for
        // negative divisors.
        let q = a / b;
        if a % b != 0 && (a ^ b) < 0 {
            q - 1
        } else {
            q
        }
    }
    fn int_div_trunc(&mut self, a: i64, b: i64) -> i64 {
        a / b
    }
    fn int_mod_floor(&mut self, a: i64, b: i64) -> i64 {
        let r = a % b;
        if r != 0 && (r ^ b) < 0 {
            r + b
        } else {
            r
        }
    }
    fn int_bit_and(&mut self, a: i64, b: i64) -> i64 {
        a & b
    }
    fn int_bit_or(&mut self, a: i64, b: i64) -> i64 {
        a | b
    }
    fn int_bit_xor(&mut self, a: i64, b: i64) -> i64 {
        a ^ b
    }
    fn int_shift(&mut self, a: i64, b: i64) -> i64 {
        if b >= 0 {
            a.checked_shl(b.min(62) as u32).unwrap_or(0)
        } else {
            a >> (-b).min(62)
        }
    }

    fn float_add(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn float_sub(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }
    fn float_mul(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }
    fn float_div(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }
    fn float_fraction_part(&mut self, f: f64) -> f64 {
        f.fract()
    }
    fn float_exponent(&mut self, f: f64) -> i64 {
        if f == 0.0 || !f.is_finite() {
            0
        } else {
            f.abs().log2().floor() as i64
        }
    }
    fn int_bits_to_f32(&mut self, bits: i64) -> f64 {
        f64::from(f32::from_bits(bits as u32))
    }
    fn int_bits_to_f64(&mut self, lo: i64, hi: i64) -> f64 {
        f64::from_bits((lo as u32 as u64) | ((hi as u32 as u64) << 32))
    }
    fn float_to_bits(&mut self, f: f64, single: bool) -> (i64, i64) {
        if single {
            (i64::from((f as f32).to_bits()), 0)
        } else {
            let bits = f.to_bits();
            (i64::from(bits as u32), i64::from((bits >> 32) as u32))
        }
    }

    fn slot_count(&mut self, v: Oop) -> Result<i64, MemFault> {
        self.mem.slot_count(v).map(i64::from).map_err(|_| MemFault)
    }
    fn byte_count(&mut self, v: Oop) -> Result<i64, MemFault> {
        self.mem.byte_count(v).map(i64::from).map_err(|_| MemFault)
    }
    fn fetch_slot(&mut self, v: Oop, idx: i64) -> Result<Oop, MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.fetch_pointer(v, idx).map_err(|_| MemFault)
    }
    fn store_slot(&mut self, v: Oop, idx: i64, value: Oop) -> Result<(), MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.store_pointer(v, idx, value).map_err(|_| MemFault)
    }
    fn fetch_byte(&mut self, v: Oop, idx: i64) -> Result<i64, MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.fetch_byte(v, idx).map(i64::from).map_err(|_| MemFault)
    }
    fn store_byte(&mut self, v: Oop, idx: i64, value: i64) -> Result<(), MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.store_byte(v, idx, value as u8).map_err(|_| MemFault)
    }
    fn element_count(&mut self, v: Oop) -> Result<i64, MemFault> {
        self.mem.element_count(v).map(i64::from).map_err(|_| MemFault)
    }
    fn fetch_word(&mut self, v: Oop, idx: i64) -> Result<i64, MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.fetch_word(v, idx).map(i64::from).map_err(|_| MemFault)
    }
    fn store_word(&mut self, v: Oop, idx: i64, value: i64) -> Result<(), MemFault> {
        let idx = u32::try_from(idx).map_err(|_| MemFault)?;
        self.mem.store_word(v, idx, value as u32).map_err(|_| MemFault)
    }
    fn identity_hash(&mut self, v: Oop) -> Result<i64, MemFault> {
        if v.is_small_int() {
            return Ok(v.small_int_value());
        }
        self.mem.identity_hash(v).map(i64::from).map_err(|_| MemFault)
    }
    fn class_index_as_int(&mut self, v: Oop) -> i64 {
        i64::from(self.mem.class_index_of(v).value())
    }
    fn allocate(
        &mut self,
        class: ClassIndex,
        format: ObjectFormat,
        count: i64,
    ) -> Result<Oop, AllocFault> {
        let count = u32::try_from(count).map_err(|_| AllocFault)?;
        if count > 1 << 20 {
            return Err(AllocFault);
        }
        self.mem.allocate(class, format, count).map_err(|_| AllocFault)
    }

    fn external_address_of(&mut self, v: Oop) -> Result<i64, MemFault> {
        self.mem.external_address_of(v).map(i64::from).map_err(|_| MemFault)
    }
    fn new_external_address(&mut self, addr: i64) -> Result<Oop, AllocFault> {
        let addr = u32::try_from(addr).map_err(|_| AllocFault)?;
        self.mem.instantiate_external_address(addr).map_err(|_| AllocFault)
    }
    fn ext_read(&mut self, addr: i64, width: u32, signed: bool) -> Result<i64, MemFault> {
        let addr = u32::try_from(addr).map_err(|_| MemFault)?;
        if signed {
            self.mem.external().read_int(addr, width).map(i64::from).map_err(|_| MemFault)
        } else {
            self.mem.external().read_uint(addr, width).map(i64::from).map_err(|_| MemFault)
        }
    }
    fn ext_write(&mut self, addr: i64, width: u32, value: i64) -> Result<(), MemFault> {
        let addr = u32::try_from(addr).map_err(|_| MemFault)?;
        self.mem
            .external_mut()
            .write_uint(addr, width, value as u32)
            .map_err(|_| MemFault)
    }

    fn stack_value(&mut self, frame: &Frame<Oop>, depth: usize) -> Result<Oop, MemFault> {
        if frame.depth() <= depth {
            return Err(MemFault);
        }
        Ok(frame.stack_at_depth(depth))
    }
    fn temp(&mut self, frame: &Frame<Oop>, index: usize) -> Result<Oop, MemFault> {
        frame.temps.get(index).copied().ok_or(MemFault)
    }
    fn set_temp(
        &mut self,
        frame: &mut Frame<Oop>,
        index: usize,
        value: Oop,
    ) -> Result<(), MemFault> {
        match frame.temps.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(MemFault),
        }
    }
    fn literal(&mut self, frame: &Frame<Oop>, index: usize) -> Result<Oop, MemFault> {
        frame.method.literals.get(index).copied().ok_or(MemFault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MethodInfo;

    #[test]
    fn predicates_match_heap_reality() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[Oop::from_small_int(5)]).unwrap();
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(ctx.is_integer_object(Oop::from_small_int(3)));
        assert!(!ctx.is_integer_object(arr));
        assert!(ctx.has_class(arr, ClassIndex::ARRAY));
        assert!(!ctx.has_class(arr, ClassIndex::FLOAT));
        assert!(ctx.is_integer_value(1000));
        assert!(!ctx.is_integer_value(1 << 40));
    }

    #[test]
    fn frame_accessors_fault_on_shallow_frames() {
        let mut mem = ObjectMemory::new();
        let nil = mem.nil();
        let mut ctx = ConcreteContext::new(&mut mem);
        let mut frame = Frame::new(nil, MethodInfo::empty());
        assert_eq!(ctx.stack_value(&frame, 0), Err(MemFault));
        frame.push(Oop::from_small_int(1));
        assert!(ctx.stack_value(&frame, 0).is_ok());
        assert_eq!(ctx.stack_value(&frame, 1), Err(MemFault));
        assert_eq!(ctx.temp(&frame, 0), Err(MemFault));
        assert_eq!(ctx.literal(&frame, 0), Err(MemFault));
        assert_eq!(ctx.set_temp(&mut frame, 0, nil), Err(MemFault));
    }

    #[test]
    fn shift_semantics() {
        let mut mem = ObjectMemory::new();
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(ctx.int_shift(1, 4), 16);
        assert_eq!(ctx.int_shift(16, -4), 1);
        assert_eq!(ctx.int_shift(-8, -1), -4);
    }

    #[test]
    fn float_helpers() {
        let mut mem = ObjectMemory::new();
        let mut ctx = ConcreteContext::new(&mut mem);
        assert!(ctx.float_fits_small_int(123.75));
        assert!(!ctx.float_fits_small_int(1e300));
        assert!(!ctx.float_fits_small_int(f64::NAN));
        assert_eq!(ctx.float_to_int(3.9), 3);
        assert_eq!(ctx.float_to_int(-3.9), -3);
        assert_eq!(ctx.float_exponent(8.0), 3);
        assert_eq!(ctx.float_exponent(0.0), 0);
    }

    #[test]
    fn negative_slot_index_faults() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[Oop::from_small_int(5)]).unwrap();
        let mut ctx = ConcreteContext::new(&mut mem);
        assert_eq!(ctx.fetch_slot(arr, -1), Err(MemFault));
        assert!(ctx.fetch_slot(arr, 0).is_ok());
        assert_eq!(ctx.fetch_slot(arr, 1), Err(MemFault));
    }
}
