//! Instruction exit conditions (§3.4 of the paper).

use igjit_bytecode::SpecialSelector;

/// How an instruction's execution finished, at the granularity the
/// differential tester compares (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExitCondition {
    /// The instruction ran to its end (bytecode) or the native method
    /// returned to its caller.
    Success,
    /// A native method rejected its operands and fell back to the
    /// user-defined method body.
    Failure,
    /// Execution left the interpreter to activate a message send.
    MessageSend,
    /// Execution returned to the caller frame.
    MethodReturn,
    /// A value was required that the (generated) frame does not hold —
    /// an *expected* failure telling the explorer to grow the frame.
    InvalidFrame,
    /// An out-of-bounds object access — expected for unsafe bytecodes,
    /// a genuine error for (safe-by-contract) native methods.
    InvalidMemoryAccess,
}

/// The selector of a message-send exit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Selector<V> {
    /// A selector from the VM-global special-selector table (optimised
    /// sends and fast-path bail-outs).
    Special(SpecialSelector),
    /// A selector pushed from the method's literal frame.
    Literal(V),
    /// The `mustBeBoolean` error send raised by conditional jumps on a
    /// non-boolean value.
    MustBeBoolean,
}

/// The full outcome of stepping one bytecode instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum StepOutcome<V> {
    /// Fell through to the next instruction; operand stack updated.
    Continue,
    /// Took a jump of `displacement` bytes relative to the *end* of
    /// the instruction.
    Jump {
        /// Signed displacement in bytes.
        displacement: i32,
    },
    /// Returned from the method.
    MethodReturn {
        /// The returned value.
        value: V,
    },
    /// Activated a message send (slow path or generic send).
    MessageSend {
        /// The sent selector.
        selector: Selector<V>,
        /// Receiver of the message.
        receiver: V,
        /// Arguments, receiver excluded.
        args: Vec<V>,
    },
    /// Frame too small (missing stack value, temp or literal).
    InvalidFrame,
    /// Out-of-bounds object access.
    InvalidMemoryAccess,
    /// The instruction uses a feature the prototype does not model
    /// (stack-frame reification, bytecode look-ahead); §4.3.
    Unsupported {
        /// What is missing.
        reason: &'static str,
    },
}

impl<V> StepOutcome<V> {
    /// Collapses the outcome to the paper's exit-condition lattice.
    pub fn exit_condition(&self) -> Option<ExitCondition> {
        Some(match self {
            StepOutcome::Continue | StepOutcome::Jump { .. } => ExitCondition::Success,
            StepOutcome::MethodReturn { .. } => ExitCondition::MethodReturn,
            StepOutcome::MessageSend { .. } => ExitCondition::MessageSend,
            StepOutcome::InvalidFrame => ExitCondition::InvalidFrame,
            StepOutcome::InvalidMemoryAccess => ExitCondition::InvalidMemoryAccess,
            StepOutcome::Unsupported { .. } => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_map_to_exit_conditions() {
        assert_eq!(
            StepOutcome::<u32>::Continue.exit_condition(),
            Some(ExitCondition::Success)
        );
        assert_eq!(
            StepOutcome::<u32>::Jump { displacement: 3 }.exit_condition(),
            Some(ExitCondition::Success)
        );
        assert_eq!(
            StepOutcome::MethodReturn { value: 0u32 }.exit_condition(),
            Some(ExitCondition::MethodReturn)
        );
        assert_eq!(
            StepOutcome::<u32>::InvalidFrame.exit_condition(),
            Some(ExitCondition::InvalidFrame)
        );
        assert_eq!(
            StepOutcome::<u32>::Unsupported { reason: "x" }.exit_condition(),
            None
        );
    }
}
