//! Predecoded bytecode programs (engine v8).
//!
//! The interpreter's fetch loop historically decoded every bytecode
//! byte-by-byte and re-matched the ~50-variant opcode enum on every
//! step. A method's bytecodes are immutable, though, so both halves of
//! that work are pure functions of the program bytes:
//! [`PredecodedProgram`] performs them once. A sequential decode from
//! offset 0 yields a dense vector of decoded steps plus a byte-offset →
//! step jump table (mirroring engine v5's `PredecodedCode` for machine
//! artifacts), and [`PredecodedProgram::resolve`] additionally pins
//! each step's [`StepFn`] so execution becomes an indexed fetch plus an
//! indirect call — no per-step decode, no per-step dispatch match.
//!
//! The artifact is *derived*, never authoritative: it is built from
//! exactly the bytes the fetch loop would otherwise decode, and any
//! program counter that does not land on a sequentially-decoded
//! boundary — a jump into the middle of an instruction, code past a
//! decode failure, or an offset beyond the method — falls back to the
//! byte-level decoder for that step, so decode faults reproduce
//! exactly. Execution under a [`PredecodedProgram`] is therefore
//! step-for-step identical to byte-level decoding; the
//! `predecode_props` proptest suite enforces this over random
//! instruction streams, raw byte soup, and wild jump targets.
//!
//! # Superinstruction fusion
//!
//! The negation walk and the oracle runs overwhelmingly fetch
//! *push-then-operate* pairs (push/push/add, push/push/compare, …).
//! Sequential decode guarantees that step `i + 1` starts exactly at
//! step `i`'s end, so when step `i` is a push — an instruction whose
//! only outcomes are `Continue` or a fault — the runner may execute
//! the following step immediately after a `Continue` without going
//! back through the jump table. [`Step::fuse_next`] marks exactly
//! those pairs; fusion never changes which step functions run or in
//! what order, it only skips the re-fetch between them.

use igjit_bytecode::{decode, Instruction};

use crate::context::VmContext;
use crate::spec::step_spec;
use crate::step::{resolve_step, StepFn};

/// Marker in the jump table for byte offsets that are not a
/// sequentially-decoded instruction boundary.
const NOT_A_BOUNDARY: u32 = u32::MAX;

/// One sequentially decoded instruction of a [`PredecodedProgram`].
#[derive(Clone, Copy, Debug)]
pub struct Step {
    /// The decoded instruction.
    pub instr: Instruction,
    /// Its encoded length in bytes.
    pub len: u8,
    /// Whether the runner may execute the next sequential step
    /// immediately after this one returns `Continue` (superinstruction
    /// fusion): set when this instruction is a push and a next step
    /// exists.
    pub fuse_next: bool,
}

/// A bytecode program decoded once, executed many times.
#[derive(Clone, Debug)]
pub struct PredecodedProgram {
    /// The method bytes (the fallback path and bounds checks still
    /// need them, and keeping them here guarantees the predecoded view
    /// and the byte view can never drift apart).
    bytes: Vec<u8>,
    /// Sequentially decoded steps.
    steps: Vec<Step>,
    /// Byte offset → index into `steps`; [`NOT_A_BOUNDARY`] elsewhere.
    index: Vec<u32>,
}

/// Whether `instr` is a push-class instruction: its only outcomes are
/// `Continue` or a fault, so a following step can be fused after it.
/// Derived from the instruction's [`StepSpec`](crate::StepSpec)
/// (engine v9) instead of a hand-written opcode list; the spec module
/// pins the predicate to the historical list member by member.
fn is_push(instr: Instruction) -> bool {
    step_spec(instr).is_fusible()
}

impl PredecodedProgram {
    /// Decodes `bytes` sequentially from offset 0. Decoding stops at
    /// the first undecodable position (offsets from there on simply
    /// fall back to the byte decoder at run time, which reports the
    /// same decode error the byte path would).
    pub fn new(bytes: &[u8]) -> PredecodedProgram {
        let mut steps: Vec<Step> = Vec::new();
        let mut index = vec![NOT_A_BOUNDARY; bytes.len()];
        let mut off = 0usize;
        while off < bytes.len() {
            let Ok((instr, len)) = decode(bytes, off) else {
                break;
            };
            index[off] = steps.len() as u32;
            steps.push(Step { instr, len: len as u8, fuse_next: false });
            off += len;
        }
        // Fusion marking: a push followed by any sequential step may
        // chain straight into it.
        for i in 0..steps.len().saturating_sub(1) {
            steps[i].fuse_next = is_push(steps[i].instr);
        }
        PredecodedProgram { bytes: bytes.to_vec(), steps, index }
    }

    /// The method bytes the steps were decoded from.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of sequentially decoded instructions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing decoded (empty or immediately invalid bytes).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The sequentially decoded steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The step index starting exactly at byte offset `pc`, or `None`
    /// when `pc` is not a sequentially-decoded boundary (the caller
    /// falls back to [`decode`]).
    #[inline]
    pub fn lookup(&self, pc: usize) -> Option<usize> {
        let idx = *self.index.get(pc)?;
        if idx == NOT_A_BOUNDARY {
            return None;
        }
        Some(idx as usize)
    }

    /// Pins each step's [`StepFn`] for a concrete context type, so a
    /// run loop pays for opcode dispatch once per program instead of
    /// once per executed step. The resolved table is parallel to
    /// [`steps`](Self::steps).
    pub fn resolve<C: VmContext>(&self) -> Vec<StepFn<C>> {
        self.steps.iter().map(|s| resolve_step::<C>(s.instr)).collect()
    }
}

/// Pre-resolves a straight-line instruction sequence (no program
/// bytes, no jump table) to step functions — the predecoded form of
/// the oracle/explorer sequence runners, which execute an
/// already-decoded `&[Instruction]` slice.
pub fn resolve_sequence<C: VmContext>(instrs: &[Instruction]) -> Vec<StepFn<C>> {
    instrs.iter().map(|&i| resolve_step::<C>(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::encode;

    fn assemble(instrs: &[Instruction]) -> Vec<u8> {
        let mut out = Vec::new();
        for &i in instrs {
            encode(i, &mut out);
        }
        out
    }

    #[test]
    fn every_boundary_matches_the_byte_decoder() {
        let bytes = assemble(&[
            Instruction::PushTemp(0),
            Instruction::PushInteger(7),
            Instruction::Add,
            Instruction::ReturnTop,
        ]);
        let pd = PredecodedProgram::new(&bytes);
        assert_eq!(pd.len(), 4);
        let mut boundaries = 0;
        for pc in 0..=bytes.len() + 4 {
            if let Some(i) = pd.lookup(pc) {
                let s = pd.steps()[i];
                let (instr, len) = decode(&bytes, pc).unwrap();
                assert_eq!((s.instr, usize::from(s.len)), (instr, len), "pc {pc}");
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 4, "one boundary per instruction");
    }

    #[test]
    fn fusion_marks_push_pairs_only() {
        let bytes = assemble(&[
            Instruction::PushZero,     // push followed by push: fused
            Instruction::PushOne,      // push followed by op: fused
            Instruction::Add,          // op followed by return: not fused
            Instruction::ReturnTop,    // last step: never fused
        ]);
        let pd = PredecodedProgram::new(&bytes);
        let fused: Vec<bool> = pd.steps().iter().map(|s| s.fuse_next).collect();
        assert_eq!(fused, [true, true, false, false]);
    }

    #[test]
    fn mid_instruction_offsets_are_not_boundaries() {
        let bytes = assemble(&[Instruction::PushInteger(100)]);
        assert!(bytes.len() > 1, "need a multi-byte encoding");
        let pd = PredecodedProgram::new(&bytes);
        assert!(pd.lookup(0).is_some());
        for pc in 1..bytes.len() {
            assert_eq!(pd.lookup(pc), None, "pc {pc} is mid-instruction");
        }
        assert_eq!(pd.lookup(bytes.len()), None, "end of code");
    }

    #[test]
    fn decoding_stops_at_the_first_bad_opcode() {
        let mut bytes = assemble(&[Instruction::Nop]);
        let bad_at = bytes.len();
        bytes.push(0xFF); // outside every opcode page
        bytes.extend_from_slice(&assemble(&[Instruction::ReturnTop]));
        let pd = PredecodedProgram::new(&bytes);
        if decode(&bytes, bad_at).is_err() {
            assert_eq!(pd.len(), 1, "only the Nop predecodes");
            assert_eq!(pd.lookup(bad_at), None);
        }
    }

    #[test]
    fn empty_and_garbage_bytes() {
        let pd = PredecodedProgram::new(&[]);
        assert!(pd.is_empty());
        assert_eq!(pd.lookup(0), None);
    }
}
