//! Compile-time identity of this crate's sources.
//!
//! `SOURCE_FINGERPRINT` is an FNV-1a hash over every `.rs` file in
//! `src/`, computed at build time via `include_bytes!`. The persistent
//! campaign corpus (`igjit-corpus`) mixes these per-crate hashes into
//! its section fingerprints, so editing any file of a semantic crate
//! invalidates exactly the corpus sections whose results could have
//! changed — and nothing else. `igjit-corpus` has a test that walks
//! this directory and fails if `SRC_FILES` goes stale.

/// Every source file baked into [`SOURCE_FINGERPRINT`], sorted,
/// relative to `src/`.
pub const SRC_FILES: &[&str] = &[
    "concrete.rs",
    "context.rs",
    "exit.rs",
    "frame.rs",
    "image.rs",
    "lib.rs",
    "natives/ffi.rs",
    "natives/float.rs",
    "natives/mod.rs",
    "natives/object.rs",
    "natives/smallint.rs",
    "predecode.rs",
    "runner.rs",
    "spec.rs",
    "srcid.rs",
    "step.rs",
];

const SRC_BYTES: &[&[u8]] = &[
    include_bytes!("concrete.rs"),
    include_bytes!("context.rs"),
    include_bytes!("exit.rs"),
    include_bytes!("frame.rs"),
    include_bytes!("image.rs"),
    include_bytes!("lib.rs"),
    include_bytes!("natives/ffi.rs"),
    include_bytes!("natives/float.rs"),
    include_bytes!("natives/mod.rs"),
    include_bytes!("natives/object.rs"),
    include_bytes!("natives/smallint.rs"),
    include_bytes!("predecode.rs"),
    include_bytes!("runner.rs"),
    include_bytes!("spec.rs"),
    include_bytes!("srcid.rs"),
    include_bytes!("step.rs"),
];

/// FNV-1a over the concatenation of [`SRC_FILES`] contents (with a
/// separator byte between files, so moving bytes across a file
/// boundary changes the hash).
pub const SOURCE_FINGERPRINT: u64 = fnv64(SRC_BYTES);

const fn fnv64(files: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut i = 0;
    while i < files.len() {
        let f = files[i];
        let mut j = 0;
        while j < f.len() {
            h ^= f[j] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            j += 1;
        }
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    h
}
