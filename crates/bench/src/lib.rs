//! Shared helpers for the table/figure harness binaries and the
//! Criterion benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use igjit::report;
use igjit::{Campaign, CampaignConfig, CampaignReport, Isa};

/// The evaluation configuration used by every harness binary: both
/// ISAs, probing enabled (the paper's §5.1 setup).
pub fn paper_campaign() -> Campaign {
    Campaign::new(CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    })
}

/// Prints a full Table 2 from the given reports.
pub fn print_table2(reports: &[CampaignReport]) {
    println!("{}", report::table2_header());
    let mut total = igjit::CampaignRow { label: "Total".into(), ..Default::default() };
    for r in reports {
        println!("{}", report::table2_row(r));
        total.tested_instructions += r.row.tested_instructions;
        total.interpreter_paths += r.row.interpreter_paths;
        total.curated_paths += r.row.curated_paths;
        total.differences += r.row.differences;
    }
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>10} ({:.2}%)",
        total.label,
        total.tested_instructions,
        total.interpreter_paths,
        total.curated_paths,
        total.differences,
        total.difference_percent()
    );
}
