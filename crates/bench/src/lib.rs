//! Shared helpers for the table/figure harness binaries and the
//! Criterion benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::io::Write;

use igjit::report;
use igjit::{aggregate_metrics, Campaign, CampaignConfig, CampaignReport, Isa, Metrics};

/// The strictly parsed `IGJIT_*` knobs. Unknown `IGJIT_*` variables
/// and malformed values are fatal (exit status 2): a misspelled knob
/// must not silently run the default configuration.
pub fn env_knobs() -> igjit::env::EnvKnobs {
    match igjit::env::parse_env() {
        Ok(knobs) => knobs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Worker threads for the harness binaries: the `IGJIT_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism. Malformed values are fatal.
pub fn campaign_threads() -> usize {
    env_knobs().threads_or_default()
}

/// Whether the compiled-code cache is enabled: the `IGJIT_CODE_CACHE`
/// environment variable, default on. Malformed values are fatal.
pub fn code_cache_enabled() -> bool {
    env_knobs().code_cache_enabled()
}

/// Whether heap snapshot/restore replay is enabled: the
/// `IGJIT_HEAP_SNAPSHOT` environment variable (off, every run rebuilds
/// the heap from the model), default on. Malformed values are fatal.
pub fn heap_snapshot_enabled() -> bool {
    env_knobs().heap_snapshot_enabled()
}

/// Whether predecoded batched replay is enabled: the `IGJIT_PREDECODE`
/// environment variable (off, every step byte-decodes and every run
/// reallocates the simulator), default on. Malformed values are fatal.
pub fn predecode_enabled() -> bool {
    env_knobs().predecode_enabled()
}

/// Whether the interpreter-side predecoded pipeline is enabled: the
/// `IGJIT_INTERP_PREDECODE` environment variable (off, oracle and
/// sequence runs dispatch per step — the engine-v7 behaviour), default
/// on. Rows are identical either way. Malformed values are fatal.
pub fn interp_predecode_enabled() -> bool {
    env_knobs().interp_predecode_enabled()
}

/// Whether hash-consed constraint interning is enabled: the
/// `IGJIT_HASH_CONS` environment variable (on, assertions are interned
/// and path dedup keys on term ids), default off since engine v7 (the
/// ablation in EXPERIMENTS.md measured the sweep faster without it).
/// Malformed values are fatal.
pub fn hash_cons_enabled() -> bool {
    env_knobs().hash_cons_enabled()
}

/// Whether family-shared exploration is enabled: the
/// `IGJIT_FAMILY_SHARE` environment variable (off, every opcode is
/// explored from scratch), default on. Malformed values are fatal.
pub fn family_share_enabled() -> bool {
    env_knobs().family_share_enabled()
}

/// Whether the meta-compiled tier (#5, engine v9) runs as a fifth
/// Table 2 row: the `IGJIT_TIER5` environment variable, default on.
/// Tiers 1–4 rows are byte-identical either way. Malformed values are
/// fatal.
pub fn tier5_enabled() -> bool {
    env_knobs().tier5_enabled()
}

/// Whether solver sessions run hypothesis scopes on the undo trail
/// instead of cloning the interval store per scope (engine v10): the
/// `IGJIT_SOLVER_TRAIL` environment variable, default on. Rows are
/// byte-identical either way. Malformed values are fatal.
pub fn solver_trail_enabled() -> bool {
    env_knobs().solver_trail_enabled()
}

/// Worker threads for intra-instruction path negation: the
/// `IGJIT_NEGATE_THREADS` environment variable, default 1
/// (sequential). Malformed values are fatal.
pub fn negate_threads() -> usize {
    env_knobs().negate_threads_or_default()
}

/// Path of the persistent campaign corpus: the `IGJIT_CORPUS`
/// environment variable, default none (no persistence). Malformed
/// values (an empty path) are fatal.
pub fn corpus_path() -> Option<std::path::PathBuf> {
    env_knobs().corpus
}

/// Worker *processes* sharding the main campaign: the
/// `IGJIT_CAMPAIGN_JOBS` environment variable, default 1 (in-process).
/// Malformed values are fatal.
pub fn campaign_jobs() -> usize {
    env_knobs().campaign_jobs_or_default()
}

/// Arms the mutation operator named by `IGJIT_MUTANT`, if any,
/// returning the guard that keeps it armed. Harness binaries call this
/// first thing in `main` and hold the guard for the process lifetime,
/// so a whole table/figure run can be repeated under a fault. Unknown
/// mutant specs are fatal (exit status 2).
pub fn arm_mutant_from_env() -> Option<igjit::MutantGuard> {
    env_knobs().mutant.map(|id| match igjit::FaultInjector::arm(id) {
        Ok(guard) => {
            let name = igjit::mutate::find(id).map(|op| op.name).unwrap_or("?");
            eprintln!("fault injection: mutant {} ({name}) armed for this run", id.0);
            guard
        }
        Err(e) => {
            eprintln!("error: IGJIT_MUTANT: {e}");
            std::process::exit(2);
        }
    })
}

/// The evaluation configuration used by every harness binary: both
/// ISAs, probing enabled (the paper's §5.1 setup), worker threads from
/// [`campaign_threads`], code cache from [`code_cache_enabled`], heap
/// snapshots from [`heap_snapshot_enabled`], predecoded replay from
/// [`predecode_enabled`], persistent corpus from [`corpus_path`].
pub fn paper_campaign() -> Campaign {
    Campaign::new(paper_config())
}

/// The [`paper_campaign`] configuration without building the campaign,
/// for binaries that tweak a field (corpus path, thread count) before
/// construction.
pub fn paper_config() -> CampaignConfig {
    CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: campaign_threads(),
        code_cache: code_cache_enabled(),
        heap_snapshot: heap_snapshot_enabled(),
        predecode: predecode_enabled(),
        interp_predecode: interp_predecode_enabled(),
        hash_cons: hash_cons_enabled(),
        family_share: family_share_enabled(),
        negate_threads: negate_threads(),
        corpus: corpus_path(),
        meta_tier: tier5_enabled(),
        solver_trail: solver_trail_enabled(),
    }
}

/// Renders one in-place progress line on stderr. The line is
/// terminated (newline) when the batch completes, so subsequent output
/// starts fresh.
pub fn progress_line(row: &str, completed: usize, total: usize, current: &str) {
    eprint!("\r  {row:<28} {completed:>4}/{total:<4} {current:<28}");
    if completed >= total {
        eprintln!();
    }
    let _ = std::io::stderr().flush();
}

/// Attaches the live stderr progress line to a campaign.
pub fn with_live_progress(campaign: Campaign) -> Campaign {
    campaign.on_progress(|p| progress_line(&p.row, p.completed, p.total, &p.current))
}

/// Writes the observability JSON for a campaign run next to the
/// textual report and says where it went.
pub fn write_metrics_json(path: &str, reports: &[CampaignReport]) {
    match std::fs::write(path, report::metrics_json(reports)) {
        Ok(()) => eprintln!("metrics: {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Appends one machine-readable benchmark record (JSON Lines) to
/// `path`: timestamp, the knob configuration it ran under, thread
/// count, wall clock, per-stage sums and maxima, both cache hit rates
/// and the aggregated Table 2 totals. Appending keeps the history of
/// runs, so throughput drifts show up as a time series rather than
/// overwriting the evidence; the `knobs` object lets checkers classify
/// records without inferring the configuration from stage values.
pub fn append_bench_json(path: &str, reports: &[CampaignReport]) {
    let total = aggregate_metrics(reports);
    let mut row = igjit::CampaignRow::default();
    for r in reports {
        row.tested_instructions += r.row.tested_instructions;
        row.interpreter_paths += r.row.interpreter_paths;
        row.curated_paths += r.row.curated_paths;
        row.differences += r.row.differences;
    }
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let knobs = env_knobs();
    let record = format!(
        concat!(
            "{{\"epoch_s\":{},",
            "\"knobs\":{{\"code_cache\":{},\"heap_snapshot\":{},\"predecode\":{},",
            "\"interp_predecode\":{},",
            "\"hash_cons\":{},\"family_share\":{},\"tier5\":{},\"solver_trail\":{},",
            "\"corpus\":{}}},",
            "\"metrics\":{},",
            "\"table2\":{{\"tested_instructions\":{},\"interpreter_paths\":{},",
            "\"curated_paths\":{},\"differences\":{}}}}}\n"
        ),
        epoch,
        knobs.code_cache_enabled(),
        knobs.heap_snapshot_enabled(),
        knobs.predecode_enabled(),
        knobs.interp_predecode_enabled(),
        knobs.hash_cons_enabled(),
        knobs.family_share_enabled(),
        knobs.tier5_enabled(),
        knobs.solver_trail_enabled(),
        knobs.corpus.is_some(),
        total.to_json(),
        row.tested_instructions,
        row.interpreter_paths,
        row.curated_paths,
        row.differences,
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    match appended {
        Ok(()) => eprintln!("bench record appended: {path}"),
        Err(e) => eprintln!("could not append {path}: {e}"),
    }
}

/// Prints a one-paragraph summary of aggregated campaign metrics.
pub fn print_metrics_summary(total: &Metrics) {
    println!(
        "\n{} instructions on {} thread(s) in {:.2}s wall clock \
         (explore {:.2}s, materialize {:.2}s, compile {:.2}s, meta-compile {:.2}s, \
         simulate {:.2}s, compare {:.2}s)",
        total.instructions,
        total.threads,
        total.wall_clock.as_secs_f64(),
        total.stages.explore.as_secs_f64(),
        total.stages.materialize.as_secs_f64(),
        total.stages.compile.as_secs_f64(),
        total.stages.meta_compile.as_secs_f64(),
        total.stages.simulate.as_secs_f64(),
        total.stages.compare.as_secs_f64(),
    );
    println!(
        "sub-stages: setup {:.3}s, decode {:.3}s, hash {:.3}s, report {:.3}s, \
         progress {:.3}s, residual other {:.3}s",
        total.stages.setup.as_secs_f64(),
        total.stages.decode.as_secs_f64(),
        total.stages.hash.as_secs_f64(),
        total.stages.report.as_secs_f64(),
        total.stages.progress.as_secs_f64(),
        total.stages.other.as_secs_f64(),
    );
    println!(
        "explore sub-slices: walk run {:.3}s, probe solve {:.3}s \
         (both inside explore, not additive with it)",
        total.stages.walk_run.as_secs_f64(),
        total.stages.probe_solve.as_secs_f64(),
    );
    if total.corpus_hits + total.corpus_misses > 0 {
        println!(
            "corpus: {} warm / {} cold instructions",
            total.corpus_hits, total.corpus_misses,
        );
    }
    println!(
        "exploration cache: {} hits / {} misses ({:.1}% hit rate){}",
        total.cache_hits,
        total.cache_misses,
        100.0 * total.cache_hit_rate(),
        if total.witness_errors > 0 {
            format!("; {} witness error(s)", total.witness_errors)
        } else {
            String::new()
        },
    );
    println!(
        "code cache: {} hits / {} compiles ({:.1}% hit rate)",
        total.compile_hits,
        total.compile_misses,
        100.0 * total.compile_hit_rate(),
    );
    if total.snapshot.seals > 0 {
        println!(
            "heap snapshots: {} sealed, {} restores, {} dirty words total \
             ({:.1} words/restore)",
            total.snapshot.seals,
            total.snapshot.restores,
            total.snapshot.dirty_words,
            total.snapshot.dirty_words as f64 / (total.snapshot.restores.max(1) as f64),
        );
    }
    println!(
        "solver: {} solves ({} sat, {} unsat), {} nodes, \
         {} incremental / {} rebuilds, scope depth ≤ {}",
        total.solver.solves,
        total.solver.sat,
        total.solver.unsat,
        total.solver.nodes_visited,
        total.solver.propagation_reuse,
        total.solver.rebuilds,
        total.solver.max_depth,
    );
    if total.trail.trail_marks + total.trail.pool_hits + total.trail.pool_misses > 0 {
        println!(
            "trail: {} scope marks, {} ops unwound, {} store clones avoided, \
             model pool {} hits / {} misses ({:.1}% hit rate)",
            total.trail.trail_marks,
            total.trail.undone_ops,
            total.trail.clones_avoided,
            total.trail.pool_hits,
            total.trail.pool_misses,
            100.0 * total.trail.pool_hit_rate(),
        );
    }
}

/// Prints a full Table 2 from the given reports.
pub fn print_table2(reports: &[CampaignReport]) {
    println!("{}", report::table2_header());
    let mut total = igjit::CampaignRow { label: "Total".into(), ..Default::default() };
    for r in reports {
        println!("{}", report::table2_row(r));
        total.tested_instructions += r.row.tested_instructions;
        total.interpreter_paths += r.row.interpreter_paths;
        total.curated_paths += r.row.curated_paths;
        total.differences += r.row.differences;
    }
    for r in reports {
        if r.row.meta_compiled_runs + r.row.meta_trampolines > 0 {
            println!(
                "meta tier coverage: {}/{} instructions fully meta-compiled ({:.1}%), \
                 {} compiled runs / {} trampolined runs",
                r.row.meta_full_instructions,
                r.row.tested_instructions,
                100.0 * r.row.meta_coverage(),
                r.row.meta_compiled_runs,
                r.row.meta_trampolines,
            );
        }
    }
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>10} ({:.2}%)",
        total.label,
        total.tested_instructions,
        total.interpreter_paths,
        total.curated_paths,
        total.differences,
        total.difference_percent()
    );
}
