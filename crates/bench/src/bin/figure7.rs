//! Regenerates Figure 7: test execution time per compiler (log ms) —
//! the differential-run cost once the exploration results are cached.

use std::time::Instant;

use igjit::report::{ascii_histogram, stats};
use igjit::{
    instruction_catalog, native_catalog, test_instruction, CompilerKind, InstrUnderTest, Isa,
    Target,
};

fn main() {
    let isas = [Isa::X86ish, Isa::Arm32ish];

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    eprintln!("timing native-method differential tests…");
    let mut nm_ms = Vec::new();
    for spec in native_catalog() {
        let t0 = Instant::now();
        let _ = test_instruction(
            InstrUnderTest::Native(spec.id),
            Target::NativeMethods,
            &isas,
            true,
        );
        nm_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    series.push(("Native Method".into(), nm_ms));

    for kind in CompilerKind::ALL {
        eprintln!("timing bytecode differential tests on {}…", kind.name());
        let mut ms = Vec::new();
        for spec in instruction_catalog() {
            let t0 = Instant::now();
            let _ = test_instruction(
                InstrUnderTest::Bytecode(spec.instruction),
                Target::Bytecode(kind),
                &isas,
                false,
            );
            ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
        let label = match kind {
            CompilerKind::SimpleStackBased => "Simple",
            CompilerKind::StackToRegister => "Stack-to-Register",
            CompilerKind::RegisterAllocating => "Linear-Allocator",
        };
        series.push((label.into(), ms));
    }

    println!("\nFigure 7: test execution time per compiler\n");
    for (label, data) in &series {
        let s = stats(data.iter().copied()).unwrap();
        println!(
            "{label:<18} min {:>8.2}ms  median {:>8.2}ms  mean {:>8.2}ms  max {:>8.2}ms  total {:>8.2}s",
            s.min,
            s.median,
            s.mean,
            s.max,
            s.total / 1000.0
        );
    }
    for (label, data) in &series {
        println!("\n{label} time distribution (ms):");
        println!("{}", ascii_histogram(data, 8, 40));
    }
}
