//! Regenerates Figure 7: test execution time per compiler (log ms) —
//! the differential-run cost once the exploration results are cached.
//!
//! Engine v2 makes the caption literal: the campaign's shared
//! exploration cache means the native row and the first bytecode tier
//! pay for exploration, and the remaining tiers measure pure
//! differential-run cost. Renders a live progress line on stderr and
//! writes `figure7.metrics.json` next to the report.

use igjit::aggregate_metrics;
use igjit::report::{ascii_histogram, stats};
use igjit::CompilerKind;
use igjit_bench::{paper_campaign, print_metrics_summary, with_live_progress, write_metrics_json};

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let campaign = with_live_progress(paper_campaign());
    eprintln!(
        "running the four campaigns with a shared exploration cache ({} thread(s))…",
        campaign.config().threads
    );
    let reports = campaign.run_all();

    let label_of = |i: usize| -> &'static str {
        match i {
            0 => "Native Method",
            1 => CompilerKind::SimpleStackBased.name(),
            2 => CompilerKind::StackToRegister.name(),
            _ => CompilerKind::RegisterAllocating.name(),
        }
    };
    let series: Vec<(&str, Vec<f64>)> = reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                label_of(i),
                r.timings.iter().map(|t| t.elapsed.as_secs_f64() * 1000.0).collect(),
            )
        })
        .collect();

    println!("\nFigure 7: test execution time per compiler\n");
    for (label, data) in &series {
        let s = stats(data.iter().copied()).unwrap();
        println!(
            "{label:<28} min {:>8.2}ms  median {:>8.2}ms  mean {:>8.2}ms  max {:>8.2}ms  total {:>8.2}s",
            s.min,
            s.median,
            s.mean,
            s.max,
            s.total / 1000.0
        );
    }
    for (label, data) in &series {
        println!("\n{label} time distribution (ms):");
        println!("{}", ascii_histogram(data, 8, 40));
    }
    print_metrics_summary(&aggregate_metrics(&reports));
    write_metrics_json("figure7.metrics.json", &reports);
}
