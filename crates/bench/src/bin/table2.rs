//! Regenerates Table 2 of the paper: for each compiler tier (the
//! paper's four plus, since engine v9, the meta-compiled tier derived
//! from the interpreter), the number of tested instructions,
//! interpreter paths, curated paths and differences.
//!
//! Observability: renders a live per-row progress line on stderr,
//! writes `table2.metrics.json` (per-stage wall-clock, cache hit
//! rates) next to the textual report, and appends one machine-readable
//! record per run to `BENCH_table2.json` (JSON Lines). `IGJIT_THREADS`
//! overrides the worker count; `IGJIT_CODE_CACHE=0` disables the
//! compiled-code cache; `IGJIT_HEAP_SNAPSHOT=0` disables base-image
//! replay (re-materializing the heap for every engine run instead).
//!
//! Engine v7 adds two scale knobs:
//!
//! - `--corpus PATH` (or `IGJIT_CORPUS`): persistent campaign corpus.
//!   The run warm-starts from entries whose fingerprints match this
//!   build + configuration and writes new entries back afterwards, so
//!   a re-run against an unchanged compiler replays Table 2 without
//!   re-exploring, re-compiling or re-simulating anything.
//! - `--jobs N` (or `IGJIT_CAMPAIGN_JOBS`): shards the catalog over N
//!   worker *processes*. Each worker computes its shard's outcomes and
//!   writes them as a corpus file; the parent preloads all shards and
//!   runs the normal sweep fully warm — so the merged table is
//!   byte-identical to a sequential run by construction.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::Command;

use igjit::aggregate_metrics;
use igjit::{
    instruction_catalog, native_catalog, Campaign, CompilerKind, InstrUnderTest, InstructionOutcome,
    NativeMethodId, Target,
};
use igjit_bench::{
    append_bench_json, campaign_jobs, paper_config, print_metrics_summary, print_table2,
    with_live_progress, write_metrics_json,
};

const MANIFEST_HEADER: &str = "igjit-table2-manifest v2";

struct Args {
    jobs: Option<usize>,
    corpus: Option<PathBuf>,
    /// Hidden worker mode: `--worker-shard MANIFEST IDX JOBS`.
    worker_shard: Option<(PathBuf, usize, usize)>,
    shard_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: table2 [--jobs N] [--corpus PATH]\n\
         \n\
         Regenerates Table 2 (the four compiler rows plus the\n\
         meta-compiled tier over the whole instruction catalog,\n\
         both ISAs, kind probing on; IGJIT_TIER5=0 drops the fifth\n\
         row without changing the other four).\n\
         \n\
         options:\n\
         \x20 --jobs N       shard the catalog over N worker processes\n\
         \x20                (also IGJIT_CAMPAIGN_JOBS; the merged table\n\
         \x20                is byte-identical to a sequential run)\n\
         \x20 --corpus PATH  persistent campaign corpus: warm-start from\n\
         \x20                PATH and write new entries back (also\n\
         \x20                IGJIT_CORPUS; stale or corrupt files degrade\n\
         \x20                to a cold run)\n\
         \x20 --help         this text\n\
         \n\
         environment: IGJIT_THREADS, IGJIT_CODE_CACHE, IGJIT_HEAP_SNAPSHOT,\n\
         IGJIT_PREDECODE, IGJIT_INTERP_PREDECODE, IGJIT_HASH_CONS, IGJIT_FAMILY_SHARE,\n\
         IGJIT_TIER5, IGJIT_SOLVER_TRAIL, IGJIT_NEGATE_THREADS, IGJIT_MUTANT,\n\
         IGJIT_CORPUS, IGJIT_CAMPAIGN_JOBS"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args =
        Args { jobs: None, corpus: None, worker_shard: None, shard_out: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => args.jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--corpus" => match it.next() {
                Some(p) if !p.is_empty() => args.corpus = Some(PathBuf::from(p)),
                _ => {
                    eprintln!("error: --corpus expects a file path");
                    std::process::exit(2);
                }
            },
            "--worker-shard" => {
                let manifest = it.next().map(PathBuf::from);
                let idx = it.next().and_then(|v| v.parse::<usize>().ok());
                let jobs = it.next().and_then(|v| v.parse::<usize>().ok());
                match (manifest, idx, jobs) {
                    (Some(m), Some(i), Some(j)) if j >= 1 && i < j => {
                        args.worker_shard = Some((m, i, j))
                    }
                    _ => {
                        eprintln!("error: --worker-shard expects MANIFEST IDX JOBS");
                        std::process::exit(2);
                    }
                }
            }
            "--shard-out" => match it.next() {
                Some(p) if !p.is_empty() => args.shard_out = Some(PathBuf::from(p)),
                _ => {
                    eprintln!("error: --shard-out expects a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

/// Writes the campaign's work list in `run_all` order — every native
/// method, then the whole instruction catalog per bytecode tier, then
/// (when the meta tier is on) the catalog once more against the
/// meta-compiled tier. This order is the sharding contract between
/// parent and workers.
fn write_manifest(path: &Path, meta_tier: bool) -> std::io::Result<()> {
    let mut out = String::from(MANIFEST_HEADER);
    out.push('\n');
    for spec in native_catalog() {
        out.push_str(&format!("native {}\n", spec.id.0));
    }
    for tier in 0..CompilerKind::ALL.len() {
        for spec in instruction_catalog() {
            out.push_str(&format!("bc {tier} {}\n", spec.opcode));
        }
    }
    if meta_tier {
        for spec in instruction_catalog() {
            out.push_str(&format!("meta {}\n", spec.opcode));
        }
    }
    std::fs::write(path, out)
}

fn parse_manifest(path: &Path) -> Result<Vec<(Target, InstrUnderTest)>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = std::io::BufReader::new(file).lines();
    match lines.next() {
        Some(Ok(h)) if h == MANIFEST_HEADER => {}
        _ => return Err(format!("{}: missing manifest header", path.display())),
    }
    let by_opcode: std::collections::HashMap<u8, igjit::Instruction> =
        instruction_catalog().into_iter().map(|s| (s.opcode, s.instruction)).collect();
    let mut items = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        let bad = || format!("{}: bad manifest line {}: {line:?}", path.display(), n + 2);
        match fields.as_slice() {
            ["native", id] => {
                let id = id.parse::<u16>().map_err(|_| bad())?;
                items.push((Target::NativeMethods, InstrUnderTest::Native(NativeMethodId(id))));
            }
            ["bc", tier, opcode] => {
                let tier = tier.parse::<usize>().map_err(|_| bad())?;
                let kind = *CompilerKind::ALL.get(tier).ok_or_else(bad)?;
                let opcode = opcode.parse::<u8>().map_err(|_| bad())?;
                let instr = *by_opcode.get(&opcode).ok_or_else(bad)?;
                items.push((Target::Bytecode(kind), InstrUnderTest::Bytecode(instr)));
            }
            ["meta", opcode] => {
                let opcode = opcode.parse::<u8>().map_err(|_| bad())?;
                let instr = *by_opcode.get(&opcode).ok_or_else(bad)?;
                items.push((Target::MetaCompiled, InstrUnderTest::Bytecode(instr)));
            }
            _ => return Err(bad()),
        }
    }
    Ok(items)
}

/// Worker-shard mode: compute outcomes for every `index % jobs == idx`
/// manifest line (sequentially — parallelism comes from the process
/// fan-out) and write them as an outcomes-only corpus file.
fn run_worker_shard(
    manifest: &Path,
    idx: usize,
    jobs: usize,
    out: &Path,
) -> Result<(), String> {
    let items = parse_manifest(manifest)?;
    let mut config = paper_config();
    config.threads = 1;
    let campaign = Campaign::new(config.clone());
    let mut outcomes: Vec<((Target, InstrUnderTest), InstructionOutcome)> = Vec::new();
    for (i, (target, instr)) in items.into_iter().enumerate() {
        if i % jobs != idx {
            continue;
        }
        outcomes.push(((target, instr), campaign.outcome_for(instr, target)));
    }
    let shard = igjit_corpus::Corpus { outcomes, ..igjit_corpus::Corpus::default() };
    let fps = igjit_corpus::fingerprints(config.probes, &config.isas);
    igjit_corpus::save(out, &shard, &fps)
        .map(|_| ())
        .map_err(|e| format!("{}: {e}", out.display()))
}

/// Parent side of `--jobs N`: manifest out, workers fan out, shard
/// outcomes come back as corpus files, and the actual table run is an
/// ordinary (fully warm) sweep over the preloaded overlay.
fn run_sharded(campaign: &mut Campaign, jobs: usize) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = std::env::temp_dir().join(format!("igjit-table2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let manifest = dir.join("manifest.txt");
    write_manifest(&manifest, campaign.config().meta_tier)
        .map_err(|e| format!("{}: {e}", manifest.display()))?;
    let shard_paths: Vec<PathBuf> =
        (0..jobs).map(|i| dir.join(format!("shard-{i}.corpus"))).collect();
    let mut children = Vec::new();
    for (i, shard) in shard_paths.iter().enumerate() {
        let child = Command::new(&exe)
            .arg("--worker-shard")
            .arg(&manifest)
            .arg(i.to_string())
            .arg(jobs.to_string())
            .arg("--shard-out")
            .arg(shard)
            // Worker processes must not recurse into sharding, and
            // their corpus input is the shard protocol, not the file.
            .env_remove("IGJIT_CAMPAIGN_JOBS")
            .env_remove("IGJIT_CORPUS")
            .spawn()
            .map_err(|e| format!("spawning worker {i}: {e}"))?;
        children.push((i, child));
    }
    let mut failed = Vec::new();
    for (i, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failed.push(format!("worker {i} exited with {status}")),
            Err(e) => failed.push(format!("worker {i}: {e}")),
        }
    }
    if !failed.is_empty() {
        return Err(failed.join("; "));
    }
    let fps = igjit_corpus::fingerprints(campaign.config().probes, &campaign.config().isas);
    let mut preloaded = 0usize;
    for shard in &shard_paths {
        let (corpus, stats) = igjit_corpus::load(shard, &fps);
        for w in &stats.warnings {
            eprintln!("igjit: shard {}: {w}", shard.display());
        }
        preloaded += corpus.outcomes.len();
        campaign.preload_outcomes(corpus.outcomes);
    }
    eprintln!("sharded over {jobs} worker processes: {preloaded} outcomes preloaded");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let args = parse_args();
    if let Some((manifest, idx, jobs)) = &args.worker_shard {
        let Some(out) = &args.shard_out else {
            eprintln!("error: --worker-shard requires --shard-out FILE");
            std::process::exit(2);
        };
        if let Err(e) = run_worker_shard(manifest, *idx, *jobs, out) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let jobs = args.jobs.unwrap_or_else(campaign_jobs);
    let mut config = paper_config();
    if args.corpus.is_some() {
        config.corpus = args.corpus.clone();
    }
    let mut campaign = Campaign::new(config);
    if let Some(stats) = campaign.corpus_load_stats() {
        eprintln!(
            "corpus: {} outcomes, {} explorations, {} artifacts loaded{}{}",
            stats.outcomes,
            stats.explorations,
            stats.code,
            if stats.stale_sections > 0 {
                format!(" ({} stale section(s) dropped)", stats.stale_sections)
            } else {
                String::new()
            },
            if stats.cold { " — cold start" } else { "" },
        );
    }
    if jobs > 1 {
        if let Err(e) = run_sharded(&mut campaign, jobs) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let campaign = with_live_progress(campaign);
    eprintln!(
        "running the native-method and three bytecode campaigns{} \
         (both ISAs, probing on, {} thread(s), code cache {}, heap snapshots {})…",
        if campaign.config().meta_tier { " plus the meta tier" } else { "" },
        campaign.config().threads,
        if campaign.config().code_cache { "on" } else { "off" },
        if campaign.config().heap_snapshot { "on" } else { "off" },
    );
    let reports = campaign.run_all();
    println!(
        "\nTable 2: results running the approach on {} different compilers\n",
        if campaign.config().meta_tier { "five" } else { "four" }
    );
    print_table2(&reports);
    print_metrics_summary(&aggregate_metrics(&reports));
    write_metrics_json("table2.metrics.json", &reports);
    append_bench_json("BENCH_table2.json", &reports);
    // A corpus written under an armed mutant would be fingerprint-
    // isolated from pristine runs, but skipping the save keeps mutant
    // sweeps from churning the file at all.
    if igjit::mutate::current().is_none() {
        match campaign.save_corpus() {
            None => {}
            Some(Ok(igjit_corpus::SaveOutcome::Unchanged)) => {
                eprintln!("corpus: unchanged");
            }
            Some(Ok(igjit_corpus::SaveOutcome::Written { bytes })) => {
                eprintln!("corpus: {bytes} bytes written");
            }
            Some(Err(e)) => eprintln!("corpus: write failed: {e}"),
        }
    }
    let _ = std::io::stderr().flush();
}
