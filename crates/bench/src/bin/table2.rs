//! Regenerates Table 2 of the paper: for each of the four compilers,
//! the number of tested instructions, interpreter paths, curated paths
//! and differences.
//!
//! Observability: renders a live per-row progress line on stderr,
//! writes `table2.metrics.json` (per-stage wall-clock, cache hit
//! rates) next to the textual report, and appends one machine-readable
//! record per run to `BENCH_table2.json` (JSON Lines). `IGJIT_THREADS`
//! overrides the worker count; `IGJIT_CODE_CACHE=0` disables the
//! compiled-code cache; `IGJIT_HEAP_SNAPSHOT=0` disables base-image
//! replay (re-materializing the heap for every engine run instead).

use igjit::aggregate_metrics;
use igjit_bench::{
    append_bench_json, paper_campaign, print_metrics_summary, print_table2, with_live_progress,
    write_metrics_json,
};

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let campaign = with_live_progress(paper_campaign());
    eprintln!(
        "running the native-method and three bytecode campaigns \
         (both ISAs, probing on, {} thread(s), code cache {}, heap snapshots {})…",
        campaign.config().threads,
        if campaign.config().code_cache { "on" } else { "off" },
        if campaign.config().heap_snapshot { "on" } else { "off" },
    );
    let reports = campaign.run_all();
    println!("\nTable 2: results running the approach on four different compilers\n");
    print_table2(&reports);
    print_metrics_summary(&aggregate_metrics(&reports));
    write_metrics_json("table2.metrics.json", &reports);
    append_bench_json("BENCH_table2.json", &reports);
}
