//! Regenerates Table 2 of the paper: for each of the four compilers,
//! the number of tested instructions, interpreter paths, curated paths
//! and differences.

use igjit_bench::{paper_campaign, print_table2};

fn main() {
    let campaign = paper_campaign();
    eprintln!("running the native-method and three bytecode campaigns (both ISAs, probing on)…");
    let reports = campaign.run_all();
    println!("\nTable 2: results running the approach on four different compilers\n");
    print_table2(&reports);
}
