//! Regenerates Table 1 / Figure 2 of the paper: the concolic
//! execution paths of the add bytecode, with the concrete values fed
//! as arguments, the recorded constraint paths, and the exit
//! conditions.

use igjit::{Explorer, InstrUnderTest, Instruction, PathOutcome};

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
    println!("Table 1 / Figure 2: concolic execution paths of the add bytecode\n");
    println!("{} paths found ({} curated)\n", r.paths.len(), r.curated_paths().len());
    for (i, p) in r.paths.iter().enumerate() {
        let exit = match &p.outcome {
            PathOutcome::Success => "success".to_string(),
            PathOutcome::Jump { .. } => "jump".to_string(),
            PathOutcome::Failure => "failure".to_string(),
            PathOutcome::MessageSend(s) => format!(
                "message send {}",
                s.special.map(|s| s.name()).unwrap_or("<literal>")
            ),
            PathOutcome::MethodReturn { .. } => "method return".to_string(),
            PathOutcome::InvalidFrame => "invalid frame".to_string(),
            PathOutcome::InvalidMemoryAccess => "invalid memory access".to_string(),
            PathOutcome::Unsupported { reason } => format!("unsupported: {reason}"),
        };
        // The concrete operand stack the model materializes.
        let stack_size = p.model.int_value(r.state.stack_size).clamp(0, 8);
        let mut args = Vec::new();
        for d in 0..stack_size as usize {
            if let Some(&v) = r.state.stack_vars.get(d) {
                let a = p.model.assignment(v);
                args.push(format!("s{} = {:?}({})", d + 1, a.kind, a.int));
            }
        }
        println!("concolic execution #{}", i + 1);
        println!("  inputs : operand_stack_size = {stack_size}; {}", args.join(", "));
        println!("  path   : {:?}", p.constraints);
        println!("  exit   : {exit}\n");
    }
}
