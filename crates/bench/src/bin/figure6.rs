//! Regenerates Figure 6: concolic-exploration time per kind of
//! instruction (log ms), plus the §5.4 aggregate totals.
//!
//! Exploration is deliberately *uncached* here — the figure measures
//! exploration cost itself. Renders a live progress line on stderr and
//! writes `figure6.metrics.json` (per-group explore wall-clock) next
//! to the report.

use std::time::{Duration, Instant};

use igjit::report::{ascii_histogram, stats};
use igjit::{instruction_catalog, native_catalog, Explorer, InstrUnderTest, Metrics, StageTimes};
use igjit_bench::progress_line;

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let explorer = Explorer::new();
    let mut bc_ms = Vec::new();
    let mut nm_ms = Vec::new();

    eprintln!("timing concolic exploration of all bytecode instructions…");
    let bytecodes = instruction_catalog();
    let total = bytecodes.len();
    for (i, spec) in bytecodes.into_iter().enumerate() {
        let t0 = Instant::now();
        let _ = explorer.explore(InstrUnderTest::Bytecode(spec.instruction));
        bc_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        progress_line("explore bytecodes", i + 1, total, &format!("{:?}", spec.instruction));
    }
    eprintln!("timing concolic exploration of all native methods…");
    let natives = native_catalog();
    let total = natives.len();
    for (i, spec) in natives.iter().enumerate() {
        let t0 = Instant::now();
        let _ = explorer.explore(InstrUnderTest::Native(spec.id));
        nm_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        progress_line("explore natives", i + 1, total, &spec.name);
    }

    println!("\nFigure 6: concolic execution time per kind of instruction\n");
    for (label, data) in [("Bytecode", &bc_ms), ("Native Method", &nm_ms)] {
        let s = stats(data.iter().copied()).unwrap();
        println!(
            "{label:<14} min {:>8.2}ms  median {:>8.2}ms  mean {:>8.2}ms  max {:>8.2}ms  total {:>9.2}s",
            s.min,
            s.median,
            s.mean,
            s.max,
            s.total / 1000.0
        );
    }
    println!("\nBytecode exploration time distribution (ms):");
    println!("{}", ascii_histogram(&bc_ms, 8, 40));
    println!("Native-method exploration time distribution (ms):");
    println!("{}", ascii_histogram(&nm_ms, 8, 40));

    // One Metrics object per group: exploration is the only stage a
    // pure-exploration run exercises.
    let group_metrics = |ms: &[f64]| Metrics {
        threads: 1,
        instructions: ms.len(),
        stages: StageTimes {
            explore: Duration::from_secs_f64(ms.iter().sum::<f64>() / 1000.0),
            ..StageTimes::default()
        },
        wall_clock: Duration::from_secs_f64(ms.iter().sum::<f64>() / 1000.0),
        ..Metrics::default()
    };
    let json = format!(
        "{{\n  \"bytecodes\":{},\n  \"natives\":{}\n}}\n",
        group_metrics(&bc_ms).to_json(),
        group_metrics(&nm_ms).to_json(),
    );
    match std::fs::write("figure6.metrics.json", json) {
        Ok(()) => eprintln!("metrics: figure6.metrics.json"),
        Err(e) => eprintln!("could not write figure6.metrics.json: {e}"),
    }
}
