//! Regenerates Figure 6: concolic-exploration time per kind of
//! instruction (log ms), plus the §5.4 aggregate totals.

use std::time::Instant;

use igjit::report::{ascii_histogram, stats};
use igjit::{instruction_catalog, native_catalog, Explorer, InstrUnderTest};

fn main() {
    let explorer = Explorer::new();
    let mut bc_ms = Vec::new();
    let mut nm_ms = Vec::new();

    eprintln!("timing concolic exploration of all bytecode instructions…");
    for spec in instruction_catalog() {
        let t0 = Instant::now();
        let _ = explorer.explore(InstrUnderTest::Bytecode(spec.instruction));
        bc_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    eprintln!("timing concolic exploration of all native methods…");
    for spec in native_catalog() {
        let t0 = Instant::now();
        let _ = explorer.explore(InstrUnderTest::Native(spec.id));
        nm_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }

    println!("\nFigure 6: concolic execution time per kind of instruction\n");
    for (label, data) in [("Bytecode", &bc_ms), ("Native Method", &nm_ms)] {
        let s = stats(data.iter().copied()).unwrap();
        println!(
            "{label:<14} min {:>8.2}ms  median {:>8.2}ms  mean {:>8.2}ms  max {:>8.2}ms  total {:>9.2}s",
            s.min,
            s.median,
            s.mean,
            s.max,
            s.total / 1000.0
        );
    }
    println!("\nBytecode exploration time distribution (ms):");
    println!("{}", ascii_histogram(&bc_ms, 8, 40));
    println!("Native-method exploration time distribution (ms):");
    println!("{}", ascii_histogram(&nm_ms, 8, 40));
}
