//! Regenerates Table 3 of the paper: the summary of found defects,
//! de-duplicated into distinct causes per defect family.

use igjit::report;
use igjit_bench::paper_campaign;

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let campaign = paper_campaign();
    eprintln!("running the full campaign to collect defect causes…");
    let reports = campaign.run_all();
    println!("\nTable 3: summary of found defects\n");
    println!("{}", report::table3(&reports));
    // The paper's "10 optimisation differences" count the gaps of the
    // production register tiers; list ours per tier for comparison.
    for r in &reports {
        let opt = r
            .causes()
            .iter()
            .filter(|c| c.category == igjit::DefectCategory::OptimisationDifference)
            .count();
        if opt > 0 {
            println!("optimisation-difference causes on {:<36} {}", r.row.label, opt);
        }
    }
    println!();
    // Per-cause detail for the curious.
    let mut causes: Vec<_> = reports.iter().flat_map(|r| r.causes()).collect();
    causes.sort();
    causes.dedup();
    println!("distinct causes ({}):", causes.len());
    for c in causes {
        let tier = if c.compiler.is_empty() { "native" } else { &c.compiler };
        println!("  [{:<30}] {:<28} ({tier})", c.category.name(), c.instruction);
    }
}
