//! Ablation study of the reproduction's design choices (the DESIGN.md
//! commitments):
//!
//! 1. **kind/boundary probing off vs on** — how much of Table 3
//!    disappears without the probing extension;
//! 2. **single-ISA vs cross-ISA** — what the second back-end buys;
//! 3. **exploration budget sweep** — how path discovery saturates with
//!    the solve/execute iteration budget.

use std::collections::BTreeSet;

use igjit::{
    instruction_catalog, native_catalog, test_instruction, CompilerKind, DefectCategory,
    Explorer, InstrUnderTest, Isa, Target,
};

fn defect_families(probes: bool, isas: &[Isa]) -> BTreeSet<DefectCategory> {
    let mut found = BTreeSet::new();
    // The defect-bearing representatives.
    for id in [40u16, 41, 14, 13, 52, 120] {
        let o = test_instruction(
            InstrUnderTest::Native(igjit::NativeMethodId(id)),
            Target::NativeMethods,
            isas,
            probes,
        );
        for c in o.causes() {
            found.insert(c.category);
        }
    }
    let o = test_instruction(
        InstrUnderTest::Bytecode(igjit::Instruction::Add),
        Target::Bytecode(CompilerKind::SimpleStackBased),
        isas,
        probes,
    );
    for c in o.causes() {
        found.insert(c.category);
    }
    found
}

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    println!("== ablation 1: probing off vs on ==");
    let both = [Isa::X86ish, Isa::Arm32ish];
    let without = defect_families(false, &both);
    let with = defect_families(true, &both);
    println!("families found without probing: {}/6 {:?}", without.len(), without);
    println!("families found with probing:    {}/6 {:?}", with.len(), with);
    println!(
        "probing-only families: {:?}",
        with.difference(&without).collect::<Vec<_>>()
    );

    println!("\n== ablation 2: single-ISA vs cross-ISA ==");
    for isas in [&[Isa::X86ish][..], &both[..]] {
        let mut diffs = 0;
        for id in [40u16, 41, 47, 52, 53, 14, 13] {
            let o = test_instruction(
                InstrUnderTest::Native(igjit::NativeMethodId(id)),
                Target::NativeMethods,
                isas,
                true,
            );
            diffs += o.difference_count();
        }
        println!("  {} ISA(s): {diffs} differing paths over the defect set", isas.len());
    }

    println!("\n== ablation 3: exploration budget sweep ==");
    for budget in [4usize, 8, 16, 32, 64, 192] {
        let explorer = Explorer { max_iterations: budget, max_path_len: 48, ..Explorer::new() };
        let mut paths = 0;
        for spec in instruction_catalog().into_iter().take(40) {
            paths += explorer.explore(InstrUnderTest::Bytecode(spec.instruction)).paths.len();
        }
        for spec in native_catalog().into_iter().take(20) {
            paths += explorer.explore(InstrUnderTest::Native(spec.id)).paths.len();
        }
        println!("  budget {budget:>4}: {paths} paths over a 60-instruction sample");
    }
}
