//! Micro-profile of the exploration stage in isolation: explores the
//! whole catalog (natives + bytecodes) repeatedly with a fresh cache
//! each round, printing per-round wall time. Run it under a sampling
//! profiler (e.g. `gprofng collect app`) to see where explore time
//! goes without the campaign's materialize/compile/compare stages in
//! the profile.
//!
//! ```sh
//! cargo run --release -p igjit-bench --bin explore_profile -- [rounds]
//! ```
//!
//! Knobs: `IGJIT_HASH_CONS`, `IGJIT_FAMILY_SHARE`,
//! `IGJIT_NEGATE_THREADS`, `IGJIT_SOLVER_TRAIL`.

use std::time::Instant;

use igjit_bytecode::instruction_catalog;
use igjit_concolic::{ExplorationCache, Explorer, InstrUnderTest};
use igjit_interp::native_catalog;

fn main() {
    let knobs = igjit_bench::env_knobs();
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let mut explorer = Explorer::new();
    explorer.hash_cons = knobs.hash_cons_enabled();
    explorer.negation_threads = knobs.negate_threads_or_default();
    explorer.solver_trail = knobs.solver_trail_enabled();
    let family_share = knobs.family_share_enabled();
    let mut total_paths = 0usize;
    let t0 = Instant::now();
    for round in 0..rounds {
        // Fresh cache per round: every exploration is a miss, exactly
        // like the first tier of a campaign.
        let cache = ExplorationCache::new();
        let tr = Instant::now();
        let mut paths = 0;
        for spec in native_catalog() {
            let l = cache.get_or_explore_with(
                &explorer,
                InstrUnderTest::Native(spec.id),
                true,
                family_share,
            );
            paths += l.exploration.paths.len();
        }
        let native_ms = tr.elapsed().as_secs_f64() * 1000.0;
        for spec in instruction_catalog() {
            let l = cache.get_or_explore_with(
                &explorer,
                InstrUnderTest::Bytecode(spec.instruction),
                false,
                family_share,
            );
            paths += l.exploration.paths.len();
        }
        total_paths = paths;
        eprintln!(
            "round {round:>3}: {paths} paths in {:.2} ms (natives+probes {native_ms:.2} ms, {} family hits)",
            tr.elapsed().as_secs_f64() * 1000.0,
            cache.family_hits(),
        );
    }
    eprintln!(
        "{rounds} rounds, {total_paths} paths/round, {:.2} ms/round mean",
        t0.elapsed().as_secs_f64() * 1000.0 / rounds as f64
    );
}
