//! Sequence fuzzing campaign: random straight-line bytecode sequences
//! are concolically explored and differentially tested against the
//! production tier on both ISAs — the future-work extension driven at
//! scale. Deterministic (fixed seed) so results are reproducible.

use igjit::{CompilerKind, Instruction, Isa, Verdict};
use igjit_difftest::test_sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Instructions safe to draw into random sequences (no unsupported
/// features, bounded frame demands).
const POOL: [Instruction; 24] = [
    Instruction::PushZero,
    Instruction::PushOne,
    Instruction::PushTwo,
    Instruction::PushMinusOne,
    Instruction::PushInteger(13),
    Instruction::PushInteger(-77),
    Instruction::PushTrue,
    Instruction::PushFalse,
    Instruction::PushNil,
    Instruction::PushReceiver,
    Instruction::Dup,
    Instruction::Pop,
    Instruction::Add,
    Instruction::Subtract,
    Instruction::Multiply,
    Instruction::Modulo,
    Instruction::LessThan,
    Instruction::GreaterOrEqual,
    Instruction::Equal,
    Instruction::BitAnd,
    Instruction::BitOr,
    Instruction::IdentityEqual,
    Instruction::SpecialSendSize,
    Instruction::ShortJumpTrue(3),
];

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let mut rng = StdRng::seed_from_u64(0x1_9A7);
    let isas = [Isa::X86ish, Isa::Arm32ish];
    let rounds = 200;
    let mut total_paths = 0usize;
    let mut total_diffs = 0usize;
    let mut optimisation_only = true;

    for round in 0..rounds {
        let len = rng.gen_range(2..=5);
        let seq: Vec<Instruction> =
            (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
        let o = test_sequence(&seq, CompilerKind::StackToRegister, &isas);
        total_paths += o.paths_found;
        let diffs = o.difference_count();
        total_diffs += diffs;
        for v in &o.verdicts {
            if let Verdict::Difference(_) = v.verdict {
                let cat = v.cause.as_ref().map(|c| c.category);
                if cat != Some(igjit::DefectCategory::OptimisationDifference) {
                    optimisation_only = false;
                    println!("round {round}: UNEXPECTED divergence on {seq:?}: {v:?}");
                }
            }
        }
        if round % 50 == 0 {
            eprintln!("  …{round}/{rounds}");
        }
    }

    println!("\nsequence fuzzing: {rounds} random sequences, {total_paths} paths explored");
    println!("{total_diffs} differing paths, all of them the known float-optimisation gap: {optimisation_only}");
    assert!(
        optimisation_only,
        "random sequences uncovered a divergence outside the planted defect set"
    );
}
