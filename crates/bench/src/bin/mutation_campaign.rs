//! The mutation foundry: measures the harness's own bug-finding power.
//!
//! Classic differential-testing evaluations report the defects a
//! harness found; they rarely report the defects it *would miss*.
//! This driver turns the fault-injection catalog of `igjit-mutate`
//! into exactly that measurement: it runs the full differential sweep
//! once per mutant — a deliberately planted JIT bug in the bytecode
//! compiler, the register allocator, the calling convention, a
//! back-end or the code cache — and records whether the sweep's output
//! deviates from a disarmed baseline (the mutant is **killed**) or not
//! (it **survives**). The kill rate is the mutation score; the
//! survivor list is the harness's blind-spot inventory.
//!
//! Exploration is interpreter-side work and unaffected by JIT faults,
//! so one shared exploration cache is carried across every mutant run
//! ([`Campaign::with_exploration_cache`]); only compile/simulate/
//! compare re-run per mutant. The compiled-code cache is rebuilt per
//! mutant because compiled artifacts do depend on the armed fault.
//!
//! Usage:
//!   mutation_campaign [--mutants id,name,…] [--out FILE] [--expectations]
//!
//! With no `--mutants`, the whole catalog runs. Each invocation
//! appends one JSON Lines record to `--out` (default
//! `BENCH_mutation.json`) and prints a human-readable score report.
//! `--expectations` additionally prints a `ci/mutation_expectations.json`
//! style document for the selected mutants on stdout.

use std::collections::BTreeSet;
use std::io::Write;
use std::time::{Duration, Instant};

use igjit::mutate::{self, MutationOp};
use igjit::{Campaign, CampaignConfig, CampaignReport, FaultInjector, Isa, MutantId};
use igjit_bench::env_knobs;

/// Everything the sweep concluded about one mutant.
struct MutantVerdict {
    op: &'static MutationOp,
    killed: bool,
    /// Wall-clock of this mutant's sweep.
    elapsed: Duration,
    /// Sequential-equivalent time until the first divergent
    /// instruction (sum of per-instruction elapsed up to and including
    /// it), when killed.
    ttfd: Option<Duration>,
    /// Row/instruction label of the first divergence, when killed.
    first_divergence: Option<String>,
    /// Table 3 categories present in the mutant run but not the
    /// baseline (defects the fault *added*).
    new_categories: Vec<String>,
    /// Categories present in the baseline but gone under the mutant
    /// (real defects the fault *masked* — also a kill signal).
    masked_categories: Vec<String>,
}

impl MutantVerdict {
    /// Whether reality matched the catalog's expectation: designed
    /// survivors (`expected_category == "none"`) should survive,
    /// everything else should be killed.
    fn as_expected(&self) -> bool {
        (self.op.expected_category == "none") != self.killed
    }
}

/// One instruction's comparable output, flattened to a string: any
/// deviation from the baseline signature means the mutant was
/// observed. Covers row identity, path/curation counts, test errors,
/// and the per-path verdicts (exit, difference flag, causes, ISA).
fn signatures(report: &CampaignReport) -> Vec<(String, String)> {
    report
        .outcomes
        .iter()
        .zip(&report.timings)
        .map(|(o, t)| {
            let mut sig = format!(
                "paths={} curated={} werr={} opanic={}",
                o.paths_found, o.curated, o.witness_errors, o.oracle_panics
            );
            for v in &o.verdicts {
                sig.push_str(&format!(
                    " [{} diff={} causes={:?} isa={:?} probe={}]",
                    v.interp_exit,
                    v.verdict.is_difference(),
                    v.all_causes,
                    v.isa,
                    v.found_by_probe,
                ));
            }
            (format!("{}/{}", report.row.label, t.label), sig)
        })
        .collect()
}

/// Distinct defect causes across a whole sweep, as
/// `(category, instruction-family, compiler)` keys. Comparing at full
/// cause granularity (not just category names) lets a kill be
/// attributed to its Table 3 family even when the baseline already
/// contains other defects of the same family.
fn cause_keys(reports: &[CampaignReport]) -> BTreeSet<(String, String, String)> {
    reports
        .iter()
        .flat_map(|r| r.causes())
        .map(|c| (c.category.name().to_string(), c.instruction, c.compiler))
        .collect()
}

/// The distinct category names of the keys in `a` missing from `b`.
fn categories_of_difference(
    a: &BTreeSet<(String, String, String)>,
    b: &BTreeSet<(String, String, String)>,
) -> Vec<String> {
    let mut cats: Vec<String> = a.difference(b).map(|k| k.0.clone()).collect();
    cats.sort();
    cats.dedup();
    cats
}

fn run_sweep(config: &CampaignConfig, cache: &Campaign) -> Vec<CampaignReport> {
    Campaign::with_exploration_cache(config.clone(), cache.exploration_cache_arc()).run_all()
}

fn compare(
    op: &'static MutationOp,
    baseline: &[Vec<(String, String)>],
    base_causes: &BTreeSet<(String, String, String)>,
    mutant: &[CampaignReport],
    elapsed: Duration,
) -> MutantVerdict {
    let mut killed = false;
    let mut ttfd = Duration::ZERO;
    let mut first_divergence = None;
    'rows: for (base_row, mut_report) in baseline.iter().zip(mutant) {
        let mut_row = signatures(mut_report);
        for (i, ((label, base_sig), (_, mut_sig))) in
            base_row.iter().zip(&mut_row).enumerate()
        {
            ttfd += mut_report.timings[i].elapsed;
            if base_sig != mut_sig {
                killed = true;
                first_divergence = Some(label.clone());
                break 'rows;
            }
        }
    }
    let mut_causes = cause_keys(mutant);
    let new_categories = categories_of_difference(&mut_causes, base_causes);
    let masked_categories = categories_of_difference(base_causes, &mut_causes);
    MutantVerdict {
        op,
        killed,
        elapsed,
        ttfd: killed.then_some(ttfd),
        first_divergence,
        new_categories,
        masked_categories,
    }
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("[{}]", quoted.join(","))
}

fn append_record(
    path: &str,
    verdicts: &[MutantVerdict],
    baseline: &[igjit::CampaignReport],
    wall: Duration,
) {
    let mut base_row = igjit::CampaignRow::default();
    for r in baseline {
        base_row.tested_instructions += r.row.tested_instructions;
        base_row.interpreter_paths += r.row.interpreter_paths;
        base_row.curated_paths += r.row.curated_paths;
        base_row.differences += r.row.differences;
    }
    let killed = verdicts.iter().filter(|v| v.killed).count();
    let score = killed as f64 / verdicts.len().max(1) as f64;
    let survivors: Vec<String> = verdicts
        .iter()
        .filter(|v| !v.killed)
        .map(|v| v.op.name.to_string())
        .collect();
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mutants: Vec<String> = verdicts
        .iter()
        .map(|v| {
            format!(
                concat!(
                    "{{\"id\":{},\"name\":\"{}\",\"layer\":\"{}\",\"killed\":{},",
                    "\"expected_category\":\"{}\",\"as_expected\":{},",
                    "\"ttfd_ms\":{},\"first_divergence\":{},",
                    "\"new_categories\":{},\"masked_categories\":{},\"elapsed_ms\":{:.3}}}"
                ),
                v.op.id.0,
                v.op.name,
                v.op.layer.name(),
                v.killed,
                v.op.expected_category,
                v.as_expected(),
                v.ttfd.map(|d| format!("{:.3}", d.as_secs_f64() * 1000.0))
                    .unwrap_or_else(|| "null".into()),
                v.first_divergence
                    .as_ref()
                    .map(|l| format!("{l:?}"))
                    .unwrap_or_else(|| "null".into()),
                json_str_list(&v.new_categories),
                json_str_list(&v.masked_categories),
                v.elapsed.as_secs_f64() * 1000.0,
            )
        })
        .collect();
    let record = format!(
        concat!(
            "{{\"epoch_s\":{},\"mutants_run\":{},\"killed\":{},",
            "\"mutation_score\":{:.4},\"survivors\":{},\"wall_clock_ms\":{:.3},",
            "\"baseline\":{{\"tested_instructions\":{},\"interpreter_paths\":{},",
            "\"curated_paths\":{},\"differences\":{}}},",
            "\"mutants\":[{}]}}\n"
        ),
        epoch,
        verdicts.len(),
        killed,
        score,
        json_str_list(&survivors),
        wall.as_secs_f64() * 1000.0,
        base_row.tested_instructions,
        base_row.interpreter_paths,
        base_row.curated_paths,
        base_row.differences,
        mutants.join(","),
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    match appended {
        Ok(()) => eprintln!("mutation record appended: {path}"),
        Err(e) => eprintln!("could not append {path}: {e}"),
    }
}

fn print_report(verdicts: &[MutantVerdict], wall: Duration) {
    println!("Mutation foundry: fault-injection sweep over the differential harness\n");
    println!(
        "{:<5} {:<30} {:<19} {:<9} {:>9}  attribution",
        "id", "mutant", "layer", "verdict", "ttfd"
    );
    for v in verdicts {
        let verdict = if v.killed { "KILLED" } else { "survived" };
        let ttfd = v
            .ttfd
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1000.0))
            .unwrap_or_else(|| "-".into());
        let attribution = if !v.new_categories.is_empty() {
            v.new_categories.join(", ")
        } else if v.killed && !v.masked_categories.is_empty() {
            format!("masks: {}", v.masked_categories.join(", "))
        } else if v.killed {
            "row-signature drift".into()
        } else if v.op.expected_category == "none" {
            "(designed survivor)".into()
        } else {
            "BLIND SPOT".into()
        };
        println!(
            "{:<5} {:<30} {:<19} {:<9} {:>9}  {}",
            v.op.id.0,
            v.op.name,
            v.op.layer.name(),
            verdict,
            ttfd,
            attribution
        );
    }
    let killed = verdicts.iter().filter(|v| v.killed).count();
    let designed = verdicts
        .iter()
        .filter(|v| v.op.expected_category == "none")
        .count();
    let unexpected: Vec<&MutantVerdict> =
        verdicts.iter().filter(|v| !v.as_expected()).collect();
    println!(
        "\nmutation score: {}/{} killed ({:.1}%); {} designed survivor(s); wall clock {:.2}s",
        killed,
        verdicts.len(),
        100.0 * killed as f64 / verdicts.len().max(1) as f64,
        designed,
        wall.as_secs_f64(),
    );
    let survivors: Vec<&MutantVerdict> = verdicts.iter().filter(|v| !v.killed).collect();
    if survivors.is_empty() {
        println!("no survivors.");
    } else {
        println!("survivors ({}):", survivors.len());
        for v in &survivors {
            println!(
                "  {} {} [{}] — expected {}",
                v.op.id.0,
                v.op.name,
                v.op.layer.name(),
                if v.op.expected_category == "none" { "(survives by design)" } else { "KILLED" }
            );
        }
    }
    if !unexpected.is_empty() {
        println!("\n{} mutant(s) deviated from the catalog's expectation:", unexpected.len());
        for v in &unexpected {
            println!(
                "  {} {} — expected {}, got {}",
                v.op.id.0,
                v.op.name,
                if v.op.expected_category == "none" { "survival" } else { "a kill" },
                if v.killed { "a kill" } else { "survival" }
            );
        }
    }
}

fn print_expectations(verdicts: &[MutantVerdict]) {
    let entries: Vec<String> = verdicts
        .iter()
        .map(|v| {
            format!(
                "    {{\"id\": {}, \"name\": \"{}\", \"killed\": {}}}",
                v.op.id.0, v.op.name, v.killed
            )
        })
        .collect();
    println!("{{\n  \"mutants\": [\n{}\n  ]\n}}", entries.join(",\n"));
}

fn parse_args() -> (Option<Vec<MutantId>>, String, bool) {
    let mut mutants = None;
    let mut out = "BENCH_mutation.json".to_string();
    let mut expectations = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mutants" => {
                let list = args.next().unwrap_or_else(|| {
                    eprintln!("error: --mutants needs a comma-separated list");
                    std::process::exit(2);
                });
                let ids: Vec<MutantId> = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|spec| {
                        mutate::parse(spec.trim()).unwrap_or_else(|e| {
                            eprintln!("error: --mutants: {e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                mutants = Some(ids);
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--expectations" => expectations = true,
            other => {
                eprintln!(
                    "error: unknown argument {other:?} \
                     (usage: mutation_campaign [--mutants id,name,…] [--out FILE] \
                     [--expectations])"
                );
                std::process::exit(2);
            }
        }
    }
    (mutants, out, expectations)
}

fn main() {
    let (selected, out, expectations) = parse_args();
    let knobs = env_knobs();
    if knobs.mutant.is_some() {
        eprintln!(
            "error: IGJIT_MUTANT must not be set for mutation_campaign — \
             this driver arms and disarms mutants itself (use --mutants to select)"
        );
        std::process::exit(2);
    }
    let ops: Vec<&'static MutationOp> = match &selected {
        Some(ids) => ids
            .iter()
            .map(|&id| mutate::find(id).expect("parse validated the id"))
            .collect(),
        None => mutate::CATALOG.iter().collect(),
    };
    let config = CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: knobs.threads_or_default(),
        code_cache: knobs.code_cache_enabled(),
        heap_snapshot: knobs.heap_snapshot_enabled(),
    };

    let wall0 = Instant::now();
    eprintln!(
        "baseline sweep (fault injection pinned off, {} thread(s))…",
        config.threads
    );
    let baseline_campaign = Campaign::new(config.clone());
    let baseline = {
        let _off = FaultInjector::pinned_off();
        baseline_campaign.run_all()
    };
    let base_sigs: Vec<Vec<(String, String)>> = baseline.iter().map(signatures).collect();
    let base_causes = cause_keys(&baseline);
    eprintln!(
        "baseline: {} instructions swept, {} distinct defect cause(s), {:.2}s",
        baseline.iter().map(|r| r.outcomes.len()).sum::<usize>(),
        base_causes.len(),
        wall0.elapsed().as_secs_f64(),
    );

    let mut verdicts = Vec::with_capacity(ops.len());
    for op in ops {
        let t0 = Instant::now();
        let reports = {
            let _armed = FaultInjector::arm(op.id).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            run_sweep(&config, &baseline_campaign)
        };
        let v = compare(op, &base_sigs, &base_causes, &reports, t0.elapsed());
        eprintln!(
            "  {:>3} {:<30} {:<9} {:.2}s{}",
            op.id.0,
            op.name,
            if v.killed { "KILLED" } else { "survived" },
            v.elapsed.as_secs_f64(),
            v.first_divergence
                .as_ref()
                .map(|l| format!("  first at {l}"))
                .unwrap_or_default(),
        );
        verdicts.push(v);
    }
    let wall = wall0.elapsed();

    println!();
    print_report(&verdicts, wall);
    append_record(&out, &verdicts, &baseline, wall);
    if expectations {
        print_expectations(&verdicts);
    }
    // The record carries the disarmed baseline's Table 2 totals, so
    // the CI smoke script can catch a planted-defect regression (the
    // harness losing real defects while every mutant is disarmed)
    // alongside kill/survive deviations. This driver's exit status
    // reflects only argument and environment validity.
}
