//! The mutation foundry: measures the harness's own bug-finding power.
//!
//! Classic differential-testing evaluations report the defects a
//! harness found; they rarely report the defects it *would miss*.
//! This driver turns the fault-injection catalog of `igjit-mutate`
//! into exactly that measurement: it runs the full differential sweep
//! once per mutant — a deliberately planted JIT bug in the bytecode
//! compiler, the register allocator, the calling convention, a
//! back-end or the code cache — and records whether the sweep's output
//! deviates from a disarmed baseline (the mutant is **killed**) or not
//! (it **survives**). The kill rate is the mutation score; the
//! survivor list is the harness's blind-spot inventory.
//!
//! Exploration is interpreter-side work and unaffected by JIT faults,
//! so one shared exploration cache is carried across every mutant run
//! ([`Campaign::with_exploration_cache`]); only compile/simulate/
//! compare re-run per mutant. The compiled-code cache is rebuilt per
//! mutant because compiled artifacts do depend on the armed fault.
//!
//! Usage:
//!   mutation_campaign [--mutants id,name,…] [--jobs N] [--out FILE]
//!                     [--expectations]
//!
//! With no `--mutants`, the whole catalog runs. Each invocation
//! appends one JSON Lines record to `--out` (default
//! `BENCH_mutation.json`) and prints a human-readable score report.
//! `--expectations` additionally prints a `ci/mutation_expectations.json`
//! style document for the selected mutants on stdout.
//!
//! `--jobs N` shards the per-mutant sweeps across up to `N` concurrent
//! worker subprocesses. The fault-injection flag is process-global
//! state, so in-process parallelism across *mutants* is impossible —
//! but separate processes each arm their own mutant. Workers are this
//! same binary re-executed in a hidden mode (`--worker-verdict`) with
//! the mutant passed through the `IGJIT_MUTANT` environment knob; each
//! worker compares its sweep against the parent's baseline signatures
//! (shipped via a temp file) and reports one verdict line on stdout.
//! The parent merges verdicts back **in catalog order**, so the
//! appended JSONL record and the printed report are byte-identical to
//! a sequential run (modulo wall-clock fields) at any job count.

use std::collections::BTreeSet;
use std::io::Write;
use std::time::{Duration, Instant};

use igjit::mutate::{self, MutationOp};
use igjit::{Campaign, CampaignConfig, CampaignReport, FaultInjector, Isa, MutantId};
use igjit_bench::env_knobs;

/// Everything the sweep concluded about one mutant.
struct MutantVerdict {
    op: &'static MutationOp,
    killed: bool,
    /// Wall-clock of this mutant's sweep.
    elapsed: Duration,
    /// Sequential-equivalent time until the first divergent
    /// instruction (sum of per-instruction elapsed up to and including
    /// it), when killed.
    ttfd: Option<Duration>,
    /// Row/instruction label of the first divergence, when killed.
    first_divergence: Option<String>,
    /// Table 3 categories present in the mutant run but not the
    /// baseline (defects the fault *added*).
    new_categories: Vec<String>,
    /// Categories present in the baseline but gone under the mutant
    /// (real defects the fault *masked* — also a kill signal).
    masked_categories: Vec<String>,
}

impl MutantVerdict {
    /// Whether reality matched the catalog's expectation: designed
    /// survivors (`expected_category == "none"`) should survive,
    /// everything else should be killed.
    fn as_expected(&self) -> bool {
        (self.op.expected_category == "none") != self.killed
    }
}

/// One instruction's comparable output, flattened to a string: any
/// deviation from the baseline signature means the mutant was
/// observed. Covers row identity, path/curation counts, test errors,
/// and the per-path verdicts (exit, difference flag, causes, ISA).
fn signatures(report: &CampaignReport) -> Vec<(String, String)> {
    report
        .outcomes
        .iter()
        .zip(&report.timings)
        .map(|(o, t)| {
            let mut sig = format!(
                "paths={} curated={} werr={} opanic={}",
                o.paths_found, o.curated, o.witness_errors, o.oracle_panics
            );
            for v in &o.verdicts {
                sig.push_str(&format!(
                    " [{} diff={} causes={:?} isa={:?} probe={}]",
                    v.interp_exit,
                    v.verdict.is_difference(),
                    v.all_causes,
                    v.isa,
                    v.found_by_probe,
                ));
            }
            (format!("{}/{}", report.row.label, t.label), sig)
        })
        .collect()
}

/// Distinct defect causes across a whole sweep, as
/// `(category, instruction-family, compiler)` keys. Comparing at full
/// cause granularity (not just category names) lets a kill be
/// attributed to its Table 3 family even when the baseline already
/// contains other defects of the same family.
fn cause_keys(reports: &[CampaignReport]) -> BTreeSet<(String, String, String)> {
    reports
        .iter()
        .flat_map(|r| r.causes())
        .map(|c| {
            (
                c.category.name().to_string(),
                c.instruction.into_owned(),
                c.compiler.into_owned(),
            )
        })
        .collect()
}

/// The distinct category names of the keys in `a` missing from `b`.
fn categories_of_difference(
    a: &BTreeSet<(String, String, String)>,
    b: &BTreeSet<(String, String, String)>,
) -> Vec<String> {
    let mut cats: Vec<String> = a.difference(b).map(|k| k.0.clone()).collect();
    cats.sort();
    cats.dedup();
    cats
}

fn run_sweep(config: &CampaignConfig, cache: &Campaign) -> Vec<CampaignReport> {
    Campaign::with_exploration_cache(config.clone(), cache.exploration_cache_arc()).run_all()
}

fn compare(
    op: &'static MutationOp,
    baseline: &[Vec<(String, String)>],
    base_causes: &BTreeSet<(String, String, String)>,
    mutant: &[CampaignReport],
    elapsed: Duration,
) -> MutantVerdict {
    let mut killed = false;
    let mut ttfd = Duration::ZERO;
    let mut first_divergence = None;
    'rows: for (base_row, mut_report) in baseline.iter().zip(mutant) {
        let mut_row = signatures(mut_report);
        for (i, ((label, base_sig), (_, mut_sig))) in
            base_row.iter().zip(&mut_row).enumerate()
        {
            ttfd += mut_report.timings[i].elapsed;
            if base_sig != mut_sig {
                killed = true;
                first_divergence = Some(label.clone());
                break 'rows;
            }
        }
    }
    let mut_causes = cause_keys(mutant);
    let new_categories = categories_of_difference(&mut_causes, base_causes);
    let masked_categories = categories_of_difference(base_causes, &mut_causes);
    MutantVerdict {
        op,
        killed,
        elapsed,
        ttfd: killed.then_some(ttfd),
        first_divergence,
        new_categories,
        masked_categories,
    }
}

// ---------------------------------------------------------------------
// --jobs worker protocol
//
// Baseline file, one record per line (none of the fields can contain a
// tab or newline — labels are `row/instruction` names and signatures
// are single-line formats):
//   SIG   <row-index> <label> <signature>
//   CAUSE <category> <instruction> <compiler>
// Worker stdout, exactly one line:
//   VERDICT <id> <killed 0|1> <ttfd-ns or ""> <first-divergence or "">
//           <new-categories, \x1f-joined> <masked-categories> <elapsed-ns>
// ---------------------------------------------------------------------

/// Writes the disarmed baseline (row signatures + cause keys) for
/// workers to compare against.
fn write_baseline_file(
    path: &std::path::Path,
    base_sigs: &[Vec<(String, String)>],
    base_causes: &BTreeSet<(String, String, String)>,
) -> std::io::Result<()> {
    let mut buf = String::new();
    for (row, sigs) in base_sigs.iter().enumerate() {
        for (label, sig) in sigs {
            buf.push_str(&format!("SIG\t{row}\t{label}\t{sig}\n"));
        }
    }
    for (cat, instr, comp) in base_causes {
        buf.push_str(&format!("CAUSE\t{cat}\t{instr}\t{comp}\n"));
    }
    std::fs::write(path, buf)
}

/// Parses the baseline file back into the shapes `compare` wants.
#[allow(clippy::type_complexity)]
fn read_baseline_file(
    path: &str,
) -> Result<(Vec<Vec<(String, String)>>, BTreeSet<(String, String, String)>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline file {path}: {e}"))?;
    let mut sigs: Vec<Vec<(String, String)>> = Vec::new();
    let mut causes = BTreeSet::new();
    for line in text.lines() {
        let mut parts = line.splitn(4, '\t');
        match parts.next() {
            Some("SIG") => {
                let row: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("malformed SIG line: {line:?}"))?;
                let label = parts.next().ok_or_else(|| format!("malformed SIG line: {line:?}"))?;
                let sig = parts.next().ok_or_else(|| format!("malformed SIG line: {line:?}"))?;
                if sigs.len() <= row {
                    sigs.resize_with(row + 1, Vec::new);
                }
                sigs[row].push((label.to_string(), sig.to_string()));
            }
            Some("CAUSE") => {
                let cat = parts.next().ok_or_else(|| format!("malformed CAUSE line: {line:?}"))?;
                let instr =
                    parts.next().ok_or_else(|| format!("malformed CAUSE line: {line:?}"))?;
                let comp =
                    parts.next().ok_or_else(|| format!("malformed CAUSE line: {line:?}"))?;
                causes.insert((cat.to_string(), instr.to_string(), comp.to_string()));
            }
            _ => return Err(format!("unrecognized baseline line: {line:?}")),
        }
    }
    Ok((sigs, causes))
}

/// Flattens a verdict to the worker's one-line wire format.
fn verdict_line(v: &MutantVerdict) -> String {
    format!(
        "VERDICT\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        v.op.id.0,
        u8::from(v.killed),
        v.ttfd.map(|d| d.as_nanos().to_string()).unwrap_or_default(),
        v.first_divergence.clone().unwrap_or_default(),
        v.new_categories.join("\u{1f}"),
        v.masked_categories.join("\u{1f}"),
        v.elapsed.as_nanos(),
    )
}

/// Parses a worker's VERDICT line; `op` must be the mutant the worker
/// was assigned (the id on the line is cross-checked).
fn parse_verdict_line(line: &str, op: &'static MutationOp) -> Result<MutantVerdict, String> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 8 || fields[0] != "VERDICT" {
        return Err(format!("malformed worker verdict: {line:?}"));
    }
    if fields[1] != op.id.0.to_string() {
        return Err(format!("worker answered for mutant {} (expected {})", fields[1], op.id.0));
    }
    let killed = fields[2] == "1";
    let nanos = |s: &str| -> Result<Duration, String> {
        s.parse::<u64>()
            .map(Duration::from_nanos)
            .map_err(|e| format!("malformed worker verdict {line:?}: {e}"))
    };
    let split_list = |s: &str| -> Vec<String> {
        if s.is_empty() { Vec::new() } else { s.split('\u{1f}').map(str::to_string).collect() }
    };
    Ok(MutantVerdict {
        op,
        killed,
        elapsed: nanos(fields[7])?,
        ttfd: if fields[3].is_empty() { None } else { Some(nanos(fields[3])?) },
        first_divergence: (!fields[4].is_empty()).then(|| fields[4].to_string()),
        new_categories: split_list(fields[5]),
        masked_categories: split_list(fields[6]),
    })
}

/// Hidden worker mode: sweep one mutant (named by `IGJIT_MUTANT`),
/// compare against the baseline file, print one VERDICT line.
fn run_worker(baseline_path: &str, config: &CampaignConfig) -> Result<(), String> {
    let op = env_knobs()
        .mutant
        .and_then(mutate::find)
        .ok_or("worker mode needs IGJIT_MUTANT set to a catalog mutant")?;
    let (base_sigs, base_causes) = read_baseline_file(baseline_path)?;
    let t0 = Instant::now();
    let reports = {
        let _armed = FaultInjector::arm(op.id)?;
        Campaign::new(config.clone()).run_all()
    };
    let v = compare(op, &base_sigs, &base_causes, &reports, t0.elapsed());
    println!("{}", verdict_line(&v));
    Ok(())
}

/// Shards the selected mutants across up to `jobs` concurrent worker
/// subprocesses and merges their verdicts back in catalog order.
fn run_sharded(
    ops: &[&'static MutationOp],
    jobs: usize,
    base_sigs: &[Vec<(String, String)>],
    base_causes: &BTreeSet<(String, String, String)>,
) -> Result<Vec<MutantVerdict>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let base_path = std::env::temp_dir()
        .join(format!("igjit_mutation_baseline_{}.tsv", std::process::id()));
    write_baseline_file(&base_path, base_sigs, base_causes)
        .map_err(|e| format!("cannot write {}: {e}", base_path.display()))?;
    let mut verdicts = Vec::with_capacity(ops.len());
    let result = (|| {
        // Chunked scheduling: per-mutant sweeps cost within ~2× of each
        // other, so waiting out each wave loses little and keeps the
        // collection order (hence the merged record) deterministic.
        for wave in ops.chunks(jobs.max(1)) {
            let children: Vec<(&'static MutationOp, std::process::Child)> = wave
                .iter()
                .map(|op| {
                    let child = std::process::Command::new(&exe)
                        .arg("--worker-verdict")
                        .arg(&base_path)
                        .env("IGJIT_MUTANT", op.id.0.to_string())
                        .stdout(std::process::Stdio::piped())
                        .stderr(std::process::Stdio::piped())
                        .spawn()
                        .map_err(|e| format!("cannot spawn worker: {e}"))?;
                    Ok((*op, child))
                })
                .collect::<Result<_, String>>()?;
            for (op, child) in children {
                let out = child
                    .wait_with_output()
                    .map_err(|e| format!("worker for mutant {}: {e}", op.id.0))?;
                if !out.status.success() {
                    return Err(format!(
                        "worker for mutant {} failed ({}):\n{}",
                        op.id.0,
                        out.status,
                        String::from_utf8_lossy(&out.stderr),
                    ));
                }
                let stdout = String::from_utf8_lossy(&out.stdout);
                let line = stdout
                    .lines()
                    .find(|l| l.starts_with("VERDICT\t"))
                    .ok_or_else(|| format!("worker for mutant {} sent no verdict", op.id.0))?;
                let v = parse_verdict_line(line, op)?;
                eprintln!(
                    "  {:>3} {:<30} {:<9} {:.2}s{}",
                    op.id.0,
                    op.name,
                    if v.killed { "KILLED" } else { "survived" },
                    v.elapsed.as_secs_f64(),
                    v.first_divergence
                        .as_ref()
                        .map(|l| format!("  first at {l}"))
                        .unwrap_or_default(),
                );
                verdicts.push(v);
            }
        }
        Ok(verdicts)
    })();
    let _ = std::fs::remove_file(&base_path);
    result
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("[{}]", quoted.join(","))
}

fn append_record(
    path: &str,
    verdicts: &[MutantVerdict],
    baseline: &[igjit::CampaignReport],
    wall: Duration,
) {
    let mut base_row = igjit::CampaignRow::default();
    for r in baseline {
        base_row.tested_instructions += r.row.tested_instructions;
        base_row.interpreter_paths += r.row.interpreter_paths;
        base_row.curated_paths += r.row.curated_paths;
        base_row.differences += r.row.differences;
    }
    let killed = verdicts.iter().filter(|v| v.killed).count();
    let score = killed as f64 / verdicts.len().max(1) as f64;
    let survivors: Vec<String> = verdicts
        .iter()
        .filter(|v| !v.killed)
        .map(|v| v.op.name.to_string())
        .collect();
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mutants: Vec<String> = verdicts
        .iter()
        .map(|v| {
            format!(
                concat!(
                    "{{\"id\":{},\"name\":\"{}\",\"layer\":\"{}\",\"killed\":{},",
                    "\"expected_category\":\"{}\",\"as_expected\":{},",
                    "\"ttfd_ms\":{},\"first_divergence\":{},",
                    "\"new_categories\":{},\"masked_categories\":{},\"elapsed_ms\":{:.3}}}"
                ),
                v.op.id.0,
                v.op.name,
                v.op.layer.name(),
                v.killed,
                v.op.expected_category,
                v.as_expected(),
                v.ttfd.map(|d| format!("{:.3}", d.as_secs_f64() * 1000.0))
                    .unwrap_or_else(|| "null".into()),
                v.first_divergence
                    .as_ref()
                    .map(|l| format!("{l:?}"))
                    .unwrap_or_else(|| "null".into()),
                json_str_list(&v.new_categories),
                json_str_list(&v.masked_categories),
                v.elapsed.as_secs_f64() * 1000.0,
            )
        })
        .collect();
    let record = format!(
        concat!(
            "{{\"epoch_s\":{},\"mutants_run\":{},\"killed\":{},",
            "\"mutation_score\":{:.4},\"survivors\":{},\"wall_clock_ms\":{:.3},",
            "\"baseline\":{{\"tested_instructions\":{},\"interpreter_paths\":{},",
            "\"curated_paths\":{},\"differences\":{}}},",
            "\"mutants\":[{}]}}\n"
        ),
        epoch,
        verdicts.len(),
        killed,
        score,
        json_str_list(&survivors),
        wall.as_secs_f64() * 1000.0,
        base_row.tested_instructions,
        base_row.interpreter_paths,
        base_row.curated_paths,
        base_row.differences,
        mutants.join(","),
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    match appended {
        Ok(()) => eprintln!("mutation record appended: {path}"),
        Err(e) => eprintln!("could not append {path}: {e}"),
    }
}

fn print_report(verdicts: &[MutantVerdict], wall: Duration) {
    println!("Mutation foundry: fault-injection sweep over the differential harness\n");
    println!(
        "{:<5} {:<30} {:<19} {:<9} {:>9}  attribution",
        "id", "mutant", "layer", "verdict", "ttfd"
    );
    for v in verdicts {
        let verdict = if v.killed { "KILLED" } else { "survived" };
        let ttfd = v
            .ttfd
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1000.0))
            .unwrap_or_else(|| "-".into());
        let attribution = if !v.new_categories.is_empty() {
            v.new_categories.join(", ")
        } else if v.killed && !v.masked_categories.is_empty() {
            format!("masks: {}", v.masked_categories.join(", "))
        } else if v.killed {
            "row-signature drift".into()
        } else if v.op.expected_category == "none" {
            "(designed survivor)".into()
        } else {
            "BLIND SPOT".into()
        };
        println!(
            "{:<5} {:<30} {:<19} {:<9} {:>9}  {}",
            v.op.id.0,
            v.op.name,
            v.op.layer.name(),
            verdict,
            ttfd,
            attribution
        );
    }
    let killed = verdicts.iter().filter(|v| v.killed).count();
    let designed = verdicts
        .iter()
        .filter(|v| v.op.expected_category == "none")
        .count();
    let unexpected: Vec<&MutantVerdict> =
        verdicts.iter().filter(|v| !v.as_expected()).collect();
    println!(
        "\nmutation score: {}/{} killed ({:.1}%); {} designed survivor(s); wall clock {:.2}s",
        killed,
        verdicts.len(),
        100.0 * killed as f64 / verdicts.len().max(1) as f64,
        designed,
        wall.as_secs_f64(),
    );
    let survivors: Vec<&MutantVerdict> = verdicts.iter().filter(|v| !v.killed).collect();
    if survivors.is_empty() {
        println!("no survivors.");
    } else {
        println!("survivors ({}):", survivors.len());
        for v in &survivors {
            println!(
                "  {} {} [{}] — expected {}",
                v.op.id.0,
                v.op.name,
                v.op.layer.name(),
                if v.op.expected_category == "none" { "(survives by design)" } else { "KILLED" }
            );
        }
    }
    if !unexpected.is_empty() {
        println!("\n{} mutant(s) deviated from the catalog's expectation:", unexpected.len());
        for v in &unexpected {
            println!(
                "  {} {} — expected {}, got {}",
                v.op.id.0,
                v.op.name,
                if v.op.expected_category == "none" { "survival" } else { "a kill" },
                if v.killed { "a kill" } else { "survival" }
            );
        }
    }
}

fn print_expectations(verdicts: &[MutantVerdict]) {
    let entries: Vec<String> = verdicts
        .iter()
        .map(|v| {
            format!(
                "    {{\"id\": {}, \"name\": \"{}\", \"killed\": {}}}",
                v.op.id.0, v.op.name, v.killed
            )
        })
        .collect();
    println!("{{\n  \"mutants\": [\n{}\n  ]\n}}", entries.join(",\n"));
}

struct Args {
    mutants: Option<Vec<MutantId>>,
    out: String,
    expectations: bool,
    jobs: usize,
    /// Hidden worker mode: path to the parent's baseline file.
    worker_baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut mutants = None;
    let mut out = "BENCH_mutation.json".to_string();
    let mut expectations = false;
    let mut jobs = 1usize;
    let mut worker_baseline = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mutants" => {
                let list = args.next().unwrap_or_else(|| {
                    eprintln!("error: --mutants needs a comma-separated list");
                    std::process::exit(2);
                });
                let ids: Vec<MutantId> = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|spec| {
                        mutate::parse(spec.trim()).unwrap_or_else(|e| {
                            eprintln!("error: --mutants: {e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                mutants = Some(ids);
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--expectations" => expectations = true,
            "--jobs" => {
                let n = args.next().unwrap_or_else(|| {
                    eprintln!("error: --jobs needs a worker count");
                    std::process::exit(2);
                });
                jobs = n.parse().unwrap_or_else(|_| {
                    eprintln!("error: --jobs: {n:?} is not a number");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("error: --jobs needs at least 1 worker");
                    std::process::exit(2);
                }
            }
            "--worker-verdict" => {
                worker_baseline = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --worker-verdict needs the baseline file path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?} \
                     (usage: mutation_campaign [--mutants id,name,…] [--jobs N] \
                     [--out FILE] [--expectations])"
                );
                std::process::exit(2);
            }
        }
    }
    Args { mutants, out, expectations, jobs, worker_baseline }
}

fn main() {
    let args = parse_args();
    let knobs = env_knobs();
    let config = CampaignConfig {
        isas: vec![Isa::X86ish, Isa::Arm32ish],
        probes: true,
        threads: knobs.threads_or_default(),
        code_cache: knobs.code_cache_enabled(),
        heap_snapshot: knobs.heap_snapshot_enabled(),
        predecode: knobs.predecode_enabled(),
        interp_predecode: knobs.interp_predecode_enabled(),
        hash_cons: knobs.hash_cons_enabled(),
        family_share: knobs.family_share_enabled(),
        negate_threads: knobs.negate_threads_or_default(),
        // The mutation sweep arms a different mutant per campaign;
        // corpus persistence is deliberately not plumbed here (each
        // mutant would need its own file, and the kill verdicts must
        // never replay from a stale arming state).
        corpus: None,
        meta_tier: knobs.tier5_enabled(),
        solver_trail: knobs.solver_trail_enabled(),
    };
    if let Some(baseline_path) = &args.worker_baseline {
        if let Err(e) = run_worker(baseline_path, &config) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if knobs.mutant.is_some() {
        eprintln!(
            "error: IGJIT_MUTANT must not be set for mutation_campaign — \
             this driver arms and disarms mutants itself (use --mutants to select)"
        );
        std::process::exit(2);
    }
    let ops: Vec<&'static MutationOp> = match &args.mutants {
        Some(ids) => ids
            .iter()
            .map(|&id| mutate::find(id).expect("parse validated the id"))
            .collect(),
        None => mutate::CATALOG.iter().collect(),
    };

    let wall0 = Instant::now();
    eprintln!(
        "baseline sweep (fault injection pinned off, {} thread(s))…",
        config.threads
    );
    let baseline_campaign = Campaign::new(config.clone());
    let baseline = {
        let _off = FaultInjector::pinned_off();
        baseline_campaign.run_all()
    };
    let base_sigs: Vec<Vec<(String, String)>> = baseline.iter().map(signatures).collect();
    let base_causes = cause_keys(&baseline);
    eprintln!(
        "baseline: {} instructions swept, {} distinct defect cause(s), {:.2}s",
        baseline.iter().map(|r| r.outcomes.len()).sum::<usize>(),
        base_causes.len(),
        wall0.elapsed().as_secs_f64(),
    );

    let verdicts = if args.jobs > 1 {
        eprintln!("sharding {} mutant sweep(s) across {} worker(s)…", ops.len(), args.jobs);
        run_sharded(&ops, args.jobs, &base_sigs, &base_causes).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    } else {
        let mut verdicts = Vec::with_capacity(ops.len());
        for op in ops {
            let t0 = Instant::now();
            let reports = {
                let _armed = FaultInjector::arm(op.id).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
                run_sweep(&config, &baseline_campaign)
            };
            let v = compare(op, &base_sigs, &base_causes, &reports, t0.elapsed());
            eprintln!(
                "  {:>3} {:<30} {:<9} {:.2}s{}",
                op.id.0,
                op.name,
                if v.killed { "KILLED" } else { "survived" },
                v.elapsed.as_secs_f64(),
                v.first_divergence
                    .as_ref()
                    .map(|l| format!("  first at {l}"))
                    .unwrap_or_default(),
            );
            verdicts.push(v);
        }
        verdicts
    };
    let wall = wall0.elapsed();

    println!();
    print_report(&verdicts, wall);
    append_record(&args.out, &verdicts, &baseline, wall);
    if args.expectations {
        print_expectations(&verdicts);
    }
    // The record carries the disarmed baseline's Table 2 totals, so
    // the CI smoke script can catch a planted-defect regression (the
    // harness losing real defects while every mutant is disarmed)
    // alongside kill/survive deviations. This driver's exit status
    // reflects only argument and environment validity.
}
