//! Regenerates the paper's headline artefact: "our approach generated
//! in less than 10 minutes more than 4.5K tests". Generates the full
//! battery of persistent differential unit tests and replays it.

use std::time::Instant;

use igjit::{GeneratedSuite, Isa};

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let t0 = Instant::now();
    eprintln!("generating the full test battery (112 natives + 148 bytecodes × 3 tiers, 2 ISAs)…");
    let suite = GeneratedSuite::generate_full(&[Isa::X86ish, Isa::Arm32ish]);
    let gen_time = t0.elapsed();
    println!(
        "generated {} tests in {:.1}s (paper: >4.5K tests in <10 min)",
        suite.len(),
        gen_time.as_secs_f64()
    );

    let t1 = Instant::now();
    let report = suite.run();
    println!(
        "replayed in {:.1}s: {} passed, {} failed (= found defects), {} skipped (expected failures)",
        t1.elapsed().as_secs_f64(),
        report.passed,
        report.failed,
        report.skipped
    );
    println!("\nmanifest excerpt:");
    for line in suite.manifest().lines().take(12) {
        println!("  {line}");
    }
    println!("  …");
}
