//! Regenerates Figure 5: paths per instruction, bytecode vs native
//! method (log scale).

use igjit::report::{ascii_histogram, stats};
use igjit::{instruction_catalog, native_catalog, Explorer, InstrUnderTest};

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let explorer = Explorer::new();
    let mut bc_paths = Vec::new();
    let mut nm_paths = Vec::new();

    eprintln!("exploring all bytecode instructions…");
    for spec in instruction_catalog() {
        let r = explorer.explore(InstrUnderTest::Bytecode(spec.instruction));
        bc_paths.push(r.paths.len() as f64);
    }
    eprintln!("exploring all native methods…");
    for spec in native_catalog() {
        let r = explorer.explore(InstrUnderTest::Native(spec.id));
        nm_paths.push(r.paths.len() as f64);
    }

    println!("\nFigure 5: paths per instruction (log scale)\n");
    let bc = stats(bc_paths.iter().copied()).unwrap();
    let nm = stats(nm_paths.iter().copied()).unwrap();
    println!(
        "Bytecode       min {:>5.1}  median {:>5.1}  mean {:>5.1}  max {:>5.1}   (n = {})",
        bc.min, bc.median, bc.mean, bc.max, bc_paths.len()
    );
    println!(
        "Native Method  min {:>5.1}  median {:>5.1}  mean {:>5.1}  max {:>5.1}   (n = {})",
        nm.min, nm.median, nm.mean, nm.max, nm_paths.len()
    );
    println!("\nBytecode paths/instruction distribution:");
    println!("{}", ascii_histogram(&bc_paths, 8, 40));
    println!("Native-method paths/instruction distribution:");
    println!("{}", ascii_histogram(&nm_paths, 8, 40));
}
