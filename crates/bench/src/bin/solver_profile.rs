//! Phase attribution for the solver's hypothesis hot path (engine
//! v10): where a `solve_under` microsecond actually goes —
//! assert+propagate, leaf search, scope unwind, model extraction — in
//! trail mode vs clone mode.
//!
//! The solver's internals are deliberately unhooked (no timing code on
//! the hot path), so attribution is differential: each phase is
//! isolated by a workload that stops after it, and the phase cost is
//! the min-of-rounds difference between adjacent workloads:
//!
//! * **propagate** — a hypothesis interval propagation refutes
//!   (`x < -1` against `x ∈ [0, 100]`): classify + assert + propagate
//!   + scope teardown, no search, no model.
//! * **unwind** — the same refuted hypothesis, trail vs clone mode:
//!   the mode delta is what scope setup/teardown itself costs (undo
//!   log replay vs store clone).
//! * **model-extract** — a hypothesis that is SAT with search already
//!   decided (every var kind-pinned, no `Or`, no integer splitting):
//!   subtracting the propagate baseline leaves leaf construction +
//!   `Model` assembly.
//! * **search** — a SAT hypothesis whose path condition carries `Or`
//!   disjuncts and an integer relation needing candidate enumeration:
//!   subtracting the model-extract workload leaves the backtracking
//!   walk itself.
//!
//! ```sh
//! cargo run --release -p igjit-bench --bin solver_profile -- [rounds]
//! ```

use std::time::{Duration, Instant};

use igjit_solver::{
    CmpOp, Constraint, Kind, LinExpr, PreparedConstraint, Session, VarId, VarSpec,
};

const VARS: usize = 8;
const SOLVES_PER_ROUND: usize = 2000;

fn v(i: usize) -> VarId {
    VarId(i as u32)
}

fn specs() -> Vec<VarSpec> {
    (0..VARS).map(|_| VarSpec::any()).collect()
}

/// Branchy path condition: `Or` kind tests plus an integer relation,
/// so SAT solves walk disjunct scopes and enumerate candidates.
fn branchy_path() -> Vec<Constraint> {
    vec![
        Constraint::kind_is(v(0), Kind::SmallInt),
        Constraint::kind_is(v(1), Kind::SmallInt),
        Constraint::Int(CmpOp::Ge, LinExpr::var(v(0)), LinExpr::constant(0)),
        Constraint::Int(CmpOp::Le, LinExpr::var(v(0)), LinExpr::constant(100)),
        Constraint::Int(
            CmpOp::Eq,
            LinExpr::var(v(0)).plus(&LinExpr::var(v(1))),
            LinExpr::constant(7),
        ),
        Constraint::Or(vec![
            Constraint::kind_is(v(2), Kind::SmallInt),
            Constraint::kind_is(v(2), Kind::Float),
        ]),
        Constraint::Or(vec![
            Constraint::kind_is(v(3), Kind::Array),
            Constraint::kind_is(v(3), Kind::SmallInt),
        ]),
    ]
}

/// Flat path condition: every var pinned, nothing to search.
fn flat_path() -> Vec<Constraint> {
    (0..VARS)
        .map(|i| Constraint::kind_is(v(i), Kind::SmallInt))
        .chain(std::iter::once(Constraint::Int(
            CmpOp::Ge,
            LinExpr::var(v(0)),
            LinExpr::constant(0),
        )))
        .collect()
}

fn session(trail: bool, path: &[Constraint]) -> Session {
    let mut s = Session::new();
    s.set_trail(trail);
    s.sync_vars(&specs());
    for c in path {
        s.assert(c.clone());
    }
    s
}

/// Min-of-rounds µs per solve of `hypothesis` against `path`.
fn measure(rounds: usize, trail: bool, path: &[Constraint], hypothesis: &Constraint) -> f64 {
    let prepared = PreparedConstraint::new(hypothesis.clone());
    let mut s = session(trail, path);
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..SOLVES_PER_ROUND {
            let _ = std::hint::black_box(s.solve_under_prepared(&prepared));
            s.clear_cached_model();
        }
        best = best.min(t0.elapsed());
    }
    best.as_secs_f64() * 1e6 / SOLVES_PER_ROUND as f64
}

fn main() {
    let rounds: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    // Refuted by interval propagation against `x ∈ [0, 100]`.
    let refuted = Constraint::And(vec![
        Constraint::kind_is(v(0), Kind::SmallInt),
        Constraint::Int(CmpOp::Lt, LinExpr::var(v(0)), LinExpr::constant(-1)),
    ]);
    // SAT, adds nothing to decide.
    let sat = Constraint::kind_is(v(4), Kind::Float);

    println!("solver_profile: {rounds} rounds x {SOLVES_PER_ROUND} solves, µs/solve (min of rounds)");
    println!("{:<14} {:>10} {:>10}", "phase", "trail", "clone");
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    let propagate: Vec<f64> =
        [true, false].iter().map(|&t| measure(rounds, t, &branchy_path(), &refuted)).collect();
    rows.push(("propagate", propagate[0], propagate[1]));
    let flat_sat: Vec<f64> =
        [true, false].iter().map(|&t| measure(rounds, t, &flat_path(), &sat)).collect();
    rows.push((
        "model-extract",
        (flat_sat[0] - propagate[0]).max(0.0),
        (flat_sat[1] - propagate[1]).max(0.0),
    ));
    let branchy_sat: Vec<f64> =
        [true, false].iter().map(|&t| measure(rounds, t, &branchy_path(), &sat)).collect();
    rows.push((
        "search",
        (branchy_sat[0] - flat_sat[0]).max(0.0),
        (branchy_sat[1] - flat_sat[1]).max(0.0),
    ));
    // Scope mechanics: the trail/clone delta on the propagate-only
    // workload — positive means cloning costs more than undo replay.
    rows.push(("unwind-vs-clone", 0.0, (propagate[1] - propagate[0]).max(0.0)));
    rows.push(("total (SAT)", branchy_sat[0], branchy_sat[1]));
    for (name, t, c) in rows {
        println!("{name:<14} {t:>10.3} {c:>10.3}");
    }

    // Trail accounting over one batch, as a sanity check that the
    // measured mode is the one configured.
    let mut s = session(true, &branchy_path());
    let p = PreparedConstraint::new(sat);
    for _ in 0..SOLVES_PER_ROUND {
        let _ = s.solve_under_prepared(&p);
        s.clear_cached_model();
    }
    let ts = s.trail_stats();
    println!(
        "trail stats over {SOLVES_PER_ROUND} SAT solves: {} marks, {} ops undone, \
         {} clones avoided, pool {}/{} hit/miss",
        ts.trail_marks, ts.undone_ops, ts.clones_avoided, ts.pool_hits, ts.pool_misses
    );
}
