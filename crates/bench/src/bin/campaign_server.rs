//! Campaign-as-a-service: a long-running process that answers
//! JSON-Lines requests with differential-testing sweeps, amortizing
//! the exploration cache, the compiled-code cache and the in-memory
//! corpus overlay across requests (engine v7).
//!
//! Requests arrive one per line on stdin (default) or on a unix
//! socket (`--socket PATH`), as flat JSON objects:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"run"}
//! {"cmd":"run","threads":4}
//! {"cmd":"quit"}
//! ```
//!
//! Responses are JSON lines on the same stream: a `row` event per
//! Table 2 row, an `instruction` event per tested instruction (the
//! streamed verdicts), and a final `done` event with aggregate
//! metrics. The first `run` is as cold as the corpus allows; every
//! identical re-run replays from the overlay recorded by the first,
//! so a serve-mode client pays the pipeline cost once per compiler
//! state.
//!
//! The configuration is pinned to the paper's setup (both ISAs, kind
//! probing on); only the worker-thread count is per-request. Mutant
//! arming is refused — a fault-injected serve process would hand out
//! poisoned verdicts long after the operator forgot the env var.
//!
//! The socket mode accepts concurrent connections, but the campaign
//! itself is single-occupancy: while one client's request stream holds
//! it, any other connection is answered immediately with one
//! `{"ok":false,"event":"busy"}` line and closed, instead of hanging
//! silently in the accept queue until the first client disconnects.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, TryLockError};

use igjit::{aggregate_metrics, Campaign};
use igjit_bench::paper_config;

struct Args {
    socket: Option<PathBuf>,
    corpus: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign_server [--socket PATH] [--corpus PATH]\n\
         \n\
         Serves differential-testing sweeps over JSON-Lines requests\n\
         ({{\"cmd\":\"ping\"|\"run\"|\"quit\"}}, optional \"threads\":N on run),\n\
         sharing the exploration/code caches and the corpus overlay\n\
         across requests. One connection is served at a time; extra\n\
         clients get {{\"ok\":false,\"event\":\"busy\"}} and are closed.\n\
         \n\
         options:\n\
         \x20 --socket PATH  listen on a unix socket instead of stdin\n\
         \x20 --corpus PATH  persistent corpus (also IGJIT_CORPUS)\n\
         \x20 --help         this text\n\
         \n\
         environment: IGJIT_THREADS, IGJIT_CODE_CACHE, IGJIT_HEAP_SNAPSHOT,\n\
         IGJIT_PREDECODE, IGJIT_INTERP_PREDECODE, IGJIT_HASH_CONS, IGJIT_FAMILY_SHARE,\n\
         IGJIT_TIER5, IGJIT_NEGATE_THREADS, IGJIT_CORPUS (IGJIT_MUTANT is refused)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { socket: None, corpus: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--socket" => match it.next() {
                Some(p) if !p.is_empty() => args.socket = Some(PathBuf::from(p)),
                _ => {
                    eprintln!("error: --socket expects a path");
                    std::process::exit(2);
                }
            },
            "--corpus" => match it.next() {
                Some(p) if !p.is_empty() => args.corpus = Some(PathBuf::from(p)),
                _ => {
                    eprintln!("error: --corpus expects a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

/// Extracts a `"key":"value"` string field from one flat JSON object.
/// Good enough for the fixed request grammar; anything the grammar
/// doesn't cover is answered with an error event, never a guess.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a `"key":123` unsigned field from one flat JSON object.
fn json_usize_field(line: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// JSON string escaping for the label fields we emit (labels are
/// instruction/compiler names — quotes and backslashes just in case).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Handles one request line. Returns `false` when the client asked to
/// quit.
fn handle(line: &str, campaign: &mut Campaign, out: &mut dyn Write) -> std::io::Result<bool> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(true);
    }
    match json_str_field(line, "cmd").as_deref() {
        Some("ping") => {
            writeln!(out, "{{\"ok\":true,\"event\":\"pong\"}}")?;
        }
        Some("quit") => {
            writeln!(out, "{{\"ok\":true,\"event\":\"bye\"}}")?;
            out.flush()?;
            return Ok(false);
        }
        Some("run") => {
            if let Some(threads) = json_usize_field(line, "threads") {
                campaign.set_threads(threads);
            }
            let reports = campaign.run_all();
            for report in &reports {
                writeln!(
                    out,
                    "{{\"ok\":true,\"event\":\"row\",\"row\":\"{}\",\
                     \"tested_instructions\":{},\"interpreter_paths\":{},\
                     \"curated_paths\":{},\"differences\":{}}}",
                    esc(&report.row.label),
                    report.row.tested_instructions,
                    report.row.interpreter_paths,
                    report.row.curated_paths,
                    report.row.differences,
                )?;
                for (outcome, timing) in report.outcomes.iter().zip(&report.timings) {
                    writeln!(
                        out,
                        "{{\"ok\":true,\"event\":\"instruction\",\"row\":\"{}\",\
                         \"instruction\":\"{}\",\"paths\":{},\"curated\":{},\
                         \"differences\":{},\"corpus_hit\":{}}}",
                        esc(&report.row.label),
                        esc(&timing.label),
                        outcome.paths_found,
                        outcome.curated,
                        outcome.difference_count(),
                        matches!(timing.corpus_hit, Some(true)),
                    )?;
                }
            }
            let total = aggregate_metrics(&reports);
            writeln!(
                out,
                "{{\"ok\":true,\"event\":\"done\",\"metrics\":{}}}",
                total.to_json()
            )?;
            // Each sweep's new entries go straight back to disk, so a
            // crashed or killed server loses at most the in-flight
            // request.
            if let Some(Err(e)) = campaign.save_corpus() {
                eprintln!("corpus: write failed: {e}");
            }
        }
        _ => {
            writeln!(
                out,
                "{{\"ok\":false,\"event\":\"error\",\
                 \"error\":\"expected {{\\\"cmd\\\":\\\"ping|run|quit\\\"}}\"}}"
            )?;
        }
    }
    out.flush()?;
    Ok(true)
}

fn serve_stream(
    campaign: &mut Campaign,
    input: impl std::io::Read,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    for line in BufReader::new(input).lines() {
        if !handle(&line?, campaign, out)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn main() {
    let args = parse_args();
    let knobs = igjit_bench::env_knobs();
    if knobs.mutant.is_some() {
        eprintln!(
            "error: IGJIT_MUTANT must not be set for campaign_server — a \
             fault-injected serve process would stream poisoned verdicts"
        );
        std::process::exit(2);
    }
    let mut config = paper_config();
    if args.corpus.is_some() {
        config.corpus = args.corpus.clone();
    }
    let mut campaign = Campaign::new(config);
    if let Some(stats) = campaign.corpus_load_stats() {
        eprintln!(
            "corpus: {} outcomes, {} explorations, {} artifacts loaded",
            stats.outcomes, stats.explorations, stats.code,
        );
    }
    match &args.socket {
        None => {
            eprintln!("campaign_server: serving JSON-Lines requests on stdin");
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            if let Err(e) = serve_stream(&mut campaign, stdin.lock(), &mut stdout) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some(path) => {
            // A stale socket from a previous run would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = match std::os::unix::net::UnixListener::bind(path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: binding {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            eprintln!("campaign_server: listening on {}", path.display());
            // One connection owns the campaign at a time; extra
            // clients get an explicit busy line from their own thread
            // instead of hanging unanswered in the accept queue.
            let campaign = Arc::new(Mutex::new(campaign));
            std::thread::scope(|scope| {
                for stream in listener.incoming() {
                    let stream = match stream {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("accept failed: {e}");
                            continue;
                        }
                    };
                    let campaign = Arc::clone(&campaign);
                    scope.spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(e) => {
                                eprintln!("clone failed: {e}");
                                return;
                            }
                        };
                        let mut writer = stream;
                        let mut guard = match campaign.try_lock() {
                            Ok(g) => g,
                            Err(TryLockError::WouldBlock) => {
                                let _ = writeln!(writer, "{{\"ok\":false,\"event\":\"busy\"}}");
                                let _ = writer.flush();
                                return;
                            }
                            Err(TryLockError::Poisoned(p)) => p.into_inner(),
                        };
                        match serve_stream(&mut guard, reader, &mut writer) {
                            Ok(true) => {}
                            Ok(false) => {
                                // `quit` stops the whole server. The
                                // accept loop is blocked in `incoming`,
                                // so exit here — after the socket file
                                // is gone and the response is flushed.
                                drop(guard);
                                let _ = std::fs::remove_file(path);
                                std::process::exit(0);
                            }
                            Err(e) => eprintln!("connection error: {e}"),
                        }
                    });
                }
            });
            let _ = std::fs::remove_file(path);
        }
    }
}
