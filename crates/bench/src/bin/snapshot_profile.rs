//! One-off profile of the per-model materialization cost components.
//! Not part of the evaluation tables; used to attribute the
//! materialize stage between heap construction, model witnessing and
//! base-image cloning.

use std::time::Instant;

use igjit_bytecode::Instruction;
use igjit_concolic::{materialize_base, materialize_frame, probe_models, Explorer, InstrUnderTest};
use igjit_heap::ObjectMemory;

fn main() {
    let _mutant = igjit_bench::arm_mutant_from_env();
    let r = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
    let path = &r.curated_paths()[0];
    let model = probe_models(&r.state, path, 8).pop().unwrap();
    const N: u32 = 100_000;

    let t = Instant::now();
    for _ in 0..N {
        std::hint::black_box(ObjectMemory::new());
    }
    println!("ObjectMemory::new      {:>8.1} ns", t.elapsed().as_nanos() as f64 / N as f64);

    let t = Instant::now();
    for _ in 0..N {
        std::hint::black_box(r.state.clone());
    }
    println!("state.clone            {:>8.1} ns", t.elapsed().as_nanos() as f64 / N as f64);

    let t = Instant::now();
    for _ in 0..N {
        let mut state = r.state.clone();
        let mut mem = ObjectMemory::new();
        std::hint::black_box(materialize_frame(&mut state, &model, &mut mem));
    }
    println!("full materialization   {:>8.1} ns", t.elapsed().as_nanos() as f64 / N as f64);

    let image = materialize_base(&r.state, &model);
    let t = Instant::now();
    for _ in 0..N {
        std::hint::black_box(image.mem.clone());
    }
    println!("base mem.clone         {:>8.1} ns", t.elapsed().as_nanos() as f64 / N as f64);

    let t = Instant::now();
    for _ in 0..N {
        std::hint::black_box(materialize_base(&r.state, &model));
    }
    println!("materialize_base       {:>8.1} ns", t.elapsed().as_nanos() as f64 / N as f64);
}
