//! Criterion bench behind the "materialize once, replay many"
//! optimisation: sealing a materialized base image and rolling it back
//! after a mutation versus rebuilding the heap from the model.

use criterion::{criterion_group, criterion_main, Criterion};
use igjit_bytecode::Instruction;
use igjit_concolic::{materialize_base, probe_models, Explorer, InstrUnderTest};
use igjit_difftest::{concrete_frame, run_oracle_on};
use igjit_interp::NativeMethodId;

fn bench_seal_restore_vs_fresh(c: &mut Criterion) {
    for (label, instr) in [
        ("add", InstrUnderTest::Bytecode(Instruction::Add)),
        ("prim_at", InstrUnderTest::Native(NativeMethodId(60))),
    ] {
        let r = Explorer::new().explore(instr);
        let path = &r.curated_paths()[0];
        let model = probe_models(&r.state, path, 8).pop().unwrap();

        let mut g = c.benchmark_group(format!("snapshot/{label}"));
        // Replay path: one restore undoes an oracle run's mutations.
        g.bench_function("restore_after_oracle", |b| {
            let mut image = materialize_base(&r.state, &model);
            b.iter(|| {
                let mut frame = concrete_frame(&image.frame);
                let _ = run_oracle_on(&mut image.mem, &mut frame, instr);
                image.mem.restore(&image.snapshot).unwrap()
            })
        });
        // Rebuild path: what each ISA run used to cost before replay —
        // a fresh heap, frame and seal from the model.
        g.bench_function("fresh_materialize", |b| {
            b.iter(|| {
                let mut image = materialize_base(&r.state, std::hint::black_box(&model));
                let mut frame = concrete_frame(&image.frame);
                let _ = run_oracle_on(&mut image.mem, &mut frame, instr);
                image
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_seal_restore_vs_fresh);
criterion_main!(benches);
