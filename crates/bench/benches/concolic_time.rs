//! Criterion bench behind Figure 6: concolic-exploration cost per
//! kind of instruction.

use criterion::{criterion_group, criterion_main, Criterion};
use igjit::{Explorer, InstrUnderTest, Instruction, NativeMethodId};

fn bench_bytecode_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("concolic_bytecode");
    g.sample_size(10);
    for (name, instr) in [
        ("push_true", Instruction::PushTrue),
        ("pop", Instruction::Pop),
        ("add", Instruction::Add),
        ("divide", Instruction::Divide),
        ("special_at", Instruction::SpecialSendAt),
        ("jump_true", Instruction::ShortJumpTrue(3)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Explorer::new().explore(InstrUnderTest::Bytecode(std::hint::black_box(instr))))
        });
    }
    g.finish();
}

fn bench_native_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("concolic_native");
    g.sample_size(10);
    for (name, id) in [
        ("prim_add", 1u16),
        ("prim_bit_and", 14),
        ("prim_float_add", 41),
        ("prim_at_put", 61),
        ("prim_ffi_read", 100),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(
                    std::hint::black_box(id),
                )))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bytecode_exploration, bench_native_exploration);
criterion_main!(benches);
