//! Microbenchmarks of the substrates: interpreter dispatch, solver
//! throughput, JIT compile + machine execution. These are the ablation
//! measurements behind the §5.4 claim that the constraint solver, not
//! the execution machinery, dominates concolic cost.

use criterion::{criterion_group, criterion_main, Criterion};
use igjit_bytecode::{Instruction, MethodBuilder};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{run_method, MethodResult};
use igjit_jit::{compile_bytecode_test, BytecodeTestInput, CompilerKind, Convention};
use igjit_machine::{Isa, Machine, MachineConfig};
use igjit_solver::{solve, Constraint, Kind, LinExpr, Problem, VarSpec};

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    // A loop summing 0..99 — dispatch-heavy workload.
    let mut mem = ObjectMemory::new();
    let mut b = MethodBuilder::new(0, 2);
    b.emit(Instruction::PushZero);
    b.emit(Instruction::PopIntoTemp(0)); // sum
    b.emit(Instruction::PushZero);
    b.emit(Instruction::PopIntoTemp(1)); // i
    // loop body starts at pc 4
    b.emit(Instruction::PushTemp(0));
    b.emit(Instruction::PushTemp(1));
    b.emit(Instruction::Add);
    b.emit(Instruction::PopIntoTemp(0));
    b.emit(Instruction::PushTemp(1));
    b.emit(Instruction::PushOne);
    b.emit(Instruction::Add);
    b.emit(Instruction::PopIntoTemp(1));
    b.emit(Instruction::PushTemp(1));
    b.push_small_int(100); // 2 bytes (PushInteger)
    b.emit(Instruction::GreaterOrEqual);
    b.emit(Instruction::ShortJumpTrue(2));
    b.emit(Instruction::LongJumpForward(-15)); // back to pc 4
    b.emit(Instruction::PushTemp(0));
    b.emit(Instruction::ReturnTop);
    let m = b.install(&mut mem).unwrap();
    let nil = mem.nil();
    g.bench_function("sum_loop_100", |bch| {
        bch.iter(|| {
            let r = run_method(&mut mem, m, nil, &[]).unwrap();
            assert_eq!(r, MethodResult::Returned(Oop::from_small_int(4950)));
        })
    });
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    g.bench_function("overflow_pair", |bch| {
        bch.iter(|| {
            let mut p = Problem::new();
            let x = p.new_var(VarSpec::any());
            let y = p.new_var(VarSpec::any());
            p.assert(Constraint::kind_is(x, Kind::SmallInt));
            p.assert(Constraint::kind_is(y, Kind::SmallInt));
            let sum = LinExpr::var(x).plus(&LinExpr::var(y));
            p.assert(Constraint::not_in_small_int_range(sum));
            solve(&p).unwrap()
        })
    });
    g.bench_function("kind_chain", |bch| {
        bch.iter(|| {
            let mut p = Problem::new();
            let vars: Vec<_> = (0..8).map(|_| p.new_var(VarSpec::any())).collect();
            for (i, v) in vars.iter().enumerate() {
                let k = if i % 2 == 0 { Kind::SmallInt } else { Kind::Array };
                p.assert(Constraint::kind_is(*v, k));
            }
            solve(&p).unwrap()
        })
    });
    g.finish();
}

fn bench_jit(c: &mut Criterion) {
    let mut g = c.benchmark_group("jit");
    let mem = ObjectMemory::new();
    let stack = [Oop::from_small_int(20), Oop::from_small_int(22)];
    let input = BytecodeTestInput {
        instruction: Instruction::Add,
        operand_stack: &stack,
        temps: &[],
        literals: &[],
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    for isa in [Isa::X86ish, Isa::Arm32ish] {
        g.bench_function(format!("compile_add_{}", isa.name()), |bch| {
            bch.iter(|| {
                compile_bytecode_test(CompilerKind::RegisterAllocating, &input, isa).unwrap()
            })
        });
        let compiled = compile_bytecode_test(CompilerKind::StackToRegister, &input, isa).unwrap();
        g.bench_function(format!("execute_add_{}", isa.name()), |bch| {
            bch.iter(|| {
                let mut mem = ObjectMemory::new();
                let conv = Convention::for_isa(isa);
                let mut m = Machine::new(&mut mem, isa, &compiled.code);
                m.set_reg(conv.receiver, Oop::from_small_int(0).0);
                m.run(MachineConfig::default())
            })
        });
    }
    g.finish();
}

fn bench_image_dispatch(c: &mut Criterion) {
    use igjit_bytecode::Instruction as I;
    use igjit_heap::ClassIndex;
    use igjit_interp::Image;
    let mut g = c.benchmark_group("image");
    let mut image = Image::new();
    let fib = image.intern("fib");
    image.install_method(ClassIndex::SMALL_INTEGER, "fib", 0, 0, |b, _| {
        let lit = b.add_literal(fib);
        b.emit(I::PushReceiver);
        b.emit(I::PushTwo);
        b.emit(I::LessThan);
        b.emit(I::ShortJumpFalse(1));
        b.emit(I::ReturnReceiver);
        b.emit(I::PushReceiver);
        b.emit(I::PushOne);
        b.emit(I::Subtract);
        b.emit(I::Send { lit, nargs: 0 });
        b.emit(I::PushReceiver);
        b.emit(I::PushTwo);
        b.emit(I::Subtract);
        b.emit(I::Send { lit, nargs: 0 });
        b.emit(I::Add);
        b.emit(I::ReturnTop);
    });
    g.bench_function("fib_12_dispatched_sends", |bch| {
        bch.iter(|| {
            let r = image
                .send(Oop::from_small_int(std::hint::black_box(12)), "fib", &[])
                .unwrap();
            assert_eq!(r, Oop::from_small_int(144));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interpreter, bench_solver, bench_jit, bench_image_dispatch);
criterion_main!(benches);
