//! Criterion bench behind the engine-v5 simulation pipeline: the three
//! ways one compiled test method reaches the machine simulator.
//!
//! * `one_shot_byte_decode` — engine-v3 shape: every run allocates a
//!   fresh 64 KB machine stack and decodes each step from bytes.
//! * `session_byte_decode` — engine-v4/v5 batched-replay shape: a
//!   persistent [`MachineSession`] is reset (low-water-mark zeroing)
//!   instead of reallocated; fetch still decodes from bytes.
//! * `session_predecoded` — engine v5: the session plus a
//!   [`PredecodedCode`] artifact, so fetch is an indexed lookup.
//!
//! `predecode_build` measures the one-time artifact construction that
//! the compiled-code cache amortizes across every replay of an entry.
//! (The heap side of batched replay — seal/restore versus fresh
//! materialization — is covered by the `snapshot` bench.)

use criterion::{criterion_group, criterion_main, Criterion};
use igjit_heap::ObjectMemory;
use igjit_jit::native::igjit_bytecode_native_id::NativeMethodIdLike;
use igjit_jit::{compile_bytecode_test, compile_native_test, BytecodeTestInput, CompiledCode,
                Convention, NativeTestInput};
use igjit_machine::{Isa, Machine, MachineConfig, MachineSession, PredecodedCode};

/// Compiled methods covering both unit shapes: a native template
/// (register-calling-convention, short body) and a bytecode test
/// (operand stack traffic, more steps per run).
fn subjects(mem: &ObjectMemory) -> Vec<(&'static str, CompiledCode)> {
    let native_input = NativeTestInput {
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    let stack = [igjit_heap::Oop::from_small_int(20), igjit_heap::Oop::from_small_int(22)];
    let bc_input = BytecodeTestInput {
        instruction: igjit_bytecode::Instruction::Add,
        operand_stack: &stack,
        temps: &[],
        literals: &[],
        nil: mem.nil(),
        true_obj: mem.true_object(),
        false_obj: mem.false_object(),
    };
    vec![
        (
            "native_add",
            compile_native_test(NativeMethodIdLike(1), native_input, Isa::X86ish)
                .expect("native add compiles"),
        ),
        (
            "bc_add",
            compile_bytecode_test(
                igjit_jit::CompilerKind::StackToRegister,
                &bc_input,
                Isa::X86ish,
            )
            .expect("bytecode add compiles"),
        ),
    ]
}

/// Seeds the receiver/argument registers the way the campaign does, so
/// the native body runs its real fast path instead of bailing early.
fn seed_regs(m: &mut Machine<'_>, isa: Isa) {
    let conv = Convention::for_isa(isa);
    m.set_reg(conv.receiver, igjit_heap::Oop::from_small_int(20).0);
    m.set_reg(conv.arg(0), igjit_heap::Oop::from_small_int(22).0);
}

fn bench_simulate_modes(c: &mut Criterion) {
    let mem = ObjectMemory::new();
    for (label, compiled) in subjects(&mem) {
        let isa = compiled.isa;
        let predecoded = PredecodedCode::new(&compiled.code, isa);
        let mut g = c.benchmark_group(format!("simulate/{label}"));

        g.bench_function("one_shot_byte_decode", |b| {
            b.iter(|| {
                let mut run_mem = ObjectMemory::new();
                let mut m = Machine::new(&mut run_mem, isa, &compiled.code);
                seed_regs(&mut m, isa);
                m.run(MachineConfig::default())
            })
        });

        g.bench_function("session_byte_decode", |b| {
            let mut run_mem = ObjectMemory::new();
            let mut session = MachineSession::new();
            b.iter(|| {
                let mut m = Machine::with_session(&mut run_mem, isa, &compiled.code, &mut session);
                seed_regs(&mut m, isa);
                m.run(MachineConfig::default())
            })
        });

        g.bench_function("session_predecoded", |b| {
            let mut run_mem = ObjectMemory::new();
            let mut session = MachineSession::new();
            b.iter(|| {
                let mut m = Machine::with_predecoded(&mut run_mem, &predecoded, &mut session);
                seed_regs(&mut m, isa);
                m.run(MachineConfig::default())
            })
        });

        g.bench_function("predecode_build", |b| {
            b.iter(|| PredecodedCode::new(std::hint::black_box(&compiled.code), isa))
        });

        g.finish();
    }
}

criterion_group!(benches, bench_simulate_modes);
criterion_main!(benches);
