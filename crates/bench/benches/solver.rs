//! Criterion microbench for the solver's hypothesis hot path (engine
//! v10): µs per sibling-hypothesis solve for the classic quadruple
//! (`push`/`assert`/`solve`/`pop`), [`Session::solve_under`], and
//! [`Session::solve_under_prepared`], each in trail mode (the
//! `IGJIT_SOLVER_TRAIL` default — scopes on the undo log) and clone
//! mode (each scope clones the interval store). The workload mirrors
//! the kind-probe sweep: one path condition asserted once, ~a dozen
//! sibling hypotheses solved against it per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use igjit_solver::{
    CmpOp, Constraint, Kind, LinExpr, PreparedConstraint, Session, VarId, VarSpec,
};

const VARS: usize = 8;

fn specs() -> Vec<VarSpec> {
    (0..VARS).map(|_| VarSpec::any()).collect()
}

/// A VM-shaped path condition: kind-pinned integer operands with
/// bounds, an arithmetic relation, and branchy `Or` kind tests that
/// force the search to take (and unwind) disjunct scopes.
fn path_condition() -> Vec<Constraint> {
    let v = |i: usize| VarId(i as u32);
    vec![
        Constraint::kind_is(v(0), Kind::SmallInt),
        Constraint::kind_is(v(1), Kind::SmallInt),
        Constraint::Int(CmpOp::Ge, LinExpr::var(v(0)), LinExpr::constant(-100)),
        Constraint::Int(CmpOp::Le, LinExpr::var(v(0)), LinExpr::constant(100)),
        Constraint::Int(
            CmpOp::Eq,
            LinExpr::var(v(0)).plus(&LinExpr::var(v(1))),
            LinExpr::constant(7),
        ),
        Constraint::Or(vec![
            Constraint::kind_is(v(2), Kind::SmallInt),
            Constraint::kind_is(v(2), Kind::Float),
        ]),
        Constraint::Or(vec![
            Constraint::kind_is(v(3), Kind::Array),
            Constraint::kind_is(v(3), Kind::SmallInt),
        ]),
    ]
}

/// Sibling hypotheses in probe-sweep style: alternate kinds plus sign
/// probes on the shallow operands. Several are unsatisfiable under the
/// path condition, as in the real sweep.
fn hypotheses() -> Vec<Constraint> {
    let v = |i: usize| VarId(i as u32);
    let mut hs = Vec::new();
    for i in 0..4 {
        for kind in [Kind::Float, Kind::Array, Kind::ExternalAddress] {
            hs.push(Constraint::kind_is(v(i), kind));
        }
        hs.push(Constraint::And(vec![
            Constraint::kind_is(v(i), Kind::SmallInt),
            Constraint::Int(CmpOp::Lt, LinExpr::var(v(i)), LinExpr::constant(-1)),
        ]));
    }
    hs
}

fn session(trail: bool) -> Session {
    let mut s = Session::new();
    s.set_trail(trail);
    s.sync_vars(&specs());
    for c in path_condition() {
        s.assert(c);
    }
    s
}

fn bench_hypothesis_solves(c: &mut Criterion) {
    let hyps = hypotheses();
    let prepared: Vec<PreparedConstraint> =
        hyps.iter().map(|h| PreparedConstraint::new(h.clone())).collect();
    for (mode, trail) in [("trail", true), ("clone", false)] {
        let mut g = c.benchmark_group(format!("solver_{mode}"));
        g.sample_size(30);
        g.bench_function("quadruple", |b| {
            let mut s = session(trail);
            b.iter(|| {
                for h in &hyps {
                    s.push();
                    s.assert(h.clone());
                    let _ = std::hint::black_box(s.solve());
                    s.pop();
                    s.clear_cached_model();
                }
            })
        });
        g.bench_function("solve_under", |b| {
            let mut s = session(trail);
            b.iter(|| {
                for h in &hyps {
                    let _ = std::hint::black_box(s.solve_under(h));
                    s.clear_cached_model();
                }
            })
        });
        g.bench_function("solve_under_prepared", |b| {
            let mut s = session(trail);
            b.iter(|| {
                for p in &prepared {
                    let _ = std::hint::black_box(s.solve_under_prepared(p));
                    s.clear_cached_model();
                }
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_hypothesis_solves);
criterion_main!(benches);
