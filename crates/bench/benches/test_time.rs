//! Criterion bench behind Figure 7: differential test-execution cost
//! per compiler.

use criterion::{criterion_group, criterion_main, Criterion};
use igjit::{
    test_instruction, CompilerKind, InstrUnderTest, Instruction, Isa, NativeMethodId, Target,
};

const BOTH: [Isa; 2] = [Isa::X86ish, Isa::Arm32ish];

fn bench_bytecode_compilers(c: &mut Criterion) {
    let mut g = c.benchmark_group("difftest_bytecode");
    g.sample_size(10);
    for kind in CompilerKind::ALL {
        let label = match kind {
            CompilerKind::SimpleStackBased => "simple",
            CompilerKind::StackToRegister => "stack_to_register",
            CompilerKind::RegisterAllocating => "linear_allocator",
        };
        g.bench_function(format!("{label}/add"), |b| {
            b.iter(|| {
                test_instruction(
                    InstrUnderTest::Bytecode(std::hint::black_box(Instruction::Add)),
                    Target::Bytecode(kind),
                    &BOTH,
                    false,
                )
            })
        });
    }
    g.finish();
}

fn bench_native_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("difftest_native");
    g.sample_size(10);
    for (label, id) in [("prim_add", 1u16), ("prim_float_add", 41), ("prim_at", 60)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                test_instruction(
                    InstrUnderTest::Native(NativeMethodId(std::hint::black_box(id))),
                    Target::NativeMethods,
                    &BOTH,
                    true,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bytecode_compilers, bench_native_compiler);
criterion_main!(benches);
