//! Armed-mutant integration tests: every compiler-layer mutation
//! operator must actually perturb compiled code somewhere (a site that
//! never fires would silently test nothing), and disarming must leave
//! no residue — recompiling after a guard drops yields the exact
//! baseline bytes.
//!
//! Cache-layer operators (5xx) mutate cache *keys*, not generated
//! code, so they are exercised by the campaign driver instead.

use igjit_bytecode::{instruction_catalog, Instruction};
use igjit_heap::Oop;
use igjit_jit::{compile_bytecode_sequence_test, compile_bytecode_test, BytecodeTestInput,
                CompilerKind};
use igjit_machine::Isa;
use igjit_mutate::{FaultInjector, Layer, CATALOG};

const KINDS: [CompilerKind; 3] = [
    CompilerKind::SimpleStackBased,
    CompilerKind::StackToRegister,
    CompilerKind::RegisterAllocating,
];

/// One compile battery: every catalog instruction on every tier and
/// ISA, plus a register-pressure sequence that forces the linear-scan
/// allocator to spill. Refusals (`Err`) are recorded as `None` so the
/// comparison still lines up index-for-index.
fn compile_battery() -> Vec<Option<Vec<u8>>> {
    let stack = [Oop::from_small_int(7), Oop::from_small_int(3), Oop::from_small_int(2)];
    let temps = [Oop::from_small_int(11), Oop::from_small_int(12), Oop::from_small_int(13)];
    let literals = [
        Oop::from_small_int(5),
        Oop::from_small_int(6),
        Oop::from_small_int(7),
        Oop::from_small_int(8),
    ];
    let (nil, true_obj, false_obj) = (Oop(0x100), Oop(0x108), Oop(0x110));
    let mut out = Vec::new();
    for spec in instruction_catalog() {
        let input = BytecodeTestInput {
            instruction: spec.instruction,
            operand_stack: &stack,
            temps: &temps,
            literals: &literals,
            nil,
            true_obj,
            false_obj,
        };
        for kind in KINDS {
            for isa in [Isa::X86ish, Isa::Arm32ish] {
                out.push(compile_bytecode_test(kind, &input, isa).ok().map(|c| c.code));
            }
        }
    }
    // A deep expression keeps many values live at once: the
    // register-allocating tier runs out of pool registers and spills,
    // reaching the 2xx spill-addressing and spill-elision sites.
    let mut seq = Vec::new();
    for i in 0..3 {
        seq.push(Instruction::PushTemp(i));
    }
    for _ in 0..6 {
        seq.push(Instruction::Dup);
    }
    for _ in 0..8 {
        seq.push(Instruction::Add);
    }
    let input = BytecodeTestInput {
        instruction: seq[0],
        operand_stack: &stack,
        temps: &temps,
        literals: &literals,
        nil,
        true_obj,
        false_obj,
    };
    for kind in KINDS {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            out.push(compile_bytecode_sequence_test(kind, &seq, &input, isa).ok().map(|c| c.code));
        }
    }
    out
}

#[test]
fn disarmed_compiles_are_deterministic() {
    let _off = FaultInjector::pinned_off();
    assert_eq!(compile_battery(), compile_battery());
}

#[test]
fn every_compiler_layer_mutant_perturbs_some_compile() {
    let baseline = {
        let _off = FaultInjector::pinned_off();
        compile_battery()
    };
    let mut silent = Vec::new();
    for op in CATALOG {
        if op.layer == Layer::CodeCache {
            continue;
        }
        // drop-mov-elision only fires on register self-moves, which
        // arise when linear scan happens to assign a move's source and
        // destination the same register — not something a fixed battery
        // can force portably. It is a designed-equivalent survivor
        // whether or not the site fires.
        if op.id == igjit_mutate::ops::DROP_MOV_ELISION {
            continue;
        }
        let mutated = {
            let _armed = FaultInjector::arm(op.id).unwrap();
            compile_battery()
        };
        assert_eq!(mutated.len(), baseline.len());
        if mutated == baseline {
            silent.push(op.name);
        }
    }
    assert!(silent.is_empty(), "mutants with no reachable injection site: {silent:?}");
}

#[test]
fn disarming_restores_baseline_bytes_for_whole_catalog() {
    let baseline = {
        let _off = FaultInjector::pinned_off();
        compile_battery()
    };
    for op in CATALOG {
        {
            let _armed = FaultInjector::arm(op.id).unwrap();
            let _ = compile_battery();
        }
        let _off = FaultInjector::pinned_off();
        assert_eq!(compile_battery(), baseline, "{} left residue after disarm", op.name);
    }
}

#[test]
fn catalog_spans_at_least_three_jit_layers() {
    let layers: std::collections::BTreeSet<&str> =
        CATALOG.iter().map(|op| op.layer.name()).collect();
    assert!(layers.len() >= 3, "only {layers:?}");
    assert!(CATALOG.len() >= 25, "issue floor: ≥25 operators, have {}", CATALOG.len());
    // Every layer named in the catalog has at least one operator that
    // reaches compiled code (checked byte-for-byte above); the id
    // numbering encodes the layer for stable reporting.
    for op in CATALOG {
        assert_eq!(
            op.id.0 / 100,
            match op.layer {
                Layer::BytecodeCompiler => 1,
                Layer::RegisterAllocator => 2,
                Layer::Convention => 3,
                Layer::Backend => 4,
                Layer::CodeCache => 5,
            },
            "{}",
            op.name
        );
    }
}

#[test]
fn compiler_options_are_tier_stable() {
    // The tiers differ only in the options table; pin the distinction
    // the mutants rely on (the allocating tier is the only one with a
    // register allocator to mutate).
    let simple = CompilerKind::SimpleStackBased.options();
    let s2r = CompilerKind::StackToRegister.options();
    let alloc = CompilerKind::RegisterAllocating.options();
    assert!(!simple.inline_smallint_arith && !simple.use_vregs);
    assert!(s2r.inline_smallint_arith && !s2r.use_vregs);
    assert!(alloc.inline_smallint_arith && alloc.use_vregs);
}
